//! Self-tests for the weave model checker: known-racy programs must
//! be caught (with the right failure kind), known-correct ones must
//! survive exhaustive exploration, and failures must replay.

use std::sync::atomic::Ordering;
use weave::atomic::{AtomicBool, AtomicUsize};
use weave::{explore, replay, Condvar, Config, FailureKind, Mutex};

fn cfg() -> Config {
    Config {
        max_executions: 20_000,
        ..Config::default()
    }
}

/// Test stand-in for ProcSlot: shares a `weave::UnsafeCell` across
/// threads, claiming (sometimes falsely — that's the point) that a
/// protocol orders the accesses.
struct RacyCell(weave::UnsafeCell<u64>);

// SAFETY: scenario-dependent; exactly what the model checks.
unsafe impl Sync for RacyCell {}

impl RacyCell {
    fn new(v: u64) -> Self {
        RacyCell(weave::UnsafeCell::new(v))
    }
}

impl std::ops::Deref for RacyCell {
    type Target = weave::UnsafeCell<u64>;
    fn deref(&self) -> &weave::UnsafeCell<u64> {
        &self.0
    }
}

type UnsafeCell = RacyCell;

/// Two threads publish/consume through a flag. With Release/Acquire
/// the cell accesses are ordered; exhaustive exploration is clean.
#[test]
fn release_acquire_publication_is_clean() {
    let out = explore(&cfg(), || {
        let cell = UnsafeCell::new(0u64);
        let flag = AtomicBool::new(false);
        let tasks: Vec<Box<dyn FnOnce() + Send>> = vec![
            Box::new(|| {
                // SAFETY: model-checked — the consumer only touches the
                // cell after observing flag == true via Acquire.
                unsafe { *cell.get() = 42 };
                flag.store(true, Ordering::Release);
            }),
            Box::new(|| {
                if flag.load(Ordering::Acquire) {
                    let v = unsafe { *cell.get() };
                    assert_eq!(v, 42);
                }
            }),
        ];
        weave::thread::scope_join(tasks)
            .into_iter()
            .for_each(|r| r.unwrap());
    });
    out.assert_clean("release/acquire publication");
    assert!(
        out.stats.exhausted,
        "2-thread flag protocol should be exhaustible"
    );
    assert!(
        out.stats.executions > 1,
        "must explore more than one interleaving"
    );
}

/// Same program with a Relaxed flag: the consumer can observe the
/// flag without an ordering edge to the write — a data race the
/// checker must find and attribute to both cell sites.
#[test]
fn relaxed_publication_races() {
    let out = explore(&cfg(), || {
        let cell = UnsafeCell::new(0u64);
        let flag = AtomicBool::new(false);
        let tasks: Vec<Box<dyn FnOnce() + Send>> = vec![
            Box::new(|| {
                unsafe { *cell.get() = 42 };
                flag.store(true, Ordering::Relaxed);
            }),
            Box::new(|| {
                if flag.load(Ordering::Relaxed) {
                    unsafe {
                        let _ = *cell.get();
                    }
                }
            }),
        ];
        let _ = weave::thread::scope_join(tasks);
    });
    let f = out.expect_failure("relaxed publication");
    assert_eq!(f.kind, FailureKind::DataRace);
    assert!(
        f.message.contains("model.rs"),
        "race report must name the access sites: {}",
        f.message
    );
    assert!(
        !f.trace.is_empty(),
        "failure must carry an interleaving trace"
    );

    // The recorded schedule must reproduce the same failure.
    let again = replay(&cfg(), &f.schedule, || {
        let cell = UnsafeCell::new(0u64);
        let flag = AtomicBool::new(false);
        let tasks: Vec<Box<dyn FnOnce() + Send>> = vec![
            Box::new(|| {
                unsafe { *cell.get() = 42 };
                flag.store(true, Ordering::Relaxed);
            }),
            Box::new(|| {
                if flag.load(Ordering::Relaxed) {
                    unsafe {
                        let _ = *cell.get();
                    }
                }
            }),
        ];
        let _ = weave::thread::scope_join(tasks);
    });
    let rf = again.expect_failure("replayed relaxed publication");
    assert_eq!(rf.kind, FailureKind::DataRace);
}

/// A Relaxed pure store breaks the release sequence: thread A
/// publishes with Release, thread B overwrites the flag Relaxed, and
/// a consumer acquiring from the relaxed head gets no edge to A's
/// write. fetch_add (an RMW) must NOT break the sequence.
#[test]
fn relaxed_store_breaks_release_sequence_but_rmw_continues_it() {
    // RMW in the middle: still ordered, clean.
    let out = explore(&cfg(), || {
        let cell = UnsafeCell::new(0u64);
        let gen = AtomicUsize::new(0);
        let tasks: Vec<Box<dyn FnOnce() + Send>> = vec![
            Box::new(|| {
                unsafe { *cell.get() = 7 };
                gen.store(1, Ordering::Release);
                // Relaxed RMW continues the release sequence headed by
                // the store above.
                gen.fetch_add(1, Ordering::Relaxed);
            }),
            Box::new(|| {
                if gen.load(Ordering::Acquire) == 2 {
                    unsafe {
                        let _ = *cell.get();
                    }
                }
            }),
        ];
        let _ = weave::thread::scope_join(tasks);
    });
    out.assert_clean("release sequence through RMW");

    // Relaxed pure store in the middle: sequence broken, race.
    let out = explore(&cfg(), || {
        let cell = UnsafeCell::new(0u64);
        let gen = AtomicUsize::new(0);
        let tasks: Vec<Box<dyn FnOnce() + Send>> = vec![
            Box::new(|| {
                unsafe { *cell.get() = 7 };
                gen.store(1, Ordering::Release);
                gen.store(2, Ordering::Relaxed);
            }),
            Box::new(|| {
                if gen.load(Ordering::Acquire) == 2 {
                    unsafe {
                        let _ = *cell.get();
                    }
                }
            }),
        ];
        let _ = weave::thread::scope_join(tasks);
    });
    let f = out.expect_failure("broken release sequence");
    assert_eq!(f.kind, FailureKind::DataRace);
}

/// Classic ABBA deadlock: must be reported as a deadlock naming the
/// blocked sites, not hang the test.
#[test]
fn abba_deadlock_is_reported() {
    let out = explore(&cfg(), || {
        let a = Mutex::new(());
        let b = Mutex::new(());
        let tasks: Vec<Box<dyn FnOnce() + Send>> = vec![
            Box::new(|| {
                let _ga = a.lock().unwrap();
                let _gb = b.lock().unwrap();
            }),
            Box::new(|| {
                let _gb = b.lock().unwrap();
                let _ga = a.lock().unwrap();
            }),
        ];
        let _ = weave::thread::scope_join(tasks);
    });
    let f = out.expect_failure("ABBA");
    assert_eq!(f.kind, FailureKind::Deadlock);
    assert!(f.message.contains("blocked"), "message: {}", f.message);
}

/// Check-then-wait without re-checking under the lock: the notify can
/// land between the check and the wait — a lost wakeup the scheduler
/// must be able to drive to a deadlock report.
#[test]
fn lost_wakeup_is_reported() {
    let out = explore(&cfg(), || {
        let ready = Mutex::new(false);
        let cv = Condvar::new();
        let tasks: Vec<Box<dyn FnOnce() + Send>> = vec![
            Box::new(|| {
                *ready.lock().unwrap() = true;
                cv.notify_one();
            }),
            Box::new(|| {
                // BUG: takes the lock *after* deciding to wait, and
                // never re-checks the predicate.
                let flag_now = { *ready.lock().unwrap() };
                if !flag_now {
                    let g = ready.lock().unwrap();
                    let _g = cv.wait(g).unwrap();
                }
            }),
        ];
        let _ = weave::thread::scope_join(tasks);
    });
    let f = out.expect_failure("lost wakeup");
    assert_eq!(f.kind, FailureKind::Deadlock);
    assert!(
        f.message.contains("lost wakeup"),
        "deadlock with a condvar waiter should mention lost wakeup: {}",
        f.message
    );

    // The correct protocol — wait in a predicate loop under the lock —
    // survives the same exploration.
    let out = explore(&cfg(), || {
        let ready = Mutex::new(false);
        let cv = Condvar::new();
        let tasks: Vec<Box<dyn FnOnce() + Send>> = vec![
            Box::new(|| {
                *ready.lock().unwrap() = true;
                cv.notify_one();
            }),
            Box::new(|| {
                let mut g = ready.lock().unwrap();
                while !*g {
                    g = cv.wait(g).unwrap();
                }
            }),
        ];
        let _ = weave::thread::scope_join(tasks);
    });
    out.assert_clean("predicate-loop wait");
}

/// Mutex-protected counter: every interleaving must end at the right
/// total, and the lock's clock edges keep the cell access ordered.
#[test]
fn mutex_counter_is_clean_and_correct() {
    let out = explore(&cfg(), || {
        let n = Mutex::new(0u32);
        let tasks: Vec<Box<dyn FnOnce() + Send>> = vec![
            Box::new(|| *n.lock().unwrap() += 1),
            Box::new(|| *n.lock().unwrap() += 1),
            Box::new(|| *n.lock().unwrap() += 1),
        ];
        weave::thread::scope_join(tasks)
            .into_iter()
            .for_each(|r| r.unwrap());
        assert_eq!(*n.lock().unwrap(), 3);
    });
    out.assert_clean("mutex counter");
}

/// A spin loop that can never exit must be reported as a livelock,
/// not hang the exploration.
#[test]
fn runaway_spin_is_reported_as_livelock() {
    let out = explore(
        &Config {
            max_spins: 50,
            max_steps: 500,
            ..cfg()
        },
        || {
            let flag = AtomicBool::new(false);
            // Nobody ever sets the flag.
            while !flag.load(Ordering::Acquire) {
                weave::hint::spin_loop();
            }
        },
    );
    let f = out.expect_failure("runaway spin");
    assert_eq!(f.kind, FailureKind::Livelock);
}

/// wait_timeout with no notifier: under lazy timeouts the system gets
/// stuck, the timeout transition fires, and the waiter sees
/// timed_out() — no deadlock report.
#[test]
fn timed_wait_times_out_instead_of_deadlocking() {
    let out = explore(&cfg(), || {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let g = m.lock().unwrap();
        let (_g, res) = cv
            .wait_timeout(g, std::time::Duration::from_millis(5))
            .unwrap();
        assert!(res.timed_out());
    });
    out.assert_clean("timed wait with no notifier");
}

/// Virtual time: sleeping advances Instant::now() by at least the
/// requested duration.
#[test]
fn virtual_time_advances_across_sleep() {
    let out = explore(&cfg(), || {
        let t0 = weave::time::Instant::now();
        weave::thread::sleep(std::time::Duration::from_millis(3));
        assert!(t0.elapsed() >= std::time::Duration::from_millis(3));
    });
    out.assert_clean("virtual sleep");
}

/// park/unpark: the unpark edge orders the cell write before the
/// parked thread's read; a pre-delivered permit is consumed.
#[test]
fn park_unpark_carries_happens_before() {
    let out = explore(&cfg(), || {
        let cell = UnsafeCell::new(0u64);
        let parked = Mutex::new(Option::<weave::thread::Thread>::None);
        let tasks: Vec<Box<dyn FnOnce() + Send>> = vec![
            Box::new(|| {
                *parked.lock().unwrap() = Some(weave::thread::current());
                weave::thread::park();
                unsafe {
                    let _ = *cell.get();
                }
            }),
            Box::new(|| {
                unsafe { *cell.get() = 9 };
                loop {
                    if let Some(t) = parked.lock().unwrap().take() {
                        t.unpark();
                        break;
                    }
                    weave::thread::yield_now();
                }
            }),
        ];
        let _ = weave::thread::scope_join(tasks);
    });
    out.assert_clean("park/unpark edge");
}

/// Ordering overrides: a clean Release store weakened to Relaxed via
/// the mutation table must produce a race whose report names the
/// mutation label.
#[test]
fn ordering_override_injects_named_race() {
    const SITE: &str = "test.flag.publish";
    let run = |overrides: Vec<(String, Ordering)>| {
        explore(&Config { overrides, ..cfg() }, || {
            let cell = UnsafeCell::new(0u64);
            let flag = AtomicBool::new(false);
            let tasks: Vec<Box<dyn FnOnce() + Send>> = vec![
                Box::new(|| {
                    unsafe { *cell.get() = 1 };
                    flag.store(true, weave::mutation::resolve(SITE, Ordering::Release));
                }),
                Box::new(|| {
                    if flag.load(Ordering::Acquire) {
                        unsafe {
                            let _ = *cell.get();
                        }
                    }
                }),
            ];
            let _ = weave::thread::scope_join(tasks);
        })
    };
    run(Vec::new()).assert_clean("unmutated publish");
    let mutated = run(vec![(SITE.to_string(), Ordering::Relaxed)]);
    let f = mutated.expect_failure("mutated publish");
    assert_eq!(f.kind, FailureKind::DataRace);
    assert!(
        f.message.contains(SITE),
        "failure must name the mutated site: {}",
        f.message
    );
}

/// hb_assert: holds when the barrier edge exists, fails (as
/// HbViolation) when the claimed edge is absent.
#[test]
fn hb_assert_checks_ownership_claims() {
    let out = explore(&cfg(), || {
        let cell = UnsafeCell::new(0u64);
        let flag = AtomicBool::new(false);
        let tasks: Vec<Box<dyn FnOnce() + Send>> = vec![
            Box::new(|| {
                unsafe { *cell.get() = 3 };
                flag.store(true, Ordering::Release);
            }),
            Box::new(|| {
                if flag.load(Ordering::Acquire) {
                    cell.hb_assert("writer ordered before checker via flag");
                }
            }),
        ];
        let _ = weave::thread::scope_join(tasks);
    });
    out.assert_clean("hb_assert with edge");

    let out = explore(&cfg(), || {
        let cell = UnsafeCell::new(0u64);
        let tasks: Vec<Box<dyn FnOnce() + Send>> = vec![
            Box::new(|| unsafe { *cell.get() = 3 }),
            Box::new(|| cell.hb_assert("no edge exists — must fail")),
        ];
        let _ = weave::thread::scope_join(tasks);
    });
    let f = out.expect_failure("hb_assert without edge");
    assert_eq!(f.kind, FailureKind::HbViolation);
}

/// Outside an exploration every primitive passes through to std: this
/// test exercises them on a plain test thread.
#[test]
fn passthrough_outside_exploration() {
    let flag = AtomicBool::new(false);
    flag.store(true, Ordering::Release);
    assert!(flag.load(Ordering::Acquire));
    let m = Mutex::new(5u32);
    *m.lock().unwrap() += 1;
    assert_eq!(*m.lock().unwrap(), 6);
    let cv = Condvar::new();
    let (g, res) = cv
        .wait_timeout(m.lock().unwrap(), std::time::Duration::from_millis(1))
        .unwrap();
    assert!(res.timed_out());
    drop(g);
    let cell = UnsafeCell::new(1);
    unsafe { *cell.get() = 2 };
    cell.hb_assert("no-op outside the model");
    let t0 = weave::time::Instant::now();
    assert!(t0.elapsed() < std::time::Duration::from_secs(5));
    let results = weave::thread::scope_join(vec![|| 1u32, || 2u32]);
    let sum: u32 = results.into_iter().map(|r| r.unwrap()).sum();
    assert_eq!(sum, 3);
    assert_eq!(
        weave::mutation::resolve("any.site", Ordering::AcqRel),
        Ordering::AcqRel
    );
}

/// Random walks explore too: a race found only through preemption
/// shows up in walk mode even with DFS disabled.
#[test]
fn random_walks_find_races() {
    let out = explore(
        &Config {
            max_executions: 1, // effectively no DFS beyond the first run
            random_walks: 300,
            seed: 0xB5F,
            ..Config::default()
        },
        || {
            let cell = UnsafeCell::new(0u64);
            let tasks: Vec<Box<dyn FnOnce() + Send>> = vec![
                Box::new(|| unsafe { *cell.get() = 1 }),
                Box::new(|| unsafe { *cell.get() = 2 }),
            ];
            let _ = weave::thread::scope_join(tasks);
        },
    );
    let f = out.expect_failure("unsynchronized writers");
    assert_eq!(f.kind, FailureKind::DataRace);
}

/// Read accesses (`get_read`) race with unordered writes but not with
/// each other: many released readers of one published value is clean,
/// while a reader concurrent with the writer is still caught.
#[test]
fn concurrent_reads_are_clean_but_read_write_races() {
    // Clean: writer publishes via Release, three readers all Acquire
    // then read concurrently — reads don't conflict with reads.
    let out = explore(&cfg(), || {
        let cell = UnsafeCell::new(0u64);
        let flag = AtomicBool::new(false);
        let mut tasks: Vec<Box<dyn FnOnce() + Send>> = vec![Box::new(|| {
            // SAFETY: model-checked publication protocol.
            unsafe { *cell.get() = 7 };
            flag.store(true, Ordering::Release);
        })];
        for _ in 0..2 {
            tasks.push(Box::new(|| {
                if flag.load(Ordering::Acquire) {
                    // SAFETY: ordered after the write by the Acquire load.
                    assert_eq!(unsafe { *cell.get_read() }, 7);
                }
            }));
        }
        weave::thread::scope_join(tasks)
            .into_iter()
            .for_each(|r| r.unwrap());
    });
    out.assert_clean("concurrent acquire-ordered readers");
    assert!(out.stats.exhausted);

    // Racy: same shape but the reader ignores the flag.
    let out = explore(&cfg(), || {
        let cell = UnsafeCell::new(0u64);
        let tasks: Vec<Box<dyn FnOnce() + Send>> = vec![
            // SAFETY: deliberately wrong — that's the test.
            Box::new(|| unsafe { *cell.get() = 7 }),
            Box::new(|| {
                let _ = unsafe { *cell.get_read() };
            }),
        ];
        weave::thread::scope_join(tasks)
            .into_iter()
            .for_each(|r| r.unwrap());
    });
    let f = out.expect_failure("unordered read/write must race");
    assert_eq!(f.kind, FailureKind::DataRace);

    // Racy the other way: a write must be ordered after prior reads.
    let out = explore(&cfg(), || {
        let cell = UnsafeCell::new(0u64);
        let flag = AtomicBool::new(false);
        let tasks: Vec<Box<dyn FnOnce() + Send>> = vec![
            Box::new(|| {
                let _ = unsafe { *cell.get_read() };
                flag.store(true, Ordering::Relaxed);
            }),
            Box::new(|| {
                if flag.load(Ordering::Relaxed) {
                    // SAFETY: deliberately unordered with the read.
                    unsafe { *cell.get() = 9 };
                }
            }),
        ];
        weave::thread::scope_join(tasks)
            .into_iter()
            .for_each(|r| r.unwrap());
    });
    let f = out.expect_failure("write after unordered read must race");
    assert_eq!(f.kind, FailureKind::DataRace);
}
