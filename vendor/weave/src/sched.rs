//! The controlled scheduler: one OS thread runs at a time, every
//! synchronization operation is a *decision point*, and the choice of
//! which thread runs next is driven either by a depth-first enumerator
//! (bounded-preemption systematic exploration) or a seeded random walk.
//!
//! Threads participating in a model execution are real OS threads; the
//! scheduler serializes them with one mutex + condvar: exactly one
//! thread owns the "active" token, and every blocking primitive parks
//! its caller until the scheduler hands the token back. Because real
//! primitives execute underneath, values are always coherent — the
//! checker detects *ordering* bugs (missing happens-before edges) via
//! vector clocks, the way a happens-before race detector does, while
//! the enumerator supplies the adversarial interleavings.
//!
//! ## Decision points and exploration
//!
//! Every atomic operation, lock acquisition, condvar wait, spawn,
//! join, yield, sleep, and spin hint yields to the scheduler first.
//! The enabled set at a decision point is: every runnable thread
//! (a `Resume` transition), plus — for threads blocked with a
//! deadline — a `Timeout` transition. Timeouts are *lazy* by default
//! (enabled only when nothing else can run, modeling "timeouts are
//! slow compared to healthy progress"); [`Config::eager_timeouts`]
//! makes them compete with normal transitions so a watchdog firing
//! can race a healthy release.
//!
//! The DFS enumerator replays a chosen prefix of decisions and takes
//! the default continuation after it (stay on the current thread when
//! possible — the non-preemptive schedule), then backtracks to the
//! deepest decision with an unexplored alternative whose preemption
//! count stays within [`Config::preemption_bound`]. This is the
//! classic bounded-preemption reduction: most concurrency bugs
//! manifest with very few preemptions, and the bound turns an
//! exponential tree into a polynomial one.

use crate::clock::VClock;
use std::panic::Location;
use std::sync::atomic::{AtomicU64, Ordering as StdOrdering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};

/// Panic payload used to tear an execution down after a failure has
/// been recorded. User code may `catch_unwind` it mid-flight; every
/// subsequent scheduler interaction re-raises it until the thread
/// exits.
pub(crate) struct ModelAbort;

/// Exploration configuration.
#[derive(Debug, Clone)]
pub struct Config {
    /// Maximum preemptive context switches per execution explored by
    /// the DFS enumerator (`None` = unbounded). A switch is preemptive
    /// when the previously running thread was still runnable.
    pub preemption_bound: Option<usize>,
    /// Hard cap on DFS executions; hitting it ends exploration with
    /// `exhausted = false`.
    pub max_executions: usize,
    /// Seeded random-walk executions run after (or instead of) DFS.
    pub random_walks: usize,
    /// Seed for the random walks (printed in reports for replay).
    pub seed: u64,
    /// Per-execution cap on decision points; exceeding it reports a
    /// livelock (a non-terminating spin loop shows up here).
    pub max_steps: usize,
    /// Consecutive `spin_loop` hints by one thread before the checker
    /// reports a non-terminating spin loop.
    pub max_spins: usize,
    /// What `available_parallelism()` reports inside the model — the
    /// knob that drives spin-vs-park policy scenarios.
    pub cores: usize,
    /// Make `Timeout` transitions compete with normal ones instead of
    /// firing only when the system is otherwise stuck.
    pub eager_timeouts: bool,
    /// Memory-ordering mutations: `(site label, weakened ordering)`
    /// consulted by [`crate::mutation::resolve`]. This is how the
    /// mutation tests weaken one ordering at a time without touching
    /// source.
    pub overrides: Vec<(String, std::sync::atomic::Ordering)>,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            preemption_bound: Some(2),
            max_executions: 50_000,
            random_walks: 0,
            seed: 0,
            max_steps: 20_000,
            max_spins: 10_000,
            cores: 64,
            eager_timeouts: false,
            overrides: Vec::new(),
        }
    }
}

/// What kind of defect a failed exploration found.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FailureKind {
    /// Two unordered conflicting accesses to the same `UnsafeCell`.
    DataRace,
    /// An explicit `hb_assert` did not hold.
    HbViolation,
    /// No thread can make progress (includes lost wakeups: a waiter
    /// parked on a condvar nobody will ever signal).
    Deadlock,
    /// The execution exceeded its step or spin budget without
    /// terminating.
    Livelock,
    /// User code panicked (an assertion inside the scenario).
    Panic,
}

impl std::fmt::Display for FailureKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            FailureKind::DataRace => "data race",
            FailureKind::HbViolation => "happens-before violation",
            FailureKind::Deadlock => "deadlock / lost wakeup",
            FailureKind::Livelock => "livelock / non-terminating spin",
            FailureKind::Panic => "panic",
        };
        f.write_str(s)
    }
}

/// A reported defect: what, where, and the exact interleaving that
/// produced it ([`Failure::schedule`] replays it via
/// [`crate::replay`]).
#[derive(Debug, Clone)]
pub struct Failure {
    /// Defect class.
    pub kind: FailureKind,
    /// Human-readable description naming the sites involved.
    pub message: String,
    /// The interleaving trace: one line per decision point, most
    /// recent last.
    pub trace: String,
    /// The decision sequence (index into each decision's enabled set);
    /// feed to [`crate::replay`] to reproduce deterministically.
    pub schedule: Vec<usize>,
    /// Which execution (0-based) of the exploration failed.
    pub execution: usize,
}

impl std::fmt::Display for Failure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "{}: {}", self.kind, self.message)?;
        writeln!(
            f,
            "schedule (execution {}): {:?}",
            self.execution, self.schedule
        )?;
        write!(f, "interleaving trace:\n{}", self.trace)
    }
}

/// Exploration statistics.
#[derive(Debug, Clone, Default)]
pub struct Stats {
    /// Executions (distinct interleavings) actually run.
    pub executions: usize,
    /// True when the DFS frontier was fully drained within the bounds.
    pub exhausted: bool,
    /// Deepest decision sequence observed.
    pub max_depth: usize,
    /// The random-walk seed (for reproducing reports).
    pub seed: u64,
}

/// Result of an exploration: statistics plus the first failure, if any.
#[derive(Debug, Clone)]
pub struct Outcome {
    /// How much was explored.
    pub stats: Stats,
    /// The first defect found, or `None` when every explored
    /// interleaving was clean.
    pub failure: Option<Failure>,
}

impl Outcome {
    /// Panic with the full report if the exploration found a defect.
    pub fn assert_clean(&self, what: &str) {
        if let Some(f) = &self.failure {
            panic!("{what}: model checking failed\n{f}");
        }
    }

    /// The failure, or a panic naming `what` if the exploration was
    /// clean (used by mutation tests, which *expect* a defect).
    pub fn expect_failure(&self, what: &str) -> &Failure {
        self.failure
            .as_ref()
            .unwrap_or_else(|| panic!("{what}: expected the checker to find a defect, but {} interleavings were clean (exhausted: {})", self.stats.executions, self.stats.exhausted))
    }
}

// ---------------------------------------------------------------------
// Execution state
// ---------------------------------------------------------------------

/// What a blocked thread is waiting for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum BlockOn {
    /// Mutex acquisition (object id).
    Mutex(usize),
    /// Condvar wait (object id).
    Condvar(usize),
    /// Joining thread `tid`.
    Join(usize),
    /// `thread::sleep` / a pure timed wait.
    Sleep,
    /// `thread::park` without a pending permit.
    Park,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Status {
    /// Can run (or is running, when it is the active thread).
    Ready,
    /// Blocked until some event marks it ready.
    Blocked(BlockOn),
    /// Blocked, but with a virtual-time deadline: a `Timeout`
    /// transition can wake it.
    Timed(BlockOn, u64),
    Finished,
}

struct ThreadState {
    status: Status,
    clock: VClock,
    /// Set when the last wakeup came from a `Timeout` transition.
    wake_timed_out: bool,
    /// Consecutive `spin_loop` hints with no other operation.
    spin_streak: usize,
    /// `thread::park` permit (an unpark with no parked thread).
    park_permit: bool,
    /// Clock the pending permit's unparker published.
    park_permit_clock: VClock,
    /// Where this thread last blocked (deadlock reports).
    blocked_at: Option<&'static Location<'static>>,
}

/// One entry of the interleaving trace.
struct Event {
    tid: usize,
    desc: &'static str,
    /// Mutation-site label, when the operation carries one.
    label: &'static str,
    site: &'static Location<'static>,
}

/// One recorded decision: enough to replay it and to enumerate its
/// unexplored alternatives under the preemption bound.
struct ChoiceRec {
    chosen: usize,
    enabled: usize,
    /// Whether the previously-active thread was still runnable here.
    /// Any non-default choice at such a point diverges from the fair
    /// schedule and consumes preemption budget (this is what keeps
    /// spin/yield loops from spawning unbounded subtrees).
    prev_runnable: bool,
    /// Cumulative preemptions *including* this decision.
    preemptions: usize,
}

#[derive(Clone)]
enum Driver {
    /// Replay `prefix`, then take default (non-preemptive)
    /// continuations.
    Replay(Vec<usize>),
    /// Uniform random choice, seeded.
    Random(u64),
}

/// A `Resume` or `Timeout` transition in an enabled set.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Transition {
    Resume(usize),
    Timeout(usize, u64),
}

pub(crate) struct ExecState {
    threads: Vec<ThreadState>,
    active: usize,
    steps: usize,
    /// Virtual clock, nanoseconds. Advances one tick per decision and
    /// jumps to the deadline on a `Timeout` transition.
    vnow: u64,
    driver: Driver,
    replay_pos: usize,
    choices: Vec<ChoiceRec>,
    trace: Vec<Event>,
    failure: Option<Failure>,
    aborted: bool,
    /// Mutation-site labels whose ordering override actually fired
    /// (named in failure reports).
    mutations_hit: Vec<&'static str>,
    execution_index: usize,
}

/// Record that an ordering override fired at `label` (deduplicated).
pub(crate) fn note_mutation(st: &mut ExecState, label: &'static str) {
    if !st.mutations_hit.contains(&label) {
        st.mutations_hit.push(label);
    }
}

/// True while the calling thread participates in a model execution.
pub(crate) fn is_active() -> bool {
    CURRENT.with(|c| c.borrow().is_some())
}

/// One model execution: the shared scheduler handle every
/// participating thread holds (via thread-local context).
pub(crate) struct Exec {
    mu: Mutex<ExecState>,
    cv: Condvar,
    pub(crate) cfg: Config,
    /// Generation stamp: per-object metadata tagged with an older
    /// generation is reset on first touch.
    pub(crate) gen: u64,
}

fn lock_state(e: &Exec) -> MutexGuard<'_, ExecState> {
    e.mu.lock().unwrap_or_else(PoisonError::into_inner)
}

static EXEC_GEN: AtomicU64 = AtomicU64::new(1);

// ---------------------------------------------------------------------
// Thread-local context
// ---------------------------------------------------------------------

#[derive(Clone)]
pub(crate) struct Ctx {
    pub(crate) exec: Arc<Exec>,
    pub(crate) tid: usize,
}

thread_local! {
    static CURRENT: std::cell::RefCell<Option<Ctx>> = const { std::cell::RefCell::new(None) };
}

/// The current thread's model context, if it participates in an
/// active execution. `None` ⇒ every primitive passes straight through
/// to `std`.
pub(crate) fn ctx() -> Option<Ctx> {
    CURRENT.with(|c| c.borrow().clone())
}

pub(crate) fn set_ctx(c: Option<Ctx>) {
    CURRENT.with(|cell| *cell.borrow_mut() = c);
}

fn abort_now() -> ! {
    std::panic::panic_any(ModelAbort)
}

// ---------------------------------------------------------------------
// The scheduler
// ---------------------------------------------------------------------

impl Exec {
    fn new(cfg: Config, driver: Driver, execution_index: usize) -> Arc<Exec> {
        let root = ThreadState {
            status: Status::Ready,
            clock: VClock::new(),
            wake_timed_out: false,
            spin_streak: 0,
            park_permit: false,
            park_permit_clock: VClock::new(),
            blocked_at: None,
        };
        Arc::new(Exec {
            mu: Mutex::new(ExecState {
                threads: vec![root],
                active: 0,
                steps: 0,
                vnow: 0,
                driver,
                replay_pos: 0,
                choices: Vec::new(),
                trace: Vec::new(),
                failure: None,
                aborted: false,
                mutations_hit: Vec::new(),
                execution_index,
            }),
            cv: Condvar::new(),
            cfg,
            gen: EXEC_GEN.fetch_add(1, StdOrdering::Relaxed),
        })
    }

    pub(crate) fn virtual_now(&self) -> u64 {
        lock_state(self).vnow
    }

    /// The core decision point. `me` must be the active thread.
    ///
    /// `block`: `None` = plain yield (stay runnable); `Some((what,
    /// deadline))` = park until woken (deadline makes the park
    /// timeout-wakeable). Returns `true` when the wakeup was a
    /// timeout.
    pub(crate) fn switch(
        &self,
        me: usize,
        block: Option<(BlockOn, Option<u64>)>,
        desc: &'static str,
        label: &'static str,
        site: &'static Location<'static>,
        is_spin: bool,
    ) -> bool {
        if std::thread::panicking() {
            // Already unwinding (model teardown or a scenario panic):
            // destructors along the unwind path — census guards, lock
            // guards — must run to completion, not re-enter the
            // scheduler and double-panic. The thread keeps the token
            // until `thread_end` (or `run_once`) hands it onward.
            return false;
        }
        let mut st = lock_state(self);
        if st.aborted {
            drop(st);
            abort_now();
        }
        st.trace.push(Event {
            tid: me,
            desc,
            label,
            site,
        });
        st.steps += 1;
        if st.steps > self.cfg.max_steps {
            self.fail_locked(
                &mut st,
                FailureKind::Livelock,
                format!(
                    "execution exceeded {} decision points without terminating (last op: {desc} by thread {me} at {site})",
                    self.cfg.max_steps
                ),
            );
            drop(st);
            abort_now();
        }
        {
            let t = &mut st.threads[me];
            if is_spin {
                t.spin_streak += 1;
            } else {
                t.spin_streak = 0;
            }
            if t.spin_streak > self.cfg.max_spins {
                let streak = t.spin_streak;
                self.fail_locked(
                    &mut st,
                    FailureKind::Livelock,
                    format!(
                        "thread {me} spun {streak} times without progress at {site} — non-terminating spin loop"
                    ),
                );
                drop(st);
                abort_now();
            }
        }
        match block {
            None => st.threads[me].status = Status::Ready,
            Some((what, deadline)) => {
                st.threads[me].blocked_at = Some(site);
                st.threads[me].status = match deadline {
                    None => Status::Blocked(what),
                    Some(d) => Status::Timed(what, d),
                };
            }
        }
        self.pick_next(&mut st, me, is_spin || desc == "thread.yield");
        // Wait until the token comes back to us (immediately, if we
        // picked ourselves).
        loop {
            if st.aborted {
                drop(st);
                abort_now();
            }
            if st.active == me && st.threads[me].status == Status::Ready {
                let timed_out = std::mem::take(&mut st.threads[me].wake_timed_out);
                return timed_out;
            }
            st = self.cv.wait(st).unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Choose and install the next active thread. Records the decision
    /// for the enumerator. Must be called with the state lock held; on
    /// a dead end records a deadlock and aborts the execution (without
    /// panicking — callable from drop guards).
    fn pick_next(&self, st: &mut ExecState, prev_active: usize, voluntary: bool) {
        if st.aborted {
            self.cv.notify_all();
            return;
        }
        // Order the enabled set so that index 0 is the *default
        // continuation* — then "alternatives > chosen" enumerates every
        // other option and the DFS is complete. Default: stay on the
        // current thread, unless it yielded voluntarily (yield/spin
        // deprioritize it, which is also what keeps spin-wait loops
        // from starving their peers under the default schedule).
        let mut enabled: Vec<Transition> = Vec::new();
        let prev_ready = st.threads[prev_active].status == Status::Ready;
        if prev_ready && !voluntary {
            enabled.push(Transition::Resume(prev_active));
        }
        for (tid, t) in st.threads.iter().enumerate() {
            if tid != prev_active && t.status == Status::Ready {
                enabled.push(Transition::Resume(tid));
            }
        }
        let have_resume = !enabled.is_empty() || prev_ready;
        if self.cfg.eager_timeouts || !have_resume {
            for (tid, t) in st.threads.iter().enumerate() {
                if let Status::Timed(_, d) = t.status {
                    enabled.push(Transition::Timeout(tid, d));
                }
            }
        }
        if prev_ready && voluntary {
            // A voluntary yield (or spin) donates the core, so under
            // eager timeouts a pending deadline outranks re-running
            // the yielder — the default schedule lets a value-polling
            // yield loop terminate instead of spinning forever.
            enabled.push(Transition::Resume(prev_active));
        }
        if enabled.is_empty() {
            if st.threads.iter().all(|t| t.status == Status::Finished) {
                // Clean end of the execution.
                self.cv.notify_all();
                return;
            }
            let mut msg = String::from("no runnable thread; blocked:");
            let mut lost_wakeup = false;
            for (tid, t) in st.threads.iter().enumerate() {
                if let Status::Blocked(what) | Status::Timed(what, _) = t.status {
                    if matches!(what, BlockOn::Condvar(_)) {
                        lost_wakeup = true;
                    }
                    let site = t
                        .blocked_at
                        .map(|l| format!("{}:{}", l.file(), l.line()))
                        .unwrap_or_else(|| "?".into());
                    msg.push_str(&format!(" [thread {tid}: {what:?} at {site}]"));
                }
            }
            if lost_wakeup {
                msg.push_str(" — a condvar waiter nobody will signal (lost wakeup?)");
            }
            self.fail_locked(st, FailureKind::Deadlock, msg);
            return;
        }

        // Decide.
        let prev_runnable = enabled
            .iter()
            .any(|t| *t == Transition::Resume(prev_active));
        let idx = match &mut st.driver {
            Driver::Replay(prefix) => {
                if st.replay_pos < prefix.len() {
                    let i = prefix[st.replay_pos].min(enabled.len() - 1);
                    st.replay_pos += 1;
                    i
                } else {
                    // Default continuation (see enabled-set ordering).
                    0
                }
            }
            Driver::Random(seed) => {
                // splitmix64 stream.
                *seed = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = *seed;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^= z >> 31;
                (z % enabled.len() as u64) as usize
            }
        };
        let preemptive = idx != 0 && prev_runnable;
        let preemptions = st.choices.last().map_or(0, |c| c.preemptions) + usize::from(preemptive);
        st.choices.push(ChoiceRec {
            chosen: idx,
            enabled: enabled.len(),
            prev_runnable,
            preemptions,
        });

        st.vnow += 1;
        match enabled[idx] {
            Transition::Resume(tid) => st.active = tid,
            Transition::Timeout(tid, d) => {
                st.vnow = st.vnow.max(d);
                let t = &mut st.threads[tid];
                t.status = Status::Ready;
                t.wake_timed_out = true;
                st.active = tid;
            }
        }
        self.cv.notify_all();
    }

    /// Record a failure (first one wins), render the trace, and mark
    /// the execution aborted. Never panics.
    pub(crate) fn fail_locked(&self, st: &mut ExecState, kind: FailureKind, message: String) {
        if st.failure.is_none() {
            let mut message = message;
            if !st.mutations_hit.is_empty() {
                message.push_str(&format!(
                    " (ordering mutations in effect: {})",
                    st.mutations_hit.join(", ")
                ));
            }
            let mut trace = String::new();
            // The full interleaving, most recent last; cap the render
            // at the final 120 events to keep reports readable.
            let skip = st.trace.len().saturating_sub(120);
            if skip > 0 {
                trace.push_str(&format!("  … {skip} earlier events elided …\n"));
            }
            for e in &st.trace[skip..] {
                let label = if e.label.is_empty() {
                    String::new()
                } else {
                    format!(" [{}]", e.label)
                };
                trace.push_str(&format!(
                    "  T{} {}{} @ {}:{}\n",
                    e.tid,
                    e.desc,
                    label,
                    e.site.file(),
                    e.site.line()
                ));
            }
            st.failure = Some(Failure {
                kind,
                message,
                trace,
                schedule: st.choices.iter().map(|c| c.chosen).collect(),
                execution: st.execution_index,
            });
        }
        st.aborted = true;
        // Wake everyone so they can unwind.
        for t in &mut st.threads {
            if t.status != Status::Finished {
                t.status = Status::Ready;
            }
        }
        self.cv.notify_all();
    }

    /// Report a failure from the currently active thread and abort.
    pub(crate) fn fail(&self, kind: FailureKind, message: String) -> ! {
        let mut st = lock_state(self);
        self.fail_locked(&mut st, kind, message);
        drop(st);
        abort_now()
    }

    /// Run `f` on the execution state (clock updates, metadata
    /// bookkeeping) without a decision point. The caller must be the
    /// active thread.
    pub(crate) fn with_state<R>(&self, f: impl FnOnce(&mut ExecState) -> R) -> R {
        let mut st = lock_state(self);
        f(&mut st)
    }

    // -- state helpers used by the primitives (all called on the
    //    active thread, under `with_state` or inline) ------------------

    pub(crate) fn clock_of(st: &mut ExecState, tid: usize) -> &mut VClock {
        &mut st.threads[tid].clock
    }

    /// Mark every thread blocked on `what` runnable.
    pub(crate) fn wake_all(st: &mut ExecState, what: BlockOn) {
        for t in &mut st.threads {
            match t.status {
                Status::Blocked(w) | Status::Timed(w, _) if w == what => {
                    t.status = Status::Ready;
                }
                _ => {}
            }
        }
    }

    /// Mark the lowest-tid thread blocked on `what` runnable; returns
    /// its tid.
    pub(crate) fn wake_one(st: &mut ExecState, what: BlockOn) -> Option<usize> {
        for (tid, t) in st.threads.iter_mut().enumerate() {
            match t.status {
                Status::Blocked(w) | Status::Timed(w, _) if w == what => {
                    t.status = Status::Ready;
                    return Some(tid);
                }
                _ => {}
            }
        }
        None
    }

    pub(crate) fn vnow(st: &ExecState) -> u64 {
        st.vnow
    }

    /// Consume a pending park permit (joining its unparker's clock);
    /// returns whether one was pending.
    pub(crate) fn try_consume_permit(st: &mut ExecState, tid: usize) -> bool {
        if !st.threads[tid].park_permit {
            return false;
        }
        st.threads[tid].park_permit = false;
        let pc = std::mem::take(&mut st.threads[tid].park_permit_clock);
        st.threads[tid].clock.join(&pc);
        st.threads[tid].clock.tick(tid);
        true
    }

    /// Unpark `target` (waking it, or leaving a permit), publishing
    /// `from`'s clock as the wakeup edge.
    pub(crate) fn unpark(st: &mut ExecState, from: usize, target: usize) {
        st.threads[from].clock.tick(from);
        let fc = st.threads[from].clock.clone();
        let t = &mut st.threads[target];
        match t.status {
            Status::Blocked(BlockOn::Park) | Status::Timed(BlockOn::Park, _) => {
                t.clock.join(&fc);
                t.status = Status::Ready;
            }
            _ => {
                t.park_permit = true;
                t.park_permit_clock.join(&fc);
            }
        }
    }

    // -- thread lifecycle ---------------------------------------------

    /// Register a child thread: the child is runnable from the spawn
    /// point on, and inherits the parent's clock (the spawn edge).
    pub(crate) fn register_thread(&self, parent: usize) -> usize {
        let mut st = lock_state(self);
        let mut clock = st.threads[parent].clock.clone();
        let tid = st.threads.len();
        clock.tick(tid);
        st.threads[parent].clock.tick(parent);
        st.threads.push(ThreadState {
            status: Status::Ready,
            clock,
            wake_timed_out: false,
            spin_streak: 0,
            park_permit: false,
            park_permit_clock: VClock::new(),
            blocked_at: None,
        });
        tid
    }

    /// Called by a freshly spawned OS thread: wait until the scheduler
    /// hands it the token for the first time.
    pub(crate) fn thread_begin(&self, me: usize) {
        let mut st = lock_state(self);
        loop {
            if st.aborted {
                drop(st);
                abort_now();
            }
            if st.active == me && st.threads[me].status == Status::Ready {
                return;
            }
            st = self.cv.wait(st).unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Called when a model thread's closure returns or unwinds. Wakes
    /// joiners and hands the token onward. Never panics (runs in a
    /// drop guard).
    pub(crate) fn thread_end(&self, me: usize) {
        let mut st = lock_state(self);
        st.threads[me].clock.tick(me);
        st.threads[me].status = Status::Finished;
        Exec::wake_all(&mut st, BlockOn::Join(me));
        if st.active == me {
            self.pick_next(&mut st, me, false);
        }
    }

    /// Join edge: the joiner's clock absorbs the target's final clock.
    pub(crate) fn join_thread(&self, me: usize, target: usize, site: &'static Location<'static>) {
        loop {
            {
                let mut st = lock_state(self);
                if st.aborted {
                    drop(st);
                    abort_now();
                }
                if st.threads[target].status == Status::Finished {
                    let target_clock = st.threads[target].clock.clone();
                    st.threads[me].clock.join(&target_clock);
                    st.threads[me].clock.tick(me);
                    return;
                }
            }
            self.switch(
                me,
                Some((BlockOn::Join(target), None)),
                "join",
                "",
                site,
                false,
            );
        }
    }
}

// ---------------------------------------------------------------------
// Exploration driver
// ---------------------------------------------------------------------

/// Serializes explorations process-wide: model objects may be
/// `static`s shared between tests, and their per-execution metadata
/// must never be touched by two explorations at once.
static EXPLORE_LOCK: Mutex<()> = Mutex::new(());

/// Suppress the default panic-hook noise for [`ModelAbort`] teardown
/// panics while an exploration runs.
fn with_quiet_aborts<R>(f: impl FnOnce() -> R) -> R {
    let prev = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        if info.payload().downcast_ref::<ModelAbort>().is_none() {
            // Not ours: keep the location line, drop the backtrace
            // advice (explorations intentionally panic a lot).
            eprintln!("{info}");
        } else if std::env::var_os("WEAVE_TRACE_ABORTS").is_some() {
            eprintln!("[weave] ModelAbort at {:?}", info.location());
        }
    }));
    let out = f();
    let _ = std::panic::take_hook();
    std::panic::set_hook(prev);
    out
}

struct RunResult {
    choices: Vec<ChoiceRec>,
    failure: Option<Failure>,
}

/// Run one execution of `f` under `driver`.
fn run_once(cfg: &Config, driver: Driver, index: usize, f: &(dyn Fn() + Sync)) -> RunResult {
    let exec = Exec::new(cfg.clone(), driver, index);
    set_ctx(Some(Ctx {
        exec: Arc::clone(&exec),
        tid: 0,
    }));
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(f));
    set_ctx(None);
    let mut st = lock_state(&exec);
    if let Err(payload) = result {
        if payload.downcast_ref::<ModelAbort>().is_none() && st.failure.is_none() {
            let msg = payload
                .downcast_ref::<&str>()
                .map(|s| s.to_string())
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "panic with non-string payload".into());
            exec.fail_locked(&mut st, FailureKind::Panic, msg);
        }
    }
    RunResult {
        choices: std::mem::take(&mut st.choices),
        failure: st.failure.clone(),
    }
}

/// Find the deepest decision in `recs` with an unexplored alternative
/// permitted by the preemption bound, and return the new prefix.
fn next_prefix(recs: &[ChoiceRec], bound: Option<usize>) -> Option<Vec<usize>> {
    for i in (0..recs.len()).rev() {
        let r = &recs[i];
        let before = if i == 0 { 0 } else { recs[i - 1].preemptions };
        for alt in (r.chosen + 1)..r.enabled {
            // alt >= 1 is always a non-default choice.
            let preemptive = r.prev_runnable;
            if let Some(b) = bound {
                if before + usize::from(preemptive) > b {
                    continue;
                }
            }
            let mut prefix: Vec<usize> = recs[..i].iter().map(|c| c.chosen).collect();
            prefix.push(alt);
            return Some(prefix);
        }
    }
    None
}

/// Systematically explore interleavings of `f`: bounded-preemption DFS
/// first, then `cfg.random_walks` seeded random walks. Stops at the
/// first failure.
pub fn explore(cfg: &Config, f: impl Fn() + Sync) -> Outcome {
    let _serial = EXPLORE_LOCK.lock().unwrap_or_else(PoisonError::into_inner);
    with_quiet_aborts(|| {
        let mut stats = Stats {
            seed: cfg.seed,
            ..Stats::default()
        };
        let mut prefix: Vec<usize> = Vec::new();
        loop {
            let r = run_once(cfg, Driver::Replay(prefix.clone()), stats.executions, &f);
            stats.executions += 1;
            stats.max_depth = stats.max_depth.max(r.choices.len());
            if r.failure.is_some() {
                return Outcome {
                    stats,
                    failure: r.failure,
                };
            }
            match next_prefix(&r.choices, cfg.preemption_bound) {
                Some(p) if stats.executions < cfg.max_executions => prefix = p,
                Some(_) => break, // budget exhausted with work left
                None => {
                    stats.exhausted = true;
                    break;
                }
            }
        }
        for walk in 0..cfg.random_walks {
            let seed = cfg
                .seed
                .wrapping_add(walk as u64)
                .wrapping_mul(0x2545_F491_4F6C_DD1D);
            let r = run_once(cfg, Driver::Random(seed | 1), stats.executions, &f);
            stats.executions += 1;
            stats.max_depth = stats.max_depth.max(r.choices.len());
            if r.failure.is_some() {
                return Outcome {
                    stats,
                    failure: r.failure,
                };
            }
        }
        Outcome {
            stats,
            failure: None,
        }
    })
}

/// Replay one recorded schedule (from [`Failure::schedule`])
/// deterministically.
pub fn replay(cfg: &Config, schedule: &[usize], f: impl Fn() + Sync) -> Outcome {
    let _serial = EXPLORE_LOCK.lock().unwrap_or_else(PoisonError::into_inner);
    with_quiet_aborts(|| {
        let r = run_once(cfg, Driver::Replay(schedule.to_vec()), 0, &f);
        Outcome {
            stats: Stats {
                executions: 1,
                exhausted: false,
                max_depth: r.choices.len(),
                seed: cfg.seed,
            },
            failure: r.failure,
        }
    })
}

// ---------------------------------------------------------------------
// Per-object metadata plumbing
// ---------------------------------------------------------------------

/// Metadata attached lazily to a model object (atomic, mutex, cell).
/// Tagged with the execution generation; stale metadata is reset on
/// first touch of a new execution. All access happens on the active
/// thread, serialized by the scheduler, under the exec state lock.
pub(crate) struct Meta<T> {
    ptr: std::sync::atomic::AtomicPtr<(u64, T)>,
}

impl<T: Default> Meta<T> {
    pub(crate) const fn new() -> Self {
        Meta {
            ptr: std::sync::atomic::AtomicPtr::new(std::ptr::null_mut()),
        }
    }

    /// Get the metadata for the current execution, resetting stale
    /// state from a previous one. Must only be called while the state
    /// lock is held (i.e. inside `Exec::with_state`).
    #[allow(clippy::mut_from_ref)]
    pub(crate) fn get(&self, gen: u64) -> &mut T {
        let mut p = self.ptr.load(StdOrdering::Acquire);
        if p.is_null() {
            let fresh = Box::into_raw(Box::new((gen, T::default())));
            match self.ptr.compare_exchange(
                std::ptr::null_mut(),
                fresh,
                StdOrdering::AcqRel,
                StdOrdering::Acquire,
            ) {
                Ok(_) => p = fresh,
                Err(existing) => {
                    // SAFETY: we just created `fresh` and nobody else
                    // saw it.
                    drop(unsafe { Box::from_raw(fresh) });
                    p = existing;
                }
            }
        }
        // SAFETY: the pointer is live for the life of `self` (freed
        // only in Drop) and mutation is serialized by the exploration
        // lock + scheduler token.
        let slot = unsafe { &mut *p };
        if slot.0 != gen {
            slot.0 = gen;
            slot.1 = T::default();
        }
        &mut slot.1
    }
}

impl<T> Drop for Meta<T> {
    fn drop(&mut self) {
        let p = self.ptr.load(StdOrdering::Acquire);
        if !p.is_null() {
            // SAFETY: exclusive in Drop; allocated via Box above.
            drop(unsafe { Box::from_raw(p) });
        }
    }
}
