//! Vector clocks: the partial order the race detector checks against.
//!
//! Every model thread carries a [`VClock`]; every synchronization
//! object (atomic, mutex, condvar-via-mutex, spawn/join edge) carries
//! the clock its last release-class operation published. An acquire
//! joins the object's clock into the thread's; a release joins the
//! thread's into the object's. Two accesses to the same location are
//! *ordered* iff one's clock entry for the other's thread is at least
//! the other's timestamp at access time — otherwise they race.

/// A vector clock over model thread ids. Index = thread id, value =
/// that thread's logical timestamp. Missing entries are zero.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct VClock {
    ticks: Vec<u64>,
}

impl VClock {
    /// The zero clock (happens-before everything).
    pub fn new() -> Self {
        VClock::default()
    }

    /// This clock's entry for `tid`.
    pub fn get(&self, tid: usize) -> u64 {
        self.ticks.get(tid).copied().unwrap_or(0)
    }

    /// Set this clock's entry for `tid`.
    pub fn set(&mut self, tid: usize, v: u64) {
        if self.ticks.len() <= tid {
            self.ticks.resize(tid + 1, 0);
        }
        self.ticks[tid] = v;
    }

    /// Advance `tid`'s own component (a local step).
    pub fn tick(&mut self, tid: usize) {
        let v = self.get(tid) + 1;
        self.set(tid, v);
    }

    /// Pointwise maximum: after `self.join(other)`, everything ordered
    /// before `other` is ordered before `self`.
    pub fn join(&mut self, other: &VClock) {
        if self.ticks.len() < other.ticks.len() {
            self.ticks.resize(other.ticks.len(), 0);
        }
        for (s, o) in self.ticks.iter_mut().zip(&other.ticks) {
            *s = (*s).max(*o);
        }
    }

    /// Forget everything: the clock becomes ⊥ (published-by-nobody).
    /// Used when a plain store breaks an atomic's release sequence.
    pub fn clear(&mut self) {
        self.ticks.clear();
    }

    /// True when the event stamped `(tid, at)` happens-before (or is)
    /// the point this clock describes: the clock has seen `tid` reach
    /// at least `at`.
    pub fn covers(&self, tid: usize, at: u64) -> bool {
        self.get(tid) >= at
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn join_is_pointwise_max() {
        let mut a = VClock::new();
        a.set(0, 3);
        a.set(2, 1);
        let mut b = VClock::new();
        b.set(0, 1);
        b.set(1, 5);
        a.join(&b);
        assert_eq!(a.get(0), 3);
        assert_eq!(a.get(1), 5);
        assert_eq!(a.get(2), 1);
    }

    #[test]
    fn covers_tracks_happens_before() {
        let mut a = VClock::new();
        a.set(1, 4);
        assert!(a.covers(1, 4));
        assert!(a.covers(1, 3));
        assert!(!a.covers(1, 5));
        assert!(a.covers(7, 0), "everything covers the zero event");
    }
}
