//! Model-aware `Mutex` + `Condvar`, mirroring the `std::sync` API
//! (including poisoning).
//!
//! Inside an exploration, lock ownership is tracked by the scheduler:
//! a contended `lock()` parks the thread as a model transition rather
//! than an OS wait, every acquisition/notification is a decision
//! point, and the lock carries a vector clock (an acquire joins the
//! clock of *all* prior critical sections — lock order is total, so
//! this is the exact happens-before edge). Condvar waits release the
//! lock and park atomically with respect to the scheduler, so a
//! notify that finds no parked waiter is genuinely lost — which is
//! how lost-wakeup bugs become reproducible deadlock reports.
//!
//! The user data always lives in a real `std::sync::Mutex`; model
//! ownership guarantees `try_lock` on it never contends, and poison
//! semantics fall out of `std` unchanged.

use crate::clock::VClock;
use crate::sched::{ctx, BlockOn, Ctx, Exec, Meta};
use std::panic::Location;
use std::sync::atomic::{AtomicUsize, Ordering as StdOrdering};
use std::sync::{LockResult, PoisonError, TryLockError, TryLockResult};
use std::time::Duration;

/// Model-object ids (shared counter for mutexes and condvars; the
/// `BlockOn` variant disambiguates).
static NEXT_OBJECT: AtomicUsize = AtomicUsize::new(1);

fn fresh_id() -> usize {
    NEXT_OBJECT.fetch_add(1, StdOrdering::Relaxed)
}

#[derive(Default)]
struct MutexMeta {
    id: Option<usize>,
    owner: Option<usize>,
    /// Join of every prior unlocker's clock.
    clock: VClock,
}

#[derive(Default)]
struct CvMeta {
    id: Option<usize>,
    /// Join of every notifier's clock.
    clock: VClock,
}

/// Model-aware drop-in for `std::sync::Mutex`.
pub struct Mutex<T: ?Sized> {
    meta: Meta<MutexMeta>,
    std: std::sync::Mutex<T>,
}

/// Guard mirroring `std::sync::MutexGuard`.
pub struct MutexGuard<'a, T: ?Sized> {
    lock: &'a Mutex<T>,
    std: Option<std::sync::MutexGuard<'a, T>>,
    /// Present when the guard was acquired inside a model execution.
    model: Option<Ctx>,
}

impl<T> Mutex<T> {
    /// Create a new mutex (usable in `const`/`static` position).
    pub const fn new(t: T) -> Mutex<T> {
        Mutex {
            meta: Meta::new(),
            std: std::sync::Mutex::new(t),
        }
    }

    /// Consume the mutex, returning the data.
    pub fn into_inner(self) -> LockResult<T> {
        self.std.into_inner()
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Mutable access when exclusively borrowed (no decision point).
    pub fn get_mut(&mut self) -> LockResult<&mut T> {
        self.std.get_mut()
    }

    /// Whether the mutex is poisoned.
    pub fn is_poisoned(&self) -> bool {
        self.std.is_poisoned()
    }

    /// Acquire model ownership, parking until it is free. Must run on
    /// the active model thread.
    fn model_acquire(&self, c: &Ctx, site: &'static Location<'static>) {
        loop {
            let (got, id) = c.exec.with_state(|st| {
                let meta = self.meta.get(c.exec.gen);
                let id = *meta.id.get_or_insert_with(fresh_id);
                if meta.owner.is_none() {
                    meta.owner = Some(c.tid);
                    let rel = meta.clock.clone();
                    let tc = Exec::clock_of(st, c.tid);
                    tc.join(&rel);
                    tc.tick(c.tid);
                    (true, id)
                } else {
                    (false, id)
                }
            });
            if got {
                return;
            }
            c.exec.switch(
                c.tid,
                Some((BlockOn::Mutex(id), None)),
                "mutex.blocked",
                "",
                site,
                false,
            );
        }
    }

    /// Release model ownership and wake waiters. Must run on the
    /// active model thread, *after* the `std` guard is dropped.
    fn model_release(&self, c: &Ctx) {
        c.exec.with_state(|st| {
            Exec::clock_of(st, c.tid).tick(c.tid);
            let tc = Exec::clock_of(st, c.tid).clone();
            let meta = self.meta.get(c.exec.gen);
            meta.owner = None;
            meta.clock.join(&tc);
            if let Some(id) = meta.id {
                Exec::wake_all(st, BlockOn::Mutex(id));
            }
        });
    }

    /// Wrap the (guaranteed-uncontended) `std` lock into a guard,
    /// preserving poison.
    fn finish_model_lock(&self, c: Ctx) -> LockResult<MutexGuard<'_, T>> {
        match self.std.try_lock() {
            Ok(g) => Ok(MutexGuard {
                lock: self,
                std: Some(g),
                model: Some(c),
            }),
            Err(TryLockError::Poisoned(pe)) => Err(PoisonError::new(MutexGuard {
                lock: self,
                std: Some(pe.into_inner()),
                model: Some(c),
            })),
            Err(TryLockError::WouldBlock) => {
                unreachable!("model owns the mutex but the std lock is contended")
            }
        }
    }

    #[track_caller]
    pub fn lock(&self) -> LockResult<MutexGuard<'_, T>> {
        match ctx() {
            None => match self.std.lock() {
                Ok(g) => Ok(MutexGuard {
                    lock: self,
                    std: Some(g),
                    model: None,
                }),
                Err(pe) => Err(PoisonError::new(MutexGuard {
                    lock: self,
                    std: Some(pe.into_inner()),
                    model: None,
                })),
            },
            Some(c) => {
                let site = Location::caller();
                c.exec.switch(c.tid, None, "mutex.lock", "", site, false);
                self.model_acquire(&c, site);
                self.finish_model_lock(c)
            }
        }
    }

    #[track_caller]
    pub fn try_lock(&self) -> TryLockResult<MutexGuard<'_, T>> {
        match ctx() {
            None => match self.std.try_lock() {
                Ok(g) => Ok(MutexGuard {
                    lock: self,
                    std: Some(g),
                    model: None,
                }),
                Err(TryLockError::Poisoned(pe)) => {
                    Err(TryLockError::Poisoned(PoisonError::new(MutexGuard {
                        lock: self,
                        std: Some(pe.into_inner()),
                        model: None,
                    })))
                }
                Err(TryLockError::WouldBlock) => Err(TryLockError::WouldBlock),
            },
            Some(c) => {
                let site = Location::caller();
                c.exec
                    .switch(c.tid, None, "mutex.try_lock", "", site, false);
                let got = c.exec.with_state(|st| {
                    let meta = self.meta.get(c.exec.gen);
                    meta.id.get_or_insert_with(fresh_id);
                    if meta.owner.is_none() {
                        meta.owner = Some(c.tid);
                        let rel = meta.clock.clone();
                        let tc = Exec::clock_of(st, c.tid);
                        tc.join(&rel);
                        tc.tick(c.tid);
                        true
                    } else {
                        false
                    }
                });
                if got {
                    self.finish_model_lock(c).map_err(TryLockError::Poisoned)
                } else {
                    Err(TryLockError::WouldBlock)
                }
            }
        }
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: std::fmt::Debug> std::fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.std.fmt(f)
    }
}

impl<T: ?Sized> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.std.as_deref().expect("guard already released")
    }
}

impl<T: ?Sized> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.std.as_deref_mut().expect("guard already released")
    }
}

impl<T: ?Sized> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        // Release the real lock first, then the model ownership —
        // waiters retry only after the scheduler hands them the token,
        // which cannot happen before this Drop returns.
        drop(self.std.take());
        if let Some(c) = self.model.take() {
            self.lock.model_release(&c);
        }
    }
}

/// Result of a timed condvar wait (mirrors
/// `std::sync::WaitTimeoutResult`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaitTimeoutResult {
    timed_out: bool,
}

impl WaitTimeoutResult {
    /// Whether the wait ended because the timeout elapsed.
    pub fn timed_out(&self) -> bool {
        self.timed_out
    }
}

/// Model-aware drop-in for `std::sync::Condvar`.
pub struct Condvar {
    meta: Meta<CvMeta>,
    std: std::sync::Condvar,
}

impl Default for Condvar {
    fn default() -> Self {
        Condvar::new()
    }
}

impl Condvar {
    /// Create a new condvar (usable in `const`/`static` position).
    pub const fn new() -> Condvar {
        Condvar {
            meta: Meta::new(),
            std: std::sync::Condvar::new(),
        }
    }

    #[track_caller]
    pub fn wait<'a, T>(&self, guard: MutexGuard<'a, T>) -> LockResult<MutexGuard<'a, T>> {
        match ctx() {
            None => {
                let (lock, std_guard) = dismantle(guard);
                match self.std.wait(std_guard) {
                    Ok(g) => Ok(MutexGuard {
                        lock,
                        std: Some(g),
                        model: None,
                    }),
                    Err(pe) => Err(PoisonError::new(MutexGuard {
                        lock,
                        std: Some(pe.into_inner()),
                        model: None,
                    })),
                }
            }
            Some(c) => self
                .model_wait(guard, None, c)
                .map(|(g, _)| g)
                .map_err(|pe| {
                    let (g, _) = pe.into_inner();
                    PoisonError::new(g)
                }),
        }
    }

    #[track_caller]
    pub fn wait_timeout<'a, T>(
        &self,
        guard: MutexGuard<'a, T>,
        dur: Duration,
    ) -> LockResult<(MutexGuard<'a, T>, WaitTimeoutResult)> {
        match ctx() {
            None => {
                let (lock, std_guard) = dismantle(guard);
                match self.std.wait_timeout(std_guard, dur) {
                    Ok((g, r)) => Ok((
                        MutexGuard {
                            lock,
                            std: Some(g),
                            model: None,
                        },
                        WaitTimeoutResult {
                            timed_out: r.timed_out(),
                        },
                    )),
                    Err(pe) => {
                        let (g, r) = pe.into_inner();
                        Err(PoisonError::new((
                            MutexGuard {
                                lock,
                                std: Some(g),
                                model: None,
                            },
                            WaitTimeoutResult {
                                timed_out: r.timed_out(),
                            },
                        )))
                    }
                }
            }
            Some(c) => self
                .model_wait(guard, Some(dur), c)
                .map(|(g, t)| (g, WaitTimeoutResult { timed_out: t }))
                .map_err(|pe| {
                    let (g, t) = pe.into_inner();
                    PoisonError::new((g, WaitTimeoutResult { timed_out: t }))
                }),
        }
    }

    /// Shared model wait path. Releases the lock and parks atomically
    /// with respect to the scheduler, wakes on notify or (with a
    /// deadline) a timeout transition, then reacquires.
    #[track_caller]
    fn model_wait<'a, T>(
        &self,
        guard: MutexGuard<'a, T>,
        dur: Option<Duration>,
        c: Ctx,
    ) -> LockResult<(MutexGuard<'a, T>, bool)> {
        let site = Location::caller();
        let (lock, std_guard) = dismantle(guard);
        drop(std_guard);
        let (cv_id, deadline) = c.exec.with_state(|st| {
            let meta = self.meta.get(c.exec.gen);
            let id = *meta.id.get_or_insert_with(fresh_id);
            let deadline = dur.map(|d| Exec::vnow(st).saturating_add(d.as_nanos() as u64));
            (id, deadline)
        });
        lock.model_release(&c);
        let timed_out = c.exec.switch(
            c.tid,
            Some((BlockOn::Condvar(cv_id), deadline)),
            "condvar.wait",
            "",
            site,
            false,
        );
        if !timed_out {
            // Synchronize with the notifier. A timeout wakeup carries
            // no happens-before edge — exactly why data published
            // "before notify" is not visible to a timed-out waiter.
            c.exec.with_state(|st| {
                let cv_clock = self.meta.get(c.exec.gen).clock.clone();
                Exec::clock_of(st, c.tid).join(&cv_clock);
            });
        }
        lock.model_acquire(&c, site);
        match lock.finish_model_lock(c) {
            Ok(g) => Ok((g, timed_out)),
            Err(pe) => Err(PoisonError::new((pe.into_inner(), timed_out))),
        }
    }

    #[track_caller]
    pub fn notify_one(&self) {
        match ctx() {
            None => self.std.notify_one(),
            Some(c) => {
                let site = Location::caller();
                c.exec
                    .switch(c.tid, None, "condvar.notify_one", "", site, false);
                c.exec.with_state(|st| {
                    Exec::clock_of(st, c.tid).tick(c.tid);
                    let tc = Exec::clock_of(st, c.tid).clone();
                    let meta = self.meta.get(c.exec.gen);
                    meta.clock.join(&tc);
                    if let Some(id) = meta.id {
                        Exec::wake_one(st, BlockOn::Condvar(id));
                    }
                });
            }
        }
    }

    #[track_caller]
    pub fn notify_all(&self) {
        match ctx() {
            None => self.std.notify_all(),
            Some(c) => {
                let site = Location::caller();
                c.exec
                    .switch(c.tid, None, "condvar.notify_all", "", site, false);
                c.exec.with_state(|st| {
                    Exec::clock_of(st, c.tid).tick(c.tid);
                    let tc = Exec::clock_of(st, c.tid).clone();
                    let meta = self.meta.get(c.exec.gen);
                    meta.clock.join(&tc);
                    if let Some(id) = meta.id {
                        Exec::wake_all(st, BlockOn::Condvar(id));
                    }
                });
            }
        }
    }
}

impl std::fmt::Debug for Condvar {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Condvar").finish_non_exhaustive()
    }
}

/// Take a guard apart without running its Drop (the caller assumes
/// responsibility for both the std guard and model ownership).
fn dismantle<'a, T: ?Sized>(
    mut guard: MutexGuard<'a, T>,
) -> (&'a Mutex<T>, std::sync::MutexGuard<'a, T>) {
    let lock = guard.lock;
    let std_guard = guard.std.take().expect("guard already released");
    guard.model.take();
    (lock, std_guard)
}
