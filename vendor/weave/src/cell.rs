//! Model-aware `UnsafeCell`: the point where data races are actually
//! detected.
//!
//! The runtime's `ProcSlot`s hand out `&mut` references from an
//! `UnsafeCell` based on a barrier-mediated ownership protocol that
//! the compiler cannot see. Under the model, every `get()` registers
//! a conservative *write* access stamped with the calling thread's
//! vector clock; an access that is not ordered (happens-before) with
//! every previous access since the last write is a data race, and the
//! checker reports both sites plus the interleaving that got there.
//!
//! `hb_assert` is the checkable form of a SAFETY comment: it verifies
//! the ownership claim ("all prior accesses happen-before me") at a
//! point *without* becoming an access itself.

use crate::sched::{ctx, Exec, FailureKind, Meta};
use std::panic::Location;

/// One recorded access: which thread, its clock stamp, and where.
#[derive(Clone, Copy)]
struct Access {
    tid: usize,
    stamp: u64,
    site: &'static Location<'static>,
}

#[derive(Default)]
pub(crate) struct CellMeta {
    last_write: Option<Access>,
    reads: Vec<Access>,
}

/// Model-aware drop-in for `std::cell::UnsafeCell`.
pub struct UnsafeCell<T: ?Sized> {
    meta: Meta<CellMeta>,
    std: std::cell::UnsafeCell<T>,
}

// Note: like `std::cell::UnsafeCell`, this type is deliberately
// !Sync; containers (e.g. ProcSlot) opt in with their own
// `unsafe impl Sync` carrying the protocol argument — which is
// exactly what the model checks.

impl<T: Default> Default for UnsafeCell<T> {
    fn default() -> Self {
        UnsafeCell::new(T::default())
    }
}

impl<T> UnsafeCell<T> {
    /// Create a new cell (usable in `const`/`static` position).
    pub const fn new(value: T) -> Self {
        UnsafeCell {
            meta: Meta::new(),
            std: std::cell::UnsafeCell::new(value),
        }
    }

    /// Consume the cell, returning the value (no access check —
    /// exclusive by ownership).
    pub fn into_inner(self) -> T {
        self.std.into_inner()
    }
}

impl<T: ?Sized> UnsafeCell<T> {
    /// Raw pointer to the contents.
    ///
    /// Under the model this registers a conservative **write** access
    /// at the caller's location and reports a data race if any prior
    /// access since the last write is not ordered before this one.
    #[track_caller]
    pub fn get(&self) -> *mut T {
        if let Some(c) = ctx() {
            let site = Location::caller();
            c.exec.switch(c.tid, None, "cell.access", "", site, false);
            let race: Option<(Access, &'static Location<'static>)> = c.exec.with_state(|st| {
                let me_clock = Exec::clock_of(st, c.tid).clone();
                let meta = self.meta.get(c.exec.gen);
                let mut conflict = None;
                if let Some(w) = meta.last_write {
                    if w.tid != c.tid && !me_clock.covers(w.tid, w.stamp) {
                        conflict = Some((w, site));
                    }
                }
                if conflict.is_none() {
                    for r in &meta.reads {
                        if r.tid != c.tid && !me_clock.covers(r.tid, r.stamp) {
                            conflict = Some((*r, site));
                            break;
                        }
                    }
                }
                if conflict.is_none() {
                    let tc = Exec::clock_of(st, c.tid);
                    tc.tick(c.tid);
                    let stamp = tc.get(c.tid);
                    meta.last_write = Some(Access {
                        tid: c.tid,
                        stamp,
                        site,
                    });
                    meta.reads.clear();
                }
                conflict
            });
            if let Some((prior, here)) = race {
                c.exec.fail(
                    FailureKind::DataRace,
                    format!(
                        "unsynchronized UnsafeCell accesses: thread {} at {}:{} is not ordered with thread {} at {}:{} — no happens-before edge between them",
                        prior.tid,
                        prior.site.file(),
                        prior.site.line(),
                        c.tid,
                        here.file(),
                        here.line()
                    ),
                );
            }
        }
        self.std.get()
    }

    /// Raw const pointer to the contents, registering a **read**
    /// access: a read races only with an unordered *write*; two
    /// unordered reads are fine (e.g. every released waiter reading a
    /// value the leader published before the barrier release).
    #[track_caller]
    pub fn get_read(&self) -> *const T {
        if let Some(c) = ctx() {
            let site = Location::caller();
            c.exec.switch(c.tid, None, "cell.read", "", site, false);
            let race: Option<(Access, &'static Location<'static>)> = c.exec.with_state(|st| {
                let me_clock = Exec::clock_of(st, c.tid).clone();
                let meta = self.meta.get(c.exec.gen);
                let mut conflict = None;
                if let Some(w) = meta.last_write {
                    if w.tid != c.tid && !me_clock.covers(w.tid, w.stamp) {
                        conflict = Some((w, site));
                    }
                }
                if conflict.is_none() {
                    let tc = Exec::clock_of(st, c.tid);
                    tc.tick(c.tid);
                    let stamp = tc.get(c.tid);
                    let access = Access {
                        tid: c.tid,
                        stamp,
                        site,
                    };
                    // Keep one (latest) read per thread: a later read
                    // by the same thread covers the earlier one.
                    match meta.reads.iter_mut().find(|r| r.tid == c.tid) {
                        Some(r) => *r = access,
                        None => meta.reads.push(access),
                    }
                }
                conflict
            });
            if let Some((prior, here)) = race {
                c.exec.fail(
                    FailureKind::DataRace,
                    format!(
                        "unsynchronized UnsafeCell accesses: write by thread {} at {}:{} is not ordered with read by thread {} at {}:{} — no happens-before edge between them",
                        prior.tid,
                        prior.site.file(),
                        prior.site.line(),
                        c.tid,
                        here.file(),
                        here.line()
                    ),
                );
            }
        }
        self.std.get() as *const T
    }

    /// Exclusive access without a decision point (compiler-proved
    /// exclusivity).
    pub fn get_mut(&mut self) -> &mut T {
        self.std.get_mut()
    }

    /// Checkable SAFETY comment: assert that every recorded access to
    /// this cell happens-before the current thread's present point,
    /// i.e. the caller could safely take `&mut` now. Does not record
    /// an access. No-op outside the model.
    #[track_caller]
    pub fn hb_assert(&self, claim: &str) {
        if let Some(c) = ctx() {
            let site = Location::caller();
            c.exec.switch(c.tid, None, "hb_assert", "", site, false);
            let stale: Option<Access> = c.exec.with_state(|st| {
                let me_clock = Exec::clock_of(st, c.tid).clone();
                let meta = self.meta.get(c.exec.gen);
                if let Some(w) = meta.last_write {
                    if w.tid != c.tid && !me_clock.covers(w.tid, w.stamp) {
                        return Some(w);
                    }
                }
                meta.reads
                    .iter()
                    .find(|r| r.tid != c.tid && !me_clock.covers(r.tid, r.stamp))
                    .copied()
            });
            if let Some(prior) = stale {
                c.exec.fail(
                    FailureKind::HbViolation,
                    format!(
                        "hb_assert failed at {}:{} — claim \"{claim}\": access by thread {} at {}:{} does not happen-before this point",
                        site.file(),
                        site.line(),
                        prior.tid,
                        prior.site.file(),
                        prior.site.line()
                    ),
                );
            }
        }
    }
}

impl<T: std::fmt::Debug + Copy> std::fmt::Debug for UnsafeCell<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("UnsafeCell").finish_non_exhaustive()
    }
}
