//! Ordering-mutation support: the hook behind the runtime's
//! `site_ord!` macro.
//!
//! Each tunable atomic site in the runtime is named with a stable
//! label (e.g. `"hier.generation.flip"`). In normal builds the label
//! compiles away and the site uses its declared ordering. Under the
//! model, [`resolve`] consults the active exploration's
//! [`crate::Config::overrides`] so a mutation test can weaken exactly
//! one site (say `AcqRel → Relaxed`) and assert the checker reports
//! the resulting race — proof the declared ordering is load-bearing.

use crate::sched::ctx;
use std::sync::atomic::Ordering;

/// The ordering to use at the named site: the declared `default`,
/// unless the active exploration overrides it. Overrides that fire
/// are recorded and appear in any failure report, so a reported race
/// names the mutation that caused it.
pub fn resolve(label: &'static str, default: Ordering) -> Ordering {
    if let Some(c) = ctx() {
        for (l, o) in &c.exec.cfg.overrides {
            if l == label {
                let o = *o;
                c.exec
                    .with_state(|st| crate::sched::note_mutation(st, label));
                return o;
            }
        }
    }
    default
}
