//! Model-aware `Instant`: wall-clock outside an exploration, the
//! scheduler's virtual clock (nanoseconds, advanced one tick per
//! decision and jumped forward by timeout transitions) inside one.
//! Deadlines computed from it are therefore deterministic and
//! replayable.

use crate::sched::ctx;
use std::time::Duration;

/// Drop-in for `std::time::Instant`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Instant {
    /// A real wall-clock reading (taken outside any exploration).
    Real(std::time::Instant),
    /// A virtual-clock reading, in nanoseconds since execution start.
    Virtual(u64),
}

impl Instant {
    /// The current instant — virtual when the calling thread is part
    /// of a model execution.
    pub fn now() -> Instant {
        match ctx() {
            None => Instant::Real(std::time::Instant::now()),
            Some(c) => Instant::Virtual(c.exec.virtual_now()),
        }
    }

    /// Time elapsed since this instant (saturating at zero).
    pub fn elapsed(&self) -> Duration {
        Instant::now().saturating_duration_since(*self)
    }

    /// `self - earlier`, saturating at zero. Mixing a virtual and a
    /// real instant yields zero (it is a logic error, but one the
    /// runtime never commits: an object lives entirely inside or
    /// entirely outside an exploration).
    pub fn saturating_duration_since(&self, earlier: Instant) -> Duration {
        match (self, earlier) {
            (Instant::Real(a), Instant::Real(b)) => a.saturating_duration_since(b),
            (Instant::Virtual(a), Instant::Virtual(b)) => Duration::from_nanos(a.saturating_sub(b)),
            _ => Duration::ZERO,
        }
    }

    /// `self - earlier` (saturating, matching modern `std` behavior).
    pub fn duration_since(&self, earlier: Instant) -> Duration {
        self.saturating_duration_since(earlier)
    }

    /// `self + d`, or `None` on overflow.
    pub fn checked_add(&self, d: Duration) -> Option<Instant> {
        match self {
            Instant::Real(a) => a.checked_add(d).map(Instant::Real),
            Instant::Virtual(a) => a
                .checked_add(u64::try_from(d.as_nanos()).ok()?)
                .map(Instant::Virtual),
        }
    }
}

impl std::ops::Add<Duration> for Instant {
    type Output = Instant;
    fn add(self, d: Duration) -> Instant {
        self.checked_add(d)
            .expect("overflow when adding duration to instant")
    }
}

impl std::ops::AddAssign<Duration> for Instant {
    fn add_assign(&mut self, d: Duration) {
        *self = *self + d;
    }
}

impl std::ops::Sub<Instant> for Instant {
    type Output = Duration;
    fn sub(self, earlier: Instant) -> Duration {
        self.saturating_duration_since(earlier)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn real_instants_behave_like_std() {
        let a = Instant::now();
        let b = a + Duration::from_millis(5);
        assert_eq!(b.saturating_duration_since(a), Duration::from_millis(5));
        assert_eq!(a.saturating_duration_since(b), Duration::ZERO);
        assert!(b > a);
    }

    #[test]
    fn virtual_arithmetic() {
        let a = Instant::Virtual(1_000);
        let b = a + Duration::from_nanos(500);
        assert_eq!(b, Instant::Virtual(1_500));
        assert_eq!(b - a, Duration::from_nanos(500));
        assert_eq!(a.duration_since(b), Duration::ZERO);
    }
}
