//! Model-aware threading: spawn/join (as `scope_join`), yield, sleep,
//! park/unpark, and `available_parallelism`.
//!
//! `sleep` and `park_timeout` become *timed transitions*: under the
//! default lazy-timeout policy they wake only when nothing else can
//! run (modeling "timeouts are slow compared to healthy progress"),
//! so a watchdog never fires spuriously in a live system — unless the
//! exploration opts into [`crate::Config::eager_timeouts`], which
//! lets the timeout race healthy progress.

use crate::sched::{ctx, set_ctx, BlockOn, Ctx, Exec};
use std::num::NonZeroUsize;
use std::panic::Location;
use std::sync::Arc;
use std::time::Duration;

/// Model-aware yield: a plain decision point.
#[track_caller]
pub fn yield_now() {
    match ctx() {
        None => std::thread::yield_now(),
        Some(c) => {
            c.exec
                .switch(c.tid, None, "thread.yield", "", Location::caller(), false);
        }
    }
}

/// Model-aware sleep: advances virtual time via a timed transition.
#[track_caller]
pub fn sleep(dur: Duration) {
    match ctx() {
        None => std::thread::sleep(dur),
        Some(c) => {
            let deadline = c
                .exec
                .with_state(|st| Exec::vnow(st).saturating_add(dur.as_nanos() as u64));
            c.exec.switch(
                c.tid,
                Some((BlockOn::Sleep, Some(deadline))),
                "thread.sleep",
                "",
                Location::caller(),
                false,
            );
        }
    }
}

/// What the model reports as the core count ([`crate::Config::cores`]),
/// or the real value outside an exploration.
pub fn available_parallelism() -> std::io::Result<NonZeroUsize> {
    match ctx() {
        None => std::thread::available_parallelism(),
        Some(c) => Ok(NonZeroUsize::new(c.exec.cfg.cores.max(1)).expect("max(1) is non-zero")),
    }
}

/// Park the current thread until unparked (or a pending permit is
/// consumed).
#[track_caller]
pub fn park() {
    match ctx() {
        None => std::thread::park(),
        Some(c) => {
            if c.exec.with_state(|st| Exec::try_consume_permit(st, c.tid)) {
                return;
            }
            c.exec.switch(
                c.tid,
                Some((BlockOn::Park, None)),
                "thread.park",
                "",
                Location::caller(),
                false,
            );
        }
    }
}

/// Park with a timeout (a timed transition under the model).
#[track_caller]
pub fn park_timeout(dur: Duration) {
    match ctx() {
        None => std::thread::park_timeout(dur),
        Some(c) => {
            if c.exec.with_state(|st| Exec::try_consume_permit(st, c.tid)) {
                return;
            }
            let deadline = c
                .exec
                .with_state(|st| Exec::vnow(st).saturating_add(dur.as_nanos() as u64));
            c.exec.switch(
                c.tid,
                Some((BlockOn::Park, Some(deadline))),
                "thread.park_timeout",
                "",
                Location::caller(),
                false,
            );
        }
    }
}

enum ThreadInner {
    Os(std::thread::Thread),
    Model(Ctx),
}

/// A handle to a thread, for `unpark` (mirrors `std::thread::Thread`
/// where the runtime needs it).
pub struct Thread {
    inner: ThreadInner,
}

impl Thread {
    /// Wake the thread from `park`, or leave a permit.
    #[track_caller]
    pub fn unpark(&self) {
        match &self.inner {
            ThreadInner::Os(t) => t.unpark(),
            ThreadInner::Model(target) => {
                let me = ctx().expect("unparking a model thread from outside its exploration");
                me.exec
                    .switch(me.tid, None, "thread.unpark", "", Location::caller(), false);
                me.exec
                    .with_state(|st| Exec::unpark(st, me.tid, target.tid));
            }
        }
    }
}

/// Handle to the current thread.
pub fn current() -> Thread {
    Thread {
        inner: match ctx() {
            None => ThreadInner::Os(std::thread::current()),
            Some(c) => ThreadInner::Model(c),
        },
    }
}

struct EndGuard {
    exec: Arc<crate::sched::Exec>,
    tid: usize,
}

impl Drop for EndGuard {
    fn drop(&mut self) {
        self.exec.thread_end(self.tid);
    }
}

/// Spawn every task on its own thread and join them in order,
/// returning each task's result (or its panic payload).
///
/// This is the structured-concurrency shape the runtime needs from
/// `std::thread::scope`, packaged so the model can interpose: under
/// an exploration each spawn registers a schedulable model thread
/// (runnable from the spawn point — the scheduler may run the child
/// before the parent's next step), each join is a blocking model
/// transition carrying the child's final vector clock, and panics
/// (including model teardown) surface through the returned `Result`s
/// exactly as `std` join handles do.
#[track_caller]
pub fn scope_join<T, F>(tasks: Vec<F>) -> Vec<std::thread::Result<T>>
where
    T: Send,
    F: FnOnce() -> T + Send,
{
    let site = Location::caller();
    match ctx() {
        None => std::thread::scope(|s| {
            let handles: Vec<_> = tasks.into_iter().map(|f| s.spawn(f)).collect();
            handles.into_iter().map(|h| h.join()).collect()
        }),
        Some(c) => std::thread::scope(|s| {
            let mut handles = Vec::with_capacity(tasks.len());
            for f in tasks {
                let tid = c.exec.register_thread(c.tid);
                let exec = Arc::clone(&c.exec);
                let handle = s.spawn(move || {
                    set_ctx(Some(Ctx {
                        exec: Arc::clone(&exec),
                        tid,
                    }));
                    // Ends the model thread on return *or* unwind, so
                    // joiners and the scheduler never wait on a corpse.
                    let _end = EndGuard {
                        exec: Arc::clone(&exec),
                        tid,
                    };
                    exec.thread_begin(tid);
                    f()
                });
                handles.push((tid, handle));
                // The spawn itself is a decision point: the child is
                // enabled from here on.
                c.exec.switch(c.tid, None, "thread.spawn", "", site, false);
            }
            handles
                .into_iter()
                .map(|(tid, h)| {
                    c.exec.join_thread(c.tid, tid, site);
                    h.join()
                })
                .collect()
        }),
    }
}
