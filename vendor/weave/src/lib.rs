//! `weave` — an offline, loom-style concurrency model checker.
//!
//! Vendored like the repo's `proptest`/`criterion` shims: a small,
//! dependency-free subset of the idea, built for checking
//! `hbsp-runtime`'s hand-rolled synchronization (sense-reversing
//! barriers, `UnsafeCell` processor slots, watchdog abort paths).
//!
//! ## How it works
//!
//! Code under test uses `weave`'s drop-in primitives ([`Mutex`],
//! [`Condvar`], [`UnsafeCell`], [`atomic`], [`thread`], [`time`]).
//! Outside an exploration they forward to `std` after one
//! thread-local check — so a binary that links the model build but
//! never calls [`explore`] behaves exactly like plain `std`.
//!
//! [`explore`] runs a closure repeatedly under a controlled scheduler:
//! real OS threads, exactly one runnable at a time, every
//! synchronization operation a decision point. Interleavings are
//! enumerated by bounded-preemption DFS (most concurrency bugs need
//! only a couple of preemptions) plus seeded random walks. Vector
//! clocks track happens-before with release-sequence-faithful
//! semantics — a `Relaxed` store really does break the chain — so
//! weakened orderings surface as the races they are. Failures
//! (data race, deadlock / lost wakeup, livelock / runaway spin,
//! `hb_assert` violation, panic) come with the full interleaving
//! trace and a decision schedule that [`replay`] reproduces
//! deterministically.
//!
//! ```
//! let cfg = weave::Config::default();
//! let out = weave::explore(&cfg, || {
//!     static FLAG: weave::atomic::AtomicBool =
//!         weave::atomic::AtomicBool::new(false);
//!     FLAG.store(false, std::sync::atomic::Ordering::Relaxed);
//!     // … spawn threads with weave::thread::scope_join, sync them …
//! });
//! out.assert_clean("example");
//! ```

pub mod atomic;
pub mod cell;
pub mod clock;
pub mod mutation;
mod mutex;
mod sched;
pub mod thread;
pub mod time;

pub use cell::UnsafeCell;
pub use mutex::{Condvar, Mutex, MutexGuard, WaitTimeoutResult};
pub use sched::{explore, replay, Config, Failure, FailureKind, Outcome, Stats};

/// Model-aware `std::hint` subset.
pub mod hint {
    use crate::sched::ctx;
    use std::panic::Location;

    /// Spin-loop hint: under the model, a decision point that counts
    /// toward the runaway-spin budget ([`crate::Config::max_spins`]).
    #[track_caller]
    pub fn spin_loop() {
        match ctx() {
            None => std::hint::spin_loop(),
            Some(c) => {
                c.exec
                    .switch(c.tid, None, "hint.spin", "", Location::caller(), true);
            }
        }
    }
}

/// True while the calling thread participates in a model execution.
/// The runtime uses this to scale constants (spin budgets) that would
/// otherwise blow up the exploration space.
pub fn is_modeling() -> bool {
    sched::is_active()
}
