//! Model-aware atomics.
//!
//! Outside an exploration these are thin wrappers over
//! `std::sync::atomic` (a single thread-local check per operation).
//! Inside one, every operation is a scheduler decision point and
//! updates the happens-before state:
//!
//! * a **Release**-class store publishes the writing thread's vector
//!   clock as the atomic's *release clock*;
//! * a **Relaxed** pure store *clears* the release clock — it starts a
//!   new release sequence headed by a relaxed store, which synchronizes
//!   with nobody (this is exactly the C++20 rule that makes
//!   `Release→Relaxed` weakening on a flag a detectable bug);
//! * an RMW (`fetch_add`, `swap`, successful `compare_exchange`)
//!   *joins* into the release clock instead of replacing it — RMWs
//!   continue the release sequence regardless of their own ordering;
//! * an **Acquire**-class load joins the release clock into the
//!   loading thread's clock.
//!
//! `SeqCst` is treated as `AcqRel` (we check happens-before, not
//! sequential-consistency anomalies; executions themselves are
//! sequentially consistent because the scheduler serializes them).

use crate::clock::VClock;
use crate::sched::{ctx, Meta};
use std::panic::Location;
use std::sync::atomic::Ordering;

fn acquires(o: Ordering) -> bool {
    matches!(o, Ordering::Acquire | Ordering::AcqRel | Ordering::SeqCst)
}

fn releases(o: Ordering) -> bool {
    matches!(o, Ordering::Release | Ordering::AcqRel | Ordering::SeqCst)
}

/// Happens-before state of one atomic location.
#[derive(Default)]
pub(crate) struct AtomicMeta {
    /// The clock published by the head of the current release
    /// sequence (⊥ after a relaxed pure store).
    rel: VClock,
}

macro_rules! atomic_type {
    ($name:ident, $std:ident, $ty:ty) => {
        /// Model-aware drop-in for the matching `std::sync::atomic` type.
        pub struct $name {
            std: std::sync::atomic::$std,
            meta: Meta<AtomicMeta>,
        }

        impl $name {
            /// Create a new atomic (usable in `const`/`static` position).
            pub const fn new(v: $ty) -> Self {
                $name {
                    std: std::sync::atomic::$std::new(v),
                    meta: Meta::new(),
                }
            }

            /// Mutable access when exclusively borrowed (no decision point).
            pub fn get_mut(&mut self) -> &mut $ty {
                self.std.get_mut()
            }

            /// Consume and return the value (no decision point).
            pub fn into_inner(self) -> $ty {
                self.std.into_inner()
            }

            #[track_caller]
            pub fn load(&self, order: Ordering) -> $ty {
                let site = Location::caller();
                match ctx() {
                    None => self.std.load(order),
                    Some(c) => {
                        c.exec.switch(c.tid, None, "atomic.load", "", site, false);
                        c.exec.with_state(|st| {
                            let meta = self.meta.get(c.exec.gen);
                            if acquires(order) {
                                let rel = meta.rel.clone();
                                crate::sched::Exec::clock_of(st, c.tid).join(&rel);
                            }
                            crate::sched::Exec::clock_of(st, c.tid).tick(c.tid);
                            self.std.load(order)
                        })
                    }
                }
            }

            #[track_caller]
            pub fn store(&self, val: $ty, order: Ordering) {
                let site = Location::caller();
                match ctx() {
                    None => self.std.store(val, order),
                    Some(c) => {
                        c.exec.switch(c.tid, None, "atomic.store", "", site, false);
                        c.exec.with_state(|st| {
                            crate::sched::Exec::clock_of(st, c.tid).tick(c.tid);
                            let thread_clock = crate::sched::Exec::clock_of(st, c.tid).clone();
                            let meta = self.meta.get(c.exec.gen);
                            if releases(order) {
                                meta.rel = thread_clock;
                            } else {
                                // A relaxed pure store heads a new
                                // release sequence that publishes
                                // nothing.
                                meta.rel.clear();
                            }
                            self.std.store(val, order);
                        })
                    }
                }
            }

            /// Shared RMW bookkeeping: acquire side, tick, release side
            /// (join — the release sequence continues through RMWs).
            fn rmw<R>(
                &self,
                order: Ordering,
                op: impl FnOnce() -> R,
                site: &'static Location<'static>,
                desc: &'static str,
            ) -> R {
                match ctx() {
                    None => op(),
                    Some(c) => {
                        c.exec.switch(c.tid, None, desc, "", site, false);
                        c.exec.with_state(|st| {
                            {
                                let meta = self.meta.get(c.exec.gen);
                                if acquires(order) {
                                    let rel = meta.rel.clone();
                                    crate::sched::Exec::clock_of(st, c.tid).join(&rel);
                                }
                            }
                            crate::sched::Exec::clock_of(st, c.tid).tick(c.tid);
                            let out = op();
                            if releases(order) {
                                let thread_clock = crate::sched::Exec::clock_of(st, c.tid).clone();
                                self.meta.get(c.exec.gen).rel.join(&thread_clock);
                            }
                            out
                        })
                    }
                }
            }

            #[track_caller]
            pub fn swap(&self, val: $ty, order: Ordering) -> $ty {
                self.rmw(
                    order,
                    || self.std.swap(val, order),
                    Location::caller(),
                    "atomic.swap",
                )
            }

            #[track_caller]
            pub fn compare_exchange(
                &self,
                current: $ty,
                new: $ty,
                success: Ordering,
                failure: Ordering,
            ) -> Result<$ty, $ty> {
                let site = Location::caller();
                match ctx() {
                    None => self.std.compare_exchange(current, new, success, failure),
                    Some(c) => {
                        c.exec
                            .switch(c.tid, None, "atomic.compare_exchange", "", site, false);
                        c.exec.with_state(|st| {
                            let out = self.std.compare_exchange(current, new, success, failure);
                            let order = if out.is_ok() { success } else { failure };
                            {
                                let meta = self.meta.get(c.exec.gen);
                                if acquires(order) {
                                    let rel = meta.rel.clone();
                                    crate::sched::Exec::clock_of(st, c.tid).join(&rel);
                                }
                            }
                            crate::sched::Exec::clock_of(st, c.tid).tick(c.tid);
                            if out.is_ok() && releases(success) {
                                let thread_clock = crate::sched::Exec::clock_of(st, c.tid).clone();
                                self.meta.get(c.exec.gen).rel.join(&thread_clock);
                            }
                            out
                        })
                    }
                }
            }

            #[track_caller]
            pub fn compare_exchange_weak(
                &self,
                current: $ty,
                new: $ty,
                success: Ordering,
                failure: Ordering,
            ) -> Result<$ty, $ty> {
                // The model never fails spuriously; weak == strong.
                self.compare_exchange(current, new, success, failure)
            }
        }

        impl std::fmt::Debug for $name {
            fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                f.debug_tuple(stringify!($name))
                    .field(&self.std.load(Ordering::Relaxed))
                    .finish()
            }
        }

        impl Default for $name {
            fn default() -> Self {
                Self::new(<$ty>::default())
            }
        }
    };
    ($name:ident, $std:ident, $ty:ty, int) => {
        atomic_type!($name, $std, $ty);

        impl $name {
            #[track_caller]
            pub fn fetch_add(&self, val: $ty, order: Ordering) -> $ty {
                self.rmw(
                    order,
                    || self.std.fetch_add(val, order),
                    Location::caller(),
                    "atomic.fetch_add",
                )
            }

            #[track_caller]
            pub fn fetch_sub(&self, val: $ty, order: Ordering) -> $ty {
                self.rmw(
                    order,
                    || self.std.fetch_sub(val, order),
                    Location::caller(),
                    "atomic.fetch_sub",
                )
            }

            #[track_caller]
            pub fn fetch_max(&self, val: $ty, order: Ordering) -> $ty {
                self.rmw(
                    order,
                    || self.std.fetch_max(val, order),
                    Location::caller(),
                    "atomic.fetch_max",
                )
            }
        }
    };
}

atomic_type!(AtomicBool, AtomicBool, bool);
atomic_type!(AtomicU8, AtomicU8, u8, int);
atomic_type!(AtomicU32, AtomicU32, u32, int);
atomic_type!(AtomicU64, AtomicU64, u64, int);
atomic_type!(AtomicUsize, AtomicUsize, usize, int);

impl AtomicBool {
    #[track_caller]
    pub fn fetch_or(&self, val: bool, order: Ordering) -> bool {
        self.rmw(
            order,
            || self.std.fetch_or(val, order),
            Location::caller(),
            "atomic.fetch_or",
        )
    }
}
