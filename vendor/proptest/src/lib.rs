//! An offline, dependency-free subset of the `proptest` crate.
//!
//! The real `proptest` cannot be vendored here (no network access at
//! build time), so this shim reimplements exactly the API surface the
//! workspace's property tests use: the [`Strategy`](strategy::Strategy) trait with
//! `prop_map`, range/tuple/`Just`/regex-string strategies,
//! `proptest::collection::vec`, `proptest::num::f64::ANY`, and the
//! `proptest!` / `prop_assert*!` / `prop_oneof!` macros.
//!
//! Differences from upstream, on purpose:
//!
//! * **Deterministic**: each test function derives its RNG seed from its
//!   own path (override with `PROPTEST_SEED`), so CI runs are
//!   reproducible without `.proptest-regressions` files (which this shim
//!   ignores).
//! * **No shrinking**: a failing case reports the seed and case index
//!   instead of a minimized input.

pub mod strategy;
pub mod string;
pub mod test_runner;

/// Strategies for collections (only `vec` is provided).
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Size specification for [`vec()`]: an exact length or a range.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        lo: usize,
        /// Inclusive upper bound.
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }
    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }
    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    /// Strategy producing `Vec`s whose elements come from `element`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `proptest::collection::vec(element, size)` — random-length vectors.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.usize_in(self.size.lo, self.size.hi);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Numeric strategies beyond plain ranges.
pub mod num {
    /// `f64` strategies.
    pub mod f64 {
        use crate::strategy::Strategy;
        use crate::test_runner::TestRng;

        /// Generates arbitrary `f64`s, including zeros, subnormals,
        /// infinities and NaN — raw bit patterns, like upstream's
        /// all-classes `ANY`.
        #[derive(Clone, Copy, Debug)]
        pub struct Any;

        /// Any `f64` whatsoever.
        pub const ANY: Any = Any;

        impl Strategy for Any {
            type Value = f64;
            fn generate(&self, rng: &mut TestRng) -> f64 {
                match rng.next_u64() % 8 {
                    // Mostly "reasonable" magnitudes so formatted output
                    // exercises ordinary parsing paths too.
                    0..=3 => (rng.next_f64() - 0.5) * 2.0e6,
                    4 => f64::from_bits(rng.next_u64()),
                    5 => 0.0,
                    6 => f64::INFINITY,
                    _ => f64::NAN,
                }
            }
        }
    }
}

/// The glob-import surface used by every test: traits, common
/// strategies, config types, and the macros.
pub mod prelude {
    pub use crate::strategy::{any, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}
