//! The [`Strategy`] trait and the primitive strategies: ranges, tuples,
//! `Just`, `any::<T>()`, mapped strategies, and `prop_oneof!` unions.

use crate::test_runner::TestRng;
use std::ops::{Range, RangeInclusive};

/// Something that can generate random values of one type.
///
/// Unlike upstream there is no shrinking: `generate` draws a value and
/// that is the whole contract.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draw one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Strategy producing `f(value)` for values of `self`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Strategy that draws a value, builds a second strategy from it,
    /// and draws from that (upstream's dependent-value combinator).
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// Always produces a clone of the given value.
#[derive(Clone, Copy, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Types with a canonical "any value" strategy (`any::<T>()`).
pub trait Arbitrary {
    /// Draw an arbitrary value of this type.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// The strategy returned by [`any`].
#[derive(Clone, Copy, Debug, Default)]
pub struct Any<T>(std::marker::PhantomData<T>);

/// `any::<T>()` — arbitrary values of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! arbitrary_ints {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
arbitrary_ints!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! int_range_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                if span == 0 {
                    // Full-width range: every bit pattern is valid.
                    return rng.next_u64() as $t;
                }
                lo + (rng.next_u64() % span) as $t
            }
        }
    )*};
}
int_range_strategies!(u8, u16, u32, u64, usize);

macro_rules! signed_range_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i64).wrapping_sub(self.start as i64) as u64;
                self.start.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i64).wrapping_sub(lo as i64) as u64;
                let span = span.wrapping_add(1);
                if span == 0 {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
    )*};
}
signed_range_strategies!(i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.next_f64() * (self.end - self.start)
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty range strategy");
        // next_f64 is in [0, 1); scaling cannot overshoot hi.
        lo + rng.next_f64() * (hi - lo)
    }
}

macro_rules! tuple_strategies {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}
tuple_strategies! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
}

/// Union of same-valued strategies; used by `prop_oneof!`.
pub struct OneOf<T> {
    options: Vec<Box<dyn Strategy<Value = T>>>,
}

impl<T> OneOf<T> {
    /// Union over the given alternatives (must be non-empty).
    pub fn new(options: Vec<Box<dyn Strategy<Value = T>>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
        OneOf { options }
    }
}

/// Type-erase a strategy (helper for `prop_oneof!`, where the arms all
/// have different concrete types).
pub fn boxed<S>(s: S) -> Box<dyn Strategy<Value = S::Value>>
where
    S: Strategy + 'static,
{
    Box::new(s)
}

impl<T> Strategy for OneOf<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.usize_in(0, self.options.len() - 1);
        self.options[i].generate(rng)
    }
}
