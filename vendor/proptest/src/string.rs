//! String strategies from regex-like patterns.
//!
//! Upstream proptest accepts any string literal as a strategy and
//! generates matching strings from the full regex grammar. This shim
//! supports the subset the workspace's tests use: literal characters,
//! `.`, character classes (`[a-z#]`, with ranges), escapes (`\)`), and
//! the repetition operators `{m,n}`, `{n}`, `*`, `+`, `?`.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

#[derive(Clone, Debug)]
enum Atom {
    /// A fixed character.
    Lit(char),
    /// `.` — any printable ASCII character (plus a few surprises).
    Dot,
    /// `[...]` — inclusive character ranges (single chars are `(c, c)`).
    Class(Vec<(char, char)>),
}

#[derive(Clone, Debug)]
struct Piece {
    atom: Atom,
    min: usize,
    max: usize,
}

/// A parsed pattern; one `Piece` per atom-with-repetition.
#[derive(Clone, Debug)]
pub struct RegexStrategy {
    pieces: Vec<Piece>,
}

fn parse(pattern: &str) -> RegexStrategy {
    let mut chars = pattern.chars().peekable();
    let mut pieces = Vec::new();
    while let Some(c) = chars.next() {
        let atom = match c {
            '.' => Atom::Dot,
            '\\' => Atom::Lit(chars.next().expect("dangling escape in pattern")),
            '[' => {
                let mut ranges = Vec::new();
                loop {
                    let c = chars.next().expect("unterminated character class");
                    if c == ']' {
                        break;
                    }
                    let lo = if c == '\\' {
                        chars.next().expect("dangling escape in class")
                    } else {
                        c
                    };
                    if chars.peek() == Some(&'-') {
                        chars.next();
                        let hi = chars.next().expect("unterminated class range");
                        assert!(hi != ']', "class range missing upper bound");
                        ranges.push((lo, hi));
                    } else {
                        ranges.push((lo, lo));
                    }
                }
                assert!(!ranges.is_empty(), "empty character class");
                Atom::Class(ranges)
            }
            c => Atom::Lit(c),
        };
        let (min, max) = match chars.peek() {
            Some('{') => {
                chars.next();
                let mut spec = String::new();
                for c in chars.by_ref() {
                    if c == '}' {
                        break;
                    }
                    spec.push(c);
                }
                match spec.split_once(',') {
                    Some((lo, hi)) => (
                        lo.parse().expect("bad repetition lower bound"),
                        hi.parse().expect("bad repetition upper bound"),
                    ),
                    None => {
                        let n = spec.parse().expect("bad repetition count");
                        (n, n)
                    }
                }
            }
            Some('*') => {
                chars.next();
                (0, 8)
            }
            Some('+') => {
                chars.next();
                (1, 8)
            }
            Some('?') => {
                chars.next();
                (0, 1)
            }
            _ => (1, 1),
        };
        pieces.push(Piece { atom, min, max });
    }
    RegexStrategy { pieces }
}

impl Atom {
    fn generate(&self, rng: &mut TestRng) -> char {
        match self {
            Atom::Lit(c) => *c,
            Atom::Dot => {
                // Mostly printable ASCII; occasionally something rude.
                match rng.next_u64() % 16 {
                    0 => '\t',
                    1 => 'λ',
                    2 => '\u{1F980}',
                    _ => (0x20 + (rng.next_u64() % 0x5f) as u8) as char,
                }
            }
            Atom::Class(ranges) => {
                let (lo, hi) = ranges[rng.usize_in(0, ranges.len() - 1)];
                char::from_u32(rng.usize_in(lo as usize, hi as usize) as u32)
                    .expect("class range spans invalid codepoints")
            }
        }
    }
}

impl Strategy for RegexStrategy {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        let mut out = String::new();
        for piece in &self.pieces {
            let n = rng.usize_in(piece.min, piece.max);
            for _ in 0..n {
                out.push(piece.atom.generate(rng));
            }
        }
        out
    }
}

impl Strategy for &str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        // Parsing per draw keeps the API dependency-free; patterns are
        // tiny, so this is nowhere near the profile.
        parse(self).generate(rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::TestRng;

    #[test]
    fn patterns_generate_matching_strings() {
        let mut rng = TestRng::from_seed(42);
        for _ in 0..200 {
            let s = Strategy::generate(&"[a-z]{0,8}", &mut rng);
            assert!(s.len() <= 8);
            assert!(s.chars().all(|c| c.is_ascii_lowercase()));

            let s = Strategy::generate(&"[#a-z ]{0,40}\\)", &mut rng);
            assert!(s.ends_with(')'));
            let body = &s[..s.len() - 1];
            assert!(body
                .chars()
                .all(|c| c == '#' || c == ' ' || c.is_ascii_lowercase()));

            let s = Strategy::generate(&".{0,200}", &mut rng);
            assert!(s.chars().count() <= 200);
        }
    }
}
