//! Test-runner plumbing: the RNG, per-test configuration, and the error
//! type `prop_assert*!` produces.

use std::fmt;

/// Per-test configuration. Only `cases` is honoured.
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// Number of random cases to run per test function.
    pub cases: u32,
}

impl ProptestConfig {
    /// Run `cases` random cases (the common constructor).
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// A failed `prop_assert*!` inside a test case.
#[derive(Clone, Debug)]
pub struct TestCaseError(String);

impl TestCaseError {
    /// Failure with the given explanation.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError(msg.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

/// SplitMix64: tiny, fast, and plenty for test-input generation.
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Deterministic RNG for the named test. The seed is the FNV-1a hash
    /// of the test path, XORed with `PROPTEST_SEED` when set, so a
    /// failure report's seed can be replayed exactly.
    pub fn for_test(test_path: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_path.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        if let Ok(s) = std::env::var("PROPTEST_SEED") {
            if let Ok(extra) = s.trim().parse::<u64>() {
                h ^= extra;
            }
        }
        TestRng::from_seed(h)
    }

    /// RNG from an explicit seed.
    pub fn from_seed(seed: u64) -> Self {
        TestRng { state: seed }
    }

    /// The current internal state (reported on failure for replay).
    pub fn state(&self) -> u64 {
        self.state
    }

    /// Next raw 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform in `[lo, hi]` (inclusive).
    pub fn usize_in(&mut self, lo: usize, hi: usize) -> usize {
        debug_assert!(lo <= hi);
        let span = (hi - lo) as u64 + 1;
        lo + (self.next_u64() % span) as usize
    }
}

/// `proptest! { ... }` — run each contained test function over many
/// random inputs drawn from the `in` strategies.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { $crate::test_runner::ProptestConfig::default(); $($rest)* }
    };
}

/// Internal expansion of [`proptest!`]; not part of the public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ($cfg:expr; $( $(#[$meta:meta])* fn $name:ident
        ( $($pat:pat in $strat:expr),+ $(,)? ) $body:block )* ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let cfg: $crate::test_runner::ProptestConfig = $cfg;
                let path = concat!(module_path!(), "::", stringify!($name));
                let mut rng = $crate::test_runner::TestRng::for_test(path);
                for case in 0..cfg.cases {
                    let seed = rng.state();
                    let vals = ( $( $crate::strategy::Strategy::generate(&$strat, &mut rng), )+ );
                    let outcome = ::std::panic::catch_unwind(
                        ::std::panic::AssertUnwindSafe(move ||
                            -> ::std::result::Result<(), $crate::test_runner::TestCaseError> {
                            let ( $($pat,)+ ) = vals;
                            $body
                            ::std::result::Result::Ok(())
                        }),
                    );
                    match outcome {
                        Ok(Ok(())) => {}
                        Ok(Err(e)) => panic!(
                            "proptest case {case}/{} failed: {e}\n\
                             replay: PROPTEST_SEED such that rng state = {seed:#x} ({path})",
                            cfg.cases,
                        ),
                        Err(panic) => {
                            eprintln!(
                                "proptest case {case}/{} panicked \
                                 (rng state {seed:#x}, {path})",
                                cfg.cases,
                            );
                            ::std::panic::resume_unwind(panic);
                        }
                    }
                }
            }
        )*
    };
}

/// `prop_assert!(cond, args…)` — fail the current case (not the whole
/// process) when `cond` is false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)+)),
            );
        }
    };
}

/// `prop_assert_eq!(a, b, args…)` — equality assertion for test cases.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (l, r) = (&$a, &$b);
        $crate::prop_assert!(*l == *r, "assertion failed: {:?} == {:?}", l, r);
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$a, &$b);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: {:?} == {:?}: {}", l, r, format!($($fmt)+)
        );
    }};
}

/// `prop_assert_ne!(a, b, args…)` — inequality assertion for test cases.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (l, r) = (&$a, &$b);
        $crate::prop_assert!(*l != *r, "assertion failed: {:?} != {:?}", l, r);
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$a, &$b);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: {:?} != {:?}: {}", l, r, format!($($fmt)+)
        );
    }};
}

/// `prop_oneof![s1, s2, …]` — pick one of several same-valued strategies
/// uniformly at random per case.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::OneOf::new(vec![
            $($crate::strategy::boxed($strat),)+
        ])
    };
}
