//! An offline, dependency-free subset of the `criterion` crate.
//!
//! The real `criterion` cannot be vendored here (no network access at
//! build time), so this shim reimplements the API the workspace's
//! benches use — `Criterion`, `benchmark_group`, `bench_function`,
//! `bench_with_input`, `BenchmarkId`, `Bencher::iter`, and the
//! `criterion_group!` / `criterion_main!` macros — with a simple
//! median-of-samples measurement loop instead of criterion's full
//! statistical machinery.
//!
//! Tuning via environment variables (all optional):
//!
//! * `CRITERION_SAMPLES` — samples per benchmark (default 15)
//! * `CRITERION_SAMPLE_MS` — target milliseconds per sample (default 40)

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.trim().parse().ok())
        .unwrap_or(default)
}

/// Top-level benchmark driver (a stand-in for criterion's).
pub struct Criterion {
    samples: usize,
    sample_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            samples: env_usize("CRITERION_SAMPLES", 15),
            sample_time: Duration::from_millis(env_usize("CRITERION_SAMPLE_MS", 40) as u64),
        }
    }
}

impl Criterion {
    /// Accepted for CLI compatibility; arguments are ignored.
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Number of measurement samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.samples = n.max(1);
        self
    }

    /// Run a standalone benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(&id.into(), self.samples, self.sample_time, |b| f(b));
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            samples: self.samples,
            sample_time: self.sample_time,
            _parent: std::marker::PhantomData,
        }
    }
}

/// A named collection of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    samples: usize,
    sample_time: Duration,
    _parent: std::marker::PhantomData<&'a mut Criterion>,
}

impl BenchmarkGroup<'_> {
    /// Override the number of samples for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = n.max(1);
        self
    }

    /// Override the per-sample measurement time for this group.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.sample_time = d;
        self
    }

    /// Run one benchmark in this group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = format!("{}/{}", self.name, id.into().0);
        run_benchmark(&id, self.samples, self.sample_time, |b| f(b));
        self
    }

    /// Run one parameterized benchmark in this group.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = format!("{}/{}", self.name, id.0);
        run_benchmark(&id, self.samples, self.sample_time, |b| f(b, input));
        self
    }

    /// End the group (a no-op beyond matching criterion's API).
    pub fn finish(self) {}
}

/// A function-plus-parameter benchmark name.
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId(format!("{}/{}", name.into(), parameter))
    }

    /// Just the parameter, for single-function groups.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId(parameter.to_string())
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId(s)
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId(s.to_string())
    }
}

/// Passed to the benchmark closure; call [`Bencher::iter`] with the
/// code under test.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Time `iters` calls of `f`.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_benchmark<F: FnMut(&mut Bencher)>(
    id: &str,
    samples: usize,
    sample_time: Duration,
    mut f: F,
) {
    // Calibration: find an iteration count that fills ~one sample window.
    let mut b = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };
    loop {
        f(&mut b);
        if b.elapsed >= sample_time || b.iters >= 1 << 30 {
            break;
        }
        let per_iter = (b.elapsed.as_nanos() as u64 / b.iters).max(1);
        let target = (sample_time.as_nanos() as u64 / per_iter).max(1);
        // Grow at most 100x per round so one mis-measured fast iteration
        // cannot jump straight to a multi-minute sample.
        b.iters = target.min(b.iters * 100).max(b.iters + 1);
    }
    let iters = b.iters;

    let mut per_iter_ns: Vec<f64> = Vec::with_capacity(samples);
    for _ in 0..samples {
        f(&mut b);
        per_iter_ns.push(b.elapsed.as_nanos() as f64 / iters as f64);
    }
    per_iter_ns.sort_by(f64::total_cmp);
    let median = per_iter_ns[per_iter_ns.len() / 2];
    let min = per_iter_ns.first().copied().unwrap_or(0.0);
    let max = per_iter_ns.last().copied().unwrap_or(0.0);
    println!("{id:<60} time: [{min:>12.2} ns {median:>12.2} ns {max:>12.2} ns]");
}

/// Declare a group of benchmark functions, criterion-style.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c: $crate::Criterion = $cfg;
            $($target(&mut c);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Emit `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
