//! Dense matrix–vector multiply `y = A·x` on a heterogeneous cluster.
//!
//! The matrix is distributed by `c_j`-proportional *block rows* (faster
//! machines own more rows — the paper's second design rule applied to
//! a compute-bound kernel); the vector is broadcast; each processor
//! computes its row block locally (charged `rows × m` flops); the
//! result is gathered at `P_f`.

use hbsp_collectives::plan::WorkloadPolicy;
use hbsp_core::{
    MachineTree, Partition, ProcEnv, ProcId, SpmdContext, SpmdProgram, StepOutcome, SyncScope,
};
use hbsp_sim::{NetConfig, SimError, SimOutcome, Simulator};
use hbsplib::codec;
use std::sync::Arc;

const TAG_ROWS: u32 = 0x4D01;
const TAG_X: u32 = 0x4D02;
const TAG_Y: u32 = 0x4D03;

/// A dense row-major matrix plus the input vector, held by the root.
pub struct MatVec {
    /// Row-major `n × m` matrix.
    a: Arc<Vec<f64>>,
    /// The `m`-vector.
    x: Arc<Vec<f64>>,
    n: usize,
    m: usize,
    workload: WorkloadPolicy,
}

impl MatVec {
    /// Multiply the `n × m` matrix `a` (row-major) by `x`.
    pub fn new(
        a: Arc<Vec<f64>>,
        x: Arc<Vec<f64>>,
        n: usize,
        m: usize,
        workload: WorkloadPolicy,
    ) -> Self {
        assert_eq!(a.len(), n * m, "matrix shape mismatch");
        assert_eq!(x.len(), m, "vector length mismatch");
        MatVec {
            a,
            x,
            n,
            m,
            workload,
        }
    }

    fn partition(&self, tree: &MachineTree) -> Partition {
        match self.workload {
            WorkloadPolicy::Equal => Partition::equal(self.n as u64, tree.num_procs()),
            WorkloadPolicy::Balanced => Partition::balanced_for(tree, self.n as u64),
            WorkloadPolicy::CommAware => Partition::comm_aware_for(tree, self.n as u64),
        }
        .expect("non-empty machine")
    }
}

/// Per-processor state: the owned rows, the vector, and (at the root)
/// the assembled result.
#[derive(Debug, Default, Clone)]
pub struct MatVecState {
    rows: Vec<f64>,
    row_offset: usize,
    x: Vec<f64>,
    /// `y`, assembled at the root after the final gather.
    pub y: Vec<f64>,
}

impl SpmdProgram for MatVec {
    type State = MatVecState;

    fn init(&self, _env: &ProcEnv) -> MatVecState {
        MatVecState::default()
    }

    fn step(
        &self,
        step: usize,
        env: &ProcEnv,
        state: &mut MatVecState,
        ctx: &mut dyn SpmdContext,
    ) -> StepOutcome {
        let root = env.tree.fastest_proc();
        match step {
            // Scatter row blocks and the vector together.
            0 => {
                if env.pid == root {
                    let part = self.partition(&env.tree);
                    for j in 0..env.nprocs {
                        let q = ProcId(j as u32);
                        let range = part.range(q);
                        let rows =
                            &self.a[range.start as usize * self.m..range.end as usize * self.m];
                        if q == root {
                            state.rows = rows.to_vec();
                            state.row_offset = range.start as usize;
                            state.x = self.x.as_ref().clone();
                        } else {
                            let mut payload = Vec::with_capacity(rows.len() + 1);
                            payload.push(range.start as f64);
                            payload.extend_from_slice(rows);
                            ctx.send(q, TAG_ROWS, &codec::encode_f64s(&payload));
                            ctx.send(q, TAG_X, &codec::encode_f64s(&self.x));
                        }
                    }
                }
                StepOutcome::Continue(SyncScope::global(&env.tree))
            }
            // Local multiply, then send the partial y to the root.
            1 => {
                for m in ctx.messages() {
                    match m.tag {
                        TAG_ROWS => {
                            let payload = codec::decode_f64s(m.payload);
                            state.row_offset = payload[0] as usize;
                            state.rows = payload[1..].to_vec();
                        }
                        TAG_X => state.x = codec::decode_f64s(m.payload),
                        _ => {}
                    }
                }
                let rows = state.rows.len() / self.m.max(1);
                ctx.charge((rows * self.m) as f64 * 2.0); // mul+add per entry
                let mut y_part = Vec::with_capacity(rows + 1);
                y_part.push(state.row_offset as f64);
                for r in 0..rows {
                    let row = &state.rows[r * self.m..(r + 1) * self.m];
                    y_part.push(row.iter().zip(&state.x).map(|(a, b)| a * b).sum());
                }
                if env.pid == root {
                    state.y = vec![0.0; self.n];
                    let off = y_part[0] as usize;
                    state.y[off..off + y_part.len() - 1].copy_from_slice(&y_part[1..]);
                } else {
                    ctx.send(root, TAG_Y, &codec::encode_f64s(&y_part));
                }
                StepOutcome::Continue(SyncScope::global(&env.tree))
            }
            // Root assembles y.
            _ => {
                if env.pid == root {
                    for m in ctx.messages() {
                        if m.tag == TAG_Y {
                            let payload = codec::decode_f64s(m.payload);
                            let off = payload[0] as usize;
                            state.y[off..off + payload.len() - 1].copy_from_slice(&payload[1..]);
                        }
                    }
                }
                StepOutcome::Done
            }
        }
    }
}

/// Outcome of a simulated matrix–vector multiply.
#[derive(Debug, Clone)]
pub struct MatVecRun {
    /// The product `y = A·x`.
    pub y: Vec<f64>,
    /// Model execution time.
    pub time: f64,
    /// Full simulation outcome.
    pub sim: SimOutcome,
}

/// Multiply the row-major `n × m` matrix `a` by `x` on `tree`.
pub fn simulate_matvec(
    tree: &MachineTree,
    a: &[f64],
    x: &[f64],
    n: usize,
    m: usize,
    workload: WorkloadPolicy,
) -> Result<MatVecRun, SimError> {
    let tree_arc = Arc::new(tree.clone());
    let prog = MatVec::new(Arc::new(a.to_vec()), Arc::new(x.to_vec()), n, m, workload);
    let sim = Simulator::with_config(Arc::clone(&tree_arc), NetConfig::pvm_like());
    let (outcome, states) = sim.run_with_states(&prog)?;
    let root = tree_arc.fastest_proc();
    Ok(MatVecRun {
        y: states[root.rank()].y.clone(),
        time: outcome.total_time,
        sim: outcome,
    })
}

/// Binary-heap k-way merge of sorted `u32` runs (shared with the
/// sample sort).
pub fn kway_merge_u32(runs: Vec<Vec<u32>>) -> Vec<u32> {
    use std::cmp::Reverse;
    use std::collections::BinaryHeap;
    let total: usize = runs.iter().map(Vec::len).sum();
    let mut heap: BinaryHeap<Reverse<(u32, usize, usize)>> = runs
        .iter()
        .enumerate()
        .filter(|(_, r)| !r.is_empty())
        .map(|(i, r)| Reverse((r[0], i, 0)))
        .collect();
    let mut out = Vec::with_capacity(total);
    while let Some(Reverse((v, run, pos))) = heap.pop() {
        out.push(v);
        if pos + 1 < runs[run].len() {
            heap.push(Reverse((runs[run][pos + 1], run, pos + 1)));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use hbsp_core::TreeBuilder;

    fn machine() -> MachineTree {
        TreeBuilder::flat(1.0, 200.0, &[(1.0, 1.0), (2.0, 0.5), (3.0, 0.3)]).unwrap()
    }

    fn reference(a: &[f64], x: &[f64], n: usize, m: usize) -> Vec<f64> {
        (0..n)
            .map(|i| {
                a[i * m..(i + 1) * m]
                    .iter()
                    .zip(x)
                    .map(|(p, q)| p * q)
                    .sum()
            })
            .collect()
    }

    #[test]
    fn matches_sequential_multiply() {
        let (n, m) = (37, 23);
        let a: Vec<f64> = (0..n * m).map(|i| (i % 17) as f64 - 8.0).collect();
        let x: Vec<f64> = (0..m).map(|i| 0.5 + i as f64).collect();
        let want = reference(&a, &x, n, m);
        let t = machine();
        for wl in [
            WorkloadPolicy::Equal,
            WorkloadPolicy::Balanced,
            WorkloadPolicy::CommAware,
        ] {
            let run = simulate_matvec(&t, &a, &x, n, m, wl).unwrap();
            for (got, expect) in run.y.iter().zip(&want) {
                assert!((got - expect).abs() < 1e-9, "{wl:?}");
            }
        }
    }

    #[test]
    fn tiny_shapes() {
        let t = machine();
        // 1×1, 1×m, n×1, and fewer rows than processors.
        for (n, m) in [(1usize, 1usize), (1, 7), (7, 1), (2, 3)] {
            let a: Vec<f64> = (0..n * m).map(|i| i as f64).collect();
            let x: Vec<f64> = (0..m).map(|i| (i + 1) as f64).collect();
            let run = simulate_matvec(&t, &a, &x, n, m, WorkloadPolicy::Balanced).unwrap();
            assert_eq!(run.y, reference(&a, &x, n, m), "{n}x{m}");
        }
    }

    #[test]
    fn balanced_rows_beat_equal_rows() {
        let t = machine();
        let (n, m) = (600, 200);
        let a = vec![1.0; n * m];
        let x = vec![1.0; m];
        let eq = simulate_matvec(&t, &a, &x, n, m, WorkloadPolicy::Equal)
            .unwrap()
            .time;
        let bal = simulate_matvec(&t, &a, &x, n, m, WorkloadPolicy::Balanced)
            .unwrap()
            .time;
        assert!(bal < eq, "balanced {bal} vs equal {eq}");
    }

    #[test]
    fn kway_merge_merges() {
        let merged = kway_merge_u32(vec![vec![1, 4, 7], vec![], vec![2, 3, 9], vec![5]]);
        assert_eq!(merged, vec![1, 2, 3, 4, 5, 7, 9]);
        assert!(kway_merge_u32(vec![]).is_empty());
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn shape_mismatch_panics() {
        MatVec::new(
            Arc::new(vec![0.0; 5]),
            Arc::new(vec![0.0; 2]),
            2,
            2,
            WorkloadPolicy::Equal,
        );
    }
}
