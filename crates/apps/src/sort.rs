//! Heterogeneous parallel sample sort (PSRS-style), built on the
//! paper's design rules.
//!
//! Phases (each a superstep):
//!
//! 1. `P_f` scatters `c_j`-proportional shares;
//! 2. each processor sorts its share locally (charged `n_j log n_j`
//!    work) and sends `p` regular samples to `P_f`;
//! 3. `P_f` sorts the sample pool, picks `p − 1` splitters, and sends
//!    them to everyone;
//! 4. each processor partitions its sorted run by the splitters and
//!    ships bucket `j` to processor `j` (a personalized all-to-all);
//! 5. everyone merges its incoming runs; bucket `j` now holds the
//!    `j`-th sorted slice of the global array.
//!
//! The array ends *distributed* in rank order — concatenating the
//! buckets yields the sorted array — which is how a BSP sort leaves
//! its output.

use crate::matvec::kway_merge_u32;
use hbsp_collectives::data::{decode_bundle, encode_bundle};
use hbsp_collectives::plan::{RootPolicy, WorkloadPolicy};
use hbsp_collectives::shares_for;
use hbsp_core::{MachineTree, ProcEnv, ProcId, SpmdContext, SpmdProgram, StepOutcome, SyncScope};
use hbsp_sim::{NetConfig, SimError, SimOutcome, Simulator};
use hbsplib::codec;
use std::sync::Arc;

const TAG_SHARE: u32 = 0x5301;
const TAG_SAMPLES: u32 = 0x5302;
const TAG_SPLITTERS: u32 = 0x5303;
const TAG_BUCKET: u32 = 0x5304;

/// Work units for sorting `n` items.
fn sort_work(n: usize) -> f64 {
    if n < 2 {
        1.0
    } else {
        n as f64 * (n as f64).log2()
    }
}

/// Per-processor sample-sort state.
#[derive(Debug, Default, Clone)]
pub struct SortState {
    run: Vec<u32>,
    splitters: Vec<u32>,
    /// The final sorted bucket owned by this processor.
    pub bucket: Vec<u32>,
}

/// The sample-sort program.
pub struct SampleSort {
    items: Arc<Vec<u32>>,
    workload: WorkloadPolicy,
    root: RootPolicy,
}

impl SampleSort {
    /// Sort `items`, initially held by the coordinator (`P_f`),
    /// distributing shares by `workload`.
    pub fn new(items: Arc<Vec<u32>>, workload: WorkloadPolicy) -> Self {
        SampleSort {
            items,
            workload,
            root: RootPolicy::Fastest,
        }
    }

    /// Override the coordinating processor — `RootPolicy::Rank(0)` +
    /// `WorkloadPolicy::Equal` is what a heterogeneity-oblivious BSP
    /// port would do.
    pub fn with_root(mut self, root: RootPolicy) -> Self {
        self.root = root;
        self
    }
}

impl SpmdProgram for SampleSort {
    type State = SortState;

    fn init(&self, _env: &ProcEnv) -> SortState {
        SortState::default()
    }

    fn step(
        &self,
        step: usize,
        env: &ProcEnv,
        state: &mut SortState,
        ctx: &mut dyn SpmdContext,
    ) -> StepOutcome {
        let root = self
            .root
            .resolve(&env.tree)
            .expect("sort root must be a valid rank");
        let p = env.nprocs;
        match step {
            // Phase 1: scatter shares from the root.
            0 => {
                if env.pid == root {
                    let shares = shares_for(&env.tree, &self.items, self.workload);
                    for (j, piece) in shares.into_iter().enumerate() {
                        let q = ProcId(j as u32);
                        if q == root {
                            state.run = piece.items;
                        } else {
                            ctx.send(q, TAG_SHARE, &encode_bundle(&[piece]));
                        }
                    }
                }
                StepOutcome::Continue(SyncScope::global(&env.tree))
            }
            // Phase 2: local sort + regular sampling.
            1 => {
                for m in ctx.messages() {
                    if m.tag == TAG_SHARE {
                        state.run = decode_bundle(m.payload)
                            .expect("own wire format")
                            .pop()
                            .expect("one share")
                            .items;
                    }
                }
                let run = std::mem::take(&mut state.run);
                ctx.charge(sort_work(run.len()));
                let mut run = run;
                run.sort_unstable();
                // p regular samples (or fewer if the run is tiny).
                let samples: Vec<u32> = if run.is_empty() {
                    Vec::new()
                } else {
                    (0..p).map(|i| run[i * run.len() / p]).collect()
                };
                if env.pid == root {
                    // Root's samples stay local, stashed in splitters
                    // until the pool is complete.
                    state.splitters = samples;
                } else {
                    ctx.send(root, TAG_SAMPLES, &codec::encode_u32s(&samples));
                }
                state.run = run;
                StepOutcome::Continue(SyncScope::global(&env.tree))
            }
            // Phase 3: the root selects and distributes splitters.
            2 => {
                if env.pid == root {
                    let mut pool = std::mem::take(&mut state.splitters);
                    for m in ctx.messages() {
                        if m.tag == TAG_SAMPLES {
                            pool.extend(codec::decode_u32s(m.payload));
                        }
                    }
                    ctx.charge(sort_work(pool.len()));
                    pool.sort_unstable();
                    let splitters: Vec<u32> = if pool.is_empty() {
                        Vec::new()
                    } else {
                        (1..p).map(|i| pool[i * pool.len() / p]).collect()
                    };
                    for j in 0..p {
                        let q = ProcId(j as u32);
                        if q == root {
                            state.splitters = splitters.clone();
                        } else {
                            ctx.send(q, TAG_SPLITTERS, &codec::encode_u32s(&splitters));
                        }
                    }
                }
                StepOutcome::Continue(SyncScope::global(&env.tree))
            }
            // Phase 4: bucket exchange.
            3 => {
                for m in ctx.messages() {
                    if m.tag == TAG_SPLITTERS {
                        state.splitters = codec::decode_u32s(m.payload);
                    }
                }
                let run = std::mem::take(&mut state.run);
                let splitters = &state.splitters;
                // Bucket boundaries by binary search in the sorted run.
                let mut bounds = Vec::with_capacity(p + 1);
                bounds.push(0usize);
                for s in splitters {
                    bounds.push(run.partition_point(|&v| v <= *s));
                }
                // Degenerate case (empty global input): no splitters
                // were produced — everything (nothing) lands in the
                // leading buckets.
                while bounds.len() < p {
                    bounds.push(run.len());
                }
                bounds.push(run.len());
                ctx.charge((splitters.len() as f64 + 1.0) * (run.len().max(1) as f64).log2());
                for j in 0..p {
                    let lo = bounds[j];
                    let hi = bounds[j + 1].max(lo);
                    let bucket = &run[lo..hi];
                    let q = ProcId(j as u32);
                    if q == env.pid {
                        state.bucket = bucket.to_vec();
                    } else {
                        ctx.send(q, TAG_BUCKET, &codec::encode_u32s(bucket));
                    }
                }
                StepOutcome::Continue(SyncScope::global(&env.tree))
            }
            // Phase 5: merge incoming runs.
            _ => {
                let mut runs: Vec<Vec<u32>> = vec![std::mem::take(&mut state.bucket)];
                for m in ctx.messages() {
                    if m.tag == TAG_BUCKET {
                        runs.push(codec::decode_u32s(m.payload));
                    }
                }
                let total: usize = runs.iter().map(Vec::len).sum();
                ctx.charge(total as f64 * (runs.len().max(2) as f64).log2());
                state.bucket = kway_merge_u32(runs);
                StepOutcome::Done
            }
        }
    }
}

/// Outcome of a simulated sample sort.
#[derive(Debug, Clone)]
pub struct SampleSortRun {
    /// The globally sorted array (buckets concatenated in rank order).
    pub sorted: Vec<u32>,
    /// Final bucket length per processor — the load balance the
    /// splitters achieved.
    pub bucket_sizes: Vec<usize>,
    /// Model execution time.
    pub time: f64,
    /// Full simulation outcome.
    pub sim: SimOutcome,
}

/// Sort `items` on `tree` with the given share policy.
pub fn simulate_sample_sort(
    tree: &MachineTree,
    items: &[u32],
    workload: WorkloadPolicy,
) -> Result<SampleSortRun, SimError> {
    simulate_sample_sort_with(tree, NetConfig::pvm_like(), items, workload)
}

/// Sample sort with explicit microcosts.
pub fn simulate_sample_sort_with(
    tree: &MachineTree,
    cfg: NetConfig,
    items: &[u32],
    workload: WorkloadPolicy,
) -> Result<SampleSortRun, SimError> {
    simulate_sample_sort_plan(tree, cfg, items, workload, RootPolicy::Fastest)
}

/// Sample sort with explicit microcosts and coordinator choice.
pub fn simulate_sample_sort_plan(
    tree: &MachineTree,
    cfg: NetConfig,
    items: &[u32],
    workload: WorkloadPolicy,
    root: RootPolicy,
) -> Result<SampleSortRun, SimError> {
    let tree = Arc::new(tree.clone());
    let prog = SampleSort::new(Arc::new(items.to_vec()), workload).with_root(root);
    let sim = Simulator::with_config(Arc::clone(&tree), cfg);
    let (outcome, states) = sim.run_with_states(&prog)?;
    let bucket_sizes: Vec<usize> = states.iter().map(|s| s.bucket.len()).collect();
    let mut sorted = Vec::with_capacity(items.len());
    for s in &states {
        sorted.extend_from_slice(&s.bucket);
    }
    Ok(SampleSortRun {
        sorted,
        bucket_sizes,
        time: outcome.total_time,
        sim: outcome,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use hbsp_core::TreeBuilder;

    fn items(n: usize, seed: u64) -> Vec<u32> {
        let mut x = seed | 1;
        (0..n)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                x as u32
            })
            .collect()
    }

    fn machine() -> MachineTree {
        TreeBuilder::flat(
            1.0,
            500.0,
            &[(1.0, 1.0), (1.5, 0.7), (2.0, 0.5), (3.0, 0.35), (3.5, 0.25)],
        )
        .unwrap()
    }

    #[test]
    fn sorts_correctly() {
        let t = machine();
        let data = items(20_000, 99);
        let mut expected = data.clone();
        expected.sort_unstable();
        for wl in [
            WorkloadPolicy::Equal,
            WorkloadPolicy::Balanced,
            WorkloadPolicy::CommAware,
        ] {
            let run = simulate_sample_sort(&t, &data, wl).unwrap();
            assert_eq!(run.sorted, expected, "{wl:?}");
            assert_eq!(run.bucket_sizes.iter().sum::<usize>(), data.len());
        }
    }

    #[test]
    fn handles_duplicates_and_tiny_inputs() {
        let t = machine();
        for data in [vec![], vec![5], vec![3, 3, 3, 3, 3], items(17, 4)] {
            let mut expected = data.clone();
            expected.sort_unstable();
            let run = simulate_sample_sort(&t, &data, WorkloadPolicy::Equal).unwrap();
            assert_eq!(run.sorted, expected, "{data:?}");
        }
    }

    #[test]
    fn splitters_balance_buckets_reasonably() {
        let t = machine();
        let data = items(50_000, 7);
        let run = simulate_sample_sort(&t, &data, WorkloadPolicy::Equal).unwrap();
        let max = *run.bucket_sizes.iter().max().unwrap();
        // PSRS-style regular sampling bounds buckets by ~2n/p.
        assert!(
            max <= 2 * data.len() / run.bucket_sizes.len() + 1,
            "bucket sizes {:?}",
            run.bucket_sizes
        );
    }

    #[test]
    fn single_processor_sorts() {
        let mut b = TreeBuilder::new(1.0);
        b.proc_root("solo", hbsp_core::NodeParams::fastest());
        let t = b.build().unwrap();
        let data = items(1000, 3);
        let mut expected = data.clone();
        expected.sort_unstable();
        let run = simulate_sample_sort(&t, &data, WorkloadPolicy::Balanced).unwrap();
        assert_eq!(run.sorted, expected);
    }

    #[test]
    fn bsp_oblivious_configuration_is_slower() {
        // Rank-0 root + equal shares (what a BSP port does) vs the
        // HBSP-aware fastest-root + balanced shares. Use a machine
        // whose rank 0 is slow, as in an arbitrary enumeration order.
        let t = TreeBuilder::flat(
            1.0,
            500.0,
            &[(3.5, 0.25), (1.5, 0.7), (2.0, 0.5), (3.0, 0.35), (1.0, 1.0)],
        )
        .unwrap();
        let data = items(60_000, 5);
        let cfg = hbsp_sim::NetConfig::pvm_like();
        let bsp = simulate_sample_sort_plan(
            &t,
            cfg.clone(),
            &data,
            WorkloadPolicy::Equal,
            RootPolicy::Rank(0),
        )
        .unwrap();
        let hbsp = simulate_sample_sort_plan(
            &t,
            cfg,
            &data,
            WorkloadPolicy::Balanced,
            RootPolicy::Fastest,
        )
        .unwrap();
        let mut expected = data;
        expected.sort_unstable();
        assert_eq!(bsp.sorted, expected);
        assert_eq!(hbsp.sorted, expected);
        assert!(
            hbsp.time < bsp.time * 0.8,
            "HBSP-aware config should win clearly: {} vs {}",
            hbsp.time,
            bsp.time
        );
    }

    #[test]
    fn balanced_shares_speed_up_the_sort() {
        let t = machine();
        let data = items(100_000, 1);
        let equal = simulate_sample_sort(&t, &data, WorkloadPolicy::Equal)
            .unwrap()
            .time;
        let balanced = simulate_sample_sort(&t, &data, WorkloadPolicy::Balanced)
            .unwrap()
            .time;
        assert!(
            balanced < equal,
            "compute-bound phases reward c_j balancing: {balanced} vs {equal}"
        );
    }
}
