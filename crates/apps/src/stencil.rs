//! Iterative 1-D Jacobi stencil (heat diffusion) with halo exchange —
//! the classic repeated-superstep SPMD pattern, here with
//! `c_j`-proportional domain decomposition so slow machines own
//! smaller subdomains.
//!
//! Each iteration is one superstep: exchange boundary cells with the
//! left/right neighbours, then relax `u[i] ← (u[i−1] + u[i+1]) / 2`
//! over the interior (charged one work unit per cell). Fixed boundary
//! conditions; after enough iterations the solution approaches the
//! linear steady state.

use hbsp_collectives::plan::WorkloadPolicy;
use hbsp_core::{
    MachineTree, Partition, ProcEnv, ProcId, SpmdContext, SpmdProgram, StepOutcome, SyncScope,
};
use hbsp_sim::{NetConfig, SimError, SimOutcome, Simulator};
use hbsplib::codec;
use std::sync::Arc;

const TAG_HALO_LEFT: u32 = 0x4801; // carries my leftmost cell, to my left neighbour
const TAG_HALO_RIGHT: u32 = 0x4802; // carries my rightmost cell, to my right neighbour
const TAG_RESULT: u32 = 0x4803;

/// The stencil program.
pub struct Stencil {
    /// Initial global field (including the two fixed boundary cells).
    field: Arc<Vec<f64>>,
    iterations: usize,
    workload: WorkloadPolicy,
}

impl Stencil {
    /// Relax `field` for `iterations` sweeps, decomposing by
    /// `workload`. The first and last cells are fixed boundaries.
    pub fn new(field: Arc<Vec<f64>>, iterations: usize, workload: WorkloadPolicy) -> Self {
        assert!(field.len() >= 2, "need at least the two boundary cells");
        Stencil {
            field,
            iterations,
            workload,
        }
    }

    fn partition(&self, tree: &MachineTree) -> Partition {
        let interior = (self.field.len() - 2) as u64;
        match self.workload {
            WorkloadPolicy::Equal => Partition::equal(interior, tree.num_procs()),
            WorkloadPolicy::Balanced => Partition::balanced_for(tree, interior),
            WorkloadPolicy::CommAware => Partition::comm_aware_for(tree, interior),
        }
        .expect("non-empty machine")
    }
}

/// Per-processor state: the owned slice plus halo cells.
#[derive(Debug, Default, Clone)]
pub struct StencilState {
    /// Owned interior cells.
    pub cells: Vec<f64>,
    /// Global index of `cells[0]` (1-based within the field, since
    /// index 0 is the left boundary).
    pub offset: usize,
    left_halo: f64,
    right_halo: f64,
    /// The *data* neighbours: owners of the adjacent interior cells
    /// (`None` when the adjacent cell is a fixed boundary). With
    /// heterogeneous shares a rank can own zero cells, so the data
    /// neighbour is not necessarily rank ± 1.
    left_neighbor: Option<ProcId>,
    right_neighbor: Option<ProcId>,
    /// The assembled final field (root only).
    pub result: Vec<f64>,
}

impl SpmdProgram for Stencil {
    type State = StencilState;

    fn init(&self, env: &ProcEnv) -> StencilState {
        // Everyone derives its own slice from the shared initial field —
        // deterministic, no scatter needed (mirrors applications whose
        // input is generated in place).
        let part = self.partition(&env.tree);
        let range = part.range(env.pid);
        let offset = 1 + range.start as usize;
        let cells = self.field[offset..offset + (range.end - range.start) as usize].to_vec();
        let left_halo = self.field[offset - 1];
        let right_halo = self.field[offset + cells.len()];
        // Owners of the adjacent interior cells; every processor
        // evaluates the same deterministic partition, so both sides
        // agree on who exchanges with whom.
        let (left_neighbor, right_neighbor) = if cells.is_empty() {
            (None, None)
        } else {
            let left = if range.start > 0 {
                part.owner(range.start - 1)
            } else {
                None
            };
            let right = part.owner(range.end);
            (left, right)
        };
        StencilState {
            cells,
            offset,
            left_halo,
            right_halo,
            left_neighbor,
            right_neighbor,
            result: Vec::new(),
        }
    }

    fn step(
        &self,
        step: usize,
        env: &ProcEnv,
        state: &mut StencilState,
        ctx: &mut dyn SpmdContext,
    ) -> StepOutcome {
        if step < self.iterations {
            // Absorb halos from the previous exchange.
            for m in ctx.messages() {
                let v = codec::decode_f64s(m.payload)[0];
                match m.tag {
                    // The right neighbour sent its leftmost cell.
                    TAG_HALO_LEFT => state.right_halo = v,
                    // The left neighbour sent its rightmost cell.
                    TAG_HALO_RIGHT => state.left_halo = v,
                    _ => {}
                }
            }
            // Relax.
            if !state.cells.is_empty() {
                ctx.charge(state.cells.len() as f64);
                let old = state.cells.clone();
                let n = old.len();
                for i in 0..n {
                    let left = if i == 0 { state.left_halo } else { old[i - 1] };
                    let right = if i + 1 == n {
                        state.right_halo
                    } else {
                        old[i + 1]
                    };
                    state.cells[i] = 0.5 * (left + right);
                }
            }
            // Exchange halos for the next sweep, with the *data*
            // neighbours (owners of the adjacent cells). Boundary-facing
            // sides keep their fixed halo.
            if let Some(left) = state.left_neighbor {
                ctx.send(left, TAG_HALO_LEFT, &codec::encode_f64s(&[state.cells[0]]));
            }
            if let Some(right) = state.right_neighbor {
                ctx.send(
                    right,
                    TAG_HALO_RIGHT,
                    &codec::encode_f64s(&[*state.cells.last().unwrap()]),
                );
            }
            return StepOutcome::Continue(SyncScope::global(&env.tree));
        }
        if step == self.iterations {
            // Gather the field at the fastest processor.
            let root = env.tree.fastest_proc();
            if env.pid != root {
                let mut payload = Vec::with_capacity(state.cells.len() + 1);
                payload.push(state.offset as f64);
                payload.extend_from_slice(&state.cells);
                ctx.send(root, TAG_RESULT, &codec::encode_f64s(&payload));
            }
            return StepOutcome::Continue(SyncScope::global(&env.tree));
        }
        // Final: root assembles.
        let root = env.tree.fastest_proc();
        if env.pid == root {
            let mut field = self.field.as_ref().clone();
            field[state.offset..state.offset + state.cells.len()].copy_from_slice(&state.cells);
            for m in ctx.messages() {
                if m.tag == TAG_RESULT {
                    let payload = codec::decode_f64s(m.payload);
                    let off = payload[0] as usize;
                    field[off..off + payload.len() - 1].copy_from_slice(&payload[1..]);
                }
            }
            state.result = field;
        }
        StepOutcome::Done
    }
}

/// Outcome of a simulated stencil run.
#[derive(Debug, Clone)]
pub struct StencilRun {
    /// The relaxed field (boundaries included).
    pub field: Vec<f64>,
    /// Model execution time.
    pub time: f64,
    /// Full simulation outcome.
    pub sim: SimOutcome,
}

/// Relax `field` for `iterations` Jacobi sweeps on `tree`.
pub fn simulate_stencil(
    tree: &MachineTree,
    field: &[f64],
    iterations: usize,
    workload: WorkloadPolicy,
) -> Result<StencilRun, SimError> {
    let tree_arc = Arc::new(tree.clone());
    let prog = Stencil::new(Arc::new(field.to_vec()), iterations, workload);
    let sim = Simulator::with_config(Arc::clone(&tree_arc), NetConfig::pvm_like());
    let (outcome, states) = sim.run_with_states(&prog)?;
    let root = tree_arc.fastest_proc();
    Ok(StencilRun {
        field: states[root.rank()].result.clone(),
        time: outcome.total_time,
        sim: outcome,
    })
}

/// Sequential reference Jacobi.
pub fn reference_jacobi(field: &[f64], iterations: usize) -> Vec<f64> {
    let mut u = field.to_vec();
    let n = u.len();
    for _ in 0..iterations {
        let old = u.clone();
        for i in 1..n - 1 {
            u[i] = 0.5 * (old[i - 1] + old[i + 1]);
        }
    }
    u
}

#[cfg(test)]
mod tests {
    use super::*;
    use hbsp_core::TreeBuilder;

    fn machine() -> MachineTree {
        TreeBuilder::flat(1.0, 50.0, &[(1.0, 1.0), (1.5, 0.7), (2.5, 0.4), (3.0, 0.3)]).unwrap()
    }

    fn hot_rod(n: usize) -> Vec<f64> {
        // Left boundary hot, right cold, interior zero.
        let mut f = vec![0.0; n];
        f[0] = 100.0;
        f
    }

    #[test]
    fn matches_sequential_jacobi_exactly() {
        let t = machine();
        let field = hot_rod(64);
        for iters in [0usize, 1, 2, 7, 30] {
            let want = reference_jacobi(&field, iters);
            for wl in [WorkloadPolicy::Equal, WorkloadPolicy::Balanced] {
                let run = simulate_stencil(&t, &field, iters, wl).unwrap();
                for (a, b) in run.field.iter().zip(&want) {
                    assert!((a - b).abs() < 1e-12, "iters={iters} {wl:?}");
                }
            }
        }
    }

    #[test]
    fn converges_toward_linear_steady_state() {
        let t = machine();
        let field = hot_rod(34);
        let run = simulate_stencil(&t, &field, 4000, WorkloadPolicy::Balanced).unwrap();
        // Steady state of u'' = 0 with u(0)=100, u(n-1)=0 is linear.
        let n = run.field.len();
        for (i, v) in run.field.iter().enumerate() {
            let expect = 100.0 * (1.0 - i as f64 / (n - 1) as f64);
            assert!((v - expect).abs() < 1.0, "cell {i}: {v} vs {expect}");
        }
    }

    #[test]
    fn more_iterations_cost_more_time() {
        let t = machine();
        let field = hot_rod(1000);
        let t10 = simulate_stencil(&t, &field, 10, WorkloadPolicy::Balanced)
            .unwrap()
            .time;
        let t50 = simulate_stencil(&t, &field, 50, WorkloadPolicy::Balanced)
            .unwrap()
            .time;
        assert!(t50 > t10 * 3.0);
    }

    #[test]
    fn empty_middle_owner_still_correct() {
        // Speeds force the middle processor to own zero cells for tiny
        // fields — its neighbours must exchange with each other, not
        // with rank ± 1.
        let t = TreeBuilder::flat(1.0, 10.0, &[(1.0, 1.0), (5.0, 0.05), (1.0, 1.0)]).unwrap();
        let field = hot_rod(4); // 2 interior cells
        let want = reference_jacobi(&field, 12);
        let run = simulate_stencil(&t, &field, 12, WorkloadPolicy::Balanced).unwrap();
        for (a, b) in run.field.iter().zip(&want) {
            assert!((a - b).abs() < 1e-12, "{:?} vs {:?}", run.field, want);
        }
    }

    #[test]
    fn tiny_field_fewer_cells_than_procs() {
        let t = machine();
        let field = hot_rod(4); // 2 interior cells over 4 procs
        let want = reference_jacobi(&field, 5);
        let run = simulate_stencil(&t, &field, 5, WorkloadPolicy::Equal).unwrap();
        for (a, b) in run.field.iter().zip(&want) {
            assert!((a - b).abs() < 1e-12);
        }
    }
}
