//! # hbsp-apps — heterogeneous applications on the HBSP^k stack
//!
//! The paper's conclusion calls for "designing HBSP^k applications that
//! can take advantage of our efficient heterogeneous communication
//! algorithms". This crate does exactly that: complete SPMD
//! applications written against `hbsplib` and the collectives, runnable
//! on either engine, with the model's two design rules applied
//! throughout (fastest machines coordinate; workloads follow `c_j`):
//!
//! * [`sort`] — heterogeneous parallel sample sort: balanced scatter,
//!   local sort, splitter selection at `P_f`, bucket exchange, local
//!   merge — ends with a globally sorted distributed array;
//! * [`matvec`] — dense matrix–vector multiply: `c_j`-proportional
//!   block-row distribution, all-gather of the vector, local compute,
//!   gather of the result;
//! * [`stencil`] — iterative 1-D Jacobi relaxation with halo exchange:
//!   the repeated-superstep pattern, with heterogeneous domain
//!   decomposition.

#![forbid(unsafe_code)]

pub mod matvec;
pub mod sort;
pub mod stencil;

pub use matvec::{simulate_matvec, MatVecRun};
pub use sort::{simulate_sample_sort, SampleSortRun};
pub use stencil::{reference_jacobi, simulate_stencil, StencilRun};
