//! Ordering-mutation tests: weaken one labeled `site_ord!` site at a
//! time and assert the checker detects a data race *and names the
//! weakened site*. This is the evidence that each ordering in
//! `docs/ordering_audit.md` is load-bearing — and that the checker
//! would catch a regression that weakened it.
//!
//! Sites whose orderings are *not* mutation-tested here are the ones
//! the audit documents as redundant edges (`hier.generation.pin`) or
//! double-covered by a mutex clock (the engine's `failed` / `finished`
//! flags); weakening those cannot produce an observable race.

use hbsp_race::scenarios::{self, Machine};
use hbsp_runtime::BarrierKind;
use std::sync::atomic::Ordering;

/// Exploration budget for finding a seeded race: exhaustive DFS first,
/// seeded random walks as a backstop for the deeper interleavings.
fn mutated(label: &str, ord: Ordering) -> weave::Config {
    weave::Config {
        overrides: vec![(label.to_string(), ord)],
        max_executions: 200_000,
        random_walks: 500,
        seed: 0x5EED_0001,
        ..weave::Config::default()
    }
}

/// The failure must be a data race, name the mutated site, and carry a
/// replayable trace + schedule.
fn assert_names_site(out: &weave::Outcome, label: &str) {
    let f = out.expect_failure(&format!("weakened `{label}` must be detected"));
    assert_eq!(
        f.kind,
        weave::FailureKind::DataRace,
        "failure: {}",
        f.message
    );
    assert!(
        f.message.contains(label),
        "race report must name the weakened site `{label}`; got: {}",
        f.message
    );
    assert!(
        f.message.contains("scenarios.rs") || f.trace.contains("scenarios.rs"),
        "race report must point at the racing accesses; got: {}\n{}",
        f.message,
        f.trace
    );
    assert!(
        !f.schedule.is_empty(),
        "failure must carry a replayable schedule"
    );
    assert!(!f.trace.is_empty(), "failure must carry an event trace");
    println!(
        "`{label}` -> {:?} detected on execution {} ({} schedule steps)",
        f.kind,
        f.execution,
        f.schedule.len()
    );
}

#[test]
fn weakened_arrive_combine_is_detected() {
    // `hier.arrive.combine` (AcqRel fetch_add) carries the owner-phase
    // slot writes up the combining tree to the leader. Relaxed severs
    // the release side: the leader's gather reads race the owners'
    // writes.
    let label = "hier.arrive.combine";
    let out = weave::explore(&mutated(label, Ordering::Relaxed), || {
        scenarios::barrier_publish(BarrierKind::Hierarchical, Machine::Flat2, 1)
    });
    assert_names_site(&out, label);
}

#[test]
fn acquire_only_arrive_combine_is_detected() {
    // Direction sensitivity: keeping only the acquire half still
    // loses the arrival's publication — the leader races the owners.
    let label = "hier.arrive.combine";
    let out = weave::explore(&mutated(label, Ordering::Acquire), || {
        scenarios::barrier_publish(BarrierKind::Hierarchical, Machine::Flat2, 1)
    });
    assert_names_site(&out, label);
}

#[test]
fn weakened_generation_flip_is_detected() {
    // `hier.generation.flip` (AcqRel fetch_add) publishes the leader
    // section to spin/yield waiters polling the generation. Relaxed
    // means a poll-released waiter reads `result` without ordering.
    // (Parked waiters are masked by the condvar's own clock — the
    // checker must find the spin-release interleaving.)
    let label = "hier.generation.flip";
    let out = weave::explore(&mutated(label, Ordering::Relaxed), || {
        scenarios::barrier_publish(BarrierKind::Hierarchical, Machine::Flat2, 1)
    });
    assert_names_site(&out, label);
}

#[test]
fn weakened_generation_poll_is_detected() {
    // The acquire side of the same edge: a Relaxed poll observes the
    // flipped generation without joining the leader's clock.
    let label = "hier.generation.poll";
    let out = weave::explore(&mutated(label, Ordering::Relaxed), || {
        scenarios::barrier_publish(BarrierKind::Hierarchical, Machine::Flat2, 1)
    });
    assert_names_site(&out, label);
}

#[test]
fn weakened_abort_publish_is_detected() {
    // `hier.abort.publish` (Release store of ABORT_DEAD) publishes the
    // abort claimant's error recording to late arrivers that observe
    // the dead barrier on entry. Relaxed clears the store's release
    // clock, so the late arriver's error read races the claimant's
    // write. Eager timeouts let the abort win while rank 0 straggles.
    let label = "hier.abort.publish";
    let cfg = weave::Config {
        eager_timeouts: true,
        ..mutated(label, Ordering::Relaxed)
    };
    let out = weave::explore(&cfg, || scenarios::watchdog_races_release(Machine::Flat2));
    assert_names_site(&out, label);
}

#[test]
fn unmutated_control_is_clean() {
    // Sanity: the same scenarios under the same budgets, with no
    // override, are clean — the failures above come from the mutation,
    // not from the scenario or budget.
    let cfg = weave::Config {
        max_executions: 200_000,
        ..weave::Config::default()
    };
    weave::explore(&cfg, || {
        scenarios::barrier_publish(BarrierKind::Hierarchical, Machine::Flat2, 1)
    })
    .assert_clean("unmutated barrier publish");
    let cfg = weave::Config {
        eager_timeouts: true,
        max_executions: 200_000,
        ..weave::Config::default()
    };
    weave::explore(&cfg, || scenarios::watchdog_races_release(Machine::Flat2))
        .assert_clean("unmutated watchdog");
}
