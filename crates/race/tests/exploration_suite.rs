//! The unmutated runtime under exhaustive exploration: every barrier,
//! watchdog, and mailbox protocol must be free of data races, lost
//! wakeups, deadlocks, and runaway spins across *all* interleavings
//! within the preemption bound (2–3 threads), and the whole engine
//! must stay clean under seeded random walks.
//!
//! Each test prints the explored interleaving count and seed so CI
//! logs show the actual coverage.

use hbsp_race::scenarios::{self, Machine};
use hbsp_runtime::BarrierKind;

fn exhaustive() -> weave::Config {
    weave::Config {
        max_executions: 400_000,
        ..weave::Config::default()
    }
}

fn report(what: &str, out: &weave::Outcome) {
    println!(
        "{what}: {} interleavings (exhausted: {}, max depth {}, seed {:#x})",
        out.stats.executions, out.stats.exhausted, out.stats.max_depth, out.stats.seed
    );
}

#[test]
fn hier_barrier_flat2_is_clean_exhaustively() {
    let out = weave::explore(&exhaustive(), || {
        scenarios::barrier_publish(BarrierKind::Hierarchical, Machine::Flat2, 1)
    });
    report("hier flat2 x1", &out);
    out.assert_clean("hier barrier, 2 threads, 1 generation");
    assert!(out.stats.exhausted, "2-thread barrier must be exhaustible");
}

#[test]
fn hier_barrier_sense_reversal_is_clean_exhaustively() {
    // Two generations: a waiter of generation 1 must never be
    // released by a stale generation-0 flip (sense reversal).
    let out = weave::explore(&exhaustive(), || {
        scenarios::barrier_publish(BarrierKind::Hierarchical, Machine::Flat2, 2)
    });
    report("hier flat2 x2", &out);
    out.assert_clean("hier barrier, 2 threads, 2 generations");
    assert!(
        out.stats.exhausted,
        "2-generation barrier must be exhaustible"
    );
}

#[test]
#[ignore = "~50k interleavings; run via the CI race job (--include-ignored)"]
fn hier_barrier_clustered3_is_clean_exhaustively() {
    // Three threads across two combining levels: the last arriver of
    // the pair cluster re-arrives at the root.
    let out = weave::explore(&exhaustive(), || {
        scenarios::barrier_publish(BarrierKind::Hierarchical, Machine::Clustered3, 1)
    });
    report("hier clustered3 x1", &out);
    out.assert_clean("hier barrier, 3 threads, 2 levels");
}

#[test]
fn central_barrier_is_clean_exhaustively() {
    let out = weave::explore(&exhaustive(), || {
        scenarios::barrier_publish(BarrierKind::Central, Machine::Flat2, 2)
    });
    report("central flat2 x2", &out);
    out.assert_clean("central barrier, 2 threads, 2 generations");
    assert!(out.stats.exhausted, "central barrier must be exhaustible");
}

#[test]
fn central_barrier_three_parties_is_clean() {
    let out = weave::explore(&exhaustive(), || {
        scenarios::barrier_publish(BarrierKind::Central, Machine::Clustered3, 1)
    });
    report("central clustered3 x1", &out);
    out.assert_clean("central barrier, 3 threads");
}

#[test]
fn park_only_policy_is_clean_exhaustively() {
    // One modeled core: the spin budget is zero (`spin_iters` sees an
    // oversubscribed host), so waiters go straight to yield → park —
    // the opposite end of the spin↔park policy from the default
    // 64-core model.
    let cfg = weave::Config {
        cores: 1,
        ..exhaustive()
    };
    let out = weave::explore(&cfg, || {
        scenarios::barrier_publish(BarrierKind::Hierarchical, Machine::Flat2, 2)
    });
    report("hier flat2 x2 (park-only)", &out);
    out.assert_clean("hier barrier with parking-only waiters");
    assert!(out.stats.exhausted, "park-only policy must be exhaustible");
}

#[test]
fn watchdog_abort_racing_release_is_clean() {
    // Eager timeouts: the watchdog deadline genuinely races healthy
    // arrival, so both the normal-release and the claimed-abort
    // branches (and their interleavings) are explored.
    let cfg = weave::Config {
        eager_timeouts: true,
        ..exhaustive()
    };
    let out = weave::explore(&cfg, || scenarios::watchdog_races_release(Machine::Flat2));
    report("watchdog flat2", &out);
    out.assert_clean("watchdog abort vs normal release, 2 threads");
    assert!(out.stats.exhausted, "watchdog race must be exhaustible");
}

#[test]
#[ignore = "~280k interleavings; run via the CI race job (--include-ignored)"]
fn watchdog_abort_three_parties_is_clean() {
    let cfg = weave::Config {
        eager_timeouts: true,
        ..exhaustive()
    };
    let out = weave::explore(&cfg, || {
        scenarios::watchdog_races_release(Machine::Clustered3)
    });
    report("watchdog clustered3", &out);
    out.assert_clean("watchdog abort vs normal release, 3 threads");
}

#[test]
fn mailbox_circulation_is_clean_exhaustively() {
    let out = weave::explore(&exhaustive(), || scenarios::mailbox_circulation(2, 2));
    report("mailbox 2x2", &out);
    out.assert_clean("mailbox deposit_batch vs drain");
    assert!(out.stats.exhausted, "2-thread mailbox must be exhaustible");
}

#[test]
fn engine_smoke_is_clean_under_random_walks() {
    // The full engine has far too many decision points for exhaustive
    // DFS; seeded random walks still drive slot writes, leader
    // gather, delivery, and teardown through hundreds of distinct
    // interleavings.
    let cfg = weave::Config {
        max_executions: 1,
        random_walks: 150,
        seed: 0xB5B5_0001,
        max_steps: 200_000,
        ..weave::Config::default()
    };
    let out = weave::explore(&cfg, || scenarios::engine_smoke(2));
    report("engine smoke p=2 x2", &out);
    out.assert_clean("threaded engine, 2 processors, 2 supersteps");
}
