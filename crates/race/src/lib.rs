//! `hbsp-race` — model checking + happens-before race detection for
//! the runtime's unsafe concurrency core.
//!
//! This crate builds `hbsp-runtime` with its `model` feature, which
//! routes the runtime's sync facade (`hbsp_runtime::sync`) through the
//! vendored [`weave`] model checker. The [`scenarios`] module packages
//! the runtime's risky protocols — hierarchical barrier arrival /
//! combine / release with sense reversal, the spin→yield→park policy,
//! the watchdog abort racing a normal release, mailbox batch
//! circulation, and a whole-engine superstep exchange — as closures
//! that [`weave::explore`] can run under exhaustive bounded-preemption
//! DFS or seeded random walks.
//!
//! The integration tests then drive them two ways:
//!
//! * `tests/exploration_suite.rs` asserts the **unmutated** runtime is
//!   clean (no data race, lost wakeup, deadlock, or runaway spin) —
//!   exhaustively at 2–3 threads for the barrier protocols.
//! * `tests/race_mutations.rs` weakens one labeled memory-ordering
//!   site at a time (the `site_ord!` labels catalogued in
//!   `docs/ordering_audit.md`) and asserts the checker reports a race
//!   *naming that site* — evidence each ordering is load-bearing and
//!   the checker would catch its regression.

pub mod scenarios;

/// A shared cell whose cross-thread discipline is *claimed*, not
/// compiler-checked — the scenario-side analogue of the runtime's
/// `ProcSlot`. Every access goes through [`weave::UnsafeCell`]: writes
/// register write accesses, reads register read accesses, and any
/// read/write or write/write pair without a happens-before edge is
/// reported as a data race naming both sites.
pub struct RacyCell(weave::UnsafeCell<u64>);

// SAFETY: scenarios mediate access through the barrier / mailbox
// protocol under test; the model checker verifies that claim.
unsafe impl Sync for RacyCell {}

impl RacyCell {
    /// A new cell holding `v`.
    pub fn new(v: u64) -> Self {
        RacyCell(weave::UnsafeCell::new(v))
    }

    /// Write `v`.
    ///
    /// # Safety
    /// The caller must hold the cell exclusively per the protocol the
    /// scenario exercises (the model checker validates the claim).
    #[track_caller]
    pub unsafe fn write(&self, v: u64) {
        // SAFETY: forwarded from the caller's contract.
        unsafe { *self.0.get() = v }
    }

    /// Read the value.
    ///
    /// # Safety
    /// The caller must hold the cell per the scenario's protocol (no
    /// concurrent writer); the model checker validates the claim.
    #[track_caller]
    pub unsafe fn read(&self) -> u64 {
        // SAFETY: forwarded from the caller's contract.
        unsafe { *self.0.get_read() }
    }
}

impl Default for RacyCell {
    fn default() -> Self {
        RacyCell::new(0)
    }
}
