//! Exploration scenarios: the runtime's risky protocols packaged as
//! re-runnable closures for [`weave::explore`].
//!
//! Each function is one *execution body*: it builds fresh runtime
//! objects, spawns one model thread per party with
//! [`weave::thread::scope_join`], drives the protocol under test, and
//! asserts functional correctness (leader exclusivity, publication
//! visibility, message conservation). The model checker supplies the
//! adversarial part — every interleaving within the preemption bound,
//! with vector-clock race detection on every [`RacyCell`] access.

use crate::RacyCell;
use hbsp_core::{
    MachineTree, ProcEnv, ProcId, SpmdContext, SpmdProgram, StepOutcome, SyncScope, TreeBuilder,
};
use hbsp_runtime::{BarrierKind, CentralBarrier, HierBarrier, Mailbox, ThreadedRuntime};
use std::sync::Arc;
use std::time::Duration;

/// Machine shapes the barrier scenarios run on, sized for exhaustive
/// exploration (2–3 model threads).
#[derive(Debug, Clone, Copy)]
pub enum Machine {
    /// Two processors under one cluster: one combining node, the
    /// smallest tree with real arrival contention.
    Flat2,
    /// Three processors in two clusters (2 + 1): a two-level combining
    /// tree, so the last arriver of the pair propagates upward and
    /// sense reversal crosses levels.
    Clustered3,
}

/// Build the machine tree for a scenario shape.
pub fn machine(m: Machine) -> MachineTree {
    match m {
        Machine::Flat2 => TreeBuilder::flat(1.0, 10.0, &[(1.0, 1.0), (1.0, 1.0)]).unwrap(),
        Machine::Clustered3 => TreeBuilder::two_level(
            1.0,
            50.0,
            &[
                (10.0, vec![(1.0, 1.0), (1.0, 1.0)]),
                (10.0, vec![(1.0, 1.0)]),
            ],
        )
        .unwrap(),
    }
}

/// The core barrier protocol under race detection: every rank writes
/// its own slot cell, arrives; the leader (exclusively) sums all slots
/// into a result cell; after release every rank reads the result.
///
/// This exercises exactly the `ProcSlot` ownership protocol the engine
/// relies on: owner-phase writes must happen-before the leader's
/// reads (the arrival/combine chain), and the leader's write must
/// happen-before the owners' post-release reads (the generation flip
/// and its acquire polls). `rounds > 1` adds sense reversal: stale
/// generation values must never release a waiter early.
pub fn barrier_publish(kind: BarrierKind, m: Machine, rounds: usize) {
    enum B {
        C(CentralBarrier),
        H(HierBarrier),
    }
    let tree = machine(m);
    let p = tree.num_procs();
    let b = match kind {
        BarrierKind::Central => B::C(CentralBarrier::new(p)),
        BarrierKind::Hierarchical => B::H(HierBarrier::new(&tree)),
    };
    let slots: Vec<RacyCell> = (0..p).map(|_| RacyCell::new(0)).collect();
    let result = RacyCell::new(0);
    let tasks: Vec<_> = (0..p)
        .map(|rank| {
            let (b, slots, result) = (&b, &slots, &result);
            move || {
                for round in 0..rounds {
                    let mine = (round * p + rank + 1) as u64;
                    // SAFETY: owner phase — slot `rank` is this
                    // thread's until its barrier arrival.
                    unsafe { slots[rank].write(mine) };
                    let leader = || {
                        // SAFETY: leader section — every rank arrived,
                        // none released; all slots are the leader's.
                        let sum: u64 = (0..p).map(|i| unsafe { slots[i].read() }).sum();
                        unsafe { result.write(sum) };
                        sum
                    };
                    let led = match b {
                        B::C(c) => c.wait_leader(leader),
                        B::H(h) => h.wait_leader(rank, leader),
                    };
                    let expect: u64 = (0..p).map(|i| (round * p + i + 1) as u64).sum();
                    // SAFETY: read phase — the leader's write of
                    // `result` happened in this generation's leader
                    // section, before any release.
                    assert_eq!(
                        unsafe { result.read() },
                        expect,
                        "every released thread sees the leader's publication"
                    );
                    if let Some(sum) = led {
                        assert_eq!(sum, expect);
                    }
                }
            }
        })
        .collect();
    for r in weave::thread::scope_join(tasks) {
        if let Err(e) = r {
            std::panic::resume_unwind(e);
        }
    }
}

/// The watchdog abort protocol, focused on the barrier-internal
/// happens-before edge it must provide: rank 0 never arrives for
/// generation 0, so the barrier can never complete and a timed-out
/// waiter always claims the abort (exactly once), records an error in
/// a cell, publishes `ABORT_DEAD`, and wakes everyone. Rank 0 then
/// arrives *late*: the entry check must reject it with `None`, and
/// that Acquire load of `ABORT_DEAD` is the **only** happens-before
/// edge ordering the claimant's error write before rank 0's read —
/// the same shape as the engine's drain-and-fail path, where a
/// processor that finds the barrier dead reads state the watchdog
/// wrote. (A `None` return alone proves nothing: followers of a
/// normal release return `None` too, and an abort can race a normal
/// completion — the engine covers those reads with its own
/// Release/Acquire `failed` flag.)
///
/// Run under `eager_timeouts` so deadlines race normal progress.
pub fn watchdog_races_release(m: Machine) {
    use std::sync::atomic::Ordering;
    let tree = machine(m);
    let p = tree.num_procs();
    let b = HierBarrier::new(&tree);
    let error = RacyCell::new(0);
    // Value-only gate (Relaxed on purpose): tells rank 0 *that* the
    // barrier is dead, while the happens-before edge for reading
    // `error` must come from the barrier's own abort publication.
    let dead = weave::atomic::AtomicBool::new(false);
    let claims = weave::atomic::AtomicUsize::new(0);
    let tasks: Vec<Box<dyn FnOnce() + Send>> = (0..p)
        .map(|rank| -> Box<dyn FnOnce() + Send> {
            let (b, error, dead, claims) = (&b, &error, &dead, &claims);
            if rank == 0 {
                Box::new(move || {
                    while !dead.load(Ordering::Relaxed) {
                        weave::thread::yield_now();
                    }
                    let led = b.wait_leader_watched(0, None, || unreachable!(), || 0u64);
                    assert!(led.is_none(), "a dead barrier rejects new arrivals");
                    // SAFETY: the entry check observed `ABORT_DEAD`,
                    // which the claimant published after its writes.
                    assert_eq!(unsafe { error.read() }, 0xDEAD);
                })
            } else {
                Box::new(move || {
                    let mut claimed = false;
                    let led = b.wait_leader_watched(
                        rank,
                        Some(Duration::from_millis(10)),
                        || {
                            claims.fetch_add(1, Ordering::Relaxed);
                            claimed = true;
                            // SAFETY: the abort claim is won exactly
                            // once; `ABORT_DEAD` publishes this write.
                            unsafe { error.write(0xDEAD) };
                        },
                        || 0u64,
                    );
                    assert!(led.is_none(), "generation 0 can never complete");
                    if claimed {
                        // Only *after* the watched wait returned: by
                        // now this thread has published `ABORT_DEAD`,
                        // so the flag never leads rank 0 to an
                        // entry check that still reads `claimed`.
                        dead.store(true, Ordering::Relaxed);
                    }
                })
            }
        })
        .collect();
    for r in weave::thread::scope_join(tasks) {
        if let Err(e) = r {
            std::panic::resume_unwind(e);
        }
    }
    // Whatever the interleaving, the abort fired exactly once.
    assert_eq!(claims.into_inner(), 1, "exactly one abort claimant");
}

/// Mailbox batch circulation: a depositor moving tagged batches in
/// (exercising both the swap-when-drained and append-when-behind
/// paths of `deposit_batch`) racing a drainer that takes the whole
/// inbox each round via buffer swap. Asserts conservation and global
/// FIFO order; the model checks the lock protocol underneath.
pub fn mailbox_circulation(rounds: usize, per_round: u32) {
    let mb = Mailbox::new();
    let produced = rounds as u32 * per_round;
    let tasks: Vec<Box<dyn FnOnce() -> Vec<u64> + Send>> = vec![
        Box::new({
            let mb = &mb;
            move || {
                let mut batch = hbsp_core::MsgBatch::new();
                let mut tag = 0u32;
                for _ in 0..rounds {
                    for _ in 0..per_round {
                        batch.push(ProcId(0), ProcId(1), tag, &tag.to_le_bytes());
                        tag += 1;
                    }
                    mb.deposit_batch(&mut batch);
                    assert!(batch.is_empty(), "deposit hands the buffer back empty");
                }
                Vec::new()
            }
        }),
        Box::new({
            let mb = &mb;
            move || {
                let mut inbox = hbsp_core::MsgBatch::new();
                let mut seen = Vec::new();
                for _ in 0..rounds + 1 {
                    mb.take_into(&mut inbox);
                    for msg in inbox.iter() {
                        seen.push(msg.tag as u64);
                    }
                }
                seen
            }
        }),
    ];
    let mut results = weave::thread::scope_join(tasks);
    let drained = match results.remove(1) {
        Ok(v) => v,
        Err(e) => std::panic::resume_unwind(e),
    };
    if let Err(e) = results.remove(0) {
        std::panic::resume_unwind(e);
    }
    let mut all = drained;
    for msg in mb.take().iter() {
        all.push(msg.tag as u64);
    }
    assert_eq!(
        all.len(),
        produced as usize,
        "no message lost or duplicated"
    );
    assert!(
        all.windows(2).all(|w| w[0] < w[1]),
        "batch swap/append preserves global FIFO order"
    );
}

/// Total-exchange program for the whole-engine scenario: both
/// processors send their pid to each other every round, checking
/// receipt the following superstep.
struct Exchange {
    rounds: usize,
}

impl SpmdProgram for Exchange {
    type State = u32;
    fn init(&self, _env: &ProcEnv) -> u32 {
        0
    }
    fn step(
        &self,
        step: usize,
        env: &ProcEnv,
        state: &mut u32,
        ctx: &mut dyn SpmdContext,
    ) -> StepOutcome {
        for m in ctx.messages() {
            assert_ne!(m.src, env.pid);
            *state += 1;
        }
        if step == self.rounds {
            return StepOutcome::Done;
        }
        ctx.charge(1.0);
        for q in 0..env.nprocs {
            if q != env.pid.rank() {
                ctx.send(ProcId(q as u32), 7, &env.pid.0.to_le_bytes());
            }
        }
        StepOutcome::Continue(SyncScope::global(&env.tree))
    }
}

/// The full engine on a two-processor machine: superstep bodies, slot
/// writes, leader gather/deliver, mailbox swaps, and run teardown all
/// under the model. Too many decision points for exhaustive DFS — the
/// tests drive this with seeded random walks.
pub fn engine_smoke(rounds: usize) {
    let tree = Arc::new(machine(Machine::Flat2));
    let rt = ThreadedRuntime::new(Arc::clone(&tree));
    let (out, states) = rt.run_with_states(&Exchange { rounds }).unwrap();
    assert_eq!(out.virtual_outcome.num_steps(), rounds + 1);
    assert_eq!(
        out.virtual_outcome.messages_delivered,
        rounds as u64 * tree.num_procs() as u64,
        "every posted message delivered exactly once"
    );
    for st in states {
        assert_eq!(
            st as usize, rounds,
            "each peer's message arrived each round"
        );
    }
}
