//! Superstep barriers with a leader hook.
//!
//! Two implementations of the same rendezvous contract:
//!
//! * [`CentralBarrier`] — the classic flat sense-reversing barrier: one
//!   mutex + condvar that every thread hammers. Kept as the baseline the
//!   `engine_overhead` bench compares against.
//! * [`HierBarrier`] — a hierarchical sense-reversing barrier whose
//!   combining tree mirrors an [`hbsp_core::MachineTree`]: leaf
//!   processors arrive at their cluster's combining node, the last
//!   arriver of a cluster arrives at the parent cluster, and the thread
//!   that completes the root arrival becomes the generation's leader.
//!   Arrival is a single relaxed-contention `fetch_add` per tree level
//!   (so threads of different clusters never touch the same cache
//!   line), and waiting is spin-then-park on the *cluster's* gate, so
//!   both the arrival counters and the wait queues are c-way, not
//!   p-way — release is one broadcast per cluster, not one syscall per
//!   thread.
//!
//! In both, the last thread to arrive runs a closure (the "leader
//! section") before anyone is released — the standard way to fold a
//! small amount of sequential coordination (here: superstep
//! bookkeeping) into a barrier without extra synchronization rounds.
//! Exactly one thread per generation runs the leader section.

//! ## Watchdogs and aborts
//!
//! Both barriers also offer a *watched* wait
//! ([`CentralBarrier::wait_leader_watched`],
//! [`HierBarrier::wait_leader_watched`]): a waiter that outlives the
//! given deadline without seeing the generation flip claims the abort
//! (exactly one claimant per barrier lifetime), runs an `on_timeout`
//! closure (the engine's drain-and-fail path), and permanently kills
//! the barrier — every current and future waiter returns `None`
//! immediately instead of hanging. This is what turns a stalled or
//! vanished peer into a typed `BarrierTimeout` error. All internal
//! locks are poison-tolerant: a panicking thread elsewhere must not
//! cascade `PoisonError` panics through surviving waiters.

use hbsp_core::MachineTree;
use std::sync::atomic::{AtomicU64, AtomicU8, AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex, MutexGuard, PoisonError};
use std::time::{Duration, Instant};

/// Poison-tolerant lock: a panic in some other thread while it held
/// the mutex must not take the survivors down with it. Shared with the
/// engine and mailboxes — every runtime lock maps poisoning into the
/// typed abort path instead of cascading `PoisonError` unwraps.
pub(crate) fn lock_anyway<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| {
        // Count the recovery (process-global: the poisoning thread is
        // gone, so nobody else can attribute it to a run).
        hbsp_obs::metrics::record_poison_recovery();
        e.into_inner()
    })
}

struct Inner {
    arrived: usize,
    generation: u64,
    /// Permanently true once a watched wait timed out: the barrier is
    /// dead and every wait returns `None` immediately.
    aborted: bool,
}

/// A flat barrier for a fixed set of `n` threads, reusable across
/// generations.
pub struct CentralBarrier {
    n: usize,
    inner: Mutex<Inner>,
    cv: Condvar,
}

impl CentralBarrier {
    /// Barrier for `n` threads.
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "barrier needs at least one thread");
        CentralBarrier {
            n,
            inner: Mutex::new(Inner {
                arrived: 0,
                generation: 0,
                aborted: false,
            }),
            cv: Condvar::new(),
        }
    }

    /// Number of participating threads.
    pub fn parties(&self) -> usize {
        self.n
    }

    /// Wait for all `n` threads. The last to arrive runs `leader` (while
    /// the others remain blocked), then everyone is released. Returns
    /// `Some(result)` to the leader, `None` to the rest.
    pub fn wait_leader<R>(&self, leader: impl FnOnce() -> R) -> Option<R> {
        self.wait_leader_watched(None, || (), leader)
    }

    /// [`Self::wait_leader`] with a watchdog: a waiter still blocked
    /// `timeout` after arriving claims the abort, runs `on_timeout`
    /// (exactly once per barrier, while holding the barrier lock — the
    /// same exclusivity the leader section gets), and kills the
    /// barrier. Every wait on a dead barrier returns `None` at once.
    pub fn wait_leader_watched<R>(
        &self,
        timeout: Option<Duration>,
        on_timeout: impl FnOnce(),
        leader: impl FnOnce() -> R,
    ) -> Option<R> {
        let mut guard = lock_anyway(&self.inner);
        if guard.aborted {
            return None;
        }
        guard.arrived += 1;
        if guard.arrived == self.n {
            // Leader: run the section, flip the generation, release.
            let result = leader();
            guard.arrived = 0;
            guard.generation = guard.generation.wrapping_add(1);
            self.cv.notify_all();
            Some(result)
        } else {
            let gen = guard.generation;
            let deadline = timeout.map(|t| Instant::now() + t);
            loop {
                if guard.generation != gen || guard.aborted {
                    return None;
                }
                match deadline {
                    None => guard = self.cv.wait(guard).unwrap_or_else(PoisonError::into_inner),
                    Some(d) => {
                        let now = Instant::now();
                        if now >= d {
                            // Claim the abort: `on_timeout` runs under
                            // the barrier lock, so its effects are
                            // visible to every waiter before they wake.
                            guard.aborted = true;
                            on_timeout();
                            self.cv.notify_all();
                            return None;
                        }
                        guard = self
                            .cv
                            .wait_timeout(guard, d - now)
                            .unwrap_or_else(PoisonError::into_inner)
                            .0;
                    }
                }
            }
        }
    }

    /// Plain barrier wait with no leader work.
    pub fn wait(&self) {
        self.wait_leader(|| ());
    }
}

/// Pad to two cache lines so neighbouring slots never false-share (128
/// covers adjacent-line prefetch on common x86 parts).
#[repr(align(128))]
struct Padded<T>(T);

/// One combining node: a cluster of the machine tree.
struct TreeNode {
    /// Parent combining node, `None` for the root.
    parent: Option<usize>,
    /// Arrivals this node waits for: one per machine-tree child (a
    /// processor child arrives itself; a sub-cluster child is
    /// represented by its own last arriver).
    expected: usize,
    /// Arrivals so far in the current generation.
    count: Padded<AtomicUsize>,
    /// Gate the node's waiters park behind: threads whose arrival
    /// stopped at this node block here, so wait queues are as wide as a
    /// cluster, and the leader releases with one broadcast per cluster.
    gate: Mutex<()>,
    cv: Condvar,
}

/// Iterations of generation-polling before a waiter parks, when the
/// host has a core per thread. Kept short: superstep leader sections do
/// real work (timing, message routing), so a long-spinning waiter only
/// burns power. When threads outnumber cores the barrier does not spin
/// at all — a spinning waiter then *delays* the very threads it is
/// waiting for, so parking immediately is strictly better.
const SPIN_LIMIT: u32 = 64;

/// A hierarchical sense-reversing barrier whose combining tree mirrors
/// a machine tree's cluster structure.
///
/// Each processor rank arrives at the combining node of its parent
/// cluster; the last arriver of a cluster propagates the arrival to the
/// parent cluster, and the thread completing the root arrival runs the
/// leader section, advances the generation (the sense word), and wakes
/// all parked waiters.
///
/// The generation counter plays the role of the classic sense flag:
/// waiters watch for it to move rather than for a boolean to flip,
/// which makes the barrier trivially reusable across generations.
pub struct HierBarrier {
    nodes: Vec<TreeNode>,
    /// Per processor rank: the combining node it arrives at (`None`
    /// only for a single-processor machine, which has no clusters).
    start: Vec<Option<usize>>,
    /// The sense word. Even a relaxed reader can never confuse two
    /// generations: a release flip happens-after every arrival of its
    /// generation.
    generation: AtomicU64,
    /// Generation-poll iterations before parking ([`SPIN_LIMIT`] with a
    /// core per thread, 0 when oversubscribed).
    spin: u32,
    /// Watchdog state: [`ABORT_LIVE`] → [`ABORT_CLAIMED`] (one timed-out
    /// waiter won the CAS and is running its `on_timeout`) →
    /// [`ABORT_DEAD`] (abort effects published; every wait returns
    /// `None` immediately).
    abort: AtomicU8,
}

const ABORT_LIVE: u8 = 0;
const ABORT_CLAIMED: u8 = 1;
const ABORT_DEAD: u8 = 2;

impl HierBarrier {
    /// Barrier for the processor threads of `tree`, one per leaf, with
    /// a combining node per cluster.
    pub fn new(tree: &MachineTree) -> Self {
        let arena = tree.nodes().count();
        let mut map = vec![usize::MAX; arena];
        let mut nodes = Vec::new();
        for n in tree.nodes() {
            if !n.is_proc() {
                map[n.idx().index()] = nodes.len();
                nodes.push(TreeNode {
                    parent: None,
                    expected: n.num_children(),
                    count: Padded(AtomicUsize::new(0)),
                    gate: Mutex::new(()),
                    cv: Condvar::new(),
                });
            }
        }
        for n in tree.nodes() {
            if !n.is_proc() {
                if let Some(par) = n.parent() {
                    nodes[map[n.idx().index()]].parent = Some(map[par.index()]);
                }
            }
        }
        let start = tree
            .leaves()
            .iter()
            .map(|&leaf| tree.node(leaf).parent().map(|par| map[par.index()]))
            .collect();
        let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
        HierBarrier {
            nodes,
            start,
            generation: AtomicU64::new(0),
            spin: if cores >= tree.num_procs() {
                SPIN_LIMIT
            } else {
                0
            },
            abort: AtomicU8::new(ABORT_LIVE),
        }
    }

    /// Number of participating threads (one per leaf processor).
    pub fn parties(&self) -> usize {
        self.start.len()
    }

    /// Wait for every rank. The thread that completes the root arrival
    /// runs `leader` (while the others remain blocked), then everyone
    /// is released. Returns `Some(result)` to the leader, `None` to the
    /// rest.
    ///
    /// `rank` must be this thread's processor rank; each rank must
    /// arrive exactly once per generation.
    pub fn wait_leader<R>(&self, rank: usize, leader: impl FnOnce() -> R) -> Option<R> {
        self.wait_leader_watched(rank, None, || (), leader)
    }

    /// [`Self::wait_leader`] with a watchdog: a parked waiter still
    /// blocked `timeout` after arriving races a CAS for the abort claim;
    /// the winner runs `on_timeout` (exactly once per barrier), marks
    /// the barrier dead, and wakes every gate. Waits on a dead barrier
    /// return `None` immediately.
    pub fn wait_leader_watched<R>(
        &self,
        rank: usize,
        timeout: Option<Duration>,
        on_timeout: impl FnOnce(),
        leader: impl FnOnce() -> R,
    ) -> Option<R> {
        if self.abort.load(Ordering::Acquire) == ABORT_DEAD {
            return None;
        }
        // Pin the generation *before* arriving: the flip can only
        // happen after this thread's own arrival reaches the root.
        let gen = self.generation.load(Ordering::Acquire);
        let mut node = match self.start[rank] {
            Some(n) => n,
            None => {
                // Single-processor machine: the lone thread is always
                // the leader.
                let result = leader();
                self.generation.fetch_add(1, Ordering::AcqRel);
                return Some(result);
            }
        };
        loop {
            let n = &self.nodes[node];
            // AcqRel chains every earlier arriver's writes (its
            // contribution slot, its subtree's counts) into this
            // thread's view before it proceeds upward.
            if n.count.0.fetch_add(1, Ordering::AcqRel) + 1 == n.expected {
                // Last arriver of this cluster: reset for the next
                // generation (safe: nobody re-arrives here until after
                // the release flip, which happens-after this store) and
                // represent the cluster one level up.
                n.count.0.store(0, Ordering::Relaxed);
                match n.parent {
                    Some(parent) => node = parent,
                    None => {
                        let result = leader();
                        self.generation.fetch_add(1, Ordering::AcqRel);
                        self.release_all();
                        return Some(result);
                    }
                }
            } else {
                self.wait_for_flip(gen, node, timeout, on_timeout);
                return None;
            }
        }
    }

    /// Plain barrier wait with no leader work.
    pub fn wait(&self, rank: usize) {
        self.wait_leader(rank, || ());
    }

    /// Park behind the gate of the combining node our arrival stopped
    /// at. No lost wakeup is possible: the generation is re-checked
    /// under the gate mutex, and the leader takes (and drops) the same
    /// mutex after flipping the generation but before broadcasting — so
    /// either we entered `cv.wait` before the leader's broadcast (and
    /// it wakes us), or our lock acquisition ordered after the leader's
    /// unlock made the flip visible and we never wait.
    fn wait_for_flip(
        &self,
        gen: u64,
        node: usize,
        timeout: Option<Duration>,
        on_timeout: impl FnOnce(),
    ) {
        for _ in 0..self.spin {
            if self.generation.load(Ordering::Acquire) != gen {
                return;
            }
            std::hint::spin_loop();
        }
        let n = &self.nodes[node];
        let mut deadline = timeout.map(|t| Instant::now() + t);
        let mut guard = lock_anyway(&n.gate);
        loop {
            if self.generation.load(Ordering::Acquire) != gen
                || self.abort.load(Ordering::Acquire) == ABORT_DEAD
            {
                return;
            }
            match deadline {
                None => guard = n.cv.wait(guard).unwrap_or_else(PoisonError::into_inner),
                Some(d) => {
                    let now = Instant::now();
                    if now >= d {
                        if self
                            .abort
                            .compare_exchange(
                                ABORT_LIVE,
                                ABORT_CLAIMED,
                                Ordering::AcqRel,
                                Ordering::Acquire,
                            )
                            .is_ok()
                        {
                            // Claim won: publish the abort effects
                            // before any waiter can observe the dead
                            // barrier (they park until `release_all`).
                            drop(guard);
                            on_timeout();
                            self.abort.store(ABORT_DEAD, Ordering::Release);
                            self.release_all();
                            return;
                        }
                        // Lost the claim: another waiter is aborting.
                        // Park without a deadline until it finishes.
                        deadline = None;
                        continue;
                    }
                    guard =
                        n.cv.wait_timeout(guard, d - now)
                            .unwrap_or_else(PoisonError::into_inner)
                            .0;
                }
            }
        }
    }

    /// Release every waiter: one broadcast per combining node (a
    /// waiter's queue is its cluster's, so there are as many broadcasts
    /// as clusters, not as threads).
    fn release_all(&self) {
        for n in &self.nodes {
            // Lock-then-broadcast pairs with the waiter's locked
            // re-check (see `wait_for_flip`).
            drop(lock_anyway(&n.gate));
            n.cv.notify_all();
        }
    }
}

/// Which barrier the threaded engine synchronizes supersteps with.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BarrierKind {
    /// Flat mutex+condvar barrier (the pre-hierarchical baseline).
    Central,
    /// Combining-tree barrier mirroring the machine's cluster
    /// structure.
    #[default]
    Hierarchical,
}

/// The engine-facing barrier: either implementation behind one call.
pub(crate) enum StepBarrier {
    Central(CentralBarrier),
    Hier(HierBarrier),
}

impl StepBarrier {
    pub(crate) fn new(kind: BarrierKind, tree: &MachineTree) -> Self {
        match kind {
            BarrierKind::Central => StepBarrier::Central(CentralBarrier::new(tree.num_procs())),
            BarrierKind::Hierarchical => StepBarrier::Hier(HierBarrier::new(tree)),
        }
    }

    pub(crate) fn wait_leader_watched<R>(
        &self,
        rank: usize,
        timeout: Option<Duration>,
        on_timeout: impl FnOnce(),
        leader: impl FnOnce() -> R,
    ) -> Option<R> {
        match self {
            StepBarrier::Central(b) => b.wait_leader_watched(timeout, on_timeout, leader),
            StepBarrier::Hier(b) => b.wait_leader_watched(rank, timeout, on_timeout, leader),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hbsp_core::{NodeParams, TreeBuilder};
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn single_thread_is_always_leader() {
        let b = CentralBarrier::new(1);
        assert_eq!(b.wait_leader(|| 42), Some(42));
        assert_eq!(b.wait_leader(|| 7), Some(7));
    }

    #[test]
    fn exactly_one_leader_per_generation() {
        const N: usize = 8;
        const ROUNDS: usize = 50;
        let b = CentralBarrier::new(N);
        let leader_runs = AtomicUsize::new(0);
        std::thread::scope(|s| {
            for _ in 0..N {
                s.spawn(|| {
                    for _ in 0..ROUNDS {
                        b.wait_leader(|| {
                            leader_runs.fetch_add(1, Ordering::SeqCst);
                        });
                    }
                });
            }
        });
        assert_eq!(leader_runs.load(Ordering::SeqCst), ROUNDS);
    }

    #[test]
    fn leader_section_is_exclusive() {
        // No thread may pass the barrier while the leader section runs:
        // the leader writes a value; every thread must observe it after
        // the wait.
        const N: usize = 6;
        const ROUNDS: usize = 40;
        let b = CentralBarrier::new(N);
        let value = AtomicUsize::new(0);
        std::thread::scope(|s| {
            for _ in 0..N {
                s.spawn(|| {
                    for round in 1..=ROUNDS {
                        b.wait_leader(|| value.store(round, Ordering::SeqCst));
                        assert_eq!(value.load(Ordering::SeqCst), round);
                    }
                });
            }
        });
    }

    #[test]
    #[should_panic(expected = "at least one thread")]
    fn zero_parties_rejected() {
        CentralBarrier::new(0);
    }

    /// An HBSP^2 machine: three clusters of 3, 2, and 4 processors.
    fn clustered() -> MachineTree {
        TreeBuilder::two_level(
            1.0,
            100.0,
            &[
                (10.0, vec![(1.0, 1.0), (2.0, 0.5), (1.5, 0.8)]),
                (10.0, vec![(2.0, 0.5), (3.0, 0.4)]),
                (10.0, vec![(1.2, 0.9), (2.5, 0.45), (2.0, 0.5), (4.0, 0.2)]),
            ],
        )
        .unwrap()
    }

    #[test]
    fn hier_mirrors_machine_tree() {
        let t = clustered();
        let b = HierBarrier::new(&t);
        assert_eq!(b.parties(), 9);
        // One combining node per cluster: the root plus three LANs.
        assert_eq!(b.nodes.len(), 4);
        let root = b
            .nodes
            .iter()
            .position(|n| n.parent.is_none())
            .expect("one root");
        assert_eq!(b.nodes[root].expected, 3, "root waits for its clusters");
    }

    #[test]
    fn hier_exactly_one_leader_per_generation() {
        const ROUNDS: usize = 200;
        let t = clustered();
        let b = HierBarrier::new(&t);
        let p = b.parties();
        let leader_runs = AtomicUsize::new(0);
        std::thread::scope(|s| {
            for rank in 0..p {
                let b = &b;
                let leader_runs = &leader_runs;
                s.spawn(move || {
                    for _ in 0..ROUNDS {
                        b.wait_leader(rank, || {
                            leader_runs.fetch_add(1, Ordering::SeqCst);
                        });
                    }
                });
            }
        });
        assert_eq!(leader_runs.load(Ordering::SeqCst), ROUNDS);
    }

    #[test]
    fn hier_leader_section_is_exclusive() {
        const ROUNDS: usize = 100;
        let t = clustered();
        let b = HierBarrier::new(&t);
        let p = b.parties();
        let value = AtomicUsize::new(0);
        std::thread::scope(|s| {
            for rank in 0..p {
                let b = &b;
                let value = &value;
                s.spawn(move || {
                    for round in 1..=ROUNDS {
                        b.wait_leader(rank, || value.store(round, Ordering::SeqCst));
                        assert_eq!(value.load(Ordering::SeqCst), round);
                    }
                });
            }
        });
    }

    #[test]
    fn hier_handles_unbalanced_trees() {
        // Figure-2-like machine: a leaf sitting directly under the root
        // next to two clusters arrives straight at the root node.
        let mut builder = TreeBuilder::new(1.0);
        let root = builder.cluster("campus", NodeParams::cluster(500.0));
        let smp = builder.child_cluster(root, "smp", NodeParams::cluster(50.0));
        builder.child_proc(smp, "smp0", NodeParams::proc(1.0, 1.0));
        builder.child_proc(smp, "smp1", NodeParams::proc(2.0, 0.5));
        builder.child_proc(root, "sgi", NodeParams::proc(1.5, 0.9));
        let t = builder.build().unwrap();
        let b = HierBarrier::new(&t);
        assert_eq!(b.parties(), 3);
        let leader_runs = AtomicUsize::new(0);
        std::thread::scope(|s| {
            for rank in 0..3 {
                let b = &b;
                let leader_runs = &leader_runs;
                s.spawn(move || {
                    for _ in 0..150 {
                        b.wait_leader(rank, || {
                            leader_runs.fetch_add(1, Ordering::SeqCst);
                        });
                    }
                });
            }
        });
        assert_eq!(leader_runs.load(Ordering::SeqCst), 150);
    }

    #[test]
    fn central_watchdog_fires_once_and_kills_the_barrier() {
        // 3 parties, only 2 arrive: both time out, exactly one claims
        // the abort, both return None, and later arrivals fail fast.
        let b = CentralBarrier::new(3);
        let aborts = AtomicUsize::new(0);
        std::thread::scope(|s| {
            for _ in 0..2 {
                s.spawn(|| {
                    let r = b.wait_leader_watched(
                        Some(std::time::Duration::from_millis(20)),
                        || {
                            aborts.fetch_add(1, Ordering::SeqCst);
                        },
                        || 1,
                    );
                    assert_eq!(r, None);
                });
            }
        });
        assert_eq!(aborts.load(Ordering::SeqCst), 1);
        // The straggler finally shows up: dead barrier, immediate None.
        assert_eq!(b.wait_leader_watched(None, || (), || 1), None);
        assert_eq!(b.wait_leader(|| 1), None);
    }

    #[test]
    fn hier_watchdog_fires_once_and_kills_the_barrier() {
        let t = clustered();
        let b = HierBarrier::new(&t);
        let p = b.parties();
        let aborts = AtomicUsize::new(0);
        // Everyone but rank 0 arrives; every waiter carries a deadline.
        std::thread::scope(|s| {
            for rank in 1..p {
                let b = &b;
                let aborts = &aborts;
                s.spawn(move || {
                    let r = b.wait_leader_watched(
                        rank,
                        Some(std::time::Duration::from_millis(20)),
                        || {
                            aborts.fetch_add(1, Ordering::SeqCst);
                        },
                        || 1,
                    );
                    assert_eq!(r, None);
                });
            }
        });
        assert_eq!(aborts.load(Ordering::SeqCst), 1);
        assert_eq!(b.wait_leader(0, || 1), None, "dead barrier fails fast");
    }

    #[test]
    fn watchdog_does_not_fire_when_everyone_arrives() {
        let t = clustered();
        let b = HierBarrier::new(&t);
        let p = b.parties();
        let aborts = AtomicUsize::new(0);
        let leads = AtomicUsize::new(0);
        std::thread::scope(|s| {
            for rank in 0..p {
                let (b, aborts, leads) = (&b, &aborts, &leads);
                s.spawn(move || {
                    for _ in 0..50 {
                        b.wait_leader_watched(
                            rank,
                            Some(std::time::Duration::from_secs(60)),
                            || {
                                aborts.fetch_add(1, Ordering::SeqCst);
                            },
                            || {
                                leads.fetch_add(1, Ordering::SeqCst);
                            },
                        );
                    }
                });
            }
        });
        assert_eq!(aborts.load(Ordering::SeqCst), 0);
        assert_eq!(leads.load(Ordering::SeqCst), 50);
    }

    #[test]
    fn hier_single_proc_is_always_leader() {
        let mut builder = TreeBuilder::new(1.0);
        builder.proc_root("solo", NodeParams::fastest());
        let t = builder.build().unwrap();
        let b = HierBarrier::new(&t);
        assert_eq!(b.wait_leader(0, || 42), Some(42));
        assert_eq!(b.wait_leader(0, || 7), Some(7));
    }
}
