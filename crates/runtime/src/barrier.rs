//! Superstep barriers with a leader hook.
//!
//! Two implementations of the same rendezvous contract:
//!
//! * [`CentralBarrier`] — the classic flat sense-reversing barrier: one
//!   mutex + condvar that every thread hammers. Kept as the baseline the
//!   `engine_overhead` bench compares against.
//! * [`HierBarrier`] — a hierarchical sense-reversing barrier whose
//!   combining tree mirrors an [`hbsp_core::MachineTree`]: leaf
//!   processors arrive at their cluster's combining node, the last
//!   arriver of a cluster arrives at the parent cluster, and the thread
//!   that completes the root arrival becomes the generation's leader.
//!   Arrival is a single relaxed-contention `fetch_add` per tree level
//!   (so threads of different clusters never touch the same cache
//!   line), and waiting is spin-then-park on the *cluster's* gate, so
//!   both the arrival counters and the wait queues are c-way, not
//!   p-way — release is one broadcast per cluster, not one syscall per
//!   thread.
//!
//! In both, the last thread to arrive runs a closure (the "leader
//! section") before anyone is released — the standard way to fold a
//! small amount of sequential coordination (here: superstep
//! bookkeeping) into a barrier without extra synchronization rounds.
//! Exactly one thread per generation runs the leader section.

//! ## Watchdogs and aborts
//!
//! Both barriers also offer a *watched* wait
//! ([`CentralBarrier::wait_leader_watched`],
//! [`HierBarrier::wait_leader_watched`]): a waiter that outlives the
//! given deadline without seeing the generation flip claims the abort
//! (exactly one claimant per barrier lifetime), runs an `on_timeout`
//! closure (the engine's drain-and-fail path), and permanently kills
//! the barrier — every current and future waiter returns `None`
//! immediately instead of hanging. This is what turns a stalled or
//! vanished peer into a typed `BarrierTimeout` error. All internal
//! locks are poison-tolerant: a panicking thread elsewhere must not
//! cascade `PoisonError` panics through surviving waiters.

use crate::sync::atomic::{AtomicU32, AtomicU64, AtomicU8, AtomicUsize, Ordering};
use crate::sync::{site_ord, Condvar, Instant, Mutex, MutexGuard};
use hbsp_core::MachineTree;
use std::sync::PoisonError;
use std::time::Duration;

/// Process-global census of runtime threads that compete with barrier
/// parties for cores: every live [`HierBarrier`] contributes its party
/// count, and auxiliary threads (probes, monitors, co-running test
/// harnesses) can add themselves via [`register_extra_thread`]. The
/// spin/park policy consults this census — both at construction and
/// periodically from the leader section — so a barrier stops spinning
/// when the process becomes oversubscribed *after* it was built.
static RUNTIME_THREADS: AtomicUsize = AtomicUsize::new(0);

/// RAII registration of `n` runtime threads in the process census.
pub struct ThreadCensusGuard {
    n: usize,
}

impl Drop for ThreadCensusGuard {
    fn drop(&mut self) {
        RUNTIME_THREADS.fetch_sub(self.n, Ordering::Relaxed);
    }
}

fn register_threads(n: usize) -> ThreadCensusGuard {
    RUNTIME_THREADS.fetch_add(n, Ordering::Relaxed);
    ThreadCensusGuard { n }
}

/// Register one auxiliary thread (a probe flusher, a watchdog, a
/// co-running harness thread) with the barrier spin policy for the
/// lifetime of the returned guard. While any extra thread is
/// registered, barriers whose parties plus extras exceed the host's
/// cores park immediately instead of spinning — a spinning waiter
/// would only steal cycles from the thread everyone is waiting for.
pub fn register_extra_thread() -> ThreadCensusGuard {
    register_threads(1)
}

fn census_threads() -> usize {
    RUNTIME_THREADS.load(Ordering::Relaxed)
}

/// The pure spin policy: how many generation-poll iterations a waiter
/// runs before yielding/parking, given the host's core count, the
/// barrier's party count, and how many *other* runtime threads are
/// live in the process. Spinning is only ever profitable when every
/// party (and every co-running thread) can hold a core simultaneously.
fn spin_iters(cores: usize, parties: usize, extra: usize) -> u32 {
    if cores >= parties + extra {
        model_scaled(SPIN_LIMIT)
    } else {
        0
    }
}

/// Scale a spin/yield budget down when running inside a model
/// exploration: every poll iteration there is a scheduler decision
/// point, so the real budgets would blow up the interleaving space
/// without exercising any additional behavior (one spin round and one
/// yield round cover the spin→yield→park escalation). Identity in
/// normal builds and outside explorations.
#[cfg(feature = "model")]
fn model_scaled(limit: u32) -> u32 {
    if weave::is_modeling() {
        limit.min(1)
    } else {
        limit
    }
}

#[cfg(not(feature = "model"))]
fn model_scaled(limit: u32) -> u32 {
    limit
}

/// Poison-tolerant lock: a panic in some other thread while it held
/// the mutex must not take the survivors down with it. Shared with the
/// engine and mailboxes — every runtime lock maps poisoning into the
/// typed abort path instead of cascading `PoisonError` unwraps.
pub(crate) fn lock_anyway<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| {
        // Count the recovery (process-global: the poisoning thread is
        // gone, so nobody else can attribute it to a run).
        hbsp_obs::metrics::record_poison_recovery();
        e.into_inner()
    })
}

struct Inner {
    arrived: usize,
    generation: u64,
    /// Permanently true once a watched wait timed out: the barrier is
    /// dead and every wait returns `None` immediately.
    aborted: bool,
}

/// A flat barrier for a fixed set of `n` threads, reusable across
/// generations.
pub struct CentralBarrier {
    n: usize,
    inner: Mutex<Inner>,
    cv: Condvar,
}

impl CentralBarrier {
    /// Barrier for `n` threads.
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "barrier needs at least one thread");
        CentralBarrier {
            n,
            inner: Mutex::new(Inner {
                arrived: 0,
                generation: 0,
                aborted: false,
            }),
            cv: Condvar::new(),
        }
    }

    /// Number of participating threads.
    pub fn parties(&self) -> usize {
        self.n
    }

    /// Wait for all `n` threads. The last to arrive runs `leader` (while
    /// the others remain blocked), then everyone is released. Returns
    /// `Some(result)` to the leader, `None` to the rest.
    pub fn wait_leader<R>(&self, leader: impl FnOnce() -> R) -> Option<R> {
        self.wait_leader_watched(None, || (), leader)
    }

    /// [`Self::wait_leader`] with a watchdog: a waiter still blocked
    /// `timeout` after arriving claims the abort, runs `on_timeout`
    /// (exactly once per barrier, while holding the barrier lock — the
    /// same exclusivity the leader section gets), and kills the
    /// barrier. Every wait on a dead barrier returns `None` at once.
    pub fn wait_leader_watched<R>(
        &self,
        timeout: Option<Duration>,
        on_timeout: impl FnOnce(),
        leader: impl FnOnce() -> R,
    ) -> Option<R> {
        let mut guard = lock_anyway(&self.inner);
        if guard.aborted {
            return None;
        }
        guard.arrived += 1;
        if guard.arrived == self.n {
            // Leader: run the section, flip the generation, release.
            let result = leader();
            guard.arrived = 0;
            guard.generation = guard.generation.wrapping_add(1);
            self.cv.notify_all();
            Some(result)
        } else {
            let gen = guard.generation;
            let deadline = timeout.map(|t| Instant::now() + t);
            loop {
                if guard.generation != gen || guard.aborted {
                    return None;
                }
                match deadline {
                    None => guard = self.cv.wait(guard).unwrap_or_else(PoisonError::into_inner),
                    Some(d) => {
                        let now = Instant::now();
                        if now >= d {
                            // Claim the abort: `on_timeout` runs under
                            // the barrier lock, so its effects are
                            // visible to every waiter before they wake.
                            guard.aborted = true;
                            on_timeout();
                            self.cv.notify_all();
                            return None;
                        }
                        guard = self
                            .cv
                            .wait_timeout(guard, d - now)
                            .unwrap_or_else(PoisonError::into_inner)
                            .0;
                    }
                }
            }
        }
    }

    /// Plain barrier wait with no leader work.
    pub fn wait(&self) {
        self.wait_leader(|| ());
    }
}

/// The arrival counter of a combining node, alone on its own pair of
/// cache lines (128 covers adjacent-line prefetch on common x86
/// parts): the hammered `fetch_add` line must not be shared with the
/// node's gate or with a neighbouring node's counter.
#[repr(align(128))]
struct ArriveLine {
    /// Arrivals so far in the current generation.
    count: AtomicUsize,
}

/// The wait state of a combining node, on its own pair of cache lines
/// for the same reason: parked-waiter bookkeeping must not false-share
/// with the arrival counter one field over.
#[repr(align(128))]
struct WaitLine {
    /// Gate the node's waiters park behind: threads whose arrival
    /// stopped at this node block here, so wait queues are as wide as a
    /// cluster, and the leader releases with one broadcast per cluster.
    /// The guarded count is the number of waiters parked (or committed
    /// to parking) behind the gate — the leader skips the broadcast
    /// entirely for gates nobody is parked behind, which on the
    /// yield-resolved fast path makes release syscall-free.
    gate: Mutex<usize>,
    cv: Condvar,
}

/// One combining node: a cluster of the machine tree. `repr(C)` pins
/// the layout so the const assertions below can verify that the three
/// concurrently-touched regions (cold topology metadata, the arrival
/// counter, the wait gate) sit on disjoint cache lines.
#[repr(C)]
struct TreeNode {
    /// Parent combining node, `None` for the root.
    parent: Option<usize>,
    /// Arrivals this node waits for: one per machine-tree child (a
    /// processor child arrives itself; a sub-cluster child is
    /// represented by its own last arriver).
    expected: usize,
    arrive: ArriveLine,
    wait: WaitLine,
}

// Layout audit: metadata, arrival counter, and wait gate each own a
// disjoint 128-byte slot, and nodes tile an array without bleeding
// into each other's lines.
const _: () = {
    assert!(std::mem::align_of::<TreeNode>() == 128);
    assert!(std::mem::offset_of!(TreeNode, arrive) == 128);
    assert!(std::mem::offset_of!(TreeNode, wait) == 256);
    assert!(std::mem::size_of::<TreeNode>() == 384);
};

/// Iterations of generation-polling before a waiter parks, when the
/// host has a core per thread. Kept short: superstep leader sections do
/// real work (timing, message routing), so a long-spinning waiter only
/// burns power. When threads outnumber cores the barrier does not spin
/// at all — a spinning waiter then *delays* the very threads it is
/// waiting for, so parking immediately is strictly better.
const SPIN_LIMIT: u32 = 64;

/// Bounded `yield_now` rounds between spinning and parking. On an
/// oversubscribed host each yield hands the core to the very threads
/// the waiter is blocked on, and the generation flip usually lands
/// within a few reschedules — resolving the barrier without any
/// futex wait/wake round-trip. Bounded so a genuinely stalled peer
/// still drives waiters into the parked state where the watchdog
/// deadline is honored.
const YIELD_LIMIT: u32 = 64;

/// The leader re-reads the core count and thread census every this
/// many generations, so the spin policy tracks oversubscription drift
/// (another runtime starting in-process, cgroup cpu masks shrinking)
/// instead of staying frozen at construction time.
const SPIN_REEVAL_PERIOD: u64 = 256;

/// A hierarchical sense-reversing barrier whose combining tree mirrors
/// a machine tree's cluster structure.
///
/// Each processor rank arrives at the combining node of its parent
/// cluster; the last arriver of a cluster propagates the arrival to the
/// parent cluster, and the thread completing the root arrival runs the
/// leader section, advances the generation (the sense word), and wakes
/// all parked waiters.
///
/// The generation counter plays the role of the classic sense flag:
/// waiters watch for it to move rather than for a boolean to flip,
/// which makes the barrier trivially reusable across generations.
pub struct HierBarrier {
    nodes: Vec<TreeNode>,
    /// Per processor rank: the combining node it arrives at (`None`
    /// only for a single-processor machine, which has no clusters).
    start: Vec<Option<usize>>,
    /// The sense word. Even a relaxed reader can never confuse two
    /// generations: a release flip happens-after every arrival of its
    /// generation.
    generation: AtomicU64,
    /// Generation-poll iterations before yielding/parking
    /// ([`SPIN_LIMIT`] with a core per thread and no co-running
    /// threads, 0 when oversubscribed). Re-evaluated by the leader
    /// every [`SPIN_REEVAL_PERIOD`] generations against the live core
    /// count and thread census, never frozen at construction.
    spin: AtomicU32,
    /// Watchdog state: [`ABORT_LIVE`] → [`ABORT_CLAIMED`] (one timed-out
    /// waiter won the CAS and is running its `on_timeout`) →
    /// [`ABORT_DEAD`] (abort effects published; every wait returns
    /// `None` immediately).
    abort: AtomicU8,
    /// This barrier's own parties, registered in the process census
    /// for its lifetime so concurrently-running barriers see each
    /// other as oversubscription.
    _census: ThreadCensusGuard,
}

const ABORT_LIVE: u8 = 0;
const ABORT_CLAIMED: u8 = 1;
const ABORT_DEAD: u8 = 2;

impl HierBarrier {
    /// Barrier for the processor threads of `tree`, one per leaf, with
    /// a combining node per cluster.
    pub fn new(tree: &MachineTree) -> Self {
        let arena = tree.nodes().count();
        let mut map = vec![usize::MAX; arena];
        let mut nodes = Vec::new();
        for n in tree.nodes() {
            if !n.is_proc() {
                map[n.idx().index()] = nodes.len();
                nodes.push(TreeNode {
                    parent: None,
                    expected: n.num_children(),
                    arrive: ArriveLine {
                        count: AtomicUsize::new(0),
                    },
                    wait: WaitLine {
                        gate: Mutex::new(0),
                        cv: Condvar::new(),
                    },
                });
            }
        }
        for n in tree.nodes() {
            if !n.is_proc() {
                if let Some(par) = n.parent() {
                    nodes[map[n.idx().index()]].parent = Some(map[par.index()]);
                }
            }
        }
        let start: Vec<Option<usize>> = tree
            .leaves()
            .iter()
            .map(|&leaf| tree.node(leaf).parent().map(|par| map[par.index()]))
            .collect();
        let parties = start.len();
        // Register our parties first so the census (and any barrier
        // built concurrently) counts them, then size the spin budget
        // against cores minus everyone else's threads.
        let census = register_threads(parties);
        let cores = crate::sync::thread::available_parallelism().map_or(1, |n| n.get());
        let extra = census_threads().saturating_sub(parties);
        HierBarrier {
            nodes,
            start,
            generation: AtomicU64::new(0),
            spin: AtomicU32::new(spin_iters(cores, parties, extra)),
            abort: AtomicU8::new(ABORT_LIVE),
            _census: census,
        }
    }

    /// Number of participating threads (one per leaf processor).
    pub fn parties(&self) -> usize {
        self.start.len()
    }

    /// The current spin budget: generation-poll iterations a waiter
    /// runs before yielding and parking. Zero whenever the process's
    /// thread census exceeds the host's cores.
    pub fn spin_budget(&self) -> u32 {
        self.spin.load(Ordering::Relaxed)
    }

    /// Re-derive the spin budget from the live core count and thread
    /// census. Called by the root leader every [`SPIN_REEVAL_PERIOD`]
    /// generations.
    fn reevaluate_spin(&self) {
        let cores = crate::sync::thread::available_parallelism().map_or(1, |n| n.get());
        let parties = self.start.len();
        let extra = census_threads().saturating_sub(parties);
        self.spin
            .store(spin_iters(cores, parties, extra), Ordering::Relaxed);
    }

    /// Wait for every rank. The thread that completes the root arrival
    /// runs `leader` (while the others remain blocked), then everyone
    /// is released. Returns `Some(result)` to the leader, `None` to the
    /// rest.
    ///
    /// `rank` must be this thread's processor rank; each rank must
    /// arrive exactly once per generation.
    pub fn wait_leader<R>(&self, rank: usize, leader: impl FnOnce() -> R) -> Option<R> {
        self.wait_leader_watched(rank, None, || (), leader)
    }

    /// [`Self::wait_leader`] with a watchdog: a parked waiter still
    /// blocked `timeout` after arriving races a CAS for the abort claim;
    /// the winner runs `on_timeout` (exactly once per barrier), marks
    /// the barrier dead, and wakes every gate. Waits on a dead barrier
    /// return `None` immediately.
    pub fn wait_leader_watched<R>(
        &self,
        rank: usize,
        timeout: Option<Duration>,
        on_timeout: impl FnOnce(),
        leader: impl FnOnce() -> R,
    ) -> Option<R> {
        if self
            .abort
            .load(site_ord!("hier.abort.check", Ordering::Acquire))
            == ABORT_DEAD
        {
            return None;
        }
        // Pin the generation *before* arriving: the flip can only
        // happen after this thread's own arrival reaches the root.
        let gen = self
            .generation
            .load(site_ord!("hier.generation.pin", Ordering::Acquire));
        let mut node = match self.start[rank] {
            Some(n) => n,
            None => {
                // Single-processor machine: the lone thread is always
                // the leader.
                let result = leader();
                self.generation
                    .fetch_add(1, site_ord!("hier.generation.flip", Ordering::AcqRel));
                return Some(result);
            }
        };
        loop {
            let n = &self.nodes[node];
            // AcqRel chains every earlier arriver's writes (its
            // contribution slot, its subtree's counts) into this
            // thread's view before it proceeds upward.
            if n.arrive
                .count
                .fetch_add(1, site_ord!("hier.arrive.combine", Ordering::AcqRel))
                + 1
                == n.expected
            {
                // Last arriver of this cluster: reset for the next
                // generation (safe: nobody re-arrives here until after
                // the release flip, which happens-after this store) and
                // represent the cluster one level up.
                n.arrive
                    .count
                    .store(0, site_ord!("hier.arrive.reset", Ordering::Relaxed));
                match n.parent {
                    Some(parent) => node = parent,
                    None => {
                        let result = leader();
                        let done = self
                            .generation
                            .fetch_add(1, site_ord!("hier.generation.flip", Ordering::AcqRel));
                        if done.is_multiple_of(SPIN_REEVAL_PERIOD) {
                            self.reevaluate_spin();
                        }
                        self.release_all();
                        return Some(result);
                    }
                }
            } else {
                self.wait_for_flip(gen, node, timeout, on_timeout);
                return None;
            }
        }
    }

    /// Plain barrier wait with no leader work.
    pub fn wait(&self, rank: usize) {
        self.wait_leader(rank, || ());
    }

    /// Wait out the generation flip in three escalating phases:
    ///
    /// 1. **Spin** for the current spin budget (zero on an
    ///    oversubscribed host) — cheapest when every thread has a core.
    /// 2. **Yield** up to [`YIELD_LIMIT`] reschedules: on an
    ///    oversubscribed host this donates the core to the threads we
    ///    are waiting for, and the flip usually lands here with no
    ///    futex traffic in either direction.
    /// 3. **Park** behind the gate of the combining node our arrival
    ///    stopped at, counting ourselves in the gate's parked tally so
    ///    the leader broadcasts only to gates that hold sleepers.
    ///
    /// No lost wakeup is possible: the parked tally is incremented and
    /// the generation re-checked under the gate mutex, and the leader
    /// reads the tally under the same mutex after flipping the
    /// generation — so either we entered `cv.wait` before the leader
    /// read a nonzero tally (and its broadcast wakes us), or the
    /// leader's lock acquisition ordered after ours made the flip
    /// visible to our re-check and we never wait.
    fn wait_for_flip(
        &self,
        gen: u64,
        node: usize,
        timeout: Option<Duration>,
        on_timeout: impl FnOnce(),
    ) {
        for _ in 0..self.spin.load(Ordering::Relaxed) {
            if self
                .generation
                .load(site_ord!("hier.generation.poll", Ordering::Acquire))
                != gen
            {
                return;
            }
            crate::sync::hint::spin_loop();
        }
        for _ in 0..model_scaled(YIELD_LIMIT) {
            if self
                .generation
                .load(site_ord!("hier.generation.poll", Ordering::Acquire))
                != gen
                || self
                    .abort
                    .load(site_ord!("hier.abort.check", Ordering::Acquire))
                    == ABORT_DEAD
            {
                return;
            }
            crate::sync::thread::yield_now();
        }
        let n = &self.nodes[node];
        let mut deadline = timeout.map(|t| Instant::now() + t);
        let mut guard = lock_anyway(&n.wait.gate);
        *guard += 1;
        loop {
            if self
                .generation
                .load(site_ord!("hier.generation.poll", Ordering::Acquire))
                != gen
                || self
                    .abort
                    .load(site_ord!("hier.abort.check", Ordering::Acquire))
                    == ABORT_DEAD
            {
                *guard -= 1;
                return;
            }
            match deadline {
                None => {
                    guard = n
                        .wait
                        .cv
                        .wait(guard)
                        .unwrap_or_else(PoisonError::into_inner)
                }
                Some(d) => {
                    let now = Instant::now();
                    if now >= d {
                        if self
                            .abort
                            .compare_exchange(
                                ABORT_LIVE,
                                ABORT_CLAIMED,
                                site_ord!("hier.abort.claim", Ordering::AcqRel),
                                Ordering::Acquire,
                            )
                            .is_ok()
                        {
                            // Claim won: publish the abort effects
                            // before any waiter can observe the dead
                            // barrier (they park until `release_all`).
                            *guard -= 1;
                            drop(guard);
                            on_timeout();
                            self.abort.store(
                                ABORT_DEAD,
                                site_ord!("hier.abort.publish", Ordering::Release),
                            );
                            self.release_all();
                            return;
                        }
                        // Lost the claim: another waiter is aborting.
                        // Park without a deadline until it finishes.
                        deadline = None;
                        continue;
                    }
                    guard = n
                        .wait
                        .cv
                        .wait_timeout(guard, d - now)
                        .unwrap_or_else(PoisonError::into_inner)
                        .0;
                }
            }
        }
    }

    /// Release every parked waiter: at most one broadcast per combining
    /// node (a waiter's queue is its cluster's), and none at all for
    /// gates whose parked tally is zero — which is every gate when the
    /// waiters resolved the flip in their spin or yield phase, making
    /// the steady-state release entirely syscall-free.
    fn release_all(&self) {
        for n in &self.nodes {
            // Lock-then-read pairs with the waiter's locked increment
            // and re-check (see `wait_for_flip`).
            let parked = *lock_anyway(&n.wait.gate);
            if parked > 0 {
                n.wait.cv.notify_all();
            }
        }
    }
}

/// Which barrier the threaded engine synchronizes supersteps with.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BarrierKind {
    /// Flat mutex+condvar barrier (the pre-hierarchical baseline).
    Central,
    /// Combining-tree barrier mirroring the machine's cluster
    /// structure.
    #[default]
    Hierarchical,
}

/// The engine-facing barrier: either implementation behind one call.
pub(crate) enum StepBarrier {
    Central(CentralBarrier),
    Hier(HierBarrier),
}

impl StepBarrier {
    pub(crate) fn new(kind: BarrierKind, tree: &MachineTree) -> Self {
        match kind {
            BarrierKind::Central => StepBarrier::Central(CentralBarrier::new(tree.num_procs())),
            BarrierKind::Hierarchical => StepBarrier::Hier(HierBarrier::new(tree)),
        }
    }

    pub(crate) fn wait_leader_watched<R>(
        &self,
        rank: usize,
        timeout: Option<Duration>,
        on_timeout: impl FnOnce(),
        leader: impl FnOnce() -> R,
    ) -> Option<R> {
        match self {
            StepBarrier::Central(b) => b.wait_leader_watched(timeout, on_timeout, leader),
            StepBarrier::Hier(b) => b.wait_leader_watched(rank, timeout, on_timeout, leader),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hbsp_core::{NodeParams, TreeBuilder};
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn single_thread_is_always_leader() {
        let b = CentralBarrier::new(1);
        assert_eq!(b.wait_leader(|| 42), Some(42));
        assert_eq!(b.wait_leader(|| 7), Some(7));
    }

    #[test]
    fn exactly_one_leader_per_generation() {
        const N: usize = 8;
        const ROUNDS: usize = 50;
        let b = CentralBarrier::new(N);
        let leader_runs = AtomicUsize::new(0);
        std::thread::scope(|s| {
            for _ in 0..N {
                s.spawn(|| {
                    for _ in 0..ROUNDS {
                        b.wait_leader(|| {
                            leader_runs.fetch_add(1, Ordering::SeqCst);
                        });
                    }
                });
            }
        });
        assert_eq!(leader_runs.load(Ordering::SeqCst), ROUNDS);
    }

    #[test]
    fn leader_section_is_exclusive() {
        // No thread may pass the barrier while the leader section runs:
        // the leader writes a value; every thread must observe it after
        // the wait.
        const N: usize = 6;
        const ROUNDS: usize = 40;
        let b = CentralBarrier::new(N);
        let value = AtomicUsize::new(0);
        std::thread::scope(|s| {
            for _ in 0..N {
                s.spawn(|| {
                    for round in 1..=ROUNDS {
                        b.wait_leader(|| value.store(round, Ordering::SeqCst));
                        assert_eq!(value.load(Ordering::SeqCst), round);
                    }
                });
            }
        });
    }

    #[test]
    #[should_panic(expected = "at least one thread")]
    fn zero_parties_rejected() {
        CentralBarrier::new(0);
    }

    /// An HBSP^2 machine: three clusters of 3, 2, and 4 processors.
    fn clustered() -> MachineTree {
        TreeBuilder::two_level(
            1.0,
            100.0,
            &[
                (10.0, vec![(1.0, 1.0), (2.0, 0.5), (1.5, 0.8)]),
                (10.0, vec![(2.0, 0.5), (3.0, 0.4)]),
                (10.0, vec![(1.2, 0.9), (2.5, 0.45), (2.0, 0.5), (4.0, 0.2)]),
            ],
        )
        .unwrap()
    }

    #[test]
    fn hier_mirrors_machine_tree() {
        let t = clustered();
        let b = HierBarrier::new(&t);
        assert_eq!(b.parties(), 9);
        // One combining node per cluster: the root plus three LANs.
        assert_eq!(b.nodes.len(), 4);
        let root = b
            .nodes
            .iter()
            .position(|n| n.parent.is_none())
            .expect("one root");
        assert_eq!(b.nodes[root].expected, 3, "root waits for its clusters");
    }

    #[test]
    fn hier_exactly_one_leader_per_generation() {
        const ROUNDS: usize = 200;
        let t = clustered();
        let b = HierBarrier::new(&t);
        let p = b.parties();
        let leader_runs = AtomicUsize::new(0);
        std::thread::scope(|s| {
            for rank in 0..p {
                let b = &b;
                let leader_runs = &leader_runs;
                s.spawn(move || {
                    for _ in 0..ROUNDS {
                        b.wait_leader(rank, || {
                            leader_runs.fetch_add(1, Ordering::SeqCst);
                        });
                    }
                });
            }
        });
        assert_eq!(leader_runs.load(Ordering::SeqCst), ROUNDS);
    }

    #[test]
    fn hier_leader_section_is_exclusive() {
        const ROUNDS: usize = 100;
        let t = clustered();
        let b = HierBarrier::new(&t);
        let p = b.parties();
        let value = AtomicUsize::new(0);
        std::thread::scope(|s| {
            for rank in 0..p {
                let b = &b;
                let value = &value;
                s.spawn(move || {
                    for round in 1..=ROUNDS {
                        b.wait_leader(rank, || value.store(round, Ordering::SeqCst));
                        assert_eq!(value.load(Ordering::SeqCst), round);
                    }
                });
            }
        });
    }

    #[test]
    fn hier_handles_unbalanced_trees() {
        // Figure-2-like machine: a leaf sitting directly under the root
        // next to two clusters arrives straight at the root node.
        let mut builder = TreeBuilder::new(1.0);
        let root = builder.cluster("campus", NodeParams::cluster(500.0));
        let smp = builder.child_cluster(root, "smp", NodeParams::cluster(50.0));
        builder.child_proc(smp, "smp0", NodeParams::proc(1.0, 1.0));
        builder.child_proc(smp, "smp1", NodeParams::proc(2.0, 0.5));
        builder.child_proc(root, "sgi", NodeParams::proc(1.5, 0.9));
        let t = builder.build().unwrap();
        let b = HierBarrier::new(&t);
        assert_eq!(b.parties(), 3);
        let leader_runs = AtomicUsize::new(0);
        std::thread::scope(|s| {
            for rank in 0..3 {
                let b = &b;
                let leader_runs = &leader_runs;
                s.spawn(move || {
                    for _ in 0..150 {
                        b.wait_leader(rank, || {
                            leader_runs.fetch_add(1, Ordering::SeqCst);
                        });
                    }
                });
            }
        });
        assert_eq!(leader_runs.load(Ordering::SeqCst), 150);
    }

    #[test]
    fn central_watchdog_fires_once_and_kills_the_barrier() {
        // 3 parties, only 2 arrive: both time out, exactly one claims
        // the abort, both return None, and later arrivals fail fast.
        let b = CentralBarrier::new(3);
        let aborts = AtomicUsize::new(0);
        std::thread::scope(|s| {
            for _ in 0..2 {
                s.spawn(|| {
                    let r = b.wait_leader_watched(
                        Some(std::time::Duration::from_millis(20)),
                        || {
                            aborts.fetch_add(1, Ordering::SeqCst);
                        },
                        || 1,
                    );
                    assert_eq!(r, None);
                });
            }
        });
        assert_eq!(aborts.load(Ordering::SeqCst), 1);
        // The straggler finally shows up: dead barrier, immediate None.
        assert_eq!(b.wait_leader_watched(None, || (), || 1), None);
        assert_eq!(b.wait_leader(|| 1), None);
    }

    #[test]
    fn hier_watchdog_fires_once_and_kills_the_barrier() {
        let t = clustered();
        let b = HierBarrier::new(&t);
        let p = b.parties();
        let aborts = AtomicUsize::new(0);
        // Everyone but rank 0 arrives; every waiter carries a deadline.
        std::thread::scope(|s| {
            for rank in 1..p {
                let b = &b;
                let aborts = &aborts;
                s.spawn(move || {
                    let r = b.wait_leader_watched(
                        rank,
                        Some(std::time::Duration::from_millis(20)),
                        || {
                            aborts.fetch_add(1, Ordering::SeqCst);
                        },
                        || 1,
                    );
                    assert_eq!(r, None);
                });
            }
        });
        assert_eq!(aborts.load(Ordering::SeqCst), 1);
        assert_eq!(b.wait_leader(0, || 1), None, "dead barrier fails fast");
    }

    #[test]
    fn watchdog_does_not_fire_when_everyone_arrives() {
        let t = clustered();
        let b = HierBarrier::new(&t);
        let p = b.parties();
        let aborts = AtomicUsize::new(0);
        let leads = AtomicUsize::new(0);
        std::thread::scope(|s| {
            for rank in 0..p {
                let (b, aborts, leads) = (&b, &aborts, &leads);
                s.spawn(move || {
                    for _ in 0..50 {
                        b.wait_leader_watched(
                            rank,
                            Some(std::time::Duration::from_secs(60)),
                            || {
                                aborts.fetch_add(1, Ordering::SeqCst);
                            },
                            || {
                                leads.fetch_add(1, Ordering::SeqCst);
                            },
                        );
                    }
                });
            }
        });
        assert_eq!(aborts.load(Ordering::SeqCst), 0);
        assert_eq!(leads.load(Ordering::SeqCst), 50);
    }

    #[test]
    fn spin_policy_requires_a_core_per_thread() {
        // Spinning is only profitable when parties + co-running threads
        // all fit on cores; any deficit means a spinning waiter steals
        // cycles from the thread it waits for.
        assert_eq!(spin_iters(16, 16, 0), SPIN_LIMIT);
        assert_eq!(spin_iters(16, 8, 8), SPIN_LIMIT);
        assert_eq!(spin_iters(16, 16, 1), 0, "one extra thread disables spin");
        assert_eq!(spin_iters(8, 16, 0), 0, "oversubscribed parties");
        assert_eq!(spin_iters(1, 2, 0), 0);
        assert_eq!(spin_iters(1, 1, 0), SPIN_LIMIT);
    }

    /// Regression: the spin decision used to be frozen at construction
    /// from `available_parallelism() >= parties` alone, ignoring every
    /// other runtime thread in the process. An oversubscribed barrier
    /// must never spin — neither at construction nor after the leader's
    /// periodic re-evaluation.
    #[test]
    fn oversubscribed_barrier_never_spins() {
        // Register far more extra threads than any host has cores.
        let _guards: Vec<ThreadCensusGuard> = (0..1024).map(|_| register_extra_thread()).collect();
        let t = clustered();
        let b = HierBarrier::new(&t);
        assert_eq!(
            b.spin_budget(),
            0,
            "census of co-running threads must veto spinning at construction"
        );

        // Drift case: a barrier that decided to spin must drop to 0
        // once the leader re-evaluates against the live census. Force a
        // stale nonzero budget, run one generation (generation 0
        // triggers re-evaluation), and observe the corrected budget.
        b.spin.store(SPIN_LIMIT, Ordering::Relaxed);
        let p = b.parties();
        std::thread::scope(|s| {
            for rank in 0..p {
                let b = &b;
                s.spawn(move || {
                    b.wait_leader(rank, || ());
                });
            }
        });
        assert_eq!(
            b.spin_budget(),
            0,
            "leader re-evaluation must track oversubscription drift"
        );
    }

    #[test]
    fn tree_node_isolates_hot_lines() {
        // The const asserts enforce this at compile time; restate the
        // intent where a failing layout change will name the test.
        assert_eq!(std::mem::size_of::<TreeNode>(), 384);
        assert_eq!(std::mem::offset_of!(TreeNode, arrive), 128);
        assert_eq!(std::mem::offset_of!(TreeNode, wait), 256);
    }

    #[test]
    fn hier_single_proc_is_always_leader() {
        let mut builder = TreeBuilder::new(1.0);
        builder.proc_root("solo", NodeParams::fastest());
        let t = builder.build().unwrap();
        let b = HierBarrier::new(&t);
        assert_eq!(b.wait_leader(0, || 42), Some(42));
        assert_eq!(b.wait_leader(0, || 7), Some(7));
    }
}
