//! A reusable sense-reversing central barrier with a leader hook.
//!
//! The last thread to arrive runs a closure (the "leader section")
//! before anyone is released — the standard way to fold a small amount
//! of sequential coordination (here: superstep bookkeeping) into a
//! barrier without extra synchronization rounds.

use parking_lot::{Condvar, Mutex};

struct Inner {
    arrived: usize,
    generation: u64,
}

/// A barrier for a fixed set of `n` threads, reusable across
/// generations.
pub struct CentralBarrier {
    n: usize,
    inner: Mutex<Inner>,
    cv: Condvar,
}

impl CentralBarrier {
    /// Barrier for `n` threads.
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "barrier needs at least one thread");
        CentralBarrier {
            n,
            inner: Mutex::new(Inner {
                arrived: 0,
                generation: 0,
            }),
            cv: Condvar::new(),
        }
    }

    /// Number of participating threads.
    pub fn parties(&self) -> usize {
        self.n
    }

    /// Wait for all `n` threads. The last to arrive runs `leader` (while
    /// the others remain blocked), then everyone is released. Returns
    /// `Some(result)` to the leader, `None` to the rest.
    pub fn wait_leader<R>(&self, leader: impl FnOnce() -> R) -> Option<R> {
        let mut guard = self.inner.lock();
        guard.arrived += 1;
        if guard.arrived == self.n {
            // Leader: run the section, flip the generation, release.
            let result = leader();
            guard.arrived = 0;
            guard.generation = guard.generation.wrapping_add(1);
            self.cv.notify_all();
            Some(result)
        } else {
            let gen = guard.generation;
            while guard.generation == gen {
                self.cv.wait(&mut guard);
            }
            None
        }
    }

    /// Plain barrier wait with no leader work.
    pub fn wait(&self) {
        self.wait_leader(|| ());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn single_thread_is_always_leader() {
        let b = CentralBarrier::new(1);
        assert_eq!(b.wait_leader(|| 42), Some(42));
        assert_eq!(b.wait_leader(|| 7), Some(7));
    }

    #[test]
    fn exactly_one_leader_per_generation() {
        const N: usize = 8;
        const ROUNDS: usize = 50;
        let b = CentralBarrier::new(N);
        let leader_runs = AtomicUsize::new(0);
        std::thread::scope(|s| {
            for _ in 0..N {
                s.spawn(|| {
                    for _ in 0..ROUNDS {
                        b.wait_leader(|| {
                            leader_runs.fetch_add(1, Ordering::SeqCst);
                        });
                    }
                });
            }
        });
        assert_eq!(leader_runs.load(Ordering::SeqCst), ROUNDS);
    }

    #[test]
    fn leader_section_is_exclusive() {
        // No thread may pass the barrier while the leader section runs:
        // the leader writes a value; every thread must observe it after
        // the wait.
        const N: usize = 6;
        const ROUNDS: usize = 40;
        let b = CentralBarrier::new(N);
        let value = AtomicUsize::new(0);
        std::thread::scope(|s| {
            for _ in 0..N {
                s.spawn(|| {
                    for round in 1..=ROUNDS {
                        b.wait_leader(|| value.store(round, Ordering::SeqCst));
                        assert_eq!(value.load(Ordering::SeqCst), round);
                    }
                });
            }
        });
    }

    #[test]
    #[should_panic(expected = "at least one thread")]
    fn zero_parties_rejected() {
        CentralBarrier::new(0);
    }
}
