//! The threaded execution engine.

use crate::barrier::CentralBarrier;
use crate::mailbox::Mailbox;
use hbsp_core::{MachineTree, Message, ProcEnv, ProcId, SpmdContext, SpmdProgram, StepOutcome};
use hbsp_sim::step::{analyze, resolve_outcomes};
use hbsp_sim::timing::{barrier_release, superstep_timing};
use hbsp_sim::{NetConfig, SimError, SimOutcome, StepStats};
use parking_lot::Mutex;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Result of a threaded run: the same virtual-time outcome the
/// simulator would produce, plus real wall-clock duration.
#[derive(Debug, Clone)]
pub struct RunOutcome {
    /// Virtual-time outcome (identical to `Simulator::run` for the same
    /// program, machine, and config).
    pub virtual_outcome: SimOutcome,
    /// Real elapsed time of the threaded execution.
    pub wall: Duration,
}

/// One OS thread per leaf processor, superstep-synchronized.
pub struct ThreadedRuntime {
    tree: Arc<MachineTree>,
    cfg: NetConfig,
    step_limit: usize,
}

/// Everything the coordination leader updates once per superstep.
struct Coordination {
    /// Per-processor contributions for the current step.
    work: Vec<f64>,
    sends: Vec<Vec<Message>>,
    outcomes: Vec<Option<StepOutcome>>,
    /// Virtual release times feeding the next step.
    starts: Vec<f64>,
    /// Per-processor finish times of the latest step.
    finish: Vec<f64>,
    /// Accumulated per-step statistics.
    steps: Vec<StepStats>,
    delivered: u64,
    /// Per-thread contained panics, recorded with the step they
    /// happened in. Only the *leader* (inside the barrier, when every
    /// thread of the generation has arrived) translates these into the
    /// shared `error` — publishing the error directly from the
    /// panicking thread would let a racing peer observe it during the
    /// *previous* step's check and exit before reaching the next
    /// barrier, stranding everyone else there.
    panicked: Vec<Option<usize>>,
    /// Set when the SPMD discipline is violated; threads bail out.
    error: Option<SimError>,
    /// Set when every processor returned `Done`.
    finished: bool,
}

impl ThreadedRuntime {
    /// Runtime with PVM-like default microcosts.
    pub fn new(tree: Arc<MachineTree>) -> Self {
        ThreadedRuntime {
            tree,
            cfg: NetConfig::pvm_like(),
            step_limit: 100_000,
        }
    }

    /// Runtime with explicit microcosts.
    pub fn with_config(tree: Arc<MachineTree>, cfg: NetConfig) -> Self {
        ThreadedRuntime {
            tree,
            cfg,
            step_limit: 100_000,
        }
    }

    /// Override the runaway-program guard (default 100 000 supersteps).
    pub fn step_limit(mut self, limit: usize) -> Self {
        self.step_limit = limit;
        self
    }

    /// The machine being executed.
    pub fn tree(&self) -> &Arc<MachineTree> {
        &self.tree
    }

    /// Run `prog` on real threads; returns the outcome and every
    /// processor's final state.
    pub fn run_with_states<P: SpmdProgram>(
        &self,
        prog: &P,
    ) -> Result<(RunOutcome, Vec<P::State>), SimError> {
        self.cfg.validate()?;
        let p = self.tree.num_procs();
        let barrier = CentralBarrier::new(p);
        let mailboxes: Vec<Mailbox> = (0..p).map(|_| Mailbox::new()).collect();
        let coord = Mutex::new(Coordination {
            work: vec![0.0; p],
            sends: (0..p).map(|_| Vec::new()).collect(),
            outcomes: vec![None; p],
            panicked: vec![None; p],
            starts: vec![0.0; p],
            finish: vec![0.0; p],
            steps: Vec::new(),
            delivered: 0,
            error: None,
            finished: false,
        });

        let began = Instant::now();
        let states: Vec<Result<P::State, SimError>> = std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(p);
            for i in 0..p {
                let env = ProcEnv {
                    pid: ProcId(i as u32),
                    nprocs: p,
                    tree: Arc::clone(&self.tree),
                };
                let barrier = &barrier;
                let coord = &coord;
                let mailboxes = &mailboxes;
                let tree = &self.tree;
                let cfg = &self.cfg;
                let step_limit = self.step_limit;
                handles.push(scope.spawn(move || {
                    let mut state = prog.init(&env);
                    for step in 0..step_limit {
                        // Superstep body, in parallel with all peers. A
                        // panicking body must not strand the other
                        // threads at the barrier: contain it, report a
                        // typed error, and let everyone unwind together.
                        let mut ctx = ThreadCtx {
                            env: &env,
                            inbox: mailboxes[i].take(),
                            outbox: Vec::new(),
                            work: 0.0,
                        };
                        let body = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                            prog.step(step, &env, &mut state, &mut ctx)
                        }));
                        let outcome = match body {
                            Ok(o) => o,
                            Err(_) => {
                                // Record the contained panic; the leader
                                // publishes it as the run's error inside
                                // the barrier (see `Coordination::panicked`).
                                coord.lock().panicked[i] = Some(step);
                                // Participate with a harmless outcome so
                                // the barrier still completes.
                                StepOutcome::Done
                            }
                        };
                        {
                            let mut c = coord.lock();
                            c.work[i] = ctx.work;
                            c.sends[i] = ctx.outbox;
                            c.outcomes[i] = Some(outcome);
                        }
                        // Rendezvous; the last thread does the step's
                        // sequential coordination.
                        barrier.wait_leader(|| {
                            let mut c = coord.lock();
                            leader_step(tree, cfg, mailboxes, step, &mut c);
                        });
                        let (err, finished) = {
                            let c = coord.lock();
                            (c.error.clone(), c.finished)
                        };
                        if let Some(e) = err {
                            return Err(e);
                        }
                        if finished {
                            return Ok(state);
                        }
                    }
                    Err(SimError::StepLimit { limit: step_limit })
                }));
            }
            handles
                .into_iter()
                .map(|h| h.join().expect("processor thread panicked"))
                .collect()
        });
        let wall = began.elapsed();

        let mut out_states = Vec::with_capacity(p);
        for s in states {
            out_states.push(s?);
        }
        let c = coord.into_inner();
        let total_time = c.finish.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        Ok((
            RunOutcome {
                virtual_outcome: SimOutcome {
                    total_time,
                    proc_finish: c.finish,
                    steps: c.steps,
                    messages_delivered: c.delivered,
                    // Tracing is a simulator feature; the threaded
                    // runtime reports aggregate stats only.
                    timelines: None,
                },
                wall,
            },
            out_states,
        ))
    }

    /// Run `prog`, discarding final states.
    pub fn run<P: SpmdProgram>(&self, prog: &P) -> Result<RunOutcome, SimError> {
        self.run_with_states(prog).map(|(o, _)| o)
    }
}

/// The per-superstep sequential coordination, identical in effect to one
/// iteration of the simulator's main loop.
fn leader_step(
    tree: &MachineTree,
    cfg: &NetConfig,
    mailboxes: &[Mailbox],
    step: usize,
    c: &mut Coordination,
) {
    // Translate contained panics into the shared error now that every
    // thread of this generation has arrived (lowest rank wins for
    // determinism).
    if c.error.is_none() {
        if let Some((i, &Some(step))) = c.panicked.iter().enumerate().find(|(_, s)| s.is_some()) {
            c.error = Some(SimError::ProgramPanicked {
                pid: ProcId(i as u32),
                step,
            });
        }
    }
    if c.error.is_some() {
        // A processor failed; preserve the error and skip the step's
        // bookkeeping.
        for o in c.outcomes.iter_mut() {
            o.take();
        }
        return;
    }
    let p = tree.num_procs();
    // Flatten sends in pid order — the exact posting order the
    // simulator sees when it runs processors sequentially.
    let sends: Vec<Message> = c.sends.iter_mut().flat_map(std::mem::take).collect();
    let outcomes: Vec<StepOutcome> = c
        .outcomes
        .iter_mut()
        .map(|o| o.take().expect("all contributions in"))
        .collect();

    let scope = match resolve_outcomes(step, &outcomes) {
        Ok(s) => s,
        Err(e) => {
            c.error = Some(e);
            return;
        }
    };
    let analysis = match analyze(tree, step, scope, &sends) {
        Ok(a) => a,
        Err(e) => {
            c.error = Some(e);
            return;
        }
    };
    let timing = superstep_timing(tree, cfg, &c.starts, &c.work, &analysis.intents);
    let finish_max = timing
        .finish
        .iter()
        .cloned()
        .fold(f64::NEG_INFINITY, f64::max);
    let start_min = c.starts.iter().cloned().fold(f64::INFINITY, f64::min);
    let work_units: f64 = c.work.iter().sum();
    c.work = vec![0.0; p];

    match scope {
        None => {
            c.steps.push(StepStats {
                step,
                scope: hbsp_core::SyncScope::global(tree),
                start_min,
                finish_max,
                release_max: finish_max,
                traffic: analysis.traffic,
                hrelation: analysis.hrelation,
                work_units,
            });
            c.finish = timing.finish;
            c.finished = true;
        }
        Some(s) => {
            let releases = barrier_release(tree, s, &timing.finish);
            let release_max = releases.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            c.steps.push(StepStats {
                step,
                scope: s,
                start_min,
                finish_max,
                release_max,
                traffic: analysis.traffic,
                hrelation: analysis.hrelation,
                work_units,
            });
            // Deliver in (arrival, posting index) order.
            let mut with_arrival: Vec<(f64, usize)> = timing
                .messages
                .iter()
                .enumerate()
                .map(|(mi, t)| (t.arrival, mi))
                .collect();
            with_arrival.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap().then(a.1.cmp(&b.1)));
            for (_, mi) in with_arrival {
                let m = sends[mi].clone();
                mailboxes[m.dst.rank()].deposit(m);
                c.delivered += 1;
            }
            c.finish = timing.finish.clone();
            c.starts = releases;
        }
    }
}

/// The runtime's per-processor superstep context.
struct ThreadCtx<'a> {
    env: &'a ProcEnv,
    inbox: Vec<Message>,
    outbox: Vec<Message>,
    work: f64,
}

impl SpmdContext for ThreadCtx<'_> {
    fn pid(&self) -> ProcId {
        self.env.pid
    }
    fn nprocs(&self) -> usize {
        self.env.nprocs
    }
    fn tree(&self) -> &MachineTree {
        &self.env.tree
    }
    fn messages(&self) -> &[Message] {
        &self.inbox
    }
    fn send(&mut self, dst: ProcId, tag: u32, payload: Vec<u8>) {
        self.outbox
            .push(Message::new(self.env.pid, dst, tag, payload));
    }
    fn charge(&mut self, units: f64) {
        assert!(
            units >= 0.0 && units.is_finite(),
            "charged work must be finite and non-negative"
        );
        self.work += units;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hbsp_core::{SyncScope, TreeBuilder};
    use hbsp_sim::Simulator;

    /// Total-exchange program: every processor sends its pid (as bytes)
    /// to everyone else each round.
    struct Exchange {
        rounds: usize,
    }

    impl SpmdProgram for Exchange {
        type State = Vec<(u32, u32)>; // (step received, src)
        fn init(&self, _env: &ProcEnv) -> Self::State {
            Vec::new()
        }
        fn step(
            &self,
            step: usize,
            env: &ProcEnv,
            state: &mut Self::State,
            ctx: &mut dyn SpmdContext,
        ) -> StepOutcome {
            for m in ctx.messages() {
                state.push((step as u32, m.src.0));
            }
            if step == self.rounds {
                return StepOutcome::Done;
            }
            ctx.charge(10.0);
            for q in 0..env.nprocs {
                if q != env.pid.rank() {
                    ctx.send(ProcId(q as u32), 7, env.pid.0.to_le_bytes().to_vec());
                }
            }
            StepOutcome::Continue(SyncScope::global(&env.tree))
        }
    }

    fn machine() -> Arc<MachineTree> {
        Arc::new(
            TreeBuilder::flat(
                1.0,
                25.0,
                &[(1.0, 1.0), (1.5, 0.7), (2.0, 0.5), (3.0, 0.35)],
            )
            .unwrap(),
        )
    }

    #[test]
    fn threaded_delivery_matches_bsp_guarantee() {
        let rt = ThreadedRuntime::new(machine());
        let (out, states) = rt.run_with_states(&Exchange { rounds: 2 }).unwrap();
        assert_eq!(out.virtual_outcome.num_steps(), 3);
        for (i, st) in states.iter().enumerate() {
            // Each proc gets 3 peers' messages per round, tagged with
            // the receiving step (1 and 2).
            assert_eq!(st.len(), 6, "proc {i}");
            assert!(st.iter().filter(|(s, _)| *s == 1).count() == 3);
            assert!(st.iter().all(|(_, src)| *src != i as u32));
        }
    }

    #[test]
    fn virtual_time_matches_simulator_exactly() {
        let tree = machine();
        let prog = Exchange { rounds: 4 };
        let sim = Simulator::new(Arc::clone(&tree)).run(&prog).unwrap();
        let thr = ThreadedRuntime::new(tree)
            .run(&prog)
            .unwrap()
            .virtual_outcome;
        assert_eq!(sim.total_time, thr.total_time);
        assert_eq!(sim.proc_finish, thr.proc_finish);
        assert_eq!(sim.messages_delivered, thr.messages_delivered);
        for (a, b) in sim.steps.iter().zip(&thr.steps) {
            assert_eq!(a.hrelation, b.hrelation);
            assert_eq!(a.release_max, b.release_max);
            assert_eq!(a.work_units, b.work_units);
            assert_eq!(a.traffic, b.traffic);
        }
    }

    #[test]
    fn errors_propagate_from_leader() {
        struct Mixed;
        impl SpmdProgram for Mixed {
            type State = ();
            fn init(&self, _e: &ProcEnv) {}
            fn step(
                &self,
                _s: usize,
                env: &ProcEnv,
                _st: &mut (),
                _c: &mut dyn SpmdContext,
            ) -> StepOutcome {
                if env.pid.0.is_multiple_of(2) {
                    StepOutcome::Done
                } else {
                    StepOutcome::Continue(SyncScope::global(&env.tree))
                }
            }
        }
        let rt = ThreadedRuntime::new(machine());
        assert_eq!(
            rt.run(&Mixed).unwrap_err(),
            SimError::TerminationMismatch { step: 0 }
        );
    }

    #[test]
    fn step_limit_enforced() {
        struct Forever;
        impl SpmdProgram for Forever {
            type State = ();
            fn init(&self, _e: &ProcEnv) {}
            fn step(
                &self,
                _s: usize,
                env: &ProcEnv,
                _st: &mut (),
                _c: &mut dyn SpmdContext,
            ) -> StepOutcome {
                StepOutcome::Continue(SyncScope::global(&env.tree))
            }
        }
        let rt = ThreadedRuntime::new(machine()).step_limit(5);
        assert_eq!(
            rt.run(&Forever).unwrap_err(),
            SimError::StepLimit { limit: 5 }
        );
    }

    #[test]
    fn panicking_program_yields_typed_error_not_deadlock() {
        struct Bomb;
        impl SpmdProgram for Bomb {
            type State = ();
            fn init(&self, _e: &ProcEnv) {}
            fn step(
                &self,
                step: usize,
                env: &ProcEnv,
                _st: &mut (),
                _c: &mut dyn SpmdContext,
            ) -> StepOutcome {
                if step == 1 && env.pid.0 == 2 {
                    panic!("boom");
                }
                if step == 3 {
                    return StepOutcome::Done;
                }
                StepOutcome::Continue(SyncScope::global(&env.tree))
            }
        }
        let rt = ThreadedRuntime::new(machine());
        let err = rt.run(&Bomb).unwrap_err();
        assert_eq!(
            err,
            SimError::ProgramPanicked {
                pid: ProcId(2),
                step: 1
            }
        );
    }

    #[test]
    fn wall_clock_is_measured() {
        let rt = ThreadedRuntime::new(machine());
        let out = rt.run(&Exchange { rounds: 1 }).unwrap();
        assert!(out.wall > Duration::ZERO);
    }
}
