//! The threaded execution engine.
//!
//! One OS thread per leaf processor, synchronized per superstep by a
//! hierarchical combining-tree barrier (see [`crate::barrier`]). The
//! per-step hot path is lock-free for the processor threads:
//!
//! * each thread writes its superstep contribution (charged work,
//!   posted messages, outcome) into its own cache-line-padded
//!   `ProcSlot` — no shared lock is taken between barriers;
//! * the barrier's leader section gathers all slots, runs the shared
//!   timing algebra, and *moves* every message into its receiver's
//!   mailbox (payloads are never copied), batched so each mailbox is
//!   locked exactly once per superstep;
//! * run-level coordination state lives in a `LeaderState` mutex that
//!   only the leader section locks (uncontended by construction), with
//!   two atomics (`finished`, `failed`) publishing the step's verdict
//!   to the released threads.

use crate::barrier::{lock_anyway, BarrierKind, StepBarrier};
use crate::mailbox::Mailbox;
use crate::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use crate::sync::{hb_assert, site_ord, Instant, Mutex, UnsafeCell};
use hbsp_core::{MachineTree, MsgBatch, ProcEnv, ProcId, SpmdContext, SpmdProgram, StepOutcome};
use hbsp_obs::{ObsEvent, Probe, StepRecord, StepWall};
use hbsp_sim::step::{analyze_into, delivery_order_into, resolve_outcomes, StepAnalysis};
use hbsp_sim::timing::{barrier_release, superstep_timing_faulted_into, StepTiming, TimingScratch};
use hbsp_sim::trace::{step_spans, ProcTimeline};
use hbsp_sim::{FaultPlan, NetConfig, SimError, SimOutcome, StepStats};
use std::sync::{Arc, PoisonError};
use std::time::Duration;

/// Watchdog armed at any step with a *scripted* barrier stall: peers
/// need not wait for a user deadline (possibly unlimited) to diagnose
/// a stall the fault plan guarantees will happen. Long enough that a
/// loaded CI machine still gets every healthy thread to the barrier
/// first; short enough that chaos runs stay fast.
const STALL_WATCHDOG: Duration = Duration::from_millis(100);

/// How long a scripted-stalled thread waits for its peers' watchdog
/// verdict before recording the (identical) timeout itself — the
/// fallback that keeps a stall of *every* processor from hanging.
const STALL_SELF_REPORT: Duration = Duration::from_millis(400);

/// Result of a threaded run: the same virtual-time outcome the
/// simulator would produce, plus real wall-clock duration.
#[derive(Debug, Clone)]
pub struct RunOutcome {
    /// Virtual-time outcome (identical to `Simulator::run` for the same
    /// program, machine, and config).
    pub virtual_outcome: SimOutcome,
    /// Real elapsed time of the threaded execution.
    pub wall: Duration,
}

/// One OS thread per leaf processor, superstep-synchronized.
pub struct ThreadedRuntime {
    tree: Arc<MachineTree>,
    cfg: NetConfig,
    step_limit: usize,
    barrier_kind: BarrierKind,
    trace: bool,
    check: bool,
    faults: FaultPlan,
    step_deadline: Option<Duration>,
    probe: Arc<dyn Probe>,
}

/// One processor's per-superstep contribution, padded to its own cache
/// lines so neighbouring writers never false-share.
///
/// Access protocol (this is what makes the `UnsafeCell` sound):
///
/// * between a barrier release and its next barrier arrival, slot `i`
///   is touched only by processor thread `i` (via [`ProcSlot::slot`]);
/// * inside the barrier's leader section — when every thread of the
///   generation has arrived and none has been released — all slots are
///   touched only by the leader.
///
/// The barrier's acquire/release edges order the two phases: every
/// owner write happens-before the leader's reads (the arrival chain),
/// and every leader write happens-before the owners' next writes (the
/// release flip).
#[repr(align(128))]
struct ProcSlot {
    data: UnsafeCell<SlotData>,
}

// SAFETY: shared access is mediated by the superstep barrier per the
// protocol documented on `ProcSlot` — at any instant at most one thread
// holds a reference into the cell.
unsafe impl Sync for ProcSlot {}

impl ProcSlot {
    fn new() -> Self {
        ProcSlot {
            data: UnsafeCell::new(SlotData::default()),
        }
    }

    /// Access the slot's contents.
    ///
    /// # Safety
    /// The caller must hold the slot per the [`ProcSlot`] protocol:
    /// either it is processor thread `i` outside the leader section, or
    /// it is the leader inside the leader section.
    #[allow(clippy::mut_from_ref)]
    unsafe fn slot(&self) -> &mut SlotData {
        // The model-checkable form of this function's safety contract:
        // every prior access to the cell must happen-before this one.
        hb_assert!(
            self.data,
            "ProcSlot protocol: the caller is the slot's unique holder \
             for the current barrier phase"
        );
        // SAFETY: per this function's contract the caller is the slot's
        // unique holder for the current barrier phase, so no other
        // reference into the cell exists while this one lives.
        unsafe { &mut *self.data.get() }
    }
}

#[derive(Default)]
struct SlotData {
    /// Charged work units of the current step.
    work: f64,
    /// This step's drained inbox: swapped out of the mailbox at body
    /// start, swapped back (empty) as the next delivery buffer. Owned
    /// by the processor thread; the leader never reads it.
    inbox: MsgBatch,
    /// Messages posted in the current step, in posting order — a flat
    /// batch the body's `send` writes into directly and the leader
    /// bulk-moves out, so a steady-state step allocates nothing here.
    sends: MsgBatch,
    /// The step body's outcome; consumed by the leader.
    outcome: Option<StepOutcome>,
    /// A contained panic, recorded with the step it happened in. Only
    /// the *leader* (inside the barrier, when every thread of the
    /// generation has arrived) translates these into the shared error —
    /// publishing the error directly from the panicking thread would
    /// let a racing peer observe it during the *previous* step's check
    /// and exit before reaching the next barrier, stranding everyone
    /// else there.
    panicked: Option<usize>,
    /// A scripted crash, recorded with the step it fired at. Like
    /// `panicked`, only the leader translates it (into
    /// [`SimError::ProcCrashed`], gathering *all* crashed ranks of the
    /// step), for the same publication-order reason.
    crashed: Option<usize>,
    /// Wall-clock body start of the current step (ns since the run
    /// began). Written by the owner thread only when a probe is
    /// enabled; read by the leader when emitting a [`StepRecord`].
    body_start_ns: u64,
    /// Wall-clock body end (barrier arrival) of the current step.
    body_end_ns: u64,
}

/// Run-level coordination state. Locked only inside the barrier's
/// leader section (and once after the run), so the mutex is always
/// uncontended — it exists to satisfy the borrow checker, not to
/// arbitrate threads.
struct LeaderState {
    /// Virtual release times feeding the next step.
    starts: Vec<f64>,
    /// Per-processor finish times of the latest step.
    finish: Vec<f64>,
    /// Accumulated per-step statistics.
    steps: Vec<StepStats>,
    delivered: u64,
    /// Per-processor activity timelines, accumulated when tracing.
    timelines: Option<Vec<ProcTimeline>>,
    /// Set when the SPMD discipline is violated; threads bail out.
    error: Option<SimError>,
    // --- per-step scratch, reused so a steady-state superstep does no
    // per-message heap allocation (the buffers grow once, then cycle).
    /// Charged work gathered from the slots.
    work: Vec<f64>,
    /// Step outcomes gathered from the slots.
    outcomes: Vec<StepOutcome>,
    /// All posted messages of the step, gathered in pid order — the
    /// exact posting order the simulator sees.
    sends: MsgBatch,
    /// Validated communication analysis of the step.
    analysis: StepAnalysis,
    /// Virtual-time decomposition of the step.
    timing: StepTiming,
    /// The timing algebra's internal queues.
    timing_scratch: TimingScratch,
    /// Delivery permutation of the step's messages.
    order: Vec<usize>,
    /// Per-destination delivery batches; each is swapped into its
    /// receiver's mailbox and the receiver's drained buffer is swapped
    /// back, so the same allocations circulate all run.
    dests: Vec<MsgBatch>,
    /// Probe-record assembly buffers, reused across steps so an
    /// enabled probe costs no per-superstep allocation either.
    emit: EmitScratch,
}

/// Reusable buffers for assembling a [`StepRecord`]: the probe-on
/// path clears and refills these instead of allocating fresh vectors
/// every superstep.
#[derive(Default)]
struct EmitScratch {
    words: Vec<u64>,
    messages: Vec<u64>,
    sent: Vec<u64>,
    body_start_ns: Vec<u64>,
    body_end_ns: Vec<u64>,
}

impl LeaderState {
    fn new(p: usize, trace: bool) -> Self {
        LeaderState {
            starts: vec![0.0; p],
            finish: vec![0.0; p],
            steps: Vec::new(),
            delivered: 0,
            timelines: trace.then(|| {
                (0..p)
                    .map(|i| ProcTimeline {
                        pid: ProcId(i as u32),
                        spans: Vec::new(),
                    })
                    .collect()
            }),
            error: None,
            work: Vec::with_capacity(p),
            outcomes: Vec::with_capacity(p),
            sends: MsgBatch::new(),
            analysis: StepAnalysis {
                intents: Vec::new(),
                traffic: Vec::new(),
                hrelation: 0.0,
            },
            timing: StepTiming {
                compute_done: Vec::new(),
                send_done: Vec::new(),
                messages: Vec::new(),
                finish: Vec::new(),
            },
            timing_scratch: TimingScratch::default(),
            order: Vec::new(),
            dests: (0..p).map(|_| MsgBatch::new()).collect(),
            emit: EmitScratch::default(),
        }
    }
}

impl ThreadedRuntime {
    /// Runtime with PVM-like default microcosts.
    pub fn new(tree: Arc<MachineTree>) -> Self {
        ThreadedRuntime {
            tree,
            cfg: NetConfig::pvm_like(),
            step_limit: 100_000,
            barrier_kind: BarrierKind::default(),
            trace: false,
            check: cfg!(debug_assertions),
            faults: FaultPlan::new(),
            step_deadline: None,
            probe: hbsp_obs::noop(),
        }
    }

    /// Runtime with explicit microcosts.
    pub fn with_config(tree: Arc<MachineTree>, cfg: NetConfig) -> Self {
        ThreadedRuntime {
            tree,
            cfg,
            step_limit: 100_000,
            barrier_kind: BarrierKind::default(),
            trace: false,
            check: cfg!(debug_assertions),
            faults: FaultPlan::new(),
            step_deadline: None,
            probe: hbsp_obs::noop(),
        }
    }

    /// Attach a telemetry [`Probe`] (default: the no-op probe). When
    /// enabled, the leader section emits one [`StepRecord`] per
    /// superstep carrying the same virtual-time schema the simulator
    /// produces *plus* wall-clock marks ([`StepWall`]) measured with
    /// `Instant`; watchdog aborts surface as [`ObsEvent`]s. When
    /// disabled nothing is assembled and the hot path is untouched.
    pub fn probe(mut self, probe: Arc<dyn Probe>) -> Self {
        self.probe = probe;
        self
    }

    /// Record per-processor activity timelines (see [`hbsp_sim::trace`]).
    /// The spans are built from the same timing algebra the simulator
    /// uses, so a traced threaded run and a traced simulation of the
    /// same program produce identical timelines.
    pub fn trace(mut self, enable: bool) -> Self {
        self.trace = enable;
        self
    }

    /// Override the runaway-program guard (default 100 000 supersteps).
    pub fn step_limit(mut self, limit: usize) -> Self {
        self.step_limit = limit;
        self
    }

    /// Toggle the static pre-flight check (`SpmdProgram::preflight`)
    /// run before any thread spawns. On by default in debug builds: a
    /// malformed program fails at submit time with
    /// [`SimError::Preflight`] instead of panicking a worker or
    /// hanging a barrier mid-run.
    pub fn check(mut self, enable: bool) -> Self {
        self.check = enable;
        self
    }

    /// Choose the superstep barrier implementation (default:
    /// [`BarrierKind::Hierarchical`]). The central barrier is kept as
    /// the baseline for the `engine_overhead` bench.
    pub fn barrier(mut self, kind: BarrierKind) -> Self {
        self.barrier_kind = kind;
        self
    }

    /// Inject a scripted [`FaultPlan`]. Both engines honor the same
    /// plan at the same protocol points, in the same order (stall →
    /// crash → bodies → message corruption → straggle timing), so a
    /// fault run here yields the same typed error or virtual-time
    /// outcome as `Simulator` under the same plan.
    pub fn faults(mut self, plan: FaultPlan) -> Self {
        self.faults = plan;
        self
    }

    /// Wall-clock watchdog on barrier arrival (default: unlimited): if
    /// any peer is still missing `deadline` after a thread started
    /// waiting, the run aborts with [`SimError::BarrierTimeout`]
    /// naming the absent pids instead of hanging. The deadline should
    /// comfortably exceed a superstep's real compute time. Mirrored in
    /// virtual time by `Simulator::step_deadline`.
    pub fn step_deadline(mut self, deadline: Duration) -> Self {
        self.step_deadline = Some(deadline);
        self
    }

    /// The machine being executed.
    pub fn tree(&self) -> &Arc<MachineTree> {
        &self.tree
    }

    /// Run `prog` on real threads; returns the outcome and every
    /// processor's final state.
    pub fn run_with_states<P: SpmdProgram>(
        &self,
        prog: &P,
    ) -> Result<(RunOutcome, Vec<P::State>), SimError> {
        self.cfg.validate()?;
        if self.check {
            prog.preflight(&self.tree)
                .map_err(|e| SimError::Preflight {
                    message: e.to_string(),
                })?;
        }
        let p = self.tree.num_procs();
        let barrier = StepBarrier::new(self.barrier_kind, &self.tree);
        let mailboxes: Vec<Mailbox> = (0..p).map(|_| Mailbox::new()).collect();
        let slots: Vec<ProcSlot> = (0..p).map(|_| ProcSlot::new()).collect();
        let leader_state = Mutex::new(LeaderState::new(p, self.trace));
        let finished = AtomicBool::new(false);
        let failed = AtomicBool::new(false);
        // Arrival board: rank `i` stores `step + 1` right before its
        // barrier arrival. A watchdog firing on an *unscripted* stall
        // (a hung body under `step_deadline`) derives the missing-pid
        // list from it; scripted stalls use the plan's own list so the
        // error value matches the simulator's bit for bit.
        let arrived: Vec<AtomicUsize> = (0..p).map(|_| AtomicUsize::new(0)).collect();

        let began = Instant::now();
        let tasks: Vec<_> = (0..p)
            .map(|i| {
                let env = ProcEnv {
                    pid: ProcId(i as u32),
                    nprocs: p,
                    tree: Arc::clone(&self.tree),
                };
                let barrier = &barrier;
                let leader_state = &leader_state;
                let finished = &finished;
                let failed = &failed;
                let mailboxes = &mailboxes;
                let slots = &slots;
                let arrived = &arrived;
                let tree = &self.tree;
                let cfg = &self.cfg;
                let faults = &self.faults;
                let probe = &self.probe;
                let observing = self.probe.enabled();
                let step_limit = self.step_limit;
                let user_deadline = self.step_deadline;
                move || -> Result<P::State, SimError> {
                    let mut state = prog.init(&env);
                    for step in 0..step_limit {
                        // Scripted stall: never arrive at this step's
                        // barrier. The peers' watchdog (or, if every
                        // processor stalled, our own fallback below)
                        // converts the absence into a typed timeout.
                        if faults.stalls(env.pid, step) {
                            let give_up = Instant::now() + STALL_SELF_REPORT;
                            while !failed.load(site_ord!("engine.failed.check", Ordering::Acquire))
                            {
                                if Instant::now() >= give_up {
                                    record_timeout(
                                        faults.stalled_at(step),
                                        step,
                                        leader_state,
                                        mailboxes,
                                        failed,
                                        &**probe,
                                    );
                                    break;
                                }
                                crate::sync::thread::sleep(Duration::from_millis(1));
                            }
                            let e = lock_anyway(leader_state)
                                .error
                                .clone()
                                .expect("failed implies a recorded error");
                            return Err(e);
                        }

                        if faults.crashes(env.pid, step) {
                            // Scripted crash: the body never runs. Mark
                            // the slot and make one last barrier
                            // arrival so the leader can diagnose every
                            // crashed rank of the step at once.
                            // SAFETY: this thread owns slot `i` outside
                            // the leader section (ProcSlot protocol).
                            unsafe { slots[i].slot() }.crashed = Some(step);
                        } else {
                            // Superstep body, in parallel with all
                            // peers. A panicking body must not strand
                            // the other threads at the barrier: contain
                            // it, report a typed error, and let
                            // everyone unwind together.
                            // SAFETY: this thread owns slot `i` outside
                            // the leader section (ProcSlot protocol).
                            let slot = unsafe { slots[i].slot() };
                            if observing {
                                slot.body_start_ns = began.elapsed().as_nanos() as u64;
                            }
                            // Swap the inbox out of the mailbox: the
                            // drained buffer left behind becomes the
                            // leader's next delivery batch, so the same
                            // allocations circulate all run.
                            mailboxes[i].take_into(&mut slot.inbox);
                            let mut ctx = ThreadCtx {
                                env: &env,
                                inbox: &slot.inbox,
                                outbox: &mut slot.sends,
                                work: 0.0,
                            };
                            let body =
                                std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                                    prog.step(step, &env, &mut state, &mut ctx)
                                }));
                            let work = ctx.work;
                            slot.work = work;
                            if observing {
                                slot.body_end_ns = began.elapsed().as_nanos() as u64;
                            }
                            slot.outcome = Some(match body {
                                Ok(o) => o,
                                Err(_) => {
                                    slot.panicked = Some(step);
                                    // Participate with a harmless
                                    // outcome so the barrier still
                                    // completes.
                                    StepOutcome::Done
                                }
                            });
                        }
                        arrived[i].store(
                            step + 1,
                            site_ord!("engine.arrival.board", Ordering::Release),
                        );
                        // Watchdog: at a step with a scripted stall the
                        // plan *guarantees* a missing peer, so a short
                        // internal deadline applies even when the user
                        // set none (or a long one).
                        let scripted_stall = !faults.stalled_at(step).is_empty();
                        let timeout = if scripted_stall {
                            Some(user_deadline.map_or(STALL_WATCHDOG, |d| d.min(STALL_WATCHDOG)))
                        } else {
                            user_deadline
                        };
                        // Rendezvous; the thread completing the root
                        // arrival does the step's sequential
                        // coordination. The leader section is itself
                        // panic-contained: an unwinding leader would
                        // otherwise wedge every waiter.
                        barrier.wait_leader_watched(
                            i,
                            timeout,
                            || {
                                let missing = if scripted_stall {
                                    faults.stalled_at(step)
                                } else {
                                    (0..p)
                                        .filter(|&j| {
                                            arrived[j].load(site_ord!(
                                                "engine.arrival.scan",
                                                Ordering::Acquire
                                            )) != step + 1
                                        })
                                        .map(|j| ProcId(j as u32))
                                        .collect()
                                };
                                record_timeout(
                                    missing,
                                    step,
                                    leader_state,
                                    mailboxes,
                                    failed,
                                    &**probe,
                                );
                            },
                            || {
                                let ok =
                                    std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                                        let mut ls = lock_anyway(leader_state);
                                        if ls.error.is_some() {
                                            // A watchdog abort raced us
                                            // here: don't stack step
                                            // work on a dying run.
                                            failed.store(
                                                true,
                                                site_ord!(
                                                    "engine.failed.publish",
                                                    Ordering::Release
                                                ),
                                            );
                                            return;
                                        }
                                        leader_step(
                                            tree, cfg, faults, mailboxes, slots, step, &mut ls,
                                            finished, failed, &**probe, began,
                                        );
                                    }));
                                if ok.is_err() {
                                    let mut ls = lock_anyway(leader_state);
                                    if ls.error.is_none() {
                                        ls.error = Some(SimError::LeaderPanicked { step });
                                    }
                                    drop(ls);
                                    for mb in mailboxes {
                                        mb.take();
                                    }
                                    failed.store(
                                        true,
                                        site_ord!("engine.failed.publish", Ordering::Release),
                                    );
                                }
                            },
                        );
                        if failed.load(site_ord!("engine.failed.check", Ordering::Acquire)) {
                            let e = lock_anyway(leader_state)
                                .error
                                .clone()
                                .expect("failed implies a recorded error");
                            return Err(e);
                        }
                        if finished.load(site_ord!("engine.finished.check", Ordering::Acquire)) {
                            return Ok(state);
                        }
                    }
                    Err(SimError::StepLimit { limit: step_limit })
                }
            })
            .collect();
        let states: Vec<Result<P::State, SimError>> = crate::sync::thread::scope_join(tasks)
            .into_iter()
            .map(|h| h.expect("processor thread panicked"))
            .collect();
        let wall = began.elapsed();

        let mut out_states = Vec::with_capacity(p);
        for s in states {
            out_states.push(s?);
        }
        let ls = leader_state
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner);
        let total_time = ls.finish.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        Ok((
            RunOutcome {
                virtual_outcome: SimOutcome {
                    total_time,
                    proc_finish: ls.finish,
                    steps: ls.steps,
                    messages_delivered: ls.delivered,
                    timelines: ls.timelines,
                },
                wall,
            },
            out_states,
        ))
    }

    /// Run `prog`, discarding final states.
    pub fn run<P: SpmdProgram>(&self, prog: &P) -> Result<RunOutcome, SimError> {
        self.run_with_states(prog).map(|(o, _)| o)
    }
}

/// The watchdog's abort path: record a [`SimError::BarrierTimeout`]
/// (first writer wins) and drain the mailboxes. Unlike [`abort_step`]
/// this does NOT touch the `ProcSlot`s: the watchdog may fire while a
/// straggling thread is still writing its own slot, so only
/// mutex-protected state is safe to reach from here. Nobody reads the
/// slots again — the run is over once `failed` flips.
fn record_timeout(
    missing: Vec<ProcId>,
    step: usize,
    leader_state: &Mutex<LeaderState>,
    mailboxes: &[Mailbox],
    failed: &AtomicBool,
    probe: &dyn Probe,
) {
    let mut ls = lock_anyway(leader_state);
    if ls.error.is_none() {
        // First writer wins for the event too: the self-report fallback
        // runs the same path, and the firing must be counted once.
        if probe.enabled() {
            probe.on_event(&ObsEvent::WatchdogFired {
                step,
                missing: &missing,
            });
        }
        ls.error = Some(SimError::BarrierTimeout { missing, step });
    }
    drop(ls);
    for mb in mailboxes {
        mb.take();
    }
    failed.store(true, site_ord!("engine.failed.publish", Ordering::Release));
}

/// Record `error` and scrub every queue: an aborted step must leave no
/// stale contribution or undelivered message behind. Runs inside the
/// leader section.
fn abort_step(
    error: SimError,
    mailboxes: &[Mailbox],
    slots: &[ProcSlot],
    ls: &mut LeaderState,
    failed: &AtomicBool,
) {
    if ls.error.is_none() {
        ls.error = Some(error);
    }
    for s in slots {
        // SAFETY: leader section — the leader owns every slot.
        let slot = unsafe { s.slot() };
        slot.sends.clear();
        slot.outcome = None;
        slot.work = 0.0;
    }
    for mb in mailboxes {
        mb.take();
    }
    failed.store(true, site_ord!("engine.failed.publish", Ordering::Release));
}

/// The per-superstep sequential coordination, identical in effect to
/// one iteration of the simulator's main loop. Runs inside the
/// barrier's leader section; `slots` are all leader-owned here (see
/// [`ProcSlot`]).
#[allow(clippy::too_many_arguments)]
fn leader_step(
    tree: &MachineTree,
    cfg: &NetConfig,
    faults: &FaultPlan,
    mailboxes: &[Mailbox],
    slots: &[ProcSlot],
    step: usize,
    ls: &mut LeaderState,
    finished: &AtomicBool,
    failed: &AtomicBool,
    probe: &dyn Probe,
    began: Instant,
) {
    let p = tree.num_procs();
    // Translate scripted crashes first — the simulator diagnoses a
    // crash before any body runs, so a crash outranks a panic that
    // happened in the same step's surviving bodies.
    let mut crashed: Vec<ProcId> = Vec::new();
    let mut crash_step = step;
    for (i, slot) in slots.iter().enumerate().take(p) {
        // SAFETY: leader section — the leader owns every slot.
        if let Some(cstep) = unsafe { slot.slot() }.crashed {
            crashed.push(ProcId(i as u32));
            crash_step = cstep;
        }
    }
    if !crashed.is_empty() {
        abort_step(
            SimError::ProcCrashed {
                pids: crashed,
                step: crash_step,
            },
            mailboxes,
            slots,
            ls,
            failed,
        );
        return;
    }
    // Translate contained panics into the shared error now that every
    // thread of this generation has arrived (lowest rank wins for
    // determinism).
    for i in 0..p {
        // SAFETY: leader section — the leader owns every slot.
        if let Some(pstep) = unsafe { slots[i].slot() }.panicked {
            abort_step(
                SimError::ProgramPanicked {
                    pid: ProcId(i as u32),
                    step: pstep,
                },
                mailboxes,
                slots,
                ls,
                failed,
            );
            return;
        }
    }

    // Gather contributions: flatten sends in pid order — the exact
    // posting order the simulator sees when it runs processors
    // sequentially. Each slot batch is bulk-moved (two appends) into
    // the shared gather batch; payload bytes are copied once into the
    // flat arena and never boxed per message.
    ls.work.clear();
    ls.outcomes.clear();
    ls.sends.clear();
    for s in slots.iter().take(p) {
        // SAFETY: leader section — the leader owns every slot.
        let slot = unsafe { s.slot() };
        ls.work.push(slot.work);
        slot.work = 0.0;
        ls.sends.append(&mut slot.sends);
        ls.outcomes
            .push(slot.outcome.take().expect("all contributions in"));
    }

    // Network faults hit the posted messages before validation and
    // costing, exactly like the simulator's per-step order.
    faults.corrupt_batch(step, &mut ls.sends);

    let scope = match resolve_outcomes(step, &ls.outcomes) {
        Ok(s) => s,
        Err(e) => {
            abort_step(e, mailboxes, slots, ls, failed);
            return;
        }
    };
    if let Err(e) = analyze_into(tree, step, scope, &ls.sends, &mut ls.analysis) {
        abort_step(e, mailboxes, slots, ls, failed);
        return;
    }
    let r_scale = faults
        .straggles_at(step)
        .then(|| faults.r_multipliers(step, p));
    superstep_timing_faulted_into(
        tree,
        cfg,
        &ls.starts,
        &ls.work,
        &ls.analysis.intents,
        r_scale.as_deref(),
        &mut ls.timing_scratch,
        &mut ls.timing,
    );
    let finish_max = ls
        .timing
        .finish
        .iter()
        .cloned()
        .fold(f64::NEG_INFINITY, f64::max);
    let start_min = ls.starts.iter().cloned().fold(f64::INFINITY, f64::min);
    let work_units: f64 = ls.work.iter().sum();

    match scope {
        None => {
            {
                let LeaderState {
                    starts,
                    timing,
                    analysis,
                    work,
                    emit,
                    ..
                } = &mut *ls;
                emit_step_record(
                    probe,
                    step,
                    None,
                    starts,
                    timing,
                    &timing.finish,
                    analysis,
                    work,
                    slots,
                    began,
                    emit,
                );
            }
            ls.steps.push(StepStats {
                step,
                scope: hbsp_core::SyncScope::global(tree),
                start_min,
                finish_max,
                release_max: finish_max,
                traffic: ls.analysis.traffic.clone(),
                hrelation: ls.analysis.hrelation,
                work_units,
            });
            if let Some(tls) = ls.timelines.as_mut() {
                step_spans(tls, &ls.starts, &ls.timing, &ls.timing.finish);
            }
            ls.finish.clear();
            let LeaderState { finish, timing, .. } = ls;
            finish.extend_from_slice(&timing.finish);
            finished.store(
                true,
                site_ord!("engine.finished.publish", Ordering::Release),
            );
        }
        Some(s) => {
            let releases = barrier_release(tree, s, &ls.timing.finish);
            let release_max = releases.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            if let Some(tls) = ls.timelines.as_mut() {
                step_spans(tls, &ls.starts, &ls.timing, &releases);
            }
            {
                let LeaderState {
                    starts,
                    timing,
                    analysis,
                    work,
                    emit,
                    ..
                } = &mut *ls;
                emit_step_record(
                    probe,
                    step,
                    Some(s.level()),
                    starts,
                    timing,
                    &releases,
                    analysis,
                    work,
                    slots,
                    began,
                    emit,
                );
            }
            ls.steps.push(StepStats {
                step,
                scope: s,
                start_min,
                finish_max,
                release_max,
                traffic: ls.analysis.traffic.clone(),
                hrelation: ls.analysis.hrelation,
                work_units,
            });
            // Deliver in (arrival, posting index) order: each message
            // is one bounded byte-copy from the gather arena into its
            // destination's flat batch — no per-message move loop over
            // boxed payloads — and each mailbox is locked exactly once
            // per superstep (a batch pointer swap, in the common case).
            delivery_order_into(&ls.timing.messages, &mut ls.order);
            for &mi in &ls.order {
                let dst = ls.sends.get(mi).dst;
                ls.dests[dst.rank()].push_from(&ls.sends, mi);
                ls.delivered += 1;
            }
            for (q, batch) in ls.dests.iter_mut().enumerate().take(p) {
                if !batch.is_empty() {
                    mailboxes[q].deposit_batch(batch);
                }
            }
            ls.finish.clear();
            let LeaderState { finish, timing, .. } = ls;
            finish.extend_from_slice(&timing.finish);
            ls.starts.clear();
            ls.starts.extend_from_slice(&releases);
        }
    }
}

/// Assemble and publish the superstep's telemetry record, pairing the
/// shared virtual-time decomposition with this engine's wall-clock
/// marks. Runs inside the leader section (the body marks in the slots
/// are leader-readable there); when the probe is disabled nothing is
/// assembled at all, and when it is enabled assembly refills the
/// reused [`EmitScratch`] buffers — probe-on costs no per-superstep
/// allocation either way.
#[allow(clippy::too_many_arguments)]
fn emit_step_record(
    probe: &dyn Probe,
    step: usize,
    barrier: Option<hbsp_core::Level>,
    starts: &[f64],
    timing: &hbsp_sim::timing::StepTiming,
    releases: &[f64],
    analysis: &hbsp_sim::step::StepAnalysis,
    work: &[f64],
    slots: &[ProcSlot],
    began: Instant,
    scratch: &mut EmitScratch,
) {
    if !probe.enabled() {
        return;
    }
    let p = starts.len();
    scratch.words.clear();
    scratch
        .words
        .extend(analysis.traffic.iter().map(|t| t.words));
    scratch.messages.clear();
    scratch
        .messages
        .extend(analysis.traffic.iter().map(|t| t.messages));
    scratch.sent.clear();
    scratch.sent.resize(p, 0);
    for intent in &analysis.intents {
        scratch.sent[intent.src.rank()] += intent.words;
    }
    scratch.body_start_ns.clear();
    scratch.body_end_ns.clear();
    for slot in slots.iter().take(p) {
        // SAFETY: leader section — the leader owns every slot.
        let slot = unsafe { slot.slot() };
        scratch.body_start_ns.push(slot.body_start_ns);
        scratch.body_end_ns.push(slot.body_end_ns);
    }
    probe.on_step(&StepRecord {
        step,
        barrier,
        starts,
        compute_done: &timing.compute_done,
        send_done: &timing.send_done,
        finish: &timing.finish,
        releases,
        words_by_level: &scratch.words,
        messages_by_level: &scratch.messages,
        hrelation: analysis.hrelation,
        work,
        sent_words: &scratch.sent,
        wall: Some(StepWall {
            body_start_ns: &scratch.body_start_ns,
            body_end_ns: &scratch.body_end_ns,
            leader_done_ns: began.elapsed().as_nanos() as u64,
        }),
    });
}

/// The runtime's per-processor superstep context: reads the thread's
/// drained inbox batch, writes sends directly into the thread's slot
/// batch — no per-message allocation on either side.
struct ThreadCtx<'a> {
    env: &'a ProcEnv,
    inbox: &'a MsgBatch,
    outbox: &'a mut MsgBatch,
    work: f64,
}

impl SpmdContext for ThreadCtx<'_> {
    fn pid(&self) -> ProcId {
        self.env.pid
    }
    fn nprocs(&self) -> usize {
        self.env.nprocs
    }
    fn tree(&self) -> &MachineTree {
        &self.env.tree
    }
    fn messages(&self) -> &MsgBatch {
        self.inbox
    }
    fn send_with(&mut self, dst: ProcId, tag: u32, len: usize, fill: &mut dyn FnMut(&mut [u8])) {
        self.outbox.push_with(self.env.pid, dst, tag, len, fill);
    }
    fn charge(&mut self, units: f64) {
        assert!(
            units >= 0.0 && units.is_finite(),
            "charged work must be finite and non-negative"
        );
        self.work += units;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hbsp_core::{Message, SyncScope, TreeBuilder};
    use hbsp_sim::Simulator;

    /// Total-exchange program: every processor sends its pid (as bytes)
    /// to everyone else each round.
    struct Exchange {
        rounds: usize,
    }

    impl SpmdProgram for Exchange {
        type State = Vec<(u32, u32)>; // (step received, src)
        fn init(&self, _env: &ProcEnv) -> Self::State {
            Vec::new()
        }
        fn step(
            &self,
            step: usize,
            env: &ProcEnv,
            state: &mut Self::State,
            ctx: &mut dyn SpmdContext,
        ) -> StepOutcome {
            for m in ctx.messages() {
                state.push((step as u32, m.src.0));
            }
            if step == self.rounds {
                return StepOutcome::Done;
            }
            ctx.charge(10.0);
            for q in 0..env.nprocs {
                if q != env.pid.rank() {
                    ctx.send(ProcId(q as u32), 7, &env.pid.0.to_le_bytes());
                }
            }
            StepOutcome::Continue(SyncScope::global(&env.tree))
        }
    }

    fn machine() -> Arc<MachineTree> {
        Arc::new(
            TreeBuilder::flat(
                1.0,
                25.0,
                &[(1.0, 1.0), (1.5, 0.7), (2.0, 0.5), (3.0, 0.35)],
            )
            .unwrap(),
        )
    }

    /// An HBSP^2 machine so the hierarchical barrier has real clusters.
    fn clustered_machine() -> Arc<MachineTree> {
        Arc::new(
            TreeBuilder::two_level(
                1.0,
                100.0,
                &[
                    (10.0, vec![(1.0, 1.0), (2.0, 0.5), (1.5, 0.8)]),
                    (15.0, vec![(2.0, 0.5), (3.0, 0.4)]),
                    (12.0, vec![(1.2, 0.9), (2.5, 0.45), (4.0, 0.2)]),
                ],
            )
            .unwrap(),
        )
    }

    #[test]
    fn threaded_delivery_matches_bsp_guarantee() {
        let rt = ThreadedRuntime::new(machine());
        let (out, states) = rt.run_with_states(&Exchange { rounds: 2 }).unwrap();
        assert_eq!(out.virtual_outcome.num_steps(), 3);
        for (i, st) in states.iter().enumerate() {
            // Each proc gets 3 peers' messages per round, tagged with
            // the receiving step (1 and 2).
            assert_eq!(st.len(), 6, "proc {i}");
            assert!(st.iter().filter(|(s, _)| *s == 1).count() == 3);
            assert!(st.iter().all(|(_, src)| *src != i as u32));
        }
    }

    #[test]
    fn virtual_time_matches_simulator_exactly() {
        let tree = machine();
        let prog = Exchange { rounds: 4 };
        let sim = Simulator::new(Arc::clone(&tree)).run(&prog).unwrap();
        let thr = ThreadedRuntime::new(tree)
            .run(&prog)
            .unwrap()
            .virtual_outcome;
        assert_eq!(sim.total_time, thr.total_time);
        assert_eq!(sim.proc_finish, thr.proc_finish);
        assert_eq!(sim.messages_delivered, thr.messages_delivered);
        for (a, b) in sim.steps.iter().zip(&thr.steps) {
            assert_eq!(a.hrelation, b.hrelation);
            assert_eq!(a.release_max, b.release_max);
            assert_eq!(a.work_units, b.work_units);
            assert_eq!(a.traffic, b.traffic);
        }
    }

    #[test]
    fn both_barriers_agree_with_simulator_on_clustered_machine() {
        let tree = clustered_machine();
        let prog = Exchange { rounds: 5 };
        let sim = Simulator::new(Arc::clone(&tree)).run(&prog).unwrap();
        for kind in [BarrierKind::Central, BarrierKind::Hierarchical] {
            let thr = ThreadedRuntime::new(Arc::clone(&tree))
                .barrier(kind)
                .run(&prog)
                .unwrap()
                .virtual_outcome;
            assert_eq!(sim.total_time, thr.total_time, "{kind:?}");
            assert_eq!(sim.proc_finish, thr.proc_finish, "{kind:?}");
            assert_eq!(sim.messages_delivered, thr.messages_delivered, "{kind:?}");
        }
    }

    #[test]
    fn errors_propagate_from_leader() {
        struct Mixed;
        impl SpmdProgram for Mixed {
            type State = ();
            fn init(&self, _e: &ProcEnv) {}
            fn step(
                &self,
                _s: usize,
                env: &ProcEnv,
                _st: &mut (),
                _c: &mut dyn SpmdContext,
            ) -> StepOutcome {
                if env.pid.0.is_multiple_of(2) {
                    StepOutcome::Done
                } else {
                    StepOutcome::Continue(SyncScope::global(&env.tree))
                }
            }
        }
        let rt = ThreadedRuntime::new(machine());
        assert_eq!(
            rt.run(&Mixed).unwrap_err(),
            SimError::TerminationMismatch { step: 0 }
        );
    }

    /// Regression for the take-after-error audit: an aborting step must
    /// drain every mailbox and per-proc send buffer, leaving no queued
    /// messages behind.
    #[test]
    fn aborted_step_leaves_no_queued_messages() {
        let tree = machine();
        let p = tree.num_procs();
        let mailboxes: Vec<Mailbox> = (0..p).map(|_| Mailbox::new()).collect();
        let slots: Vec<ProcSlot> = (0..p).map(|_| ProcSlot::new()).collect();
        // Simulate mid-run state: pending deliveries and posted sends.
        mailboxes[1].deposit(Message::new(ProcId(0), ProcId(1), 0, vec![1, 2, 3]));
        for (i, s) in slots.iter().enumerate() {
            // SAFETY: single-threaded test — no concurrent slot holder.
            let slot = unsafe { s.slot() };
            slot.sends.push(ProcId(i as u32), ProcId(0), 0, &[9; 16]);
            // Mixed outcomes: a termination mismatch.
            slot.outcome = Some(if i == 0 {
                StepOutcome::Done
            } else {
                StepOutcome::Continue(SyncScope::global(&tree))
            });
        }
        let mut ls = LeaderState::new(p, false);
        let finished = AtomicBool::new(false);
        let failed = AtomicBool::new(false);
        leader_step(
            &tree,
            &NetConfig::pvm_like(),
            &FaultPlan::new(),
            &mailboxes,
            &slots,
            3,
            &mut ls,
            &finished,
            &failed,
            &hbsp_obs::NoopProbe,
            Instant::now(),
        );
        assert!(failed.load(Ordering::Acquire));
        assert_eq!(ls.error, Some(SimError::TerminationMismatch { step: 3 }));
        for (q, mb) in mailboxes.iter().enumerate() {
            assert!(mb.is_empty(), "mailbox {q} must be drained");
        }
        for (i, s) in slots.iter().enumerate() {
            // SAFETY: single-threaded test — no concurrent slot holder.
            let slot = unsafe { s.slot() };
            assert!(slot.sends.is_empty(), "send buffer {i} must be cleared");
            assert!(slot.outcome.is_none(), "stale outcome {i} must be cleared");
        }
    }

    #[test]
    fn step_limit_enforced() {
        struct Forever;
        impl SpmdProgram for Forever {
            type State = ();
            fn init(&self, _e: &ProcEnv) {}
            fn step(
                &self,
                _s: usize,
                env: &ProcEnv,
                _st: &mut (),
                _c: &mut dyn SpmdContext,
            ) -> StepOutcome {
                StepOutcome::Continue(SyncScope::global(&env.tree))
            }
        }
        let rt = ThreadedRuntime::new(machine()).step_limit(5);
        assert_eq!(
            rt.run(&Forever).unwrap_err(),
            SimError::StepLimit { limit: 5 }
        );
    }

    #[test]
    fn panicking_program_yields_typed_error_not_deadlock() {
        struct Bomb;
        impl SpmdProgram for Bomb {
            type State = ();
            fn init(&self, _e: &ProcEnv) {}
            fn step(
                &self,
                step: usize,
                env: &ProcEnv,
                _st: &mut (),
                _c: &mut dyn SpmdContext,
            ) -> StepOutcome {
                if step == 1 && env.pid.0 == 2 {
                    panic!("boom");
                }
                if step == 3 {
                    return StepOutcome::Done;
                }
                StepOutcome::Continue(SyncScope::global(&env.tree))
            }
        }
        let rt = ThreadedRuntime::new(machine());
        let err = rt.run(&Bomb).unwrap_err();
        assert_eq!(
            err,
            SimError::ProgramPanicked {
                pid: ProcId(2),
                step: 1
            }
        );
    }

    #[test]
    fn traced_timelines_match_the_simulator() {
        let tree = machine();
        let prog = Exchange { rounds: 3 };
        let sim = Simulator::new(Arc::clone(&tree))
            .trace(true)
            .run(&prog)
            .unwrap();
        let thr = ThreadedRuntime::new(Arc::clone(&tree))
            .trace(true)
            .run(&prog)
            .unwrap()
            .virtual_outcome;
        let sim_tls = sim.timelines.expect("simulator traced");
        let thr_tls = thr.timelines.expect("runtime traced");
        assert_eq!(sim_tls.len(), thr_tls.len());
        for (a, b) in sim_tls.iter().zip(&thr_tls) {
            assert_eq!(a.pid, b.pid);
            assert_eq!(a.spans, b.spans, "P{} timelines diverge", a.pid.0);
        }
        // Untraced runs stay lean.
        let plain = ThreadedRuntime::new(tree)
            .run(&prog)
            .unwrap()
            .virtual_outcome;
        assert!(plain.timelines.is_none());
    }

    #[test]
    fn wall_clock_is_measured() {
        let rt = ThreadedRuntime::new(machine());
        let out = rt.run(&Exchange { rounds: 1 }).unwrap();
        assert!(out.wall > Duration::ZERO);
    }

    #[test]
    fn scripted_crash_matches_simulator() {
        let tree = clustered_machine();
        let prog = Exchange { rounds: 5 };
        let plan = FaultPlan::new().crash(ProcId(3), 2).crash(ProcId(6), 2);
        let sim_err = Simulator::new(Arc::clone(&tree))
            .faults(plan.clone())
            .run(&prog)
            .unwrap_err();
        for kind in [BarrierKind::Central, BarrierKind::Hierarchical] {
            let thr_err = ThreadedRuntime::new(Arc::clone(&tree))
                .barrier(kind)
                .faults(plan.clone())
                .run(&prog)
                .unwrap_err();
            assert_eq!(sim_err, thr_err, "{kind:?}");
        }
        assert_eq!(
            sim_err,
            SimError::ProcCrashed {
                pids: vec![ProcId(3), ProcId(6)],
                step: 2
            }
        );
    }

    #[test]
    fn scripted_stall_times_out_identically_on_both_engines() {
        let tree = clustered_machine();
        let prog = Exchange { rounds: 5 };
        let plan = FaultPlan::new().stall(ProcId(4), 1);
        let sim_err = Simulator::new(Arc::clone(&tree))
            .faults(plan.clone())
            .run(&prog)
            .unwrap_err();
        for kind in [BarrierKind::Central, BarrierKind::Hierarchical] {
            let thr_err = ThreadedRuntime::new(Arc::clone(&tree))
                .barrier(kind)
                .faults(plan.clone())
                .run(&prog)
                .unwrap_err();
            assert_eq!(sim_err, thr_err, "{kind:?}");
        }
        assert_eq!(
            sim_err,
            SimError::BarrierTimeout {
                missing: vec![ProcId(4)],
                step: 1
            }
        );
    }

    #[test]
    fn every_processor_stalling_still_terminates() {
        let tree = machine();
        let p = tree.num_procs();
        let mut plan = FaultPlan::new();
        for i in 0..p {
            plan = plan.stall(ProcId(i as u32), 1);
        }
        let err = ThreadedRuntime::new(Arc::clone(&tree))
            .faults(plan.clone())
            .run(&Exchange { rounds: 4 })
            .unwrap_err();
        let sim_err = Simulator::new(tree)
            .faults(plan)
            .run(&Exchange { rounds: 4 })
            .unwrap_err();
        assert_eq!(err, sim_err);
        assert!(matches!(err, SimError::BarrierTimeout { step: 1, .. }));
    }

    #[test]
    fn straggle_and_corruption_match_simulator_bit_for_bit() {
        let tree = clustered_machine();
        let prog = Exchange { rounds: 4 };
        let plan = FaultPlan::new()
            .straggle(ProcId(2), 1, 8.0)
            .drop_msgs(ProcId(5), 2)
            .truncate(ProcId(0), 3, 0);
        let sim = Simulator::new(Arc::clone(&tree))
            .faults(plan.clone())
            .run(&prog)
            .unwrap();
        for kind in [BarrierKind::Central, BarrierKind::Hierarchical] {
            let thr = ThreadedRuntime::new(Arc::clone(&tree))
                .barrier(kind)
                .faults(plan.clone())
                .run(&prog)
                .unwrap()
                .virtual_outcome;
            assert_eq!(sim.total_time, thr.total_time, "{kind:?}");
            assert_eq!(sim.proc_finish, thr.proc_finish, "{kind:?}");
            assert_eq!(sim.messages_delivered, thr.messages_delivered, "{kind:?}");
        }
    }

    #[test]
    fn generous_step_deadline_never_fires() {
        let rt = ThreadedRuntime::new(clustered_machine()).step_deadline(Duration::from_secs(120));
        let out = rt.run(&Exchange { rounds: 5 }).unwrap();
        assert_eq!(out.virtual_outcome.num_steps(), 6);
    }

    #[test]
    fn step_deadline_catches_a_hung_body() {
        /// Rank 1's body sleeps far past the deadline at step 1.
        struct Hang;
        impl SpmdProgram for Hang {
            type State = ();
            fn init(&self, _e: &ProcEnv) {}
            fn step(
                &self,
                step: usize,
                env: &ProcEnv,
                _st: &mut (),
                _c: &mut dyn SpmdContext,
            ) -> StepOutcome {
                if step == 1 && env.pid.0 == 1 {
                    std::thread::sleep(Duration::from_secs(5));
                }
                if step == 2 {
                    return StepOutcome::Done;
                }
                StepOutcome::Continue(SyncScope::global(&env.tree))
            }
        }
        let rt = ThreadedRuntime::new(machine()).step_deadline(Duration::from_millis(50));
        let err = rt.run(&Hang).unwrap_err();
        match err {
            SimError::BarrierTimeout { missing, step } => {
                assert_eq!(step, 1);
                assert_eq!(missing, vec![ProcId(1)], "the sleeper is named");
            }
            other => panic!("expected BarrierTimeout, got {other:?}"),
        }
    }
}
