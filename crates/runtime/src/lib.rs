//! # hbsp-runtime — a threaded SPMD superstep runtime
//!
//! Executes the same [`hbsp_core::SpmdProgram`]s as `hbsp-sim`, but on
//! real OS threads: one thread per leaf processor, double-buffered
//! mailboxes providing the BSP delivery guarantee (messages sent in
//! superstep `s` are readable in `s + 1`), and a hierarchical
//! sense-reversing barrier whose combining tree mirrors the machine's
//! cluster structure; the thread completing the root arrival performs
//! the per-superstep coordination (SPMD-discipline checks, message
//! routing, virtual-time accounting). A flat central barrier is kept as
//! the measurable baseline ([`BarrierKind::Central`]), selectable via
//! [`ThreadedRuntime::barrier`]. See `docs/runtime.md` for the
//! architecture.
//!
//! The runtime keeps a *virtual clock* using exactly the same timing
//! algebra as the simulator ([`hbsp_sim::timing`]), so for any program
//!
//! ```text
//! ThreadedRuntime::run(p).virtual_outcome  ==  Simulator::run(p)
//! ```
//!
//! bit for bit — the cross-engine agreement tests in `/tests` rely on
//! this. On top of that it reports real wall-clock duration, which is
//! what the `criterion` benches measure.

#![deny(unsafe_op_in_unsafe_fn)]

pub mod barrier;
pub mod engine;
pub mod mailbox;
pub mod sync;

pub use barrier::{BarrierKind, CentralBarrier, HierBarrier};
pub use engine::{RunOutcome, ThreadedRuntime};
pub use mailbox::Mailbox;
