//! # hbsp-runtime — a threaded SPMD superstep runtime
//!
//! Executes the same [`hbsp_core::SpmdProgram`]s as `hbsp-sim`, but on
//! real OS threads: one thread per leaf processor, double-buffered
//! mailboxes providing the BSP delivery guarantee (messages sent in
//! superstep `s` are readable in `s + 1`), and a central sense-reversing
//! barrier whose last arriver performs the per-superstep coordination
//! (SPMD-discipline checks, message routing, virtual-time accounting).
//!
//! The runtime keeps a *virtual clock* using exactly the same timing
//! algebra as the simulator ([`hbsp_sim::timing`]), so for any program
//!
//! ```text
//! ThreadedRuntime::run(p).virtual_outcome  ==  Simulator::run(p)
//! ```
//!
//! bit for bit — the cross-engine agreement tests in `/tests` rely on
//! this. On top of that it reports real wall-clock duration, which is
//! what the `criterion` benches measure.

pub mod barrier;
pub mod engine;
pub mod mailbox;

pub use barrier::CentralBarrier;
pub use engine::{RunOutcome, ThreadedRuntime};
pub use mailbox::Mailbox;
