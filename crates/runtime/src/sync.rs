//! The runtime's synchronization facade.
//!
//! Every atomic, mutex, condvar, `UnsafeCell`, `Instant`, spin hint,
//! and thread operation the runtime performs goes through this module
//! — `hbsp_lint` enforces that nothing else in the crate imports
//! `std::sync::atomic` or `std::thread` primitives directly. In a
//! normal build the facade is pure re-exports of `std`, so it costs
//! nothing (the `alloc_audit` suite asserts this). With the `model`
//! feature it routes through the vendored [`weave`] model checker
//! instead: outside an exploration weave's primitives forward to `std`
//! after one thread-local check, and inside one every operation
//! becomes a scheduler decision point with vector-clock
//! happens-before tracking — which is how `hbsp-race` exhaustively
//! explores the barrier/engine/mailbox protocols.
//!
//! Two macros make the runtime's memory-ordering discipline checkable:
//!
//! * `site_ord!` labels a *tunable* ordering site. Normally it
//!   expands to the ordering literal; under the model it consults
//!   [`weave::mutation`] so `hbsp-race`'s mutation tests can weaken
//!   one site at a time and assert the checker names the resulting
//!   race. The labels are the keys of `docs/ordering_audit.md`.
//! * `hb_assert!` is the checkable form of a SAFETY comment on an
//!   `UnsafeCell`: under the model it verifies that every recorded
//!   access to the cell happens-before the current point (i.e. the
//!   caller really is the unique holder); normally it vanishes.

#[cfg(not(feature = "model"))]
mod imp {
    /// `std::sync::atomic` subset the runtime uses.
    pub mod atomic {
        pub use std::sync::atomic::{
            AtomicBool, AtomicU32, AtomicU64, AtomicU8, AtomicUsize, Ordering,
        };
    }

    pub use std::cell::UnsafeCell;
    pub use std::sync::{Condvar, Mutex, MutexGuard, WaitTimeoutResult};
    pub use std::time::Instant;

    /// `std::hint` subset the runtime uses.
    pub mod hint {
        pub use std::hint::spin_loop;
    }

    /// `std::thread` subset the runtime uses.
    pub mod thread {
        pub use std::thread::{available_parallelism, sleep, yield_now};

        /// Spawn every task on its own thread and join them in order,
        /// returning each task's result (or its panic payload). The
        /// structured-concurrency shape the engine needs from
        /// `std::thread::scope`, packaged as a function so the model
        /// build can interpose a schedulable implementation.
        pub fn scope_join<T, F>(tasks: Vec<F>) -> Vec<std::thread::Result<T>>
        where
            T: Send,
            F: FnOnce() -> T + Send,
        {
            std::thread::scope(|s| {
                let handles: Vec<_> = tasks.into_iter().map(|f| s.spawn(f)).collect();
                handles.into_iter().map(|h| h.join()).collect()
            })
        }
    }

    /// Always false without the `model` feature: no exploration can
    /// be running.
    pub fn is_modeling() -> bool {
        false
    }
}

#[cfg(feature = "model")]
mod imp {
    /// Model-aware atomics ([`weave::atomic`]); `Ordering` is always
    /// `std`'s (weave takes it by value).
    pub mod atomic {
        pub use std::sync::atomic::Ordering;
        pub use weave::atomic::{AtomicBool, AtomicU32, AtomicU64, AtomicU8, AtomicUsize};
    }

    pub use weave::hint;
    pub use weave::is_modeling;
    pub use weave::thread;
    pub use weave::time::Instant;
    pub use weave::{Condvar, Mutex, MutexGuard, UnsafeCell, WaitTimeoutResult};
}

pub use imp::*;

/// A labeled, tunable memory-ordering site: `site_ord!("label", Ordering::X)`.
///
/// Normally expands to the ordering literal (zero cost). Under the
/// `model` feature it resolves through [`weave::mutation`], letting
/// `hbsp-race`'s mutation suite override one labeled site at a time.
/// Every label must have a row in `docs/ordering_audit.md`.
#[cfg(not(feature = "model"))]
macro_rules! site_ord {
    ($label:literal, $ord:expr) => {
        $ord
    };
}

/// A labeled, tunable memory-ordering site (model build: resolves
/// through [`weave::mutation`] so tests can weaken it by label).
#[cfg(feature = "model")]
macro_rules! site_ord {
    ($label:literal, $ord:expr) => {
        ::weave::mutation::resolve($label, $ord)
    };
}

pub(crate) use site_ord;

/// Checkable SAFETY comment on an [`UnsafeCell`]:
/// `hb_assert!(cell, "claim")` asserts (under the model) that every
/// recorded access to the cell happens-before the current point — the
/// vector-clock form of "the caller is the unique holder". Expands to
/// nothing in a normal build.
#[cfg(not(feature = "model"))]
macro_rules! hb_assert {
    ($cell:expr, $claim:expr) => {{
        let _ = (&$cell, $claim);
    }};
}

/// Checkable SAFETY comment on an [`UnsafeCell`] (model build:
/// verifies the happens-before claim via the cell's recorded accesses).
#[cfg(feature = "model")]
macro_rules! hb_assert {
    ($cell:expr, $claim:expr) => {
        $cell.hb_assert($claim)
    };
}

pub(crate) use hb_assert;

#[cfg(test)]
mod tests {
    #[test]
    fn site_ord_yields_the_default_ordering() {
        use super::atomic::Ordering;
        // Without an exploration (and in normal builds statically),
        // the label resolves to the default.
        assert_eq!(
            site_ord!("sync.test.site", Ordering::AcqRel),
            Ordering::AcqRel
        );
    }

    #[test]
    fn scope_join_returns_results_in_spawn_order() {
        let tasks: Vec<_> = (0..4).map(|i| move || i * 10).collect();
        let out: Vec<i32> = super::thread::scope_join(tasks)
            .into_iter()
            .map(|r| r.expect("no panics"))
            .collect();
        assert_eq!(out, vec![0, 10, 20, 30]);
    }

    #[test]
    fn scope_join_surfaces_panics_per_task() {
        let tasks: Vec<Box<dyn FnOnce() -> u32 + Send>> = vec![
            Box::new(|| 1),
            Box::new(|| panic!("task 1 dies")),
            Box::new(|| 3),
        ];
        let out = super::thread::scope_join(tasks);
        assert_eq!(*out[0].as_ref().unwrap(), 1);
        assert!(out[1].is_err(), "the panic arrives as an Err payload");
        assert_eq!(*out[2].as_ref().unwrap(), 3);
    }

    #[test]
    fn hb_assert_is_free_outside_a_model() {
        let cell = super::UnsafeCell::new(7u32);
        hb_assert!(cell, "exclusive by construction");
        // SAFETY: `cell` is a local; no other reference exists.
        assert_eq!(unsafe { *cell.get() }, 7);
    }
}
