//! Double-buffered per-processor mailboxes.
//!
//! The coordination leader deposits each superstep's messages into the
//! receivers' mailboxes (already in deterministic arrival order); each
//! processor thread takes its whole inbox at the start of its next
//! superstep body. Because deposits happen only inside the barrier's
//! leader section and takes happen only after release, there is never
//! send/receive contention within a superstep — this is the BSP
//! delivery guarantee made concrete.
//!
//! Every lock here is poison-tolerant (`barrier::lock_anyway`):
//! a peer that panicked while a mailbox was locked must not cascade
//! `PoisonError` panics through the surviving threads — the panic
//! itself is already mapped into the step's typed abort path by the
//! engine, and the abort drains every mailbox anyway.

use crate::barrier::lock_anyway;
use hbsp_core::Message;
use std::sync::Mutex;

/// One processor's incoming-message buffer.
#[derive(Default)]
pub struct Mailbox {
    inbox: Mutex<Vec<Message>>,
}

impl Mailbox {
    /// Empty mailbox.
    pub fn new() -> Self {
        Mailbox::default()
    }

    /// Deposit a message (leader section only).
    pub fn deposit(&self, m: Message) {
        lock_anyway(&self.inbox).push(m);
    }

    /// Deposit a whole superstep's worth of messages for this receiver,
    /// preserving their order, with a single lock acquisition. The
    /// leader batches deliveries per destination so each mailbox is
    /// locked once per superstep rather than once per message.
    pub fn deposit_batch(&self, mut batch: Vec<Message>) {
        let mut inbox = lock_anyway(&self.inbox);
        if inbox.is_empty() {
            // Common case: the receiver drained last step's inbox, so
            // the batch becomes the inbox without copying any message.
            *inbox = batch;
        } else {
            inbox.append(&mut batch);
        }
    }

    /// Take the entire inbox, leaving it empty.
    pub fn take(&self) -> Vec<Message> {
        std::mem::take(&mut *lock_anyway(&self.inbox))
    }

    /// Number of queued messages.
    pub fn len(&self) -> usize {
        lock_anyway(&self.inbox).len()
    }

    /// True if no messages are queued.
    pub fn is_empty(&self) -> bool {
        lock_anyway(&self.inbox).is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hbsp_core::ProcId;

    #[test]
    fn deposit_then_take_preserves_order() {
        let mb = Mailbox::new();
        for i in 0..5 {
            mb.deposit(Message::new(ProcId(i), ProcId(0), i, vec![i as u8]));
        }
        assert_eq!(mb.len(), 5);
        let msgs = mb.take();
        assert_eq!(msgs.len(), 5);
        assert!(msgs
            .iter()
            .enumerate()
            .all(|(i, m)| m.src == ProcId(i as u32)));
        assert!(mb.is_empty());
    }

    #[test]
    fn take_on_empty_is_empty() {
        let mb = Mailbox::new();
        assert!(mb.take().is_empty());
    }

    /// Poison audit: a thread that panics while holding a mailbox lock
    /// must not cascade `PoisonError` panics through survivors — every
    /// subsequent operation keeps working on the recovered inner state.
    #[test]
    fn poisoned_mailbox_stays_usable() {
        let mb = Mailbox::new();
        mb.deposit(Message::new(ProcId(0), ProcId(1), 0, vec![1]));
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _guard = mb.inbox.lock().unwrap();
            panic!("die while holding the mailbox lock");
        }));
        assert!(result.is_err());
        assert!(mb.inbox.is_poisoned(), "the mutex really was poisoned");
        assert_eq!(mb.len(), 1, "len survives poisoning");
        mb.deposit(Message::new(ProcId(2), ProcId(1), 0, vec![2]));
        mb.deposit_batch(vec![Message::new(ProcId(3), ProcId(1), 0, vec![3])]);
        let msgs = mb.take();
        assert_eq!(msgs.len(), 3, "deposits and takes survive poisoning");
        assert!(mb.is_empty());
    }

    #[test]
    fn batch_deposit_preserves_order_and_appends() {
        let mb = Mailbox::new();
        mb.deposit_batch(
            (0..3)
                .map(|i| Message::new(ProcId(i), ProcId(0), i, vec![]))
                .collect(),
        );
        assert_eq!(mb.len(), 3);
        // A second batch lands after the first.
        mb.deposit_batch(
            (3..5)
                .map(|i| Message::new(ProcId(i), ProcId(0), i, vec![]))
                .collect(),
        );
        let msgs = mb.take();
        let srcs: Vec<u32> = msgs.iter().map(|m| m.src.0).collect();
        assert_eq!(srcs, vec![0, 1, 2, 3, 4]);
        assert!(mb.is_empty());
    }
}
