//! Double-buffered per-processor mailboxes.
//!
//! The coordination leader deposits each superstep's messages into the
//! receivers' mailboxes (already in deterministic arrival order); each
//! processor thread takes its whole inbox at the start of its next
//! superstep body. Because deposits happen only inside the barrier's
//! leader section and takes happen only after release, there is never
//! send/receive contention within a superstep — this is the BSP
//! delivery guarantee made concrete.
//!
//! The inbox is a flat [`MsgBatch`] (one byte arena + one offset
//! table), and both ends exchange whole batches by pointer swap: the
//! leader's per-destination delivery batch becomes the inbox, and the
//! thread's drained buffer from last step becomes the leader's next
//! delivery batch. In steady state the same few allocations circulate
//! forever — no per-message boxes, no per-superstep growth.
//!
//! Every lock here is poison-tolerant (`barrier::lock_anyway`):
//! a peer that panicked while a mailbox was locked must not cascade
//! `PoisonError` panics through the surviving threads — the panic
//! itself is already mapped into the step's typed abort path by the
//! engine, and the abort drains every mailbox anyway.

use crate::barrier::lock_anyway;
use crate::sync::Mutex;
use hbsp_core::{Message, MsgBatch};

/// One processor's incoming-message buffer.
#[derive(Default)]
pub struct Mailbox {
    inbox: Mutex<MsgBatch>,
}

impl Mailbox {
    /// Empty mailbox.
    pub fn new() -> Self {
        Mailbox::default()
    }

    /// Deposit a single message (leader section only; tests and abort
    /// bookkeeping — the superstep hot path uses [`Self::deposit_batch`]).
    pub fn deposit(&self, m: Message) {
        lock_anyway(&self.inbox).push(m.src, m.dst, m.tag, &m.payload);
    }

    /// Deposit a whole superstep's worth of messages for this receiver,
    /// preserving their order, with a single lock acquisition. When the
    /// receiver drained last step's inbox (the common case), the batch
    /// is *swapped* in — no message moves — and the caller gets the
    /// drained-but-capacitied old inbox back to refill next superstep.
    /// Otherwise the batch is appended and cleared (capacity kept).
    pub fn deposit_batch(&self, batch: &mut MsgBatch) {
        let mut inbox = lock_anyway(&self.inbox);
        if inbox.is_empty() {
            std::mem::swap(&mut *inbox, batch);
            batch.clear();
        } else {
            inbox.append(batch);
        }
    }

    /// Take the entire inbox by swapping it with `out` (which is
    /// cleared first): the caller's old buffer becomes the empty inbox,
    /// so the two batches circulate between thread and leader without
    /// ever reallocating in steady state.
    pub fn take_into(&self, out: &mut MsgBatch) {
        out.clear();
        std::mem::swap(&mut *lock_anyway(&self.inbox), out);
    }

    /// Take the entire inbox, leaving it empty.
    pub fn take(&self) -> MsgBatch {
        std::mem::take(&mut *lock_anyway(&self.inbox))
    }

    /// Number of queued messages.
    pub fn len(&self) -> usize {
        lock_anyway(&self.inbox).len()
    }

    /// True if no messages are queued.
    pub fn is_empty(&self) -> bool {
        lock_anyway(&self.inbox).is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hbsp_core::ProcId;

    #[test]
    fn deposit_then_take_preserves_order() {
        let mb = Mailbox::new();
        for i in 0..5 {
            mb.deposit(Message::new(ProcId(i), ProcId(0), i, vec![i as u8]));
        }
        assert_eq!(mb.len(), 5);
        let msgs = mb.take();
        assert_eq!(msgs.len(), 5);
        assert!(msgs
            .iter()
            .enumerate()
            .all(|(i, m)| m.src == ProcId(i as u32)));
        assert!(mb.is_empty());
    }

    #[test]
    fn take_on_empty_is_empty() {
        let mb = Mailbox::new();
        assert!(mb.take().is_empty());
    }

    /// Poison audit: a thread that panics while holding a mailbox lock
    /// must not cascade `PoisonError` panics through survivors — every
    /// subsequent operation keeps working on the recovered inner state.
    #[test]
    fn poisoned_mailbox_stays_usable() {
        let mb = Mailbox::new();
        mb.deposit(Message::new(ProcId(0), ProcId(1), 0, vec![1]));
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _guard = mb.inbox.lock().unwrap();
            panic!("die while holding the mailbox lock");
        }));
        assert!(result.is_err());
        assert!(mb.inbox.is_poisoned(), "the mutex really was poisoned");
        assert_eq!(mb.len(), 1, "len survives poisoning");
        mb.deposit(Message::new(ProcId(2), ProcId(1), 0, vec![2]));
        let mut batch = MsgBatch::new();
        batch.push(ProcId(3), ProcId(1), 0, &[3]);
        mb.deposit_batch(&mut batch);
        let msgs = mb.take();
        assert_eq!(msgs.len(), 3, "deposits and takes survive poisoning");
        assert!(mb.is_empty());
    }

    #[test]
    fn batch_deposit_preserves_order_and_appends() {
        let mb = Mailbox::new();
        let mut batch = MsgBatch::new();
        for i in 0..3u32 {
            batch.push(ProcId(i), ProcId(0), i, &[]);
        }
        mb.deposit_batch(&mut batch);
        assert_eq!(mb.len(), 3);
        assert!(batch.is_empty(), "deposited batch is handed back empty");
        // A second batch lands after the first.
        for i in 3..5u32 {
            batch.push(ProcId(i), ProcId(0), i, &[]);
        }
        mb.deposit_batch(&mut batch);
        let msgs = mb.take();
        let srcs: Vec<u32> = msgs.iter().map(|m| m.src.0).collect();
        assert_eq!(srcs, vec![0, 1, 2, 3, 4]);
        assert!(mb.is_empty());
    }

    #[test]
    fn take_into_swaps_buffers() {
        let mb = Mailbox::new();
        mb.deposit(Message::new(ProcId(0), ProcId(1), 9, vec![7, 7, 7, 7]));
        let mut buf = MsgBatch::new();
        buf.push(ProcId(5), ProcId(5), 0, &[0]); // stale contents
        mb.take_into(&mut buf);
        assert_eq!(buf.len(), 1);
        assert_eq!(buf.get(0).tag, 9, "stale contents were cleared first");
        assert!(mb.is_empty());
    }
}
