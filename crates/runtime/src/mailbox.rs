//! Double-buffered per-processor mailboxes.
//!
//! The coordination leader deposits each superstep's messages into the
//! receivers' mailboxes (already in deterministic arrival order); each
//! processor thread takes its whole inbox at the start of its next
//! superstep body. Because deposits happen only inside the barrier's
//! leader section and takes happen only after release, there is never
//! send/receive contention within a superstep — this is the BSP
//! delivery guarantee made concrete.

use hbsp_core::Message;
use parking_lot::Mutex;

/// One processor's incoming-message buffer.
#[derive(Default)]
pub struct Mailbox {
    inbox: Mutex<Vec<Message>>,
}

impl Mailbox {
    /// Empty mailbox.
    pub fn new() -> Self {
        Mailbox::default()
    }

    /// Deposit a message (leader section only).
    pub fn deposit(&self, m: Message) {
        self.inbox.lock().push(m);
    }

    /// Take the entire inbox, leaving it empty.
    pub fn take(&self) -> Vec<Message> {
        std::mem::take(&mut *self.inbox.lock())
    }

    /// Number of queued messages.
    pub fn len(&self) -> usize {
        self.inbox.lock().len()
    }

    /// True if no messages are queued.
    pub fn is_empty(&self) -> bool {
        self.inbox.lock().is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hbsp_core::ProcId;

    #[test]
    fn deposit_then_take_preserves_order() {
        let mb = Mailbox::new();
        for i in 0..5 {
            mb.deposit(Message::new(ProcId(i), ProcId(0), i, vec![i as u8]));
        }
        assert_eq!(mb.len(), 5);
        let msgs = mb.take();
        assert_eq!(msgs.len(), 5);
        assert!(msgs
            .iter()
            .enumerate()
            .all(|(i, m)| m.src == ProcId(i as u32)));
        assert!(mb.is_empty());
    }

    #[test]
    fn take_on_empty_is_empty() {
        let mb = Mailbox::new();
        assert!(mb.take().is_empty());
    }
}
