//! Stress tests for the threaded runtime's synchronization machinery.

use hbsp_core::{ProcEnv, ProcId, SpmdContext, SpmdProgram, StepOutcome, SyncScope, TreeBuilder};
use hbsp_runtime::{BarrierKind, CentralBarrier, HierBarrier, Mailbox, ThreadedRuntime};
use hbsp_sim::{FaultPlan, SimError};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

#[test]
fn barrier_survives_many_generations_with_many_threads() {
    const N: usize = 12;
    const ROUNDS: usize = 500;
    let barrier = CentralBarrier::new(N);
    let leader_runs = AtomicU64::new(0);
    let counter = AtomicU64::new(0);
    std::thread::scope(|s| {
        for _ in 0..N {
            s.spawn(|| {
                for round in 0..ROUNDS {
                    counter.fetch_add(1, Ordering::SeqCst);
                    barrier.wait_leader(|| {
                        // The leader observes every thread's increment
                        // for this generation.
                        let seen = counter.load(Ordering::SeqCst);
                        assert_eq!(seen as usize, (round + 1) * N);
                        leader_runs.fetch_add(1, Ordering::SeqCst);
                    });
                }
            });
        }
    });
    assert_eq!(leader_runs.load(Ordering::SeqCst), ROUNDS as u64);
}

#[test]
fn hier_barrier_survives_many_generations_with_many_threads() {
    const ROUNDS: usize = 500;
    // Three clusters of 4: arrivals combine per cluster before the root.
    let tree = TreeBuilder::two_level(
        1.0,
        50.0,
        &[
            (10.0, vec![(1.0, 1.0); 4]),
            (10.0, vec![(1.5, 0.8); 4]),
            (10.0, vec![(2.0, 0.5); 4]),
        ],
    )
    .unwrap();
    let n = tree.num_procs();
    let barrier = HierBarrier::new(&tree);
    let leader_runs = AtomicU64::new(0);
    let counter = AtomicU64::new(0);
    std::thread::scope(|s| {
        for rank in 0..n {
            let barrier = &barrier;
            let leader_runs = &leader_runs;
            let counter = &counter;
            s.spawn(move || {
                for round in 0..ROUNDS {
                    counter.fetch_add(1, Ordering::SeqCst);
                    barrier.wait_leader(rank, || {
                        // The leader observes every thread's increment
                        // for this generation.
                        let seen = counter.load(Ordering::SeqCst);
                        assert_eq!(seen as usize, (round + 1) * n);
                        leader_runs.fetch_add(1, Ordering::SeqCst);
                    });
                }
            });
        }
    });
    assert_eq!(leader_runs.load(Ordering::SeqCst), ROUNDS as u64);
}

#[test]
fn mailbox_is_safe_under_concurrent_deposits() {
    // Deposits happen only in the leader section in production, but the
    // mailbox itself must tolerate concurrency.
    let mb = Arc::new(Mailbox::new());
    std::thread::scope(|s| {
        for t in 0..8u32 {
            let mb = Arc::clone(&mb);
            s.spawn(move || {
                for i in 0..100u32 {
                    mb.deposit(hbsp_core::Message::new(
                        ProcId(t),
                        ProcId(0),
                        i,
                        vec![t as u8],
                    ));
                }
            });
        }
    });
    assert_eq!(mb.len(), 800);
    let msgs = mb.take();
    assert_eq!(msgs.len(), 800);
    for t in 0..8u32 {
        assert_eq!(msgs.iter().filter(|m| m.src == ProcId(t)).count(), 100);
    }
}

/// A program with many small supersteps, to shake out any ordering bug
/// between body execution, contribution deposit, and leader work.
struct Chatter {
    rounds: usize,
}
impl SpmdProgram for Chatter {
    type State = u64;
    fn init(&self, _env: &ProcEnv) -> u64 {
        0
    }
    fn step(
        &self,
        step: usize,
        env: &ProcEnv,
        digest: &mut u64,
        ctx: &mut dyn SpmdContext,
    ) -> StepOutcome {
        for m in ctx.messages() {
            *digest = digest
                .wrapping_mul(31)
                .wrapping_add(m.src.0 as u64 + m.payload.len() as u64);
        }
        if step == self.rounds {
            return StepOutcome::Done;
        }
        let p = env.nprocs;
        // Talk to two pseudo-random peers each round.
        for k in 1..=2usize {
            let dst = (env.pid.rank() + step * k + k) % p;
            if dst != env.pid.rank() {
                ctx.send(ProcId(dst as u32), 0, &vec![0u8; (step % 7 + 1) * 4]);
            }
        }
        ctx.charge((step % 5) as f64);
        StepOutcome::Continue(SyncScope::global(&env.tree))
    }
}

/// Regression: a thread that panics can race ahead of peers still in
/// the previous step's bookkeeping; publishing the error from the
/// panicking thread (instead of from the barrier leader) once let a
/// racing peer exit early and strand everyone else at the barrier.
/// Hammer the scenario; any hang fails via the harness timeout.
#[test]
fn contained_panics_never_strand_the_barrier() {
    struct Bomb;
    impl SpmdProgram for Bomb {
        type State = ();
        fn init(&self, _e: &ProcEnv) {}
        fn step(
            &self,
            step: usize,
            env: &ProcEnv,
            _st: &mut (),
            _c: &mut dyn SpmdContext,
        ) -> StepOutcome {
            if step == 1 && env.pid.0 == 2 {
                panic!("boom");
            }
            if step == 3 {
                return StepOutcome::Done;
            }
            StepOutcome::Continue(SyncScope::global(&env.tree))
        }
    }
    // Silence the default hook's per-iteration backtrace spam.
    let prev = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let tree = Arc::new(
        TreeBuilder::flat(
            1.0,
            25.0,
            &[(1.0, 1.0), (1.5, 0.7), (2.0, 0.5), (3.0, 0.35)],
        )
        .unwrap(),
    );
    for _ in 0..300 {
        let err = ThreadedRuntime::new(Arc::clone(&tree))
            .run(&Bomb)
            .unwrap_err();
        assert!(matches!(err, hbsp_sim::SimError::ProgramPanicked { pid, step: 1 } if pid.0 == 2));
    }
    std::panic::set_hook(prev);
}

/// A clustered machine so the hierarchical barrier actually combines
/// arrivals per cluster before the root.
fn clustered() -> Arc<hbsp_core::MachineTree> {
    Arc::new(
        TreeBuilder::two_level(
            1.0,
            100.0,
            &[
                (10.0, vec![(1.0, 1.0), (1.5, 0.7), (2.0, 0.5)]),
                (12.0, vec![(1.2, 0.9), (2.5, 0.4), (3.0, 0.3)]),
                (15.0, vec![(1.8, 0.6), (4.0, 0.2)]),
            ],
        )
        .unwrap(),
    )
}

/// Hammer every abort path — body panic, scripted crash, scripted
/// stall — under the *hierarchical* barrier, where the abort must
/// propagate through per-cluster combining nodes rather than one
/// central generation counter. Any stranding fails via the harness
/// timeout; any untyped error fails the match.
#[test]
fn abort_paths_drain_cleanly_under_the_hierarchical_barrier() {
    struct Bomb;
    impl SpmdProgram for Bomb {
        type State = ();
        fn init(&self, _e: &ProcEnv) {}
        fn step(
            &self,
            step: usize,
            env: &ProcEnv,
            _st: &mut (),
            ctx: &mut dyn SpmdContext,
        ) -> StepOutcome {
            if step == 1 && env.pid.0 == 4 {
                panic!("boom");
            }
            // Keep traffic flowing so aborts race in-flight messages.
            ctx.send(
                ProcId(((env.pid.rank() + 1) % env.nprocs) as u32),
                0,
                &[0; 8],
            );
            if step == 3 {
                return StepOutcome::Done;
            }
            StepOutcome::Continue(SyncScope::global(&env.tree))
        }
    }
    let prev = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let tree = clustered();
    for _ in 0..150 {
        let err = ThreadedRuntime::new(Arc::clone(&tree))
            .barrier(BarrierKind::Hierarchical)
            .run(&Bomb)
            .unwrap_err();
        assert!(matches!(err, SimError::ProgramPanicked { pid, step: 1 } if pid.0 == 4));
    }
    std::panic::set_hook(prev);

    // Scripted crashes: the dead threads never run their bodies; the
    // leader translates the markers into one typed error.
    for _ in 0..150 {
        let err = ThreadedRuntime::new(Arc::clone(&tree))
            .barrier(BarrierKind::Hierarchical)
            .faults(FaultPlan::new().crash(ProcId(2), 1).crash(ProcId(7), 1))
            .run(&Chatter { rounds: 3 })
            .unwrap_err();
        assert_eq!(
            err,
            SimError::ProcCrashed {
                pids: vec![ProcId(2), ProcId(7)],
                step: 1
            }
        );
    }

    // Scripted stalls: the internal watchdog must fire on the
    // hierarchical barrier and name the absent processors (wall-clock
    // bound, so only a handful of iterations).
    for _ in 0..5 {
        let err = ThreadedRuntime::new(Arc::clone(&tree))
            .barrier(BarrierKind::Hierarchical)
            .faults(FaultPlan::new().stall(ProcId(5), 2))
            .run(&Chatter { rounds: 4 })
            .unwrap_err();
        assert_eq!(
            err,
            SimError::BarrierTimeout {
                missing: vec![ProcId(5)],
                step: 2
            }
        );
    }
}

#[test]
fn hundreds_of_supersteps_stay_deterministic_across_engines() {
    let tree = Arc::new(
        TreeBuilder::flat(
            1.0,
            20.0,
            &[
                (1.0, 1.0),
                (1.3, 0.8),
                (1.9, 0.55),
                (2.4, 0.4),
                (3.1, 0.3),
                (4.0, 0.22),
            ],
        )
        .unwrap(),
    );
    let prog = Chatter { rounds: 300 };
    let (thr1, states1) = ThreadedRuntime::new(Arc::clone(&tree))
        .run_with_states(&prog)
        .unwrap();
    let (thr2, states2) = ThreadedRuntime::new(Arc::clone(&tree))
        .run_with_states(&prog)
        .unwrap();
    assert_eq!(states1, states2, "threaded runs are reproducible");
    assert_eq!(
        thr1.virtual_outcome.total_time,
        thr2.virtual_outcome.total_time
    );
    let (sim, sim_states) = hbsp_sim::Simulator::new(Arc::clone(&tree))
        .run_with_states(&prog)
        .unwrap();
    assert_eq!(sim_states, states1, "and agree with the simulator");
    assert_eq!(sim.total_time, thr1.virtual_outcome.total_time);
    assert_eq!(sim.num_steps(), 301);
}
