//! Execution timelines: what every processor was doing when.
//!
//! When tracing is enabled ([`crate::Simulator::trace`]), the engine
//! records per-processor activity spans for every superstep — compute,
//! send (pack+post), unpack, and barrier wait — which is the raw
//! material for diagnosing imbalance ("faster machines typically sit
//! idle waiting for slower nodes", §4.1). [`ascii_gantt`] renders the
//! timelines as a terminal Gantt chart.

use crate::timing::StepTiming;
use hbsp_core::ProcId;
use std::fmt::Write as _;

// The span schema lives in `hbsp-obs` (both engines and the exporters
// share it); re-exported here so `hbsp_sim::{Span, SpanKind}` keeps
// working.
pub use hbsp_obs::{Span, SpanKind};

/// One processor's activity over the whole run.
#[derive(Debug, Clone)]
pub struct ProcTimeline {
    /// The processor.
    pub pid: ProcId,
    /// Non-overlapping spans in time order (zero-length spans elided).
    pub spans: Vec<Span>,
}

impl ProcTimeline {
    /// Total time spent in `kind`.
    pub fn time_in(&self, kind: SpanKind) -> f64 {
        self.spans
            .iter()
            .filter(|s| s.kind == kind)
            .map(Span::duration)
            .sum()
    }

    /// Fraction of `[0, horizon)` spent waiting at barriers — the
    /// "sitting idle" measure.
    pub fn idle_fraction(&self, horizon: f64) -> f64 {
        if horizon <= 0.0 {
            return 0.0;
        }
        self.time_in(SpanKind::BarrierWait) / horizon
    }
}

/// Build per-processor spans for one superstep from its timing and the
/// barrier releases (`releases = finish` for the final step). Shared by
/// the simulator and the threaded runtime so both engines produce
/// identical timelines for the same program.
pub fn step_spans(
    timelines: &mut [ProcTimeline],
    starts: &[f64],
    timing: &StepTiming,
    releases: &[f64],
) {
    for (i, tl) in timelines.iter_mut().enumerate() {
        let mut push = |kind, start: f64, end: f64| {
            if end > start {
                tl.spans.push(Span { kind, start, end });
            }
        };
        push(SpanKind::Compute, starts[i], timing.compute_done[i]);
        push(SpanKind::Send, timing.compute_done[i], timing.send_done[i]);
        push(SpanKind::Unpack, timing.send_done[i], timing.finish[i]);
        push(SpanKind::BarrierWait, timing.finish[i], releases[i]);
    }
}

/// Aggregate observed activity across all processors — the measured
/// counterpart of the cost model's §3.4 penalty decomposition.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraceSummary {
    /// Total processor-time computing.
    pub compute: f64,
    /// Total processor-time packing/posting sends.
    pub send: f64,
    /// Total processor-time unpacking (incl. waiting for arrivals).
    pub unpack: f64,
    /// Total processor-time waiting at barriers.
    pub barrier_wait: f64,
}

impl TraceSummary {
    /// Summarize a set of timelines.
    pub fn of(timelines: &[ProcTimeline]) -> TraceSummary {
        let total = |kind| timelines.iter().map(|t| t.time_in(kind)).sum();
        TraceSummary {
            compute: total(SpanKind::Compute),
            send: total(SpanKind::Send),
            unpack: total(SpanKind::Unpack),
            barrier_wait: total(SpanKind::BarrierWait),
        }
    }

    /// All accounted processor-time.
    pub fn total(&self) -> f64 {
        self.compute + self.send + self.unpack + self.barrier_wait
    }

    /// Fraction of processor-time lost to barrier waits — the observed
    /// heterogeneity penalty.
    pub fn wait_fraction(&self) -> f64 {
        if self.total() <= 0.0 {
            0.0
        } else {
            self.barrier_wait / self.total()
        }
    }
}

/// Render timelines as an ASCII Gantt chart of `width` columns.
///
/// Each row is a processor; each cell shows the dominant activity in
/// that time bucket (`C`ompute, `S`end, `U`npack, `.` barrier wait,
/// space = before start/after finish).
pub fn ascii_gantt(timelines: &[ProcTimeline], width: usize) -> String {
    assert!(width > 0, "zero-width chart");
    let horizon = timelines
        .iter()
        .flat_map(|t| t.spans.iter().map(|s| s.end))
        .fold(0.0f64, f64::max);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "0 {:>width$.0}",
        horizon,
        width = width.saturating_sub(2)
    );
    for tl in timelines {
        let mut row = vec![' '; width];
        for span in &tl.spans {
            if horizon <= 0.0 {
                break;
            }
            let a = ((span.start / horizon) * width as f64).floor() as usize;
            let b = ((span.end / horizon) * width as f64).ceil() as usize;
            for cell in row.iter_mut().take(b.min(width)).skip(a.min(width)) {
                // Later spans overwrite earlier ones within a bucket;
                // spans are time-ordered so the last activity wins.
                *cell = span.kind.glyph();
            }
        }
        let _ = writeln!(
            out,
            "{:>4} |{}|",
            tl.pid.to_string(),
            row.iter().collect::<String>()
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tl(pid: u32, spans: Vec<Span>) -> ProcTimeline {
        ProcTimeline {
            pid: ProcId(pid),
            spans,
        }
    }

    #[test]
    fn time_accounting() {
        let t = tl(
            0,
            vec![
                Span {
                    kind: SpanKind::Compute,
                    start: 0.0,
                    end: 10.0,
                },
                Span {
                    kind: SpanKind::Send,
                    start: 10.0,
                    end: 15.0,
                },
                Span {
                    kind: SpanKind::BarrierWait,
                    start: 15.0,
                    end: 40.0,
                },
                Span {
                    kind: SpanKind::Compute,
                    start: 40.0,
                    end: 45.0,
                },
            ],
        );
        assert_eq!(t.time_in(SpanKind::Compute), 15.0);
        assert_eq!(t.time_in(SpanKind::Send), 5.0);
        assert_eq!(t.idle_fraction(50.0), 0.5);
        assert_eq!(t.idle_fraction(0.0), 0.0);
    }

    #[test]
    fn gantt_renders_rows() {
        let tls = vec![
            tl(
                0,
                vec![Span {
                    kind: SpanKind::Compute,
                    start: 0.0,
                    end: 50.0,
                }],
            ),
            tl(
                1,
                vec![
                    Span {
                        kind: SpanKind::Compute,
                        start: 0.0,
                        end: 100.0,
                    },
                    Span {
                        kind: SpanKind::BarrierWait,
                        start: 100.0,
                        end: 200.0,
                    },
                ],
            ),
        ];
        let chart = ascii_gantt(&tls, 20);
        let lines: Vec<&str> = chart.lines().collect();
        assert_eq!(lines.len(), 3, "header + two rows");
        assert!(lines[1].contains('C'));
        assert!(lines[2].contains('.'), "P1 waits at the barrier");
        // P0's row is blank after its finish at t=50 (quarter of 200).
        let p0_row = lines[1];
        assert!(
            p0_row.contains("  "),
            "P0's row has trailing idle space: {p0_row}"
        );
    }

    #[test]
    fn summary_totals_activities() {
        let tls = vec![
            tl(
                0,
                vec![
                    Span {
                        kind: SpanKind::Compute,
                        start: 0.0,
                        end: 10.0,
                    },
                    Span {
                        kind: SpanKind::BarrierWait,
                        start: 10.0,
                        end: 30.0,
                    },
                ],
            ),
            tl(
                1,
                vec![Span {
                    kind: SpanKind::Send,
                    start: 0.0,
                    end: 30.0,
                }],
            ),
        ];
        let s = TraceSummary::of(&tls);
        assert_eq!(s.compute, 10.0);
        assert_eq!(s.send, 30.0);
        assert_eq!(s.barrier_wait, 20.0);
        assert_eq!(s.total(), 60.0);
        assert!((s.wait_fraction() - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn step_spans_elide_empty() {
        let timing = StepTiming {
            compute_done: vec![5.0],
            send_done: vec![5.0], // no sends
            finish: vec![9.0],
            messages: vec![],
        };
        let mut tls = vec![tl(0, vec![])];
        step_spans(&mut tls, &[0.0], &timing, &[12.0]);
        let kinds: Vec<SpanKind> = tls[0].spans.iter().map(|s| s.kind).collect();
        assert_eq!(
            kinds,
            vec![SpanKind::Compute, SpanKind::Unpack, SpanKind::BarrierWait]
        );
    }
}
