//! Microcost configuration of the simulated network.

use hbsp_core::Level;

/// Tunable microcosts of the simulated PVM-style message-passing layer.
///
/// All per-word costs are multiplied by the machine's `g` (time per word
/// at fastest-machine speed) and the endpoint's `r` (relative
/// communication slowness), so the *model-level* parameters stay in
/// charge; this config only shapes the constant factors a real
/// messaging stack adds.
#[derive(Debug, Clone, PartialEq)]
pub struct NetConfig {
    /// Sender-side cost per word (pack + inject), in units of `r·g`.
    pub send_word_cost: f64,
    /// Receiver-side cost per word (unpack), in units of `r·g`. Smaller
    /// than [`NetConfig::send_word_cost`] by default: receiving is one
    /// pass over the data, sending is pack *and* inject.
    pub recv_word_cost: f64,
    /// Fixed per-message overhead charged to the sender (connection
    /// setup, headers), in absolute model time.
    pub msg_overhead: f64,
    /// Shared-medium transmission cost per word, in units of `g`
    /// (machine-independent: the wire is the wire). Each cluster's
    /// network is one shared segment — think the testbed's 100 Mbit/s
    /// Ethernet — so all messages whose endpoints meet at that cluster
    /// serialize through it in sender-completion order. `0` disables
    /// the medium (infinite-fabric model).
    pub medium_word_cost: f64,
    /// Link latency added to a message whose sender/receiver LCA sits on
    /// level `l` (`latency[l]`, absolute model time). Missing levels
    /// default to the last entry (or 0 if empty). Level 0 is unused —
    /// two distinct processors always meet at level ≥ 1.
    pub level_latency: Vec<f64>,
    /// Per-word bandwidth penalty for crossing a level-`l` link
    /// (`bandwidth_factor[l]`, multiplies the per-word costs; defaults
    /// to 1). This implements the paper's future-work extension of
    /// `r_{i,j}` toward destination-dependent communication cost, and
    /// drives the hierarchy ablation (slow wide-area links).
    pub level_bandwidth_factor: Vec<f64>,
}

impl NetConfig {
    /// The defaults used by all paper-reproduction experiments.
    pub fn pvm_like() -> Self {
        NetConfig {
            send_word_cost: 1.0,
            recv_word_cost: 0.85,
            msg_overhead: 50.0,
            medium_word_cost: 1.0,
            level_latency: Vec::new(),
            level_bandwidth_factor: Vec::new(),
        }
    }

    /// A frictionless network: no per-message overhead, no latency,
    /// symmetric unit word costs. Useful for tests that want times to
    /// match the analytic cost model exactly.
    pub fn ideal() -> Self {
        NetConfig {
            send_word_cost: 1.0,
            recv_word_cost: 1.0,
            msg_overhead: 0.0,
            medium_word_cost: 0.0,
            level_latency: Vec::new(),
            level_bandwidth_factor: Vec::new(),
        }
    }

    /// Latency of a link whose LCA is on `level`.
    pub fn latency(&self, level: Level) -> f64 {
        match self.level_latency.get(level as usize) {
            Some(&l) => l,
            None => self.level_latency.last().copied().unwrap_or(0.0),
        }
    }

    /// Bandwidth penalty factor for a link whose LCA is on `level`.
    pub fn bandwidth_factor(&self, level: Level) -> f64 {
        match self.level_bandwidth_factor.get(level as usize) {
            Some(&f) => f,
            None => self.level_bandwidth_factor.last().copied().unwrap_or(1.0),
        }
    }

    /// Builder-style: set per-level latencies (index = level).
    pub fn with_latency(mut self, latency: Vec<f64>) -> Self {
        self.level_latency = latency;
        self
    }

    /// Builder-style: set per-level bandwidth factors (index = level).
    pub fn with_bandwidth_factors(mut self, factors: Vec<f64>) -> Self {
        self.level_bandwidth_factor = factors;
        self
    }

    /// Builder-style: set the fixed per-message overhead.
    pub fn with_msg_overhead(mut self, overhead: f64) -> Self {
        self.msg_overhead = overhead;
        self
    }

    /// Builder-style: set the shared-medium per-word cost.
    pub fn with_medium(mut self, medium_word_cost: f64) -> Self {
        self.medium_word_cost = medium_word_cost;
        self
    }

    /// Sanity-check all costs are finite and non-negative, with positive
    /// bandwidth factors.
    pub fn validate(&self) -> Result<(), crate::SimError> {
        let ok = self.send_word_cost >= 0.0
            && self.recv_word_cost >= 0.0
            && self.msg_overhead >= 0.0
            && self.medium_word_cost >= 0.0
            && self.medium_word_cost.is_finite()
            && self.send_word_cost.is_finite()
            && self.recv_word_cost.is_finite()
            && self.msg_overhead.is_finite()
            && self
                .level_latency
                .iter()
                .all(|l| *l >= 0.0 && l.is_finite())
            && self
                .level_bandwidth_factor
                .iter()
                .all(|f| *f > 0.0 && f.is_finite());
        if ok {
            Ok(())
        } else {
            Err(crate::SimError::InvalidConfig)
        }
    }
}

impl Default for NetConfig {
    fn default() -> Self {
        NetConfig::pvm_like()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_pvm_like() {
        let c = NetConfig::default();
        assert!(
            c.recv_word_cost < c.send_word_cost,
            "receive is cheaper than send"
        );
        assert!(c.msg_overhead > 0.0);
        c.validate().unwrap();
    }

    #[test]
    fn latency_lookup_clamps() {
        let c = NetConfig::ideal().with_latency(vec![0.0, 10.0, 500.0]);
        assert_eq!(c.latency(1), 10.0);
        assert_eq!(c.latency(2), 500.0);
        assert_eq!(
            c.latency(7),
            500.0,
            "levels beyond the table use the last entry"
        );
        let empty = NetConfig::ideal();
        assert_eq!(empty.latency(3), 0.0);
    }

    #[test]
    fn bandwidth_lookup_clamps() {
        let c = NetConfig::ideal().with_bandwidth_factors(vec![1.0, 1.0, 8.0]);
        assert_eq!(c.bandwidth_factor(2), 8.0);
        assert_eq!(c.bandwidth_factor(5), 8.0);
        assert_eq!(NetConfig::ideal().bandwidth_factor(2), 1.0);
    }

    #[test]
    fn validate_rejects_bad_values() {
        let mut c = NetConfig::ideal();
        c.send_word_cost = -1.0;
        assert!(c.validate().is_err());
        let mut c = NetConfig::ideal();
        c.level_bandwidth_factor = vec![0.0];
        assert!(c.validate().is_err());
    }
}
