//! The model evaluator: price *any* program with the paper's cost
//! model.
//!
//! §3.4 says "the parameters described above allow for cost analysis of
//! HBSP^k programs" — not just of the hand-analyzed collectives. This
//! engine executes a program's supersteps exactly like the simulator
//! (same message delivery, same SPMD checks, so the program's control
//! flow and data are identical), but charges each super^i-step the pure
//! model cost
//!
//! ```text
//! T_i(λ) = w_i + g·h + L_{i,j}
//! ```
//!
//! with `w_i = max(units / speed)` over participants, `h` the
//! heterogeneous h-relation of the step's traffic, and `L` the largest
//! participating cluster's barrier cost. The result is a
//! [`CostReport`] — the "predicted" column for any program, including
//! ones with data-dependent communication that closed forms can't
//! cover. Experiment E9 compares these predictions against the
//! simulator's microcost times.

use crate::error::SimError;
use crate::step::{analyze, resolve_outcomes};
use hbsp_core::{
    CostReport, MachineTree, MsgBatch, ProcEnv, ProcId, SpmdContext, SpmdProgram, StepOutcome,
    SuperstepCost, SyncScope,
};
use std::sync::Arc;

/// Evaluates programs under the pure HBSP^k cost model.
pub struct ModelEvaluator {
    tree: Arc<MachineTree>,
    step_limit: usize,
}

impl ModelEvaluator {
    /// Evaluator for `tree`.
    pub fn new(tree: Arc<MachineTree>) -> Self {
        ModelEvaluator {
            tree,
            step_limit: 100_000,
        }
    }

    /// Override the runaway-program guard.
    pub fn step_limit(mut self, limit: usize) -> Self {
        self.step_limit = limit;
        self
    }

    /// Run `prog` to completion, returning the model-cost report and
    /// each processor's final state.
    pub fn run_with_states<P: SpmdProgram>(
        &self,
        prog: &P,
    ) -> Result<(CostReport, Vec<P::State>), SimError> {
        let p = self.tree.num_procs();
        let envs: Vec<ProcEnv> = (0..p)
            .map(|i| ProcEnv {
                pid: ProcId(i as u32),
                nprocs: p,
                tree: Arc::clone(&self.tree),
            })
            .collect();
        let mut states: Vec<P::State> = envs.iter().map(|e| prog.init(e)).collect();
        let mut inboxes: Vec<MsgBatch> = (0..p).map(|_| MsgBatch::new()).collect();
        let mut sends = MsgBatch::new();
        let mut report = CostReport::new();

        for step in 0..self.step_limit {
            sends.clear();
            let mut outcomes: Vec<StepOutcome> = Vec::with_capacity(p);
            // The paper's w_i: the largest local computation, at each
            // machine's own speed.
            let mut w_max = 0.0f64;
            for i in 0..p {
                let mut ctx = ModelCtx {
                    env: &envs[i],
                    inbox: &inboxes[i],
                    outbox: &mut sends,
                    work: 0.0,
                };
                let outcome = prog.step(step, &envs[i], &mut states[i], &mut ctx);
                w_max = w_max.max(ctx.work / envs[i].speed());
                outcomes.push(outcome);
            }
            for inbox in &mut inboxes {
                inbox.clear();
            }
            let scope = resolve_outcomes(step, &outcomes)?;
            let analysis = analyze(&self.tree, step, scope, &sends)?;

            // L: the largest barrier cost among the scope's
            // participating clusters (zero for the final, barrier-less
            // step).
            let sync = match scope {
                None => 0.0,
                Some(s) => self.sync_cost(s),
            };
            report.push(SuperstepCost {
                level: scope.map_or(self.tree.height(), |s| s.level()),
                w: w_max,
                h: analysis.hrelation,
                comm: self.tree.g() * analysis.hrelation,
                sync,
            });
            match scope {
                None => return Ok((report, states)),
                Some(_) => {
                    // Deliver in deterministic (src, posting) order —
                    // the model has no arrival times. Bodies run in pid
                    // order into one shared outbox, so posting order is
                    // already src-sorted.
                    for i in 0..sends.len() {
                        let dst = sends.get(i).dst;
                        inboxes[dst.rank()].push_from(&sends, i);
                    }
                }
            }
        }
        Err(SimError::StepLimit {
            limit: self.step_limit,
        })
    }

    /// Run `prog`, discarding final states.
    pub fn run<P: SpmdProgram>(&self, prog: &P) -> Result<CostReport, SimError> {
        self.run_with_states(prog).map(|(r, _)| r)
    }

    fn sync_cost(&self, scope: SyncScope) -> f64 {
        let level = scope.level();
        let mut l_max = 0.0f64;
        for i in 0..self.tree.num_procs() {
            let leaf = self.tree.leaves()[i];
            let anchor = self.tree.ancestor_at_level(leaf, level).unwrap_or(leaf);
            l_max = l_max.max(self.tree.node(anchor).params().l_sync);
        }
        l_max
    }
}

struct ModelCtx<'a> {
    env: &'a ProcEnv,
    inbox: &'a MsgBatch,
    outbox: &'a mut MsgBatch,
    work: f64,
}

impl SpmdContext for ModelCtx<'_> {
    fn pid(&self) -> ProcId {
        self.env.pid
    }
    fn nprocs(&self) -> usize {
        self.env.nprocs
    }
    fn tree(&self) -> &MachineTree {
        &self.env.tree
    }
    fn messages(&self) -> &MsgBatch {
        self.inbox
    }
    fn send_with(&mut self, dst: ProcId, tag: u32, len: usize, fill: &mut dyn FnMut(&mut [u8])) {
        self.outbox.push_with(self.env.pid, dst, tag, len, fill);
    }
    fn charge(&mut self, units: f64) {
        assert!(
            units >= 0.0 && units.is_finite(),
            "charged work must be finite and non-negative"
        );
        self.work += units;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hbsp_core::TreeBuilder;

    /// Everyone sends `words` to rank 0, then rank 0 counts.
    struct Funnel {
        words: usize,
    }
    impl SpmdProgram for Funnel {
        type State = usize;
        fn init(&self, _env: &ProcEnv) -> usize {
            0
        }
        fn step(
            &self,
            step: usize,
            env: &ProcEnv,
            state: &mut usize,
            ctx: &mut dyn SpmdContext,
        ) -> StepOutcome {
            match step {
                0 => {
                    ctx.charge(120.0);
                    if env.pid.0 != 0 {
                        ctx.send(ProcId(0), 0, &vec![0u8; self.words * 4]);
                    }
                    StepOutcome::Continue(SyncScope::global(&env.tree))
                }
                _ => {
                    *state = ctx.messages().len();
                    StepOutcome::Done
                }
            }
        }
    }

    #[test]
    fn charges_the_paper_cost_exactly() {
        // g = 2, L = 30; r = [1, 2, 4], speeds = 1/r. Everyone sends
        // 100 words to rank 0 (which receives 200).
        let t =
            Arc::new(TreeBuilder::flat(2.0, 30.0, &[(1.0, 1.0), (2.0, 0.5), (4.0, 0.25)]).unwrap());
        let (report, states) = ModelEvaluator::new(Arc::clone(&t))
            .run_with_states(&Funnel { words: 100 })
            .unwrap();
        assert_eq!(states[0], 2, "program semantics preserved");
        assert_eq!(report.num_steps(), 2);
        let s0 = report.steps()[0];
        // w = 120 units at speed 0.25 = 480.
        assert_eq!(s0.w, 480.0);
        // h = max(r_1·100, r_2·100, r_0·200) = max(200, 400, 200) = 400.
        assert_eq!(s0.h, 400.0);
        assert_eq!(s0.comm, 800.0, "g = 2");
        assert_eq!(s0.sync, 30.0);
        // Final step: no traffic, no barrier.
        assert_eq!(report.steps()[1].total(), 0.0);
        assert_eq!(report.total(), 480.0 + 800.0 + 30.0);
    }

    #[test]
    fn matches_the_closed_form_gather_prediction() {
        // The model evaluator pricing the *actual* flat-gather program
        // must equal predict::gather_flat's closed form. (The closed
        // form lives in hbsp-collectives which depends on this crate,
        // so the assertion itself lives there and in the integration
        // tests; here we pin the h-relation shape on a hand-built
        // equivalent.)
        let t = Arc::new(TreeBuilder::flat(1.0, 50.0, &[(1.0, 1.0), (3.0, 0.3)]).unwrap());
        let report = ModelEvaluator::new(t).run(&Funnel { words: 500 }).unwrap();
        // h = max(3·500 sender, 1·500 receiver) = 1500.
        assert_eq!(report.steps()[0].h, 1500.0);
        assert_eq!(report.total(), 120.0 / 0.3 + 1500.0 + 50.0);
    }

    #[test]
    fn cluster_scoped_steps_charge_the_largest_participating_l() {
        struct LocalChat;
        impl SpmdProgram for LocalChat {
            type State = ();
            fn init(&self, _env: &ProcEnv) {}
            fn step(
                &self,
                step: usize,
                env: &ProcEnv,
                _st: &mut (),
                ctx: &mut dyn SpmdContext,
            ) -> StepOutcome {
                if step == 1 {
                    return StepOutcome::Done;
                }
                // Exchange within the cluster only.
                let members = env
                    .tree
                    .subtree_leaves(env.tree.cluster_of(env.pid, 1).expect("cluster exists"));
                for &leaf in &members {
                    let q = env.tree.node(leaf).proc_id().unwrap();
                    if q != env.pid {
                        ctx.send(q, 0, &[0u8; 4]);
                    }
                }
                StepOutcome::Continue(SyncScope::Level(1))
            }
        }
        let t = Arc::new(
            TreeBuilder::two_level(
                1.0,
                999.0,
                &[
                    (10.0, vec![(1.0, 1.0), (1.5, 0.6)]),
                    (70.0, vec![(2.0, 0.5), (2.0, 0.5)]),
                ],
            )
            .unwrap(),
        );
        let report = ModelEvaluator::new(t).run(&LocalChat).unwrap();
        assert_eq!(
            report.steps()[0].sync,
            70.0,
            "max participating L_{{1,j}}, not L_{{2,0}}"
        );
        assert_eq!(report.steps()[0].level, 1);
    }

    #[test]
    fn spmd_discipline_still_enforced() {
        struct Mixed;
        impl SpmdProgram for Mixed {
            type State = ();
            fn init(&self, _env: &ProcEnv) {}
            fn step(
                &self,
                _step: usize,
                env: &ProcEnv,
                _st: &mut (),
                _ctx: &mut dyn SpmdContext,
            ) -> StepOutcome {
                if env.pid.0 == 0 {
                    StepOutcome::Done
                } else {
                    StepOutcome::Continue(SyncScope::global(&env.tree))
                }
            }
        }
        let t = Arc::new(TreeBuilder::homogeneous(1.0, 1.0, 3).unwrap());
        assert_eq!(
            ModelEvaluator::new(t).run(&Mixed).unwrap_err(),
            SimError::TerminationMismatch { step: 0 }
        );
    }
}
