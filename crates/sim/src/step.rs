//! Superstep analysis shared by the simulator and the threaded runtime:
//! SPMD-discipline checks, scope confinement, send intents, and traffic
//! accounting.

use crate::error::SimError;
use crate::stats::LevelTraffic;
use crate::timing::{MsgTiming, SendIntent};
use hbsp_core::{HRelation, MachineTree, MsgBatch, StepOutcome, SyncScope};

/// The validated, cost-relevant view of one superstep's communication.
#[derive(Debug, Clone)]
pub struct StepAnalysis {
    /// Per-message send intents in posting order.
    pub intents: Vec<SendIntent>,
    /// Traffic bucketed by LCA level.
    pub traffic: Vec<LevelTraffic>,
    /// Observed heterogeneous h-relation of the step.
    pub hrelation: f64,
}

/// Check that all processors agreed on what happens after this
/// superstep. Returns the common scope, or `None` if everyone finished.
pub fn resolve_outcomes(
    step: usize,
    outcomes: &[StepOutcome],
) -> Result<Option<SyncScope>, SimError> {
    assert!(!outcomes.is_empty());
    let done = outcomes
        .iter()
        .filter(|o| matches!(o, StepOutcome::Done))
        .count();
    if done == outcomes.len() {
        return Ok(None);
    }
    if done != 0 {
        return Err(SimError::TerminationMismatch { step });
    }
    let mut scope = None;
    for o in outcomes {
        if let StepOutcome::Continue(s) = o {
            match scope {
                None => scope = Some(*s),
                Some(prev) if prev != *s => {
                    return Err(SimError::ScopeMismatch {
                        step,
                        a: prev,
                        b: *s,
                    })
                }
                _ => {}
            }
        }
    }
    Ok(scope)
}

/// The deterministic delivery order of one superstep's messages: by
/// (arrival time, posting index). Shared by the simulator and the
/// threaded runtime so both engines deliver bit-identically.
///
/// Ordering uses [`f64::total_cmp`], never `partial_cmp(..).unwrap()`:
/// a NaN arrival would indicate an upstream timing bug, but it must
/// still produce a total, deterministic order rather than a panic — in
/// the threaded runtime this code runs inside the barrier's leader
/// section, where a panic would strand every other processor thread at
/// the barrier forever.
pub fn delivery_order(messages: &[MsgTiming]) -> Vec<usize> {
    let mut order = Vec::new();
    delivery_order_into(messages, &mut order);
    order
}

/// [`delivery_order`] writing into a caller-owned buffer (cleared and
/// refilled), so the hot path allocates nothing once it has grown.
pub fn delivery_order_into(messages: &[MsgTiming], order: &mut Vec<usize>) {
    order.clear();
    order.extend(0..messages.len());
    order.sort_by(|&a, &b| {
        messages[a]
            .arrival
            .total_cmp(&messages[b].arrival)
            .then(a.cmp(&b))
    });
}

/// Validate every message of a superstep against the machine and the
/// closing scope (`None` = final step, no confinement), producing the
/// cost-relevant analysis.
pub fn analyze(
    tree: &MachineTree,
    step: usize,
    scope: Option<SyncScope>,
    msgs: &MsgBatch,
) -> Result<StepAnalysis, SimError> {
    let mut out = StepAnalysis {
        intents: Vec::new(),
        traffic: Vec::new(),
        hrelation: 0.0,
    };
    analyze_into(tree, step, scope, msgs, &mut out)?;
    Ok(out)
}

/// [`analyze`] writing into a caller-owned [`StepAnalysis`] whose
/// vectors are cleared and refilled, so a steady-state superstep
/// performs no per-message heap allocation.
pub fn analyze_into(
    tree: &MachineTree,
    step: usize,
    scope: Option<SyncScope>,
    msgs: &MsgBatch,
    out: &mut StepAnalysis,
) -> Result<(), SimError> {
    let p = tree.num_procs();
    out.traffic.clear();
    out.traffic
        .resize(tree.height() as usize + 1, LevelTraffic::default());
    out.intents.clear();
    out.intents.reserve(msgs.len());
    let mut hr = HRelation::new();
    for m in msgs.iter() {
        if m.dst.rank() >= p {
            return Err(SimError::NoSuchProc { step, dst: m.dst });
        }
        let src_leaf = tree.leaves()[m.src.rank()];
        let dst_leaf = tree.leaves()[m.dst.rank()];
        let lca_level = tree.node(tree.lca(src_leaf, dst_leaf)).level();
        if let Some(s) = scope {
            if m.src != m.dst && lca_level > s.level() {
                return Err(SimError::CrossClusterSend {
                    step,
                    src: m.src,
                    dst: m.dst,
                    scope: s,
                });
            }
        }
        let t = &mut out.traffic[lca_level as usize];
        t.words += m.words();
        t.messages += 1;
        if m.src != m.dst {
            hr.send(
                tree.node(src_leaf).machine_id(),
                tree.node(dst_leaf).machine_id(),
                m.words(),
            );
        }
        out.intents.push(SendIntent {
            src: m.src,
            dst: m.dst,
            words: m.words(),
        });
    }
    out.hrelation = hr.h_on(tree);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use hbsp_core::{ProcId, TreeBuilder};

    #[test]
    fn resolve_agreement() {
        let all_go = vec![StepOutcome::Continue(SyncScope::Level(1)); 3];
        assert_eq!(
            resolve_outcomes(0, &all_go).unwrap(),
            Some(SyncScope::Level(1))
        );
        let all_done = vec![StepOutcome::Done; 3];
        assert_eq!(resolve_outcomes(0, &all_done).unwrap(), None);
    }

    #[test]
    fn resolve_rejects_mixed_termination() {
        let mixed = vec![
            StepOutcome::Done,
            StepOutcome::Continue(SyncScope::Level(1)),
        ];
        assert_eq!(
            resolve_outcomes(4, &mixed).unwrap_err(),
            SimError::TerminationMismatch { step: 4 }
        );
    }

    #[test]
    fn resolve_rejects_scope_disagreement() {
        let fight = vec![
            StepOutcome::Continue(SyncScope::Level(1)),
            StepOutcome::Continue(SyncScope::Level(2)),
        ];
        assert!(matches!(
            resolve_outcomes(0, &fight),
            Err(SimError::ScopeMismatch { .. })
        ));
    }

    #[test]
    fn analyze_counts_traffic_and_h() {
        let t = TreeBuilder::flat(1.0, 0.0, &[(1.0, 1.0), (2.0, 0.5)]).unwrap();
        let mut msgs = MsgBatch::new();
        msgs.push(ProcId(1), ProcId(0), 0, &[0; 40]); // 10 words, slow sender
        msgs.push(ProcId(0), ProcId(0), 0, &[0; 8]); // self-send
        let a = analyze(&t, 0, Some(SyncScope::Level(1)), &msgs).unwrap();
        assert_eq!(a.intents.len(), 2);
        assert_eq!(a.traffic[1].words, 10);
        assert_eq!(
            a.traffic[0].words, 2,
            "self-send recorded at the leaf's own level"
        );
        assert_eq!(a.hrelation, 20.0, "r=2 sender of 10 words dominates");
    }

    /// Regression: arrival sorting once used `partial_cmp(..).unwrap()`,
    /// which panics on NaN — inside the threaded runtime's leader
    /// section that deadlocks the barrier. `total_cmp` must give a
    /// deterministic total order instead.
    #[test]
    fn delivery_order_is_total_even_with_nan_arrivals() {
        let t = |arrival| MsgTiming {
            arrival,
            unpack_done: 0.0,
        };
        let msgs = vec![t(5.0), t(f64::NAN), t(1.0), t(f64::NAN), t(-0.0)];
        let order = delivery_order(&msgs);
        // total_cmp sorts positive NaN above every number; equal keys
        // keep posting order.
        assert_eq!(order, vec![4, 2, 0, 1, 3]);
    }

    #[test]
    fn delivery_order_breaks_ties_by_posting_index() {
        let msgs = vec![
            MsgTiming {
                arrival: 3.0,
                unpack_done: 0.0,
            };
            4
        ];
        assert_eq!(delivery_order(&msgs), vec![0, 1, 2, 3]);
    }

    #[test]
    fn analyze_confines_to_scope() {
        let t = TreeBuilder::two_level(
            1.0,
            0.0,
            &[(0.0, vec![(1.0, 1.0)]), (0.0, vec![(2.0, 0.5)])],
        )
        .unwrap();
        let mut msgs = MsgBatch::new();
        msgs.push(ProcId(0), ProcId(1), 0, &[0; 4]);
        assert!(matches!(
            analyze(&t, 2, Some(SyncScope::Level(1)), &msgs),
            Err(SimError::CrossClusterSend { step: 2, .. })
        ));
        // Level-2 scope allows it; final step (None) allows it too.
        assert!(analyze(&t, 2, Some(SyncScope::Level(2)), &msgs).is_ok());
        assert!(analyze(&t, 2, None, &msgs).is_ok());
    }
}
