//! # hbsp-sim — deterministic discrete-event simulation of HBSP^k machines
//!
//! The paper's experiments ran HBSPlib programs over PVM on a physical
//! heterogeneous cluster of ten SUN/SGI workstations. This crate is that
//! testbed's stand-in: a deterministic discrete-event simulator that
//! executes any [`hbsp_core::SpmdProgram`] over any
//! [`hbsp_core::MachineTree`] and reports *model time* with a
//! microcost structure mirroring a PVM-style message-passing system:
//!
//! * local computation at `units / speed` per processor;
//! * sender-side pack+inject cost `κ_send · r_src · g` per word, serial
//!   in posting order (a processor has one NIC);
//! * per-level link latency for the path through the hierarchy (the
//!   level of the sender/receiver's lowest common ancestor);
//! * optional per-level bandwidth penalty (the paper's future-work
//!   extension of `r` to destination-dependent cost);
//! * receiver-side unpack cost `κ_recv · r_dst · g` per word, processed
//!   in arrival order after the receiver's own compute+send work;
//! * hierarchical barriers: a superstep ending in a level-`i` sync
//!   releases each level-`i` cluster at `max(member finish) + L_{i,j}`.
//!
//! `κ_recv < κ_send` by default: receiving is a single unpack pass while
//! sending is pack *and* inject — the asymmetry PVM exhibits and the
//! reason the paper's Figure 3(a) finds a *slow* root preferable at
//! `p = 2` (see `hbsp-bench`'s E1).
//!
//! Everything is deterministic: same program + machine + config ⇒ the
//! same event order, times, and statistics, bit for bit.

#![forbid(unsafe_code)]

pub mod config;
pub mod engine;
pub mod error;
pub mod event;
pub mod faults;
pub mod model_engine;
pub mod stats;
pub mod step;
pub mod timing;
pub mod trace;

pub use config::NetConfig;
pub use engine::{SimOutcome, Simulator};
pub use error::SimError;
pub use event::TimeQueue;
pub use faults::{Fault, FaultPlan, SplitMix64};
pub use model_engine::ModelEvaluator;
pub use stats::{LevelTraffic, StepStats};
pub use step::{analyze, delivery_order, resolve_outcomes, StepAnalysis};
pub use trace::{ascii_gantt, step_spans, ProcTimeline, Span, SpanKind, TraceSummary};
