//! The superstep timing algebra.
//!
//! Pure functions computing when everything happens inside one
//! superstep. Shared by the discrete-event engine here and by
//! `hbsp-runtime`'s threaded engine (whose *virtual* clock uses the same
//! algebra, letting tests assert both engines agree exactly).
//!
//! Within a superstep, processor `p` starting at `t_p`:
//!
//! 1. computes its charged work: `t_p + units_p / speed_p`;
//! 2. packs and injects each posted message serially (one NIC):
//!    per message `overhead + κ_send · r_p · g · words · bw(ℓ)`,
//!    where `ℓ` is the level of the sender/receiver LCA;
//! 3. each message then transits the shared medium of the cluster where
//!    sender and receiver meet (`medium_word_cost · g · words` per
//!    message, serialized per segment in sender-completion order — the
//!    testbed's shared Ethernet), then arrives after `latency(ℓ)`;
//! 4. the receiver unpacks arrivals in arrival order, after finishing
//!    its own compute + sends: per message `κ_recv · r_q · g · words ·
//!    bw(ℓ)`;
//! 5. the closing barrier releases each scope-level cluster at
//!    `max(member finish) + L_{i,j}`.
//!
//! Self-sends are local moves: delivered, but cost-free (the paper's
//! collectives never send to self; the engines still allow it).
//!
//! **Scheduling anomaly.** With the shared medium enabled, per-segment
//! FIFO arbitration makes timing *non-monotone*: adding work to one
//! processor delays its send, which can cede the wire to another
//! message and let an unrelated receiver finish *earlier* (the same
//! class of anomaly as Graham's multiprocessor scheduling anomalies).
//! This mirrors real shared Ethernet and is pinned by the property
//! tests; disable the medium (`medium_word_cost = 0`) for an
//! anomaly-free point-to-point fabric.

use crate::config::NetConfig;
use crate::event::TimeQueue;
use hbsp_core::{MachineTree, ProcId, SyncScope};

/// One posted message, by cost-relevant fields only.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SendIntent {
    /// Sender rank.
    pub src: ProcId,
    /// Destination rank.
    pub dst: ProcId,
    /// Charged size in words.
    pub words: u64,
}

/// Per-message timing, in the order the sends were supplied.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MsgTiming {
    /// When the message is fully on the wire plus link latency — i.e.
    /// when the receiver *could* start unpacking it.
    pub arrival: f64,
    /// When the receiver has finished unpacking it.
    pub unpack_done: f64,
}

/// Complete timing of one superstep.
#[derive(Debug, Clone, PartialEq)]
pub struct StepTiming {
    /// Per-processor compute completion.
    pub compute_done: Vec<f64>,
    /// Per-processor completion of all its sends (= compute_done when a
    /// processor sent nothing).
    pub send_done: Vec<f64>,
    /// Per-processor finish time (after unpacking everything it
    /// received).
    pub finish: Vec<f64>,
    /// Per-message timing, indexed like the input `sends` slice.
    pub messages: Vec<MsgTiming>,
}

/// Compute the timing of one superstep.
///
/// `starts[p]` is processor `p`'s release time from the previous
/// barrier; `work_units[p]` its charged computation (at fastest-machine
/// speed); `sends` every posted message in posting order (per-sender
/// order is what matters; the slice may interleave senders).
pub fn superstep_timing(
    tree: &MachineTree,
    cfg: &NetConfig,
    starts: &[f64],
    work_units: &[f64],
    sends: &[SendIntent],
) -> StepTiming {
    superstep_timing_faulted(tree, cfg, starts, work_units, sends, None)
}

/// [`superstep_timing`] with transient per-processor `r` inflation
/// (fault injection's straggler model): `r_scale[p]` multiplies
/// processor `p`'s `r` for this superstep only, scaling its pack and
/// unpack word costs. `None` (or all-ones) is the fault-free algebra,
/// bit for bit.
pub fn superstep_timing_faulted(
    tree: &MachineTree,
    cfg: &NetConfig,
    starts: &[f64],
    work_units: &[f64],
    sends: &[SendIntent],
    r_scale: Option<&[f64]>,
) -> StepTiming {
    let mut scratch = TimingScratch::default();
    let mut out = StepTiming {
        compute_done: Vec::new(),
        send_done: Vec::new(),
        finish: Vec::new(),
        messages: Vec::new(),
    };
    superstep_timing_faulted_into(
        tree,
        cfg,
        starts,
        work_units,
        sends,
        r_scale,
        &mut scratch,
        &mut out,
    );
    out
}

/// Reusable internal buffers for [`superstep_timing_faulted_into`].
///
/// Both engines call the timing algebra once per superstep; holding one
/// of these across steps means the hot path performs no heap
/// allocation once the buffers have grown to the step's message count.
#[derive(Default)]
pub struct TimingScratch {
    // (msg index, sender done, wire time, latency, segment node).
    posted: Vec<(usize, f64, f64, f64, usize)>,
    // (segment node, wire-free time); linear scan — a step touches only
    // a handful of distinct segments.
    wire_free: Vec<(usize, f64)>,
    // Per-destination arrival queues, drained every step.
    inbox: Vec<TimeQueue<(usize, f64)>>,
}

/// [`superstep_timing_faulted`] writing into caller-owned buffers.
///
/// `out`'s vectors are cleared and refilled; `scratch` is an opaque
/// bundle of internal buffers reused across calls. Results are bit
/// identical to the allocating wrapper.
#[allow(clippy::too_many_arguments)]
pub fn superstep_timing_faulted_into(
    tree: &MachineTree,
    cfg: &NetConfig,
    starts: &[f64],
    work_units: &[f64],
    sends: &[SendIntent],
    r_scale: Option<&[f64]>,
    scratch: &mut TimingScratch,
    out: &mut StepTiming,
) {
    let p = tree.num_procs();
    let scale = |pid: ProcId| r_scale.map_or(1.0, |s| s[pid.rank()]);
    assert_eq!(starts.len(), p);
    assert_eq!(work_units.len(), p);
    let g = tree.g();

    out.compute_done.clear();
    out.compute_done.extend((0..p).map(|i| {
        let leaf = tree.leaf(ProcId(i as u32));
        starts[i] + work_units[i] / leaf.params().speed
    }));

    // Phase 2: serial pack+post per sender. `send_done` doubles as the
    // per-sender cursor while posting.
    out.send_done.clear();
    out.send_done.extend_from_slice(&out.compute_done);
    out.messages.clear();
    out.messages.resize(
        sends.len(),
        MsgTiming {
            arrival: 0.0,
            unpack_done: 0.0,
        },
    );
    scratch.posted.clear();
    for (mi, s) in sends.iter().enumerate() {
        let src_leaf = tree.leaf(s.src);
        if s.src == s.dst {
            // Local move: available as soon as the sender computed it.
            out.messages[mi] = MsgTiming {
                arrival: out.compute_done[s.src.rank()],
                unpack_done: out.compute_done[s.src.rank()],
            };
            continue;
        }
        let dst_leaf = tree.leaf(s.dst);
        let segment = tree.lca(src_leaf.idx(), dst_leaf.idx());
        let level = tree.node(segment).level();
        let bw = cfg.bandwidth_factor(level);
        let send_cost = cfg.msg_overhead
            + cfg.send_word_cost * src_leaf.params().r * scale(s.src) * g * s.words as f64 * bw;
        let done = out.send_done[s.src.rank()] + send_cost;
        out.send_done[s.src.rank()] = done;
        let wire = cfg.medium_word_cost * g * s.words as f64 * bw;
        scratch
            .posted
            .push((mi, done, wire, cfg.latency(level), segment.index()));
    }

    // Phase 3: every message transits its segment's shared medium.
    // Each cluster's network is one wire: messages meeting at the same
    // LCA node serialize through it in sender-completion order (ties by
    // posting index), like the testbed's shared Ethernet.
    if scratch.inbox.len() < p {
        scratch.inbox.resize_with(p, TimeQueue::new);
    }
    // total_cmp, not partial_cmp().unwrap(): a NaN completion time is
    // an upstream bug, but it must not panic mid-coordination (in the
    // threaded runtime this algebra runs inside the barrier's leader
    // section, where a panic strands every other thread).
    scratch
        .posted
        .sort_by(|a, b| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0)));
    scratch.wire_free.clear();
    for &(mi, done, wire, latency, segment) in &scratch.posted {
        let s = &sends[mi];
        let slot = match scratch
            .wire_free
            .iter_mut()
            .find(|(seg, _)| *seg == segment)
        {
            Some((_, free)) => free,
            None => {
                scratch.wire_free.push((segment, f64::NEG_INFINITY));
                &mut scratch.wire_free.last_mut().unwrap().1
            }
        };
        let xmit_start = done.max(*slot);
        let xmit_done = xmit_start + wire;
        *slot = xmit_done;
        let arrival = xmit_done + latency;
        out.messages[mi].arrival = arrival;
        let dst_leaf = tree.leaf(s.dst);
        let level = tree
            .node(tree.lca(tree.leaf(s.src).idx(), dst_leaf.idx()))
            .level();
        let bw = cfg.bandwidth_factor(level);
        let unpack_cost =
            cfg.recv_word_cost * dst_leaf.params().r * scale(s.dst) * g * s.words as f64 * bw;
        scratch.inbox[s.dst.rank()].push(arrival, (mi, unpack_cost));
    }

    // Phase 4: unpack in arrival order after own compute+sends.
    out.finish.clear();
    out.finish.extend_from_slice(&out.send_done);
    for (q, queue) in scratch.inbox.iter_mut().enumerate().take(p) {
        while let Some((arrival, (mi, unpack_cost))) = queue.pop() {
            let start = out.finish[q].max(arrival);
            out.finish[q] = start + unpack_cost;
            out.messages[mi].unpack_done = out.finish[q];
        }
    }
}

/// Barrier release times: group processors by their `scope`-level
/// cluster; every member of a cluster restarts at
/// `max(member finish) + L_{i,j}`. A leaf sitting at or above the scope
/// level forms its own (zero-cost) singleton group.
pub fn barrier_release(tree: &MachineTree, scope: SyncScope, finish: &[f64]) -> Vec<f64> {
    let p = tree.num_procs();
    assert_eq!(finish.len(), p);
    let level = scope.level();
    // cluster idx (or leaf idx for singletons) -> (max finish, L).
    let mut groups: std::collections::BTreeMap<usize, (f64, f64)> =
        std::collections::BTreeMap::new();
    let mut group_of = Vec::with_capacity(p);
    for (&leaf_idx, &f) in tree.leaves().iter().zip(finish) {
        let anchor = tree.ancestor_at_level(leaf_idx, level).unwrap_or(leaf_idx);
        group_of.push(anchor.index());
        let l_sync = tree.node(anchor).params().l_sync;
        let e = groups
            .entry(anchor.index())
            .or_insert((f64::NEG_INFINITY, l_sync));
        e.0 = e.0.max(f);
    }
    group_of
        .iter()
        .map(|g| {
            let (max_f, l) = groups[g];
            max_f + l
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use hbsp_core::TreeBuilder;

    fn two_proc(r1: f64) -> MachineTree {
        TreeBuilder::flat(1.0, 10.0, &[(1.0, 1.0), (r1, 1.0 / r1)]).unwrap()
    }

    #[test]
    fn compute_scales_with_speed() {
        let t = two_proc(2.0);
        let st = superstep_timing(&t, &NetConfig::ideal(), &[0.0, 0.0], &[100.0, 100.0], &[]);
        assert_eq!(st.compute_done, vec![100.0, 200.0]);
        assert_eq!(st.finish, vec![100.0, 200.0]);
    }

    #[test]
    fn send_costs_are_serial_per_sender() {
        let t = two_proc(1.0);
        let cfg = NetConfig::ideal();
        let sends = [
            SendIntent {
                src: ProcId(0),
                dst: ProcId(1),
                words: 10,
            },
            SendIntent {
                src: ProcId(0),
                dst: ProcId(1),
                words: 5,
            },
        ];
        let st = superstep_timing(&t, &cfg, &[0.0, 0.0], &[0.0, 0.0], &sends);
        // First send completes at 10, second at 15; ideal network has no
        // latency so arrivals match.
        assert_eq!(st.messages[0].arrival, 10.0);
        assert_eq!(st.messages[1].arrival, 15.0);
        assert_eq!(st.send_done[0], 15.0);
        // Receiver (idle otherwise) unpacks in order: 10→20, then 20+5=25
        // — wait: unpack of msg0 starts at max(0, 10) = 10, done 20;
        // msg1 arrival 15 < 20, starts at 20, done 25.
        assert_eq!(st.finish[1], 25.0);
    }

    #[test]
    fn slow_sender_pays_r() {
        let t = two_proc(4.0);
        let cfg = NetConfig::ideal();
        let sends = [SendIntent {
            src: ProcId(1),
            dst: ProcId(0),
            words: 10,
        }];
        let st = superstep_timing(&t, &cfg, &[0.0, 0.0], &[0.0, 0.0], &sends);
        assert_eq!(st.messages[0].arrival, 40.0, "r=4 sender: 4·1·10 words");
        // Fast receiver unpacks at r=1: 40 + 10 = 50.
        assert_eq!(st.finish[0], 50.0);
    }

    #[test]
    fn recv_asymmetry_makes_slow_receiver_cheaper_than_slow_sender() {
        // The p=2 gather anomaly in microcosm: moving n words *to* the
        // slow machine (it only unpacks: κ_recv·r·n) beats moving them
        // *from* it (pack+inject: κ_send·r·n), because κ_recv < κ_send.
        let t = two_proc(4.0);
        let cfg = NetConfig::pvm_like();
        let to_slow = [SendIntent {
            src: ProcId(0),
            dst: ProcId(1),
            words: 100,
        }];
        let from_slow = [SendIntent {
            src: ProcId(1),
            dst: ProcId(0),
            words: 100,
        }];
        let a = superstep_timing(&t, &cfg, &[0.0, 0.0], &[0.0, 0.0], &to_slow);
        let b = superstep_timing(&t, &cfg, &[0.0, 0.0], &[0.0, 0.0], &from_slow);
        let t_to_slow = a.finish.iter().cloned().fold(0.0, f64::max);
        let t_from_slow = b.finish.iter().cloned().fold(0.0, f64::max);
        assert!(
            t_to_slow < t_from_slow,
            "slow machine receiving ({t_to_slow}) beats slow machine sending ({t_from_slow})"
        );
    }

    #[test]
    fn self_send_is_free() {
        let t = two_proc(1.0);
        let sends = [SendIntent {
            src: ProcId(0),
            dst: ProcId(0),
            words: 1000,
        }];
        let st = superstep_timing(&t, &NetConfig::pvm_like(), &[5.0, 0.0], &[0.0, 0.0], &sends);
        assert_eq!(st.finish[0], 5.0, "no cost charged");
        assert_eq!(st.messages[0].arrival, 5.0);
    }

    #[test]
    fn latency_and_bandwidth_apply_by_lca_level() {
        let t = TreeBuilder::two_level(
            1.0,
            0.0,
            &[(0.0, vec![(1.0, 1.0), (1.0, 1.0)]), (0.0, vec![(1.0, 1.0)])],
        )
        .unwrap();
        let cfg = NetConfig::ideal()
            .with_latency(vec![0.0, 1.0, 100.0])
            .with_bandwidth_factors(vec![1.0, 1.0, 10.0]);
        // Intra-cluster: P0 -> P1 (LCA level 1).
        let intra = [SendIntent {
            src: ProcId(0),
            dst: ProcId(1),
            words: 10,
        }];
        let st = superstep_timing(&t, &cfg, &[0.0; 3], &[0.0; 3], &intra);
        assert_eq!(st.messages[0].arrival, 10.0 + 1.0);
        // Cross-cluster: P0 -> P2 (LCA level 2): 10 words × bw 10 on the
        // wire, plus 100 latency.
        let cross = [SendIntent {
            src: ProcId(0),
            dst: ProcId(2),
            words: 10,
        }];
        let st = superstep_timing(&t, &cfg, &[0.0; 3], &[0.0; 3], &cross);
        assert_eq!(st.messages[0].arrival, 100.0 + 100.0);
    }

    #[test]
    fn receiver_overlap_with_own_work() {
        let t = two_proc(1.0);
        let cfg = NetConfig::ideal();
        let sends = [SendIntent {
            src: ProcId(0),
            dst: ProcId(1),
            words: 10,
        }];
        // Receiver busy computing until t=100; message arrives at 10 but
        // unpacking starts at 100.
        let st = superstep_timing(&t, &cfg, &[0.0, 0.0], &[0.0, 100.0], &sends);
        assert_eq!(st.messages[0].arrival, 10.0);
        assert_eq!(st.finish[1], 110.0);
    }

    #[test]
    fn message_overhead_charged_per_message() {
        let t = two_proc(1.0);
        let cfg = NetConfig::ideal().with_msg_overhead(7.0);
        let sends = [
            SendIntent {
                src: ProcId(0),
                dst: ProcId(1),
                words: 0,
            },
            SendIntent {
                src: ProcId(0),
                dst: ProcId(1),
                words: 0,
            },
        ];
        let st = superstep_timing(&t, &cfg, &[0.0, 0.0], &[0.0, 0.0], &sends);
        assert_eq!(st.send_done[0], 14.0);
    }

    #[test]
    fn straggle_scale_inflates_send_and_unpack_only() {
        let t = two_proc(1.0);
        let cfg = NetConfig::ideal();
        let sends = [SendIntent {
            src: ProcId(0),
            dst: ProcId(1),
            words: 10,
        }];
        // P0's r is tripled for this step: send cost 30 instead of 10.
        let st = superstep_timing_faulted(
            &t,
            &cfg,
            &[0.0, 0.0],
            &[50.0, 0.0],
            &sends,
            Some(&[3.0, 1.0]),
        );
        assert_eq!(st.compute_done, vec![50.0, 0.0], "compute unaffected");
        assert_eq!(st.messages[0].arrival, 80.0, "50 + 3·1·10 words");
        assert_eq!(st.finish[1], 90.0, "receiver unpacks at its own r");
        // All-ones scale is bit-identical to the fault-free algebra.
        let a = superstep_timing_faulted(
            &t,
            &cfg,
            &[0.0, 0.0],
            &[50.0, 0.0],
            &sends,
            Some(&[1.0, 1.0]),
        );
        let b = superstep_timing(&t, &cfg, &[0.0, 0.0], &[50.0, 0.0], &sends);
        assert_eq!(a, b);
    }

    #[test]
    fn global_barrier_waits_for_slowest() {
        let t = two_proc(2.0);
        let release = barrier_release(&t, SyncScope::Level(1), &[30.0, 70.0]);
        assert_eq!(release, vec![80.0, 80.0], "max finish 70 + L 10");
    }

    #[test]
    fn cluster_barrier_releases_clusters_independently() {
        let t = TreeBuilder::two_level(
            1.0,
            100.0,
            &[(5.0, vec![(1.0, 1.0), (1.0, 1.0)]), (7.0, vec![(1.0, 1.0)])],
        )
        .unwrap();
        let rel = barrier_release(&t, SyncScope::Level(1), &[10.0, 20.0, 50.0]);
        assert_eq!(rel, vec![25.0, 25.0, 57.0], "each cluster pays its own L");
        let global = barrier_release(&t, SyncScope::Level(2), &[10.0, 20.0, 50.0]);
        assert_eq!(
            global,
            vec![150.0, 150.0, 150.0],
            "global barrier: max + L_{{2,0}}"
        );
    }

    #[test]
    fn leaf_above_scope_level_is_singleton() {
        // Figure-2-like: a standalone leaf on level 1 barriers alone
        // under a level-1 scope.
        let mut b = TreeBuilder::new(1.0);
        let root = b.cluster("root", hbsp_core::NodeParams::cluster(100.0));
        let c = b.child_cluster(root, "c", hbsp_core::NodeParams::cluster(5.0));
        b.child_proc(c, "p0", hbsp_core::NodeParams::proc(1.0, 1.0));
        b.child_proc(c, "p1", hbsp_core::NodeParams::proc(1.0, 1.0));
        b.child_proc(root, "solo", hbsp_core::NodeParams::proc(2.0, 0.5));
        let t = b.build().unwrap();
        let rel = barrier_release(&t, SyncScope::Level(1), &[10.0, 20.0, 99.0]);
        assert_eq!(rel, vec![25.0, 25.0, 99.0], "solo leaf pays no barrier");
    }
}
