//! Simulation errors.

use hbsp_core::{ProcId, SyncScope};
use std::fmt;

/// Errors raised while executing a program on the simulator (or the
/// threaded runtime, which shares the same SPMD discipline).
#[derive(Debug, Clone, PartialEq)]
pub enum SimError {
    /// Processors disagreed on the superstep's closing barrier scope.
    /// SPMD programs must request the same scope everywhere.
    ScopeMismatch {
        step: usize,
        a: SyncScope,
        b: SyncScope,
    },
    /// Some processors returned `Done` while others continued — SPMD
    /// programs must terminate together.
    TerminationMismatch { step: usize },
    /// A message crossed a cluster boundary in a superstep that ends
    /// with a cluster-local barrier; its delivery time would be
    /// undefined. Use a higher-level sync for cross-cluster traffic.
    CrossClusterSend {
        step: usize,
        src: ProcId,
        dst: ProcId,
        scope: SyncScope,
    },
    /// A destination rank outside `0..nprocs`.
    NoSuchProc { step: usize, dst: ProcId },
    /// The program exceeded the engine's superstep budget (runaway
    /// loop guard).
    StepLimit { limit: usize },
    /// A processor's superstep body panicked (threaded runtime only —
    /// the simulator lets panics propagate to the caller directly).
    ProgramPanicked { pid: ProcId, step: usize },
    /// Microcost configuration failed validation.
    InvalidConfig,
    /// The program's static pre-flight check rejected it before any
    /// superstep ran (see `SpmdProgram::preflight`; toggled with the
    /// engines' `.check(bool)` builders).
    Preflight { message: String },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::ScopeMismatch { step, a, b } => {
                write!(
                    f,
                    "superstep {step}: processors disagree on sync scope ({a:?} vs {b:?})"
                )
            }
            SimError::TerminationMismatch { step } => {
                write!(
                    f,
                    "superstep {step}: some processors finished while others continued"
                )
            }
            SimError::CrossClusterSend {
                step,
                src,
                dst,
                scope,
            } => write!(
                f,
                "superstep {step}: {src} -> {dst} crosses a cluster boundary under {scope:?}"
            ),
            SimError::NoSuchProc { step, dst } => {
                write!(f, "superstep {step}: no such processor {dst}")
            }
            SimError::StepLimit { limit } => {
                write!(f, "program exceeded the {limit}-superstep budget")
            }
            SimError::ProgramPanicked { pid, step } => {
                write!(f, "processor {pid} panicked during superstep {step}")
            }
            SimError::InvalidConfig => write!(f, "invalid network configuration"),
            SimError::Preflight { message } => {
                write!(f, "program rejected before execution: {message}")
            }
        }
    }
}

impl std::error::Error for SimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_the_step() {
        let e = SimError::CrossClusterSend {
            step: 3,
            src: ProcId(1),
            dst: ProcId(5),
            scope: SyncScope::Level(1),
        };
        let s = e.to_string();
        assert!(
            s.contains("superstep 3") && s.contains("P1") && s.contains("P5"),
            "{s}"
        );
    }
}
