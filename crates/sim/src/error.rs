//! Simulation errors.

use hbsp_core::{ProcId, SyncScope};
use std::fmt;

/// Errors raised while executing a program on the simulator (or the
/// threaded runtime, which shares the same SPMD discipline).
#[derive(Debug, Clone, PartialEq)]
pub enum SimError {
    /// Processors disagreed on the superstep's closing barrier scope.
    /// SPMD programs must request the same scope everywhere.
    ScopeMismatch {
        step: usize,
        a: SyncScope,
        b: SyncScope,
    },
    /// Some processors returned `Done` while others continued — SPMD
    /// programs must terminate together.
    TerminationMismatch { step: usize },
    /// A message crossed a cluster boundary in a superstep that ends
    /// with a cluster-local barrier; its delivery time would be
    /// undefined. Use a higher-level sync for cross-cluster traffic.
    CrossClusterSend {
        step: usize,
        src: ProcId,
        dst: ProcId,
        scope: SyncScope,
    },
    /// A destination rank outside `0..nprocs`.
    NoSuchProc { step: usize, dst: ProcId },
    /// The program exceeded the engine's superstep budget (runaway
    /// loop guard).
    StepLimit { limit: usize },
    /// A processor's superstep body panicked (threaded runtime only —
    /// the simulator lets panics propagate to the caller directly).
    ProgramPanicked { pid: ProcId, step: usize },
    /// One or more processors never arrived at superstep `step`'s
    /// barrier before the watchdog deadline (a scripted stall, a hung
    /// body, or a `step_deadline` overrun). `missing` names the
    /// absent pids, sorted by rank.
    BarrierTimeout { missing: Vec<ProcId>, step: usize },
    /// One or more processors died at the start of superstep `step`
    /// (scripted via [`crate::FaultPlan`]): their bodies never ran and
    /// they will never contribute again. `pids` is sorted by rank.
    /// Recoverable by degrading the machine to the survivors.
    ProcCrashed { pids: Vec<ProcId>, step: usize },
    /// The leader section itself panicked while closing superstep
    /// `step` (threaded runtime only). The step is aborted and drained
    /// rather than wedging peers at the barrier.
    LeaderPanicked { step: usize },
    /// Graceful degradation was requested but the surviving machine is
    /// not a valid HBSP^k tree (e.g. a cluster lost all of its leaves).
    DegradeFailed { message: String },
    /// Microcost configuration failed validation.
    InvalidConfig,
    /// The program's static pre-flight check rejected it before any
    /// superstep ran (see `SpmdProgram::preflight`; toggled with the
    /// engines' `.check(bool)` builders).
    Preflight { message: String },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::ScopeMismatch { step, a, b } => {
                write!(
                    f,
                    "superstep {step}: processors disagree on sync scope ({a:?} vs {b:?})"
                )
            }
            SimError::TerminationMismatch { step } => {
                write!(
                    f,
                    "superstep {step}: some processors finished while others continued"
                )
            }
            SimError::CrossClusterSend {
                step,
                src,
                dst,
                scope,
            } => write!(
                f,
                "superstep {step}: {src} -> {dst} crosses a cluster boundary under {scope:?}"
            ),
            SimError::NoSuchProc { step, dst } => {
                write!(f, "superstep {step}: no such processor {dst}")
            }
            SimError::StepLimit { limit } => {
                write!(f, "program exceeded the {limit}-superstep budget")
            }
            SimError::ProgramPanicked { pid, step } => {
                write!(f, "processor {pid} panicked during superstep {step}")
            }
            SimError::BarrierTimeout { missing, step } => {
                write!(f, "superstep {step}: barrier timed out waiting for ")?;
                fmt_pids(f, missing)
            }
            SimError::ProcCrashed { pids, step } => {
                write!(f, "superstep {step}: ")?;
                fmt_pids(f, pids)?;
                write!(f, " crashed")
            }
            SimError::LeaderPanicked { step } => {
                write!(f, "leader section panicked while closing superstep {step}")
            }
            SimError::DegradeFailed { message } => {
                write!(f, "cannot degrade machine: {message}")
            }
            SimError::InvalidConfig => write!(f, "invalid network configuration"),
            SimError::Preflight { message } => {
                write!(f, "program rejected before execution: {message}")
            }
        }
    }
}

impl std::error::Error for SimError {}

fn fmt_pids(f: &mut fmt::Formatter<'_>, pids: &[ProcId]) -> fmt::Result {
    for (i, pid) in pids.iter().enumerate() {
        if i > 0 {
            write!(f, ", ")?;
        }
        write!(f, "{pid}")?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_the_step() {
        let e = SimError::CrossClusterSend {
            step: 3,
            src: ProcId(1),
            dst: ProcId(5),
            scope: SyncScope::Level(1),
        };
        let s = e.to_string();
        assert!(
            s.contains("superstep 3") && s.contains("P1") && s.contains("P5"),
            "{s}"
        );
    }

    #[test]
    fn fault_errors_name_every_absent_pid() {
        let e = SimError::BarrierTimeout {
            missing: vec![ProcId(2), ProcId(5)],
            step: 4,
        };
        let s = e.to_string();
        assert!(s.contains("superstep 4") && s.contains("P2, P5"), "{s}");

        let e = SimError::ProcCrashed {
            pids: vec![ProcId(1)],
            step: 0,
        };
        assert!(e.to_string().contains("P1 crashed"), "{e}");

        let e = SimError::DegradeFailed {
            message: "cluster `lan0` lost all of its processors".into(),
        };
        assert!(e.to_string().contains("lan0"), "{e}");
    }
}
