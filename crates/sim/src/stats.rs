//! Per-superstep and per-level statistics collected during simulation.

use hbsp_core::{Level, SyncScope};

/// Words and messages that crossed links at one level of the hierarchy
/// (level = LCA level of sender and receiver).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LevelTraffic {
    /// Total payload words.
    pub words: u64,
    /// Message count.
    pub messages: u64,
}

/// Everything measured about one executed superstep.
#[derive(Debug, Clone)]
pub struct StepStats {
    /// Superstep index.
    pub step: usize,
    /// The closing barrier scope.
    pub scope: SyncScope,
    /// Earliest processor start.
    pub start_min: f64,
    /// Latest processor finish (before the barrier overhead).
    pub finish_max: f64,
    /// Latest barrier release (start of the next superstep).
    pub release_max: f64,
    /// Traffic by LCA level (`traffic[l]` = words/messages whose
    /// endpoints meet at level `l`). Index 0 counts self-sends.
    pub traffic: Vec<LevelTraffic>,
    /// The heterogeneous h-relation the step actually performed —
    /// comparable against the cost model's prediction.
    pub hrelation: f64,
    /// Total charged computation (work units, fastest-machine scale).
    pub work_units: f64,
}

impl StepStats {
    /// Observed wall duration of the superstep (release − start).
    pub fn duration(&self) -> f64 {
        self.release_max - self.start_min
    }

    /// Total words over all levels.
    pub fn total_words(&self) -> u64 {
        self.traffic.iter().map(|t| t.words).sum()
    }

    /// Words that crossed level `l` links.
    pub fn words_at(&self, level: Level) -> u64 {
        self.traffic
            .get(level as usize)
            .map(|t| t.words)
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn duration_and_totals() {
        let s = StepStats {
            step: 0,
            scope: SyncScope::Level(1),
            start_min: 10.0,
            finish_max: 90.0,
            release_max: 100.0,
            traffic: vec![
                LevelTraffic {
                    words: 5,
                    messages: 1,
                },
                LevelTraffic {
                    words: 20,
                    messages: 2,
                },
            ],
            hrelation: 20.0,
            work_units: 0.0,
        };
        assert_eq!(s.duration(), 90.0);
        assert_eq!(s.total_words(), 25);
        assert_eq!(s.words_at(1), 20);
        assert_eq!(s.words_at(9), 0);
    }
}
