//! A deterministic time-ordered event queue.
//!
//! The discrete-event core: events pop in non-decreasing time order,
//! with insertion order breaking ties so simulation is reproducible even
//! when many events share a timestamp (common with symmetric machines).

use std::cmp::Ordering;
use std::collections::BinaryHeap;

struct Entry<T> {
    time: f64,
    seq: u64,
    item: T,
}

impl<T> PartialEq for Entry<T> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<T> Eq for Entry<T> {}

impl<T> PartialOrd for Entry<T> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<T> Ord for Entry<T> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert for earliest-first. NaN times
        // are rejected at push, so partial_cmp is total here.
        other
            .time
            .partial_cmp(&self.time)
            .expect("event times are never NaN")
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// Min-heap of `(time, item)` with FIFO tie-breaking.
pub struct TimeQueue<T> {
    heap: BinaryHeap<Entry<T>>,
    seq: u64,
}

impl<T> TimeQueue<T> {
    /// Empty queue.
    pub fn new() -> Self {
        TimeQueue {
            heap: BinaryHeap::new(),
            seq: 0,
        }
    }

    /// Schedule `item` at `time`.
    ///
    /// # Panics
    /// Panics on NaN time — a NaN timestamp is always an upstream bug.
    pub fn push(&mut self, time: f64, item: T) {
        assert!(!time.is_nan(), "event time must not be NaN");
        self.heap.push(Entry {
            time,
            seq: self.seq,
            item,
        });
        self.seq += 1;
    }

    /// Pop the earliest event, FIFO among ties.
    pub fn pop(&mut self) -> Option<(f64, T)> {
        self.heap.pop().map(|e| (e.time, e.item))
    }

    /// Time of the next event without removing it.
    pub fn peek_time(&self) -> Option<f64> {
        self.heap.peek().map(|e| e.time)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Drain every event in time order.
    pub fn drain_ordered(&mut self) -> Vec<(f64, T)> {
        let mut out = Vec::with_capacity(self.heap.len());
        while let Some(e) = self.pop() {
            out.push(e);
        }
        out
    }
}

impl<T> Default for TimeQueue<T> {
    fn default() -> Self {
        TimeQueue::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = TimeQueue::new();
        q.push(3.0, "c");
        q.push(1.0, "a");
        q.push(2.0, "b");
        assert_eq!(q.pop(), Some((1.0, "a")));
        assert_eq!(q.pop(), Some((2.0, "b")));
        assert_eq!(q.pop(), Some((3.0, "c")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn ties_are_fifo() {
        let mut q = TimeQueue::new();
        for i in 0..10 {
            q.push(5.0, i);
        }
        let order: Vec<i32> = q.drain_ordered().into_iter().map(|(_, i)| i).collect();
        assert_eq!(order, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn interleaved_push_pop() {
        let mut q = TimeQueue::new();
        q.push(10.0, 'x');
        assert_eq!(q.peek_time(), Some(10.0));
        q.push(5.0, 'y');
        assert_eq!(q.pop(), Some((5.0, 'y')));
        q.push(1.0, 'z');
        assert_eq!(q.pop(), Some((1.0, 'z')));
        assert_eq!(q.pop(), Some((10.0, 'x')));
        assert!(q.is_empty());
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn nan_time_rejected() {
        TimeQueue::new().push(f64::NAN, ());
    }

    #[test]
    fn len_tracks_contents() {
        let mut q = TimeQueue::new();
        assert_eq!(q.len(), 0);
        q.push(1.0, ());
        q.push(2.0, ());
        assert_eq!(q.len(), 2);
        q.pop();
        assert_eq!(q.len(), 1);
    }
}
