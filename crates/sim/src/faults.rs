//! Deterministic fault injection: seeded scripts of crashes,
//! stragglers, message corruption, and barrier stalls.
//!
//! A [`FaultPlan`] is a *script*, not a random process: every fault
//! names the processor it hits and the superstep at which it fires.
//! Both engines consult the same plan at the same points of the
//! superstep protocol, in the same fixed order (stall → crash → run
//! bodies → drop/truncate sends → straggle timing → deadline), so a
//! fault run produces bit-identical outcomes on the virtual-time
//! [`crate::Simulator`] and the threaded runtime.
//!
//! Randomized plans ([`FaultPlan::random`]) derive everything from a
//! `u64` seed through an in-crate SplitMix64 generator — no external
//! RNG dependency, and the same seed always yields the same plan.

use hbsp_core::{MachineTree, MsgBatch, ProcId};

/// One scripted fault event.
#[derive(Debug, Clone, PartialEq)]
pub enum Fault {
    /// `pid` dies at the start of superstep `step`: its body never
    /// runs and it never arrives at the closing barrier. Detected as
    /// [`crate::SimError::ProcCrashed`].
    Crash { pid: ProcId, step: usize },
    /// `pid` stalls indefinitely at superstep `step`'s barrier without
    /// dying. Detected by the watchdog as
    /// [`crate::SimError::BarrierTimeout`].
    Stall { pid: ProcId, step: usize },
    /// `pid`'s communication slows down transiently: its `r` is
    /// multiplied by `factor` (≥ 1) for superstep `step` only.
    Straggle {
        pid: ProcId,
        step: usize,
        factor: f64,
    },
    /// Every message `pid` posts during superstep `step` is silently
    /// dropped by the network.
    DropMsgs { pid: ProcId, step: usize },
    /// Every message `pid` posts during superstep `step` is truncated
    /// to at most `max_words` words (4 bytes each).
    Truncate {
        pid: ProcId,
        step: usize,
        max_words: usize,
    },
}

impl Fault {
    /// The processor this fault targets.
    pub fn pid(&self) -> ProcId {
        match *self {
            Fault::Crash { pid, .. }
            | Fault::Stall { pid, .. }
            | Fault::Straggle { pid, .. }
            | Fault::DropMsgs { pid, .. }
            | Fault::Truncate { pid, .. } => pid,
        }
    }

    /// The superstep at which this fault fires.
    pub fn step(&self) -> usize {
        match *self {
            Fault::Crash { step, .. }
            | Fault::Stall { step, .. }
            | Fault::Straggle { step, .. }
            | Fault::DropMsgs { step, .. }
            | Fault::Truncate { step, .. } => step,
        }
    }
}

/// A deterministic script of faults, consulted by both engines.
///
/// ```
/// use hbsp_sim::{Fault, FaultPlan};
/// use hbsp_core::ProcId;
///
/// let plan = FaultPlan::new()
///     .crash(ProcId(2), 3)
///     .straggle(ProcId(1), 0, 4.0);
/// assert_eq!(plan.crashed_at(3), vec![ProcId(2)]);
/// assert_eq!(plan.r_multipliers(0, 4), vec![1.0, 4.0, 1.0, 1.0]);
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultPlan {
    faults: Vec<Fault>,
}

impl FaultPlan {
    /// An empty plan (injects nothing).
    pub fn new() -> Self {
        FaultPlan::default()
    }

    /// True when the plan scripts no faults at all.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    /// The scripted faults, in insertion order.
    pub fn faults(&self) -> &[Fault] {
        &self.faults
    }

    /// Add an arbitrary fault event.
    pub fn with(mut self, fault: Fault) -> Self {
        self.faults.push(fault);
        self
    }

    /// Script a crash: `pid` dies at the start of superstep `step`.
    pub fn crash(self, pid: ProcId, step: usize) -> Self {
        self.with(Fault::Crash { pid, step })
    }

    /// Script a barrier stall: `pid` never arrives at superstep
    /// `step`'s barrier (until the watchdog aborts the run).
    pub fn stall(self, pid: ProcId, step: usize) -> Self {
        self.with(Fault::Stall { pid, step })
    }

    /// Script a transient slowdown: `pid`'s `r` is scaled by `factor`
    /// (clamped to ≥ 1) during superstep `step`.
    pub fn straggle(self, pid: ProcId, step: usize, factor: f64) -> Self {
        let factor = if factor.is_finite() {
            factor.max(1.0)
        } else {
            1.0
        };
        self.with(Fault::Straggle { pid, step, factor })
    }

    /// Script message loss: everything `pid` sends at `step` vanishes.
    pub fn drop_msgs(self, pid: ProcId, step: usize) -> Self {
        self.with(Fault::DropMsgs { pid, step })
    }

    /// Script message truncation: everything `pid` sends at `step` is
    /// cut to `max_words` words.
    pub fn truncate(self, pid: ProcId, step: usize, max_words: usize) -> Self {
        self.with(Fault::Truncate {
            pid,
            step,
            max_words,
        })
    }

    /// Script a straggler whose slowdown *ramps*: starting at
    /// `start_step`, `pid`'s `r` is scaled by `factor` for `steps`
    /// consecutive supersteps, with the factor growing by `factor_step`
    /// each superstep. This is the canonical drift workload for the
    /// adaptive executor: a machine that keeps getting slower until a
    /// re-plan routes traffic around it.
    pub fn straggle_ramp(
        mut self,
        pid: ProcId,
        start_step: usize,
        steps: usize,
        factor: f64,
        factor_step: f64,
    ) -> Self {
        let mut f = factor;
        for i in 0..steps {
            self = self.straggle(pid, start_step + i, f);
            f += factor_step;
        }
        self
    }

    /// The plan re-based onto a later window: faults scheduled before
    /// superstep `offset` are dropped (they already fired — or never
    /// will), the rest have `offset` subtracted from their step. Used
    /// by segmented execution, where each segment restarts the engine's
    /// step counter at zero.
    pub fn shifted(&self, offset: usize) -> FaultPlan {
        let faults = self
            .faults
            .iter()
            .filter(|f| f.step() >= offset)
            .map(|f| {
                let mut f = f.clone();
                match &mut f {
                    Fault::Crash { step, .. }
                    | Fault::Stall { step, .. }
                    | Fault::Straggle { step, .. }
                    | Fault::DropMsgs { step, .. }
                    | Fault::Truncate { step, .. } => *step -= offset,
                }
                f
            })
            .collect();
        FaultPlan { faults }
    }

    /// The highest step any fault fires at, if the plan is non-empty.
    pub fn last_step(&self) -> Option<usize> {
        self.faults.iter().map(Fault::step).max()
    }

    /// The plan minus the stall faults that target one of `missing` at
    /// `step` — the faults a retrying executor treats as *transient*:
    /// having just watched them fire as a `BarrierTimeout`, it clears
    /// them from the script before replaying.
    pub fn without_stalls_at(&self, missing: &[ProcId], step: usize) -> FaultPlan {
        let faults = self
            .faults
            .iter()
            .filter(|f| {
                !(matches!(f, Fault::Stall { .. })
                    && f.step() == step
                    && missing.contains(&f.pid()))
            })
            .cloned()
            .collect();
        FaultPlan { faults }
    }

    /// Render the plan in the committed-fixture text format: one fault
    /// per line, `kind P<pid> @<step> [arg]`. [`FaultPlan::parse`]
    /// round-trips this exactly.
    pub fn render(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        for f in &self.faults {
            match *f {
                Fault::Crash { pid, step } => writeln!(out, "crash P{} @{step}", pid.0),
                Fault::Stall { pid, step } => writeln!(out, "stall P{} @{step}", pid.0),
                Fault::Straggle { pid, step, factor } => {
                    writeln!(out, "straggle P{} @{step} x{factor}", pid.0)
                }
                Fault::DropMsgs { pid, step } => writeln!(out, "drop P{} @{step}", pid.0),
                Fault::Truncate {
                    pid,
                    step,
                    max_words,
                } => writeln!(out, "truncate P{} @{step} w{max_words}", pid.0),
            }
            .expect("write to String cannot fail");
        }
        out
    }

    /// Parse the text format produced by [`FaultPlan::render`]. Blank
    /// lines and `#` comments are ignored. Factors print with Rust's
    /// shortest-roundtrip `f64` formatting, so parse∘render is the
    /// identity on any plan.
    pub fn parse(text: &str) -> Result<FaultPlan, String> {
        let mut plan = FaultPlan::new();
        for (lineno, raw) in text.lines().enumerate() {
            let line = raw.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            let err = |msg: &str| format!("line {}: {msg}: {raw:?}", lineno + 1);
            let mut tok = line.split_whitespace();
            let kind = tok.next().unwrap_or("");
            let pid = tok
                .next()
                .and_then(|t| t.strip_prefix('P'))
                .and_then(|t| t.parse::<u32>().ok())
                .map(ProcId)
                .ok_or_else(|| err("expected P<pid>"))?;
            let step = tok
                .next()
                .and_then(|t| t.strip_prefix('@'))
                .and_then(|t| t.parse::<usize>().ok())
                .ok_or_else(|| err("expected @<step>"))?;
            let arg = tok.next();
            if tok.next().is_some() {
                return Err(err("trailing tokens"));
            }
            plan = match (kind, arg) {
                ("crash", None) => plan.crash(pid, step),
                ("stall", None) => plan.stall(pid, step),
                ("drop", None) => plan.drop_msgs(pid, step),
                ("straggle", Some(a)) => {
                    let factor = a
                        .strip_prefix('x')
                        .and_then(|t| t.parse::<f64>().ok())
                        .ok_or_else(|| err("expected x<factor>"))?;
                    plan.straggle(pid, step, factor)
                }
                ("truncate", Some(a)) => {
                    let words = a
                        .strip_prefix('w')
                        .and_then(|t| t.parse::<usize>().ok())
                        .ok_or_else(|| err("expected w<max_words>"))?;
                    plan.truncate(pid, step, words)
                }
                _ => return Err(err("unknown fault line")),
            };
        }
        Ok(plan)
    }

    /// A randomized plan derived deterministically from `seed` for the
    /// given machine: 1–3 faults over the first few supersteps, with
    /// every fault kind reachable. The same `(seed, machine shape)`
    /// always produces the same plan.
    pub fn random(seed: u64, tree: &MachineTree) -> Self {
        let mut rng = SplitMix64::new(seed);
        let p = tree.num_procs() as u64;
        let n_faults = 1 + rng.below(3); // 1..=3
        let mut plan = FaultPlan::new();
        for _ in 0..n_faults {
            let pid = ProcId(rng.below(p) as u32);
            let step = rng.below(4) as usize;
            plan = match rng.below(5) {
                0 => plan.crash(pid, step),
                1 => plan.stall(pid, step),
                2 => {
                    // factor in [1.5, 9.5), quantized to halves so the
                    // plan prints cleanly.
                    let factor = 1.5 + 0.5 * rng.below(16) as f64;
                    plan.straggle(pid, step, factor)
                }
                3 => plan.drop_msgs(pid, step),
                _ => plan.truncate(pid, step, rng.below(3) as usize),
            };
        }
        plan
    }

    /// Pids scripted to crash at `step` (sorted, deduplicated).
    pub fn crashed_at(&self, step: usize) -> Vec<ProcId> {
        self.pids_matching(step, |f| matches!(f, Fault::Crash { .. }))
    }

    /// Pids scripted to stall at `step`'s barrier (sorted, dedup'd).
    pub fn stalled_at(&self, step: usize) -> Vec<ProcId> {
        self.pids_matching(step, |f| matches!(f, Fault::Stall { .. }))
    }

    /// True when any step scripts a barrier stall (the engines arm
    /// their watchdog only when this holds or a deadline is set).
    pub fn has_stalls(&self) -> bool {
        self.faults.iter().any(|f| matches!(f, Fault::Stall { .. }))
    }

    /// True when `pid` is scripted to crash at `step`.
    pub fn crashes(&self, pid: ProcId, step: usize) -> bool {
        self.faults
            .iter()
            .any(|f| matches!(f, Fault::Crash { pid: p, step: s } if *p == pid && *s == step))
    }

    /// True when `pid` is scripted to stall at `step`'s barrier.
    pub fn stalls(&self, pid: ProcId, step: usize) -> bool {
        self.faults
            .iter()
            .any(|f| matches!(f, Fault::Stall { pid: p, step: s } if *p == pid && *s == step))
    }

    /// Per-processor `r` multipliers in effect during `step` (1.0 =
    /// unaffected). Multiple straggles on one pid compound.
    pub fn r_multipliers(&self, step: usize, nprocs: usize) -> Vec<f64> {
        let mut scale = vec![1.0f64; nprocs];
        for f in &self.faults {
            if let Fault::Straggle {
                pid,
                step: s,
                factor,
            } = *f
            {
                if s == step && pid.rank() < nprocs {
                    scale[pid.rank()] *= factor;
                }
            }
        }
        scale
    }

    /// True when `step` scripts any straggler.
    pub fn straggles_at(&self, step: usize) -> bool {
        self.faults
            .iter()
            .any(|f| matches!(f, Fault::Straggle { step: s, .. } if *s == step))
    }

    /// Apply this step's drop/truncate faults, in place, to a batch of
    /// posted messages (keyed by each message's `src`). Survivors keep
    /// their original relative order; on the fault-free hot path (no
    /// drop/truncate scripted at `step`) this touches nothing and
    /// allocates nothing.
    pub fn corrupt_batch(&self, step: usize, sends: &mut MsgBatch) {
        if !self.faults.iter().any(|f| {
            f.step() == step && matches!(f, Fault::DropMsgs { .. } | Fault::Truncate { .. })
        }) {
            return;
        }
        sends.retain(|m| {
            !self.faults.iter().any(|f| {
                f.step() == step && f.pid() == m.src && matches!(f, Fault::DropMsgs { .. })
            })
        });
        for i in 0..sends.len() {
            let src = sends.get(i).src;
            for f in &self.faults {
                if f.step() != step || f.pid() != src {
                    continue;
                }
                if let Fault::Truncate { max_words, .. } = *f {
                    sends.truncate_payload(i, max_words * 4);
                }
            }
        }
    }

    /// Rewrite the plan for a degraded machine: `rank_map[old]` gives
    /// each old rank's new [`ProcId`] (or `None` when that leaf was
    /// dropped). Faults aimed at dead processors are discarded —
    /// they already fired.
    pub fn remap(&self, rank_map: &[Option<ProcId>]) -> FaultPlan {
        let faults = self
            .faults
            .iter()
            .filter_map(|f| {
                let new_pid = *rank_map.get(f.pid().rank())?;
                new_pid.map(|pid| {
                    let mut f = f.clone();
                    match &mut f {
                        Fault::Crash { pid: p, .. }
                        | Fault::Stall { pid: p, .. }
                        | Fault::Straggle { pid: p, .. }
                        | Fault::DropMsgs { pid: p, .. }
                        | Fault::Truncate { pid: p, .. } => *p = pid,
                    }
                    f
                })
            })
            .collect();
        FaultPlan { faults }
    }

    fn pids_matching(&self, step: usize, kind: impl Fn(&Fault) -> bool) -> Vec<ProcId> {
        let mut pids: Vec<ProcId> = self
            .faults
            .iter()
            .filter(|f| f.step() == step && kind(f))
            .map(Fault::pid)
            .collect();
        pids.sort_unstable_by_key(|p| p.0);
        pids.dedup();
        pids
    }
}

/// SplitMix64: tiny, high-quality, dependency-free PRNG. Used to
/// expand chaos seeds into fault plans and to derive deterministic
/// retry-backoff jitter — never for anything cryptographic.
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// A generator starting from `seed`.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// The next 64-bit output. Not an `Iterator`: the stream is
    /// infinite and `below` is the intended surface.
    #[allow(clippy::should_implement_trait)]
    pub fn next(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `0..bound` (bound > 0).
    pub fn below(&mut self, bound: u64) -> u64 {
        self.next() % bound
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hbsp_core::TreeBuilder;

    #[test]
    fn queries_filter_by_step_and_kind() {
        let plan = FaultPlan::new()
            .crash(ProcId(3), 1)
            .crash(ProcId(1), 1)
            .crash(ProcId(1), 1) // duplicate
            .stall(ProcId(2), 1)
            .crash(ProcId(0), 2);
        assert_eq!(plan.crashed_at(1), vec![ProcId(1), ProcId(3)]);
        assert_eq!(plan.crashed_at(2), vec![ProcId(0)]);
        assert_eq!(plan.stalled_at(1), vec![ProcId(2)]);
        assert!(plan.crashed_at(0).is_empty());
        assert!(plan.has_stalls());
        assert!(!plan.is_empty());
    }

    #[test]
    fn straggle_multipliers_compound_and_clamp() {
        let plan = FaultPlan::new()
            .straggle(ProcId(1), 0, 2.0)
            .straggle(ProcId(1), 0, 3.0)
            .straggle(ProcId(2), 1, 0.1); // clamped up to 1.0
        assert_eq!(plan.r_multipliers(0, 3), vec![1.0, 6.0, 1.0]);
        assert_eq!(plan.r_multipliers(1, 3), vec![1.0, 1.0, 1.0]);
        assert!(plan.straggles_at(0));
        assert!(!plan.straggles_at(2));
    }

    #[test]
    fn corrupt_batch_drops_and_truncates_by_source() {
        let plan = FaultPlan::new()
            .drop_msgs(ProcId(0), 2)
            .truncate(ProcId(1), 2, 1);
        let mut sends = MsgBatch::new();
        sends.push(ProcId(0), ProcId(2), 0, &[9; 8]);
        sends.push(ProcId(1), ProcId(2), 0, &[7; 12]);
        sends.push(ProcId(2), ProcId(0), 0, &[5; 8]);
        let pristine = sends.clone();
        let mut out = sends.clone();
        plan.corrupt_batch(2, &mut out);
        assert_eq!(out.len(), 2, "P0's message dropped");
        assert_eq!(out.get(0).src, ProcId(1));
        assert_eq!(out.get(0).payload.len(), 4, "truncated to one word");
        assert_eq!(out.get(1).payload.len(), 8, "P2 untouched");
        // Wrong step: everything passes through unchanged.
        plan.corrupt_batch(0, &mut sends);
        assert_eq!(sends, pristine);
    }

    #[test]
    fn random_plans_are_seed_deterministic() {
        let tree = TreeBuilder::homogeneous(1.0, 100.0, 6).unwrap();
        for seed in 0..64 {
            let a = FaultPlan::random(seed, &tree);
            let b = FaultPlan::random(seed, &tree);
            assert_eq!(a, b, "seed {seed}");
            assert!(!a.is_empty());
            assert!(a.faults().len() <= 3);
            for f in a.faults() {
                assert!(f.pid().rank() < 6);
                assert!(f.step() < 4);
            }
        }
        assert_ne!(
            FaultPlan::random(0, &tree),
            FaultPlan::random(1, &tree),
            "different seeds diverge"
        );
    }

    #[test]
    fn shifted_drops_fired_faults_and_rebases_the_rest() {
        let plan = FaultPlan::new()
            .crash(ProcId(0), 1)
            .straggle(ProcId(1), 4, 2.0)
            .stall(ProcId(2), 6);
        let shifted = plan.shifted(4);
        assert_eq!(
            shifted.faults(),
            &[
                Fault::Straggle {
                    pid: ProcId(1),
                    step: 0,
                    factor: 2.0
                },
                Fault::Stall {
                    pid: ProcId(2),
                    step: 2
                },
            ]
        );
        assert_eq!(plan.shifted(0), plan, "zero offset is the identity");
        assert!(plan.shifted(100).is_empty());
        assert_eq!(plan.last_step(), Some(6));
        assert_eq!(FaultPlan::new().last_step(), None);
    }

    #[test]
    fn straggle_ramp_expands_to_per_step_straggles() {
        let plan = FaultPlan::new().straggle_ramp(ProcId(1), 2, 3, 2.0, 0.5);
        assert_eq!(plan.r_multipliers(2, 2), vec![1.0, 2.0]);
        assert_eq!(plan.r_multipliers(3, 2), vec![1.0, 2.5]);
        assert_eq!(plan.r_multipliers(4, 2), vec![1.0, 3.0]);
        assert_eq!(plan.r_multipliers(5, 2), vec![1.0, 1.0]);
    }

    #[test]
    fn text_format_round_trips() {
        let plan = FaultPlan::new()
            .crash(ProcId(2), 3)
            .stall(ProcId(1), 0)
            .straggle(ProcId(0), 6, 4.25)
            .drop_msgs(ProcId(3), 2)
            .truncate(ProcId(1), 2, 1)
            .straggle_ramp(ProcId(0), 4, 2, 2.0, 1.0);
        let text = plan.render();
        let parsed = FaultPlan::parse(&text).unwrap();
        assert_eq!(parsed, plan);
        assert_eq!(parsed.render(), text);
    }

    #[test]
    fn parse_accepts_comments_and_rejects_junk() {
        let plan = FaultPlan::parse(
            "# a drifting straggler\n\nstraggle P0 @6 x4 # ramps up\ncrash P2 @3\n",
        )
        .unwrap();
        assert_eq!(plan.faults().len(), 2);
        assert!(
            FaultPlan::parse("straggle P0 @6").is_err(),
            "missing factor"
        );
        assert!(
            FaultPlan::parse("crash P2 @3 x9").is_err(),
            "trailing token"
        );
        assert!(FaultPlan::parse("melt P0 @1").is_err(), "unknown kind");
        assert!(FaultPlan::parse("crash 2 @3").is_err(), "missing P prefix");
    }

    #[test]
    fn without_stalls_at_strips_only_the_named_transients() {
        let plan = FaultPlan::new()
            .stall(ProcId(1), 2)
            .stall(ProcId(2), 2)
            .stall(ProcId(1), 5)
            .straggle(ProcId(1), 2, 3.0);
        let cleared = plan.without_stalls_at(&[ProcId(1)], 2);
        // Only P1's stall at step 2 goes; its later stall, P2's stall,
        // and the straggle all survive.
        assert_eq!(cleared.faults().len(), 3);
        assert!(!cleared.stalls(ProcId(1), 2));
        assert!(cleared.stalls(ProcId(2), 2));
        assert!(cleared.stalls(ProcId(1), 5));
        assert!(cleared.straggles_at(2));
    }

    #[test]
    fn remap_translates_survivors_and_drops_the_dead() {
        let plan = FaultPlan::new()
            .crash(ProcId(1), 0)
            .straggle(ProcId(2), 1, 2.0)
            .stall(ProcId(0), 3);
        // Rank 1 died: survivors 0 and 2 renumber to 0 and 1.
        let map = vec![Some(ProcId(0)), None, Some(ProcId(1))];
        let remapped = plan.remap(&map);
        assert_eq!(
            remapped.faults(),
            &[
                Fault::Straggle {
                    pid: ProcId(1),
                    step: 1,
                    factor: 2.0
                },
                Fault::Stall {
                    pid: ProcId(0),
                    step: 3
                },
            ]
        );
    }
}
