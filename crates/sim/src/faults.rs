//! Deterministic fault injection: seeded scripts of crashes,
//! stragglers, message corruption, and barrier stalls.
//!
//! A [`FaultPlan`] is a *script*, not a random process: every fault
//! names the processor it hits and the superstep at which it fires.
//! Both engines consult the same plan at the same points of the
//! superstep protocol, in the same fixed order (stall → crash → run
//! bodies → drop/truncate sends → straggle timing → deadline), so a
//! fault run produces bit-identical outcomes on the virtual-time
//! [`crate::Simulator`] and the threaded runtime.
//!
//! Randomized plans ([`FaultPlan::random`]) derive everything from a
//! `u64` seed through an in-crate SplitMix64 generator — no external
//! RNG dependency, and the same seed always yields the same plan.

use hbsp_core::{MachineTree, MsgBatch, ProcId};

/// One scripted fault event.
#[derive(Debug, Clone, PartialEq)]
pub enum Fault {
    /// `pid` dies at the start of superstep `step`: its body never
    /// runs and it never arrives at the closing barrier. Detected as
    /// [`crate::SimError::ProcCrashed`].
    Crash { pid: ProcId, step: usize },
    /// `pid` stalls indefinitely at superstep `step`'s barrier without
    /// dying. Detected by the watchdog as
    /// [`crate::SimError::BarrierTimeout`].
    Stall { pid: ProcId, step: usize },
    /// `pid`'s communication slows down transiently: its `r` is
    /// multiplied by `factor` (≥ 1) for superstep `step` only.
    Straggle {
        pid: ProcId,
        step: usize,
        factor: f64,
    },
    /// Every message `pid` posts during superstep `step` is silently
    /// dropped by the network.
    DropMsgs { pid: ProcId, step: usize },
    /// Every message `pid` posts during superstep `step` is truncated
    /// to at most `max_words` words (4 bytes each).
    Truncate {
        pid: ProcId,
        step: usize,
        max_words: usize,
    },
}

impl Fault {
    /// The processor this fault targets.
    pub fn pid(&self) -> ProcId {
        match *self {
            Fault::Crash { pid, .. }
            | Fault::Stall { pid, .. }
            | Fault::Straggle { pid, .. }
            | Fault::DropMsgs { pid, .. }
            | Fault::Truncate { pid, .. } => pid,
        }
    }

    /// The superstep at which this fault fires.
    pub fn step(&self) -> usize {
        match *self {
            Fault::Crash { step, .. }
            | Fault::Stall { step, .. }
            | Fault::Straggle { step, .. }
            | Fault::DropMsgs { step, .. }
            | Fault::Truncate { step, .. } => step,
        }
    }
}

/// A deterministic script of faults, consulted by both engines.
///
/// ```
/// use hbsp_sim::{Fault, FaultPlan};
/// use hbsp_core::ProcId;
///
/// let plan = FaultPlan::new()
///     .crash(ProcId(2), 3)
///     .straggle(ProcId(1), 0, 4.0);
/// assert_eq!(plan.crashed_at(3), vec![ProcId(2)]);
/// assert_eq!(plan.r_multipliers(0, 4), vec![1.0, 4.0, 1.0, 1.0]);
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultPlan {
    faults: Vec<Fault>,
}

impl FaultPlan {
    /// An empty plan (injects nothing).
    pub fn new() -> Self {
        FaultPlan::default()
    }

    /// True when the plan scripts no faults at all.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    /// The scripted faults, in insertion order.
    pub fn faults(&self) -> &[Fault] {
        &self.faults
    }

    /// Add an arbitrary fault event.
    pub fn with(mut self, fault: Fault) -> Self {
        self.faults.push(fault);
        self
    }

    /// Script a crash: `pid` dies at the start of superstep `step`.
    pub fn crash(self, pid: ProcId, step: usize) -> Self {
        self.with(Fault::Crash { pid, step })
    }

    /// Script a barrier stall: `pid` never arrives at superstep
    /// `step`'s barrier (until the watchdog aborts the run).
    pub fn stall(self, pid: ProcId, step: usize) -> Self {
        self.with(Fault::Stall { pid, step })
    }

    /// Script a transient slowdown: `pid`'s `r` is scaled by `factor`
    /// (clamped to ≥ 1) during superstep `step`.
    pub fn straggle(self, pid: ProcId, step: usize, factor: f64) -> Self {
        let factor = if factor.is_finite() {
            factor.max(1.0)
        } else {
            1.0
        };
        self.with(Fault::Straggle { pid, step, factor })
    }

    /// Script message loss: everything `pid` sends at `step` vanishes.
    pub fn drop_msgs(self, pid: ProcId, step: usize) -> Self {
        self.with(Fault::DropMsgs { pid, step })
    }

    /// Script message truncation: everything `pid` sends at `step` is
    /// cut to `max_words` words.
    pub fn truncate(self, pid: ProcId, step: usize, max_words: usize) -> Self {
        self.with(Fault::Truncate {
            pid,
            step,
            max_words,
        })
    }

    /// A randomized plan derived deterministically from `seed` for the
    /// given machine: 1–3 faults over the first few supersteps, with
    /// every fault kind reachable. The same `(seed, machine shape)`
    /// always produces the same plan.
    pub fn random(seed: u64, tree: &MachineTree) -> Self {
        let mut rng = SplitMix64::new(seed);
        let p = tree.num_procs() as u64;
        let n_faults = 1 + rng.below(3); // 1..=3
        let mut plan = FaultPlan::new();
        for _ in 0..n_faults {
            let pid = ProcId(rng.below(p) as u32);
            let step = rng.below(4) as usize;
            plan = match rng.below(5) {
                0 => plan.crash(pid, step),
                1 => plan.stall(pid, step),
                2 => {
                    // factor in [1.5, 9.5), quantized to halves so the
                    // plan prints cleanly.
                    let factor = 1.5 + 0.5 * rng.below(16) as f64;
                    plan.straggle(pid, step, factor)
                }
                3 => plan.drop_msgs(pid, step),
                _ => plan.truncate(pid, step, rng.below(3) as usize),
            };
        }
        plan
    }

    /// Pids scripted to crash at `step` (sorted, deduplicated).
    pub fn crashed_at(&self, step: usize) -> Vec<ProcId> {
        self.pids_matching(step, |f| matches!(f, Fault::Crash { .. }))
    }

    /// Pids scripted to stall at `step`'s barrier (sorted, dedup'd).
    pub fn stalled_at(&self, step: usize) -> Vec<ProcId> {
        self.pids_matching(step, |f| matches!(f, Fault::Stall { .. }))
    }

    /// True when any step scripts a barrier stall (the engines arm
    /// their watchdog only when this holds or a deadline is set).
    pub fn has_stalls(&self) -> bool {
        self.faults.iter().any(|f| matches!(f, Fault::Stall { .. }))
    }

    /// True when `pid` is scripted to crash at `step`.
    pub fn crashes(&self, pid: ProcId, step: usize) -> bool {
        self.faults
            .iter()
            .any(|f| matches!(f, Fault::Crash { pid: p, step: s } if *p == pid && *s == step))
    }

    /// True when `pid` is scripted to stall at `step`'s barrier.
    pub fn stalls(&self, pid: ProcId, step: usize) -> bool {
        self.faults
            .iter()
            .any(|f| matches!(f, Fault::Stall { pid: p, step: s } if *p == pid && *s == step))
    }

    /// Per-processor `r` multipliers in effect during `step` (1.0 =
    /// unaffected). Multiple straggles on one pid compound.
    pub fn r_multipliers(&self, step: usize, nprocs: usize) -> Vec<f64> {
        let mut scale = vec![1.0f64; nprocs];
        for f in &self.faults {
            if let Fault::Straggle {
                pid,
                step: s,
                factor,
            } = *f
            {
                if s == step && pid.rank() < nprocs {
                    scale[pid.rank()] *= factor;
                }
            }
        }
        scale
    }

    /// True when `step` scripts any straggler.
    pub fn straggles_at(&self, step: usize) -> bool {
        self.faults
            .iter()
            .any(|f| matches!(f, Fault::Straggle { step: s, .. } if *s == step))
    }

    /// Apply this step's drop/truncate faults, in place, to a batch of
    /// posted messages (keyed by each message's `src`). Survivors keep
    /// their original relative order; on the fault-free hot path (no
    /// drop/truncate scripted at `step`) this touches nothing and
    /// allocates nothing.
    pub fn corrupt_batch(&self, step: usize, sends: &mut MsgBatch) {
        if !self.faults.iter().any(|f| {
            f.step() == step && matches!(f, Fault::DropMsgs { .. } | Fault::Truncate { .. })
        }) {
            return;
        }
        sends.retain(|m| {
            !self.faults.iter().any(|f| {
                f.step() == step && f.pid() == m.src && matches!(f, Fault::DropMsgs { .. })
            })
        });
        for i in 0..sends.len() {
            let src = sends.get(i).src;
            for f in &self.faults {
                if f.step() != step || f.pid() != src {
                    continue;
                }
                if let Fault::Truncate { max_words, .. } = *f {
                    sends.truncate_payload(i, max_words * 4);
                }
            }
        }
    }

    /// Rewrite the plan for a degraded machine: `rank_map[old]` gives
    /// each old rank's new [`ProcId`] (or `None` when that leaf was
    /// dropped). Faults aimed at dead processors are discarded —
    /// they already fired.
    pub fn remap(&self, rank_map: &[Option<ProcId>]) -> FaultPlan {
        let faults = self
            .faults
            .iter()
            .filter_map(|f| {
                let new_pid = *rank_map.get(f.pid().rank())?;
                new_pid.map(|pid| {
                    let mut f = f.clone();
                    match &mut f {
                        Fault::Crash { pid: p, .. }
                        | Fault::Stall { pid: p, .. }
                        | Fault::Straggle { pid: p, .. }
                        | Fault::DropMsgs { pid: p, .. }
                        | Fault::Truncate { pid: p, .. } => *p = pid,
                    }
                    f
                })
            })
            .collect();
        FaultPlan { faults }
    }

    fn pids_matching(&self, step: usize, kind: impl Fn(&Fault) -> bool) -> Vec<ProcId> {
        let mut pids: Vec<ProcId> = self
            .faults
            .iter()
            .filter(|f| f.step() == step && kind(f))
            .map(Fault::pid)
            .collect();
        pids.sort_unstable_by_key(|p| p.0);
        pids.dedup();
        pids
    }
}

/// SplitMix64: tiny, high-quality, dependency-free PRNG. Used only to
/// expand chaos seeds into fault plans — never for anything
/// cryptographic.
struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    fn next(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `0..bound` (bound > 0).
    fn below(&mut self, bound: u64) -> u64 {
        self.next() % bound
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hbsp_core::TreeBuilder;

    #[test]
    fn queries_filter_by_step_and_kind() {
        let plan = FaultPlan::new()
            .crash(ProcId(3), 1)
            .crash(ProcId(1), 1)
            .crash(ProcId(1), 1) // duplicate
            .stall(ProcId(2), 1)
            .crash(ProcId(0), 2);
        assert_eq!(plan.crashed_at(1), vec![ProcId(1), ProcId(3)]);
        assert_eq!(plan.crashed_at(2), vec![ProcId(0)]);
        assert_eq!(plan.stalled_at(1), vec![ProcId(2)]);
        assert!(plan.crashed_at(0).is_empty());
        assert!(plan.has_stalls());
        assert!(!plan.is_empty());
    }

    #[test]
    fn straggle_multipliers_compound_and_clamp() {
        let plan = FaultPlan::new()
            .straggle(ProcId(1), 0, 2.0)
            .straggle(ProcId(1), 0, 3.0)
            .straggle(ProcId(2), 1, 0.1); // clamped up to 1.0
        assert_eq!(plan.r_multipliers(0, 3), vec![1.0, 6.0, 1.0]);
        assert_eq!(plan.r_multipliers(1, 3), vec![1.0, 1.0, 1.0]);
        assert!(plan.straggles_at(0));
        assert!(!plan.straggles_at(2));
    }

    #[test]
    fn corrupt_batch_drops_and_truncates_by_source() {
        let plan = FaultPlan::new()
            .drop_msgs(ProcId(0), 2)
            .truncate(ProcId(1), 2, 1);
        let mut sends = MsgBatch::new();
        sends.push(ProcId(0), ProcId(2), 0, &[9; 8]);
        sends.push(ProcId(1), ProcId(2), 0, &[7; 12]);
        sends.push(ProcId(2), ProcId(0), 0, &[5; 8]);
        let pristine = sends.clone();
        let mut out = sends.clone();
        plan.corrupt_batch(2, &mut out);
        assert_eq!(out.len(), 2, "P0's message dropped");
        assert_eq!(out.get(0).src, ProcId(1));
        assert_eq!(out.get(0).payload.len(), 4, "truncated to one word");
        assert_eq!(out.get(1).payload.len(), 8, "P2 untouched");
        // Wrong step: everything passes through unchanged.
        plan.corrupt_batch(0, &mut sends);
        assert_eq!(sends, pristine);
    }

    #[test]
    fn random_plans_are_seed_deterministic() {
        let tree = TreeBuilder::homogeneous(1.0, 100.0, 6).unwrap();
        for seed in 0..64 {
            let a = FaultPlan::random(seed, &tree);
            let b = FaultPlan::random(seed, &tree);
            assert_eq!(a, b, "seed {seed}");
            assert!(!a.is_empty());
            assert!(a.faults().len() <= 3);
            for f in a.faults() {
                assert!(f.pid().rank() < 6);
                assert!(f.step() < 4);
            }
        }
        assert_ne!(
            FaultPlan::random(0, &tree),
            FaultPlan::random(1, &tree),
            "different seeds diverge"
        );
    }

    #[test]
    fn remap_translates_survivors_and_drops_the_dead() {
        let plan = FaultPlan::new()
            .crash(ProcId(1), 0)
            .straggle(ProcId(2), 1, 2.0)
            .stall(ProcId(0), 3);
        // Rank 1 died: survivors 0 and 2 renumber to 0 and 1.
        let map = vec![Some(ProcId(0)), None, Some(ProcId(1))];
        let remapped = plan.remap(&map);
        assert_eq!(
            remapped.faults(),
            &[
                Fault::Straggle {
                    pid: ProcId(1),
                    step: 1,
                    factor: 2.0
                },
                Fault::Stall {
                    pid: ProcId(0),
                    step: 3
                },
            ]
        );
    }
}
