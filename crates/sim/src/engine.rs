//! The simulation engine: executes an [`SpmdProgram`] superstep by
//! superstep, computing model time with the [`crate::timing`] algebra.

use crate::config::NetConfig;
use crate::error::SimError;
use crate::faults::FaultPlan;
use crate::stats::StepStats;
use crate::step::{analyze_into, delivery_order_into, resolve_outcomes, StepAnalysis};
use crate::timing::{barrier_release, superstep_timing_faulted_into, StepTiming, TimingScratch};
use crate::trace::{step_spans, ProcTimeline};
use hbsp_core::{
    MachineTree, MsgBatch, ProcEnv, ProcId, SpmdContext, SpmdProgram, StepOutcome, SyncScope,
};
use hbsp_obs::{ObsEvent, Probe, StepRecord};
use std::sync::Arc;

/// Result of a simulated program run.
#[derive(Debug, Clone)]
pub struct SimOutcome {
    /// Model time at which the last processor finished (the paper's
    /// execution time `T`).
    pub total_time: f64,
    /// Per-processor finish times.
    pub proc_finish: Vec<f64>,
    /// Per-superstep statistics.
    pub steps: Vec<StepStats>,
    /// Total messages delivered across the run.
    pub messages_delivered: u64,
    /// Per-processor activity timelines, when tracing was enabled.
    pub timelines: Option<Vec<ProcTimeline>>,
}

impl SimOutcome {
    /// Number of supersteps executed.
    pub fn num_steps(&self) -> usize {
        self.steps.len()
    }

    /// Total words that crossed links at `level` over the whole run.
    pub fn words_at_level(&self, level: hbsp_core::Level) -> u64 {
        self.steps.iter().map(|s| s.words_at(level)).sum()
    }
}

/// Deterministic discrete-event simulator for one machine.
///
/// ```
/// use hbsp_core::{ProcEnv, ProcId, SpmdContext, SpmdProgram, StepOutcome, SyncScope, TreeBuilder};
/// use hbsp_sim::Simulator;
/// use std::sync::Arc;
///
/// /// Rank 1 pings rank 0 once.
/// struct Ping;
/// impl SpmdProgram for Ping {
///     type State = usize;
///     fn init(&self, _e: &ProcEnv) -> usize { 0 }
///     fn step(&self, step: usize, env: &ProcEnv, got: &mut usize,
///             ctx: &mut dyn SpmdContext) -> StepOutcome {
///         if step == 0 {
///             if env.pid == ProcId(1) { ctx.send(ProcId(0), 0, &[1, 2, 3, 4]); }
///             StepOutcome::Continue(SyncScope::global(&env.tree))
///         } else {
///             *got = ctx.messages().len();
///             StepOutcome::Done
///         }
///     }
/// }
///
/// let tree = Arc::new(TreeBuilder::flat(1.0, 10.0, &[(1.0, 1.0), (2.0, 0.5)]).unwrap());
/// let (outcome, states) = Simulator::new(tree).run_with_states(&Ping).unwrap();
/// assert_eq!(states, vec![1, 0]);
/// assert!(outcome.total_time > 0.0);
/// ```
pub struct Simulator {
    tree: Arc<MachineTree>,
    cfg: NetConfig,
    step_limit: usize,
    trace: bool,
    check: bool,
    faults: FaultPlan,
    step_deadline: Option<f64>,
    probe: Arc<dyn Probe>,
}

impl Simulator {
    /// Simulator with the PVM-like default microcosts.
    pub fn new(tree: Arc<MachineTree>) -> Self {
        Simulator {
            tree,
            cfg: NetConfig::pvm_like(),
            step_limit: 100_000,
            trace: false,
            check: cfg!(debug_assertions),
            faults: FaultPlan::new(),
            step_deadline: None,
            probe: hbsp_obs::noop(),
        }
    }

    /// Simulator with explicit microcosts.
    pub fn with_config(tree: Arc<MachineTree>, cfg: NetConfig) -> Self {
        Simulator {
            tree,
            cfg,
            step_limit: 100_000,
            trace: false,
            check: cfg!(debug_assertions),
            faults: FaultPlan::new(),
            step_deadline: None,
            probe: hbsp_obs::noop(),
        }
    }

    /// Override the runaway-program guard (default 100 000 supersteps).
    pub fn step_limit(mut self, limit: usize) -> Self {
        self.step_limit = limit;
        self
    }

    /// Record per-processor activity timelines (see [`crate::trace`]).
    pub fn trace(mut self, enable: bool) -> Self {
        self.trace = enable;
        self
    }

    /// Toggle the static pre-flight check (`SpmdProgram::preflight`)
    /// run before the first superstep. On by default in debug builds:
    /// a malformed program fails at submit time with
    /// [`SimError::Preflight`] instead of panicking or hanging a
    /// barrier mid-run.
    pub fn check(mut self, enable: bool) -> Self {
        self.check = enable;
        self
    }

    /// Inject a scripted [`FaultPlan`]. Both engines honor the same
    /// plan at the same protocol points, in the same order (stall →
    /// crash → bodies → message corruption → straggle timing), so
    /// fault runs stay reproducible across engines.
    pub fn faults(mut self, plan: FaultPlan) -> Self {
        self.faults = plan;
        self
    }

    /// Attach a telemetry [`Probe`] (default: the no-op probe). When
    /// the probe reports itself enabled the simulator emits one
    /// [`StepRecord`] per superstep in **virtual time** (the same
    /// schema the threaded runtime fills with wall-clock marks added)
    /// plus [`ObsEvent`]s for watchdog aborts; when disabled nothing
    /// is assembled.
    pub fn probe(mut self, probe: Arc<dyn Probe>) -> Self {
        self.probe = probe;
        self
    }

    /// Virtual-time guard on superstep duration (default: unlimited):
    /// a superstep whose slowest processor finishes more than
    /// `deadline` model-time units after the step's earliest release
    /// aborts with [`SimError::BarrierTimeout`] naming the laggards.
    /// Mirrors the threaded runtime's wall-clock
    /// `ThreadedRuntime::step_deadline`.
    pub fn step_deadline(mut self, deadline: f64) -> Self {
        self.step_deadline = Some(deadline);
        self
    }

    /// The machine being simulated.
    pub fn tree(&self) -> &Arc<MachineTree> {
        &self.tree
    }

    /// The network configuration in effect.
    pub fn config(&self) -> &NetConfig {
        &self.cfg
    }

    /// Execute `prog` to completion and also return each processor's
    /// final state (for result extraction).
    pub fn run_with_states<P: SpmdProgram>(
        &self,
        prog: &P,
    ) -> Result<(SimOutcome, Vec<P::State>), SimError> {
        self.cfg.validate()?;
        if self.check {
            prog.preflight(&self.tree)
                .map_err(|e| SimError::Preflight {
                    message: e.to_string(),
                })?;
        }
        let p = self.tree.num_procs();
        let envs: Vec<ProcEnv> = (0..p)
            .map(|i| ProcEnv {
                pid: ProcId(i as u32),
                nprocs: p,
                tree: Arc::clone(&self.tree),
            })
            .collect();
        let mut states: Vec<P::State> = envs.iter().map(|e| prog.init(e)).collect();
        let mut starts = vec![0.0f64; p];
        // Persistent per-superstep buffers: once warmed to a program's
        // steady-state message volume, the loop below performs no
        // per-message heap allocation (asserted by the repo's
        // counting-allocator test).
        let mut inboxes: Vec<MsgBatch> = (0..p).map(|_| MsgBatch::new()).collect();
        let mut sends = MsgBatch::new();
        let mut work = vec![0.0f64; p];
        let mut outcomes: Vec<StepOutcome> = Vec::with_capacity(p);
        let mut analysis = StepAnalysis {
            intents: Vec::new(),
            traffic: Vec::new(),
            hrelation: 0.0,
        };
        let mut timing = StepTiming {
            compute_done: Vec::new(),
            send_done: Vec::new(),
            finish: Vec::new(),
            messages: Vec::new(),
        };
        let mut timing_scratch = TimingScratch::default();
        let mut emit_scratch = EmitScratch::default();
        let mut order: Vec<usize> = Vec::new();
        let mut steps: Vec<StepStats> = Vec::new();
        let mut delivered = 0u64;
        let mut timelines: Option<Vec<ProcTimeline>> = self.trace.then(|| {
            (0..p)
                .map(|i| ProcTimeline {
                    pid: ProcId(i as u32),
                    spans: Vec::new(),
                })
                .collect()
        });

        for step in 0..self.step_limit {
            // Scripted faults fire in a fixed order shared with the
            // threaded runtime: a stalled peer trips the watchdog
            // before a crash can be diagnosed, and a crash is seen
            // before any body runs.
            let stalled = self.faults.stalled_at(step);
            if !stalled.is_empty() {
                if self.probe.enabled() {
                    self.probe.on_event(&ObsEvent::WatchdogFired {
                        step,
                        missing: &stalled,
                    });
                }
                return Err(SimError::BarrierTimeout {
                    missing: stalled,
                    step,
                });
            }
            let crashed = self.faults.crashed_at(step);
            if !crashed.is_empty() {
                return Err(SimError::ProcCrashed {
                    pids: crashed,
                    step,
                });
            }

            // Run every processor's superstep body. All bodies post
            // into one shared SoA outbox batch; running them in pid
            // order keeps posting order identical to the threaded
            // runtime's pid-ordered gather.
            sends.clear();
            outcomes.clear();
            for i in 0..p {
                let mut ctx = SimCtx {
                    env: &envs[i],
                    inbox: &inboxes[i],
                    outbox: &mut sends,
                    work: 0.0,
                };
                let outcome = prog.step(step, &envs[i], &mut states[i], &mut ctx);
                work[i] = ctx.work;
                outcomes.push(outcome);
            }
            for inbox in &mut inboxes {
                inbox.clear();
            }

            // The network faults hit posted messages before validation
            // and costing, exactly like the runtime's leader section.
            self.faults.corrupt_batch(step, &mut sends);

            // SPMD discipline + message validation (shared with the
            // threaded runtime).
            let scope = resolve_outcomes(step, &outcomes)?;
            analyze_into(&self.tree, step, scope, &sends, &mut analysis)?;

            // Timing, with any scripted stragglers inflating r.
            let r_scale = self
                .faults
                .straggles_at(step)
                .then(|| self.faults.r_multipliers(step, p));
            superstep_timing_faulted_into(
                &self.tree,
                &self.cfg,
                &starts,
                &work,
                &analysis.intents,
                r_scale.as_deref(),
                &mut timing_scratch,
                &mut timing,
            );
            let finish_max = timing
                .finish
                .iter()
                .cloned()
                .fold(f64::NEG_INFINITY, f64::max);
            let start_min = starts.iter().cloned().fold(f64::INFINITY, f64::min);
            let hrelation = analysis.hrelation;

            // Virtual-time mirror of the runtime's wall-clock step
            // deadline: laggards past the budget are "missing".
            if let Some(d) = self.step_deadline {
                let missing: Vec<ProcId> = (0..p)
                    .filter(|&i| timing.finish[i] > start_min + d)
                    .map(|i| ProcId(i as u32))
                    .collect();
                if !missing.is_empty() {
                    if self.probe.enabled() {
                        self.probe.on_event(&ObsEvent::WatchdogFired {
                            step,
                            missing: &missing,
                        });
                    }
                    return Err(SimError::BarrierTimeout { missing, step });
                }
            }

            match scope {
                None => {
                    // Program over. Messages posted in the final step have
                    // no next superstep to land in; count them as traffic
                    // but they are never readable.
                    self.emit_step_record(
                        step,
                        None,
                        &starts,
                        &timing,
                        &timing.finish,
                        &analysis,
                        &work,
                        &mut emit_scratch,
                    );
                    steps.push(StepStats {
                        step,
                        scope: SyncScope::global(&self.tree),
                        start_min,
                        finish_max,
                        release_max: finish_max,
                        traffic: analysis.traffic.clone(),
                        hrelation,
                        work_units: work.iter().sum(),
                    });
                    if let Some(tls) = &mut timelines {
                        step_spans(tls, &starts, &timing, &timing.finish);
                    }
                    return Ok((
                        SimOutcome {
                            total_time: finish_max,
                            proc_finish: std::mem::take(&mut timing.finish),
                            steps,
                            messages_delivered: delivered,
                            timelines,
                        },
                        states,
                    ));
                }
                Some(s) => {
                    let releases = barrier_release(&self.tree, s, &timing.finish);
                    if let Some(tls) = &mut timelines {
                        step_spans(tls, &starts, &timing, &releases);
                    }
                    self.emit_step_record(
                        step,
                        Some(s.level()),
                        &starts,
                        &timing,
                        &releases,
                        &analysis,
                        &work,
                        &mut emit_scratch,
                    );
                    let release_max = releases.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
                    steps.push(StepStats {
                        step,
                        scope: s,
                        start_min,
                        finish_max,
                        release_max,
                        traffic: analysis.traffic.clone(),
                        hrelation,
                        work_units: work.iter().sum(),
                    });
                    // Deliver messages for the next superstep, ordered
                    // by (arrival, posting index) per receiver: one
                    // offset-table-guided bulk copy per message into
                    // the receiver's persistent inbox arena — no
                    // per-message allocation or `Vec` shuffling.
                    delivery_order_into(&timing.messages, &mut order);
                    for &mi in &order {
                        let dst = sends.get(mi).dst;
                        inboxes[dst.rank()].push_from(&sends, mi);
                        delivered += 1;
                    }
                    starts = releases;
                }
            }
        }
        Err(SimError::StepLimit {
            limit: self.step_limit,
        })
    }

    /// Execute `prog` to completion, discarding final states.
    pub fn run<P: SpmdProgram>(&self, prog: &P) -> Result<SimOutcome, SimError> {
        self.run_with_states(prog).map(|(o, _)| o)
    }

    /// Assemble and emit one [`StepRecord`] — only when the probe asks
    /// for it, refilling the reused scratch buffers so probe-on costs
    /// no per-superstep allocation (the disabled path assembles
    /// nothing at all).
    #[allow(clippy::too_many_arguments)]
    fn emit_step_record(
        &self,
        step: usize,
        barrier: Option<hbsp_core::Level>,
        starts: &[f64],
        timing: &crate::timing::StepTiming,
        releases: &[f64],
        analysis: &crate::step::StepAnalysis,
        work: &[f64],
        scratch: &mut EmitScratch,
    ) {
        if !self.probe.enabled() {
            return;
        }
        scratch.words.clear();
        scratch
            .words
            .extend(analysis.traffic.iter().map(|t| t.words));
        scratch.messages.clear();
        scratch
            .messages
            .extend(analysis.traffic.iter().map(|t| t.messages));
        scratch.sent.clear();
        scratch.sent.resize(starts.len(), 0);
        for intent in &analysis.intents {
            scratch.sent[intent.src.rank()] += intent.words;
        }
        self.probe.on_step(&StepRecord {
            step,
            barrier,
            starts,
            compute_done: &timing.compute_done,
            send_done: &timing.send_done,
            finish: &timing.finish,
            releases,
            words_by_level: &scratch.words,
            messages_by_level: &scratch.messages,
            hrelation: analysis.hrelation,
            work,
            sent_words: &scratch.sent,
            wall: None,
        });
    }
}

/// Reusable probe-record assembly buffers (see `emit_step_record`).
#[derive(Default)]
struct EmitScratch {
    words: Vec<u64>,
    messages: Vec<u64>,
    sent: Vec<u64>,
}

/// The simulator's per-processor superstep context: a read-only view
/// of the processor's persistent inbox batch plus write access to the
/// step's shared SoA outbox (bodies run sequentially, so pid order ==
/// posting order).
struct SimCtx<'a> {
    env: &'a ProcEnv,
    inbox: &'a MsgBatch,
    outbox: &'a mut MsgBatch,
    work: f64,
}

impl SpmdContext for SimCtx<'_> {
    fn pid(&self) -> ProcId {
        self.env.pid
    }
    fn nprocs(&self) -> usize {
        self.env.nprocs
    }
    fn tree(&self) -> &MachineTree {
        &self.env.tree
    }
    fn messages(&self) -> &MsgBatch {
        self.inbox
    }
    fn send_with(&mut self, dst: ProcId, tag: u32, len: usize, fill: &mut dyn FnMut(&mut [u8])) {
        self.outbox.push_with(self.env.pid, dst, tag, len, fill);
    }
    fn charge(&mut self, units: f64) {
        assert!(
            units >= 0.0 && units.is_finite(),
            "charged work must be finite and non-negative"
        );
        self.work += units;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hbsp_core::TreeBuilder;

    /// Every processor sends its pid to the next rank for `rounds`
    /// supersteps, then checks what it received.
    struct RingShift {
        rounds: usize,
    }

    impl SpmdProgram for RingShift {
        type State = Vec<u32>;
        fn init(&self, _env: &ProcEnv) -> Vec<u32> {
            Vec::new()
        }
        fn step(
            &self,
            step: usize,
            env: &ProcEnv,
            state: &mut Vec<u32>,
            ctx: &mut dyn SpmdContext,
        ) -> StepOutcome {
            for m in ctx.messages() {
                state.push(m.src.0);
            }
            if step == self.rounds {
                return StepOutcome::Done;
            }
            let next = ProcId(((env.pid.0 as usize + 1) % env.nprocs) as u32);
            ctx.send(next, 0, &[1, 2, 3, 4]);
            StepOutcome::Continue(SyncScope::global(&env.tree))
        }
    }

    fn flat4() -> Arc<MachineTree> {
        Arc::new(
            TreeBuilder::flat(1.0, 10.0, &[(1.0, 1.0), (2.0, 0.5), (2.0, 0.5), (3.0, 0.3)])
                .unwrap(),
        )
    }

    #[test]
    fn delivery_guarantee_messages_arrive_next_step() {
        let sim = Simulator::new(flat4());
        let (out, states) = sim.run_with_states(&RingShift { rounds: 3 }).unwrap();
        assert_eq!(out.num_steps(), 4, "3 sending steps + 1 final drain step");
        for (i, st) in states.iter().enumerate() {
            let prev = ((i + 4 - 1) % 4) as u32;
            assert_eq!(
                st,
                &vec![prev; 3],
                "proc {i} got 3 messages from its left neighbour"
            );
        }
        assert_eq!(out.messages_delivered, 12);
    }

    #[test]
    fn simulation_is_deterministic() {
        let sim = Simulator::new(flat4());
        let a = sim.run(&RingShift { rounds: 5 }).unwrap();
        let b = sim.run(&RingShift { rounds: 5 }).unwrap();
        assert_eq!(a.total_time, b.total_time);
        assert_eq!(a.proc_finish, b.proc_finish);
        for (x, y) in a.steps.iter().zip(&b.steps) {
            assert_eq!(x.hrelation, y.hrelation);
            assert_eq!(x.release_max, y.release_max);
        }
    }

    #[test]
    fn time_advances_with_rounds() {
        let sim = Simulator::new(flat4());
        let t1 = sim.run(&RingShift { rounds: 1 }).unwrap().total_time;
        let t5 = sim.run(&RingShift { rounds: 5 }).unwrap().total_time;
        assert!(
            t5 > t1 * 3.0,
            "5 rounds should cost ~5x one round: {t1} vs {t5}"
        );
    }

    /// Deliberately divergent program: proc 0 finishes early.
    struct Divergent;
    impl SpmdProgram for Divergent {
        type State = ();
        fn init(&self, _env: &ProcEnv) {}
        fn step(
            &self,
            _step: usize,
            env: &ProcEnv,
            _state: &mut (),
            _ctx: &mut dyn SpmdContext,
        ) -> StepOutcome {
            if env.pid.0 == 0 {
                StepOutcome::Done
            } else {
                StepOutcome::Continue(SyncScope::global(&env.tree))
            }
        }
    }

    #[test]
    fn termination_mismatch_detected() {
        let sim = Simulator::new(flat4());
        assert_eq!(
            sim.run(&Divergent).unwrap_err(),
            SimError::TerminationMismatch { step: 0 }
        );
    }

    /// Program whose processors disagree on sync scope.
    struct ScopeFight;
    impl SpmdProgram for ScopeFight {
        type State = ();
        fn init(&self, _env: &ProcEnv) {}
        fn step(
            &self,
            step: usize,
            env: &ProcEnv,
            _state: &mut (),
            _ctx: &mut dyn SpmdContext,
        ) -> StepOutcome {
            if step == 1 {
                return StepOutcome::Done;
            }
            StepOutcome::Continue(SyncScope::Level(if env.pid.0 == 0 { 1 } else { 0 }))
        }
    }

    #[test]
    fn scope_mismatch_detected() {
        let sim = Simulator::new(flat4());
        assert!(matches!(
            sim.run(&ScopeFight),
            Err(SimError::ScopeMismatch { step: 0, .. })
        ));
    }

    /// Cross-cluster message under a cluster-local barrier.
    struct BadCrossSend;
    impl SpmdProgram for BadCrossSend {
        type State = ();
        fn init(&self, _env: &ProcEnv) {}
        fn step(
            &self,
            step: usize,
            env: &ProcEnv,
            _state: &mut (),
            ctx: &mut dyn SpmdContext,
        ) -> StepOutcome {
            if step == 1 {
                return StepOutcome::Done;
            }
            if env.pid.0 == 0 {
                // P0 is in cluster 0; the last proc is in cluster 1.
                ctx.send(ProcId(env.nprocs as u32 - 1), 0, &[0; 4]);
            }
            StepOutcome::Continue(SyncScope::Level(1))
        }
    }

    #[test]
    fn cross_cluster_send_under_local_sync_rejected() {
        let tree = Arc::new(
            TreeBuilder::two_level(
                1.0,
                50.0,
                &[(5.0, vec![(1.0, 1.0), (2.0, 0.5)]), (5.0, vec![(2.0, 0.5)])],
            )
            .unwrap(),
        );
        let sim = Simulator::new(tree);
        assert!(matches!(
            sim.run(&BadCrossSend),
            Err(SimError::CrossClusterSend { step: 0, .. })
        ));
    }

    /// Never-terminating program hits the step limit.
    struct Forever;
    impl SpmdProgram for Forever {
        type State = ();
        fn init(&self, _env: &ProcEnv) {}
        fn step(
            &self,
            _step: usize,
            env: &ProcEnv,
            _state: &mut (),
            _ctx: &mut dyn SpmdContext,
        ) -> StepOutcome {
            StepOutcome::Continue(SyncScope::global(&env.tree))
        }
    }

    #[test]
    fn step_limit_guards_runaway_programs() {
        let sim = Simulator::new(flat4()).step_limit(10);
        assert_eq!(
            sim.run(&Forever).unwrap_err(),
            SimError::StepLimit { limit: 10 }
        );
    }

    #[test]
    fn stats_capture_traffic_by_level() {
        let sim = Simulator::new(flat4());
        let out = sim.run(&RingShift { rounds: 1 }).unwrap();
        // One round: 4 messages of 1 word each, all at level 1.
        assert_eq!(out.steps[0].words_at(1), 4);
        assert_eq!(out.steps[0].traffic[1].messages, 4);
        assert!(out.steps[0].hrelation > 0.0);
    }

    #[test]
    fn tracing_records_consistent_timelines() {
        let sim = Simulator::new(flat4()).trace(true);
        let out = sim.run(&RingShift { rounds: 3 }).unwrap();
        let tls = out.timelines.as_ref().expect("tracing enabled");
        assert_eq!(tls.len(), 4);
        for tl in tls {
            // Spans are time-ordered, non-overlapping, and end by the
            // run's total time.
            for w in tl.spans.windows(2) {
                assert!(w[0].end <= w[1].start + 1e-9, "{:?}", tl);
            }
            let last = tl.spans.last().unwrap();
            assert!(last.end <= out.total_time + 1e-9);
            // Everyone spends some time waiting at barriers except
            // possibly the straggler.
            assert!(
                tl.time_in(crate::trace::SpanKind::Send) > 0.0,
                "everyone sends"
            );
        }
        // Untraced runs carry no timelines.
        let plain = Simulator::new(flat4())
            .run(&RingShift { rounds: 3 })
            .unwrap();
        assert!(plain.timelines.is_none());
        // The Gantt chart renders one row per processor.
        let chart = crate::trace::ascii_gantt(tls, 40);
        assert_eq!(chart.lines().count(), 5);
    }

    #[test]
    fn scripted_crash_and_stall_yield_typed_errors() {
        use crate::faults::FaultPlan;
        let sim = Simulator::new(flat4()).faults(FaultPlan::new().crash(ProcId(2), 1));
        assert_eq!(
            sim.run(&RingShift { rounds: 3 }).unwrap_err(),
            SimError::ProcCrashed {
                pids: vec![ProcId(2)],
                step: 1
            }
        );
        let sim = Simulator::new(flat4()).faults(FaultPlan::new().stall(ProcId(1), 2));
        assert_eq!(
            sim.run(&RingShift { rounds: 3 }).unwrap_err(),
            SimError::BarrierTimeout {
                missing: vec![ProcId(1)],
                step: 2
            }
        );
        // A stall scripted alongside a crash at the same step wins: the
        // watchdog fires before the crash can be diagnosed (the same
        // order the threaded runtime observes).
        let sim = Simulator::new(flat4())
            .faults(FaultPlan::new().crash(ProcId(0), 1).stall(ProcId(3), 1));
        assert!(matches!(
            sim.run(&RingShift { rounds: 3 }).unwrap_err(),
            SimError::BarrierTimeout { step: 1, .. }
        ));
    }

    #[test]
    fn straggler_inflates_time_without_changing_results() {
        use crate::faults::FaultPlan;
        let clean = Simulator::new(flat4())
            .run(&RingShift { rounds: 3 })
            .unwrap();
        let slow = Simulator::new(flat4())
            .faults(FaultPlan::new().straggle(ProcId(0), 1, 50.0))
            .run_with_states(&RingShift { rounds: 3 })
            .unwrap();
        assert!(
            slow.0.total_time > clean.total_time,
            "{} vs {}",
            slow.0.total_time,
            clean.total_time
        );
        assert_eq!(slow.0.messages_delivered, 12, "delivery unaffected");
        for (i, st) in slow.1.iter().enumerate() {
            assert_eq!(st.len(), 3, "proc {i} still got every message");
        }
    }

    #[test]
    fn dropped_and_truncated_messages_are_scripted_losses() {
        use crate::faults::FaultPlan;
        let sim = Simulator::new(flat4()).faults(FaultPlan::new().drop_msgs(ProcId(0), 1));
        let (out, states) = sim.run_with_states(&RingShift { rounds: 3 }).unwrap();
        assert_eq!(out.messages_delivered, 11, "one message lost");
        assert_eq!(states[1].len(), 2, "P1 misses P0's step-1 send");
        assert_eq!(states[0].len(), 3, "everyone else unaffected");

        let sim = Simulator::new(flat4()).faults(FaultPlan::new().truncate(ProcId(2), 0, 0));
        let (out, _) = sim.run_with_states(&RingShift { rounds: 1 }).unwrap();
        assert_eq!(out.messages_delivered, 4, "truncated but delivered");
        assert_eq!(out.steps[0].words_at(1), 3, "P2's word is gone");
    }

    #[test]
    fn virtual_step_deadline_names_laggards() {
        let sim = Simulator::new(flat4()).step_deadline(1e9);
        assert!(sim.run(&RingShift { rounds: 3 }).is_ok(), "generous budget");
        let sim = Simulator::new(flat4()).step_deadline(0.5);
        let err = sim.run(&RingShift { rounds: 3 }).unwrap_err();
        match err {
            SimError::BarrierTimeout { missing, step } => {
                assert_eq!(step, 0);
                assert!(!missing.is_empty());
            }
            other => panic!("expected BarrierTimeout, got {other:?}"),
        }
    }

    #[test]
    fn fault_runs_are_seed_reproducible() {
        use crate::faults::FaultPlan;
        let tree = flat4();
        let plan = FaultPlan::random(7, &tree);
        let run = || {
            Simulator::new(Arc::clone(&tree))
                .faults(plan.clone())
                .run(&RingShift { rounds: 3 })
        };
        let (a, b) = (run(), run());
        match (a, b) {
            (Ok(x), Ok(y)) => {
                assert_eq!(x.total_time, y.total_time);
                assert_eq!(x.proc_finish, y.proc_finish);
            }
            (Err(x), Err(y)) => assert_eq!(x, y),
            (x, y) => panic!("runs diverged: {x:?} vs {y:?}"),
        }
    }

    #[test]
    fn bad_destination_rejected() {
        struct BadDst;
        impl SpmdProgram for BadDst {
            type State = ();
            fn init(&self, _env: &ProcEnv) {}
            fn step(
                &self,
                _s: usize,
                env: &ProcEnv,
                _st: &mut (),
                ctx: &mut dyn SpmdContext,
            ) -> StepOutcome {
                ctx.send(ProcId(99), 0, &[]);
                StepOutcome::Continue(SyncScope::global(&env.tree))
            }
        }
        let sim = Simulator::new(flat4());
        assert_eq!(
            sim.run(&BadDst).unwrap_err(),
            SimError::NoSuchProc {
                step: 0,
                dst: ProcId(99)
            }
        );
    }
}
