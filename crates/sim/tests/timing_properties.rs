//! Property tests on the timing algebra: the microcost model must be
//! monotone and self-consistent regardless of machine or traffic.

use hbsp_core::{ProcId, TreeBuilder};
use hbsp_sim::timing::{barrier_release, superstep_timing, SendIntent};
use hbsp_sim::NetConfig;
use proptest::prelude::*;

fn machine(rs: &[f64]) -> hbsp_core::MachineTree {
    let mut procs: Vec<(f64, f64)> = rs.iter().map(|&r| (r, 1.0 / r)).collect();
    procs[0].0 = 1.0;
    TreeBuilder::flat(1.0, 25.0, &procs).unwrap()
}

fn arb_sends(p: usize) -> impl Strategy<Value = Vec<SendIntent>> {
    proptest::collection::vec((0..p as u32, 0..p as u32, 0u64..500), 0..25).prop_map(|v| {
        v.into_iter()
            .map(|(s, d, w)| SendIntent {
                src: ProcId(s),
                dst: ProcId(d),
                words: w,
            })
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn finish_never_precedes_start(
        rs in proptest::collection::vec(1.0f64..5.0, 2..6),
        sends_seed in any::<u64>(),
        work in proptest::collection::vec(0.0f64..100.0, 6),
    ) {
        let tree = machine(&rs);
        let p = tree.num_procs();
        let starts: Vec<f64> = (0..p).map(|i| i as f64 * 7.0).collect();
        let work = &work[..p];
        // Simple deterministic sends from the seed.
        let sends: Vec<SendIntent> = (0..(sends_seed % 10))
            .map(|i| SendIntent {
                src: ProcId((i % p as u64) as u32),
                dst: ProcId(((i + 1) % p as u64) as u32),
                words: 10 + i,
            })
            .collect();
        let t = superstep_timing(&tree, &NetConfig::pvm_like(), &starts, work, &sends);
        for (i, &start) in starts.iter().enumerate() {
            prop_assert!(t.compute_done[i] >= start);
            prop_assert!(t.send_done[i] >= t.compute_done[i]);
            prop_assert!(t.finish[i] >= t.send_done[i]);
        }
        for m in &t.messages {
            prop_assert!(m.unpack_done >= m.arrival || m.unpack_done == m.arrival);
        }
    }

    #[test]
    fn adding_work_is_monotone_without_shared_medium(
        rs in proptest::collection::vec(1.0f64..5.0, 2..6),
        extra in 0.1f64..500.0,
    ) {
        // With the shared medium enabled this property is FALSE: more
        // work on one processor delays its send, which can cede the
        // segment's FIFO slot to another message and let a *different*
        // receiver finish earlier — a Graham-style scheduling anomaly
        // the proptest originally discovered. Point-to-point fabric
        // (medium disabled) is anomaly-free, which is what we pin here.
        let tree = machine(&rs);
        let p = tree.num_procs();
        let starts = vec![0.0; p];
        let cfg = NetConfig::pvm_like().with_medium(0.0);
        let sends: Vec<SendIntent> = (0..p)
            .map(|i| SendIntent {
                src: ProcId(i as u32),
                dst: ProcId(((i + 1) % p) as u32),
                words: 50,
            })
            .collect();
        let base = superstep_timing(&tree, &cfg, &starts, &vec![10.0; p], &sends);
        let mut more = vec![10.0; p];
        more[p - 1] += extra;
        let bumped = superstep_timing(&tree, &cfg, &starts, &more, &sends);
        for i in 0..p {
            prop_assert!(
                bumped.finish[i] >= base.finish[i] - 1e-9,
                "without wire contention, more work never finishes anyone earlier"
            );
        }
        // Under the shared medium, the burdened processor's own chain
        // still only moves later.
        let base_m =
            superstep_timing(&tree, &NetConfig::pvm_like(), &starts, &vec![10.0; p], &sends);
        let bumped_m = superstep_timing(&tree, &NetConfig::pvm_like(), &starts, &more, &sends);
        prop_assert!(bumped_m.compute_done[p - 1] > base_m.compute_done[p - 1]);
        prop_assert!(bumped_m.send_done[p - 1] >= base_m.send_done[p - 1]);
    }

    #[test]
    fn adding_a_message_is_monotone(
        rs in proptest::collection::vec(1.0f64..5.0, 3..6),
        sends in arb_sends(3),
        words in 1u64..300,
    ) {
        let tree = machine(&rs);
        let p = tree.num_procs();
        // Clamp generated ranks into range (strategy used p=3 bound).
        let sends: Vec<SendIntent> = sends
            .into_iter()
            .map(|s| SendIntent {
                src: ProcId(s.src.0 % p as u32),
                dst: ProcId(s.dst.0 % p as u32),
                words: s.words,
            })
            .collect();
        let starts = vec![0.0; p];
        let work = vec![5.0; p];
        let base = superstep_timing(&tree, &NetConfig::pvm_like(), &starts, &work, &sends);
        let mut extended = sends.clone();
        extended.push(SendIntent { src: ProcId(0), dst: ProcId((p - 1) as u32), words });
        let bumped = superstep_timing(&tree, &NetConfig::pvm_like(), &starts, &work, &extended);
        for i in 0..p {
            prop_assert!(bumped.finish[i] >= base.finish[i] - 1e-9);
        }
    }

    #[test]
    fn barrier_release_bounds_finishes(
        rs in proptest::collection::vec(1.0f64..5.0, 2..6),
        finishes in proptest::collection::vec(0.0f64..1000.0, 6),
    ) {
        let tree = machine(&rs);
        let p = tree.num_procs();
        let finish = &finishes[..p];
        let rel = barrier_release(&tree, hbsp_core::SyncScope::Level(1), finish);
        let max_f = finish.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        for (i, &r) in rel.iter().enumerate() {
            prop_assert!(r >= finish[i], "nobody restarts before finishing");
            prop_assert!(r >= max_f, "a flat global barrier waits for the slowest");
            prop_assert_eq!(r, max_f + 25.0);
        }
    }

    #[test]
    fn wire_serialization_conserves_order_under_scaling(
        words in proptest::collection::vec(1u64..200, 2..8),
    ) {
        // Doubling every payload doubles wire occupancy: total time with
        // an ideal-but-wired network scales linearly for a pure relay.
        let tree = machine(&[1.0, 1.0]);
        let cfg = NetConfig::ideal().with_medium(1.0);
        let sends: Vec<SendIntent> = words
            .iter()
            .map(|&w| SendIntent { src: ProcId(0), dst: ProcId(1), words: w })
            .collect();
        let doubled: Vec<SendIntent> = sends
            .iter()
            .map(|s| SendIntent { words: s.words * 2, ..*s })
            .collect();
        let a = superstep_timing(&tree, &cfg, &[0.0, 0.0], &[0.0, 0.0], &sends);
        let b = superstep_timing(&tree, &cfg, &[0.0, 0.0], &[0.0, 0.0], &doubled);
        prop_assert!((b.finish[1] - 2.0 * a.finish[1]).abs() < 1e-6);
    }
}
