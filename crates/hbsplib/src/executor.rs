//! Engine selection and fault recovery: run the same program on the
//! simulator or on threads, optionally degrading around dead
//! processors.
//!
//! [`Executor`] is a *configuration*: engine kind, machine, microcosts,
//! tracing, pre-flight checking, an injected [`FaultPlan`], and a
//! [`RecoveryPolicy`]. Each [`Executor::run`] /
//! [`Executor::run_recovering`] call builds a fresh engine from that
//! configuration, so a recovering run can rebuild the engine on a
//! degraded machine between attempts.
//!
//! Recovery follows the superstep-boundary contract (`docs/faults.md`):
//! both engines fail *fast* with a typed [`SimError`] naming the dead
//! or absent processors; under [`RecoveryPolicy::Degrade`] the executor
//! catches that error, calls [`MachineTree::degrade`], re-makes the
//! program for the surviving machine (so collectives re-lower their
//! schedules), remaps the fault plan, and re-runs. The per-run
//! [`FaultReport`] records every recovery step.

use hbsp_core::degrade::Degraded;
use hbsp_core::{MachineTree, ProcId, SpmdProgram};
use hbsp_obs::{ObsEvent, Probe};
use hbsp_runtime::ThreadedRuntime;
use hbsp_sim::{FaultPlan, NetConfig, SimError, SimOutcome, Simulator, SplitMix64};
use std::sync::Arc;
use std::time::Duration;

/// Outcome of an execution on either engine.
#[derive(Debug, Clone)]
pub struct ExecOutcome {
    /// Virtual (model) time outcome — identical across engines.
    pub sim: SimOutcome,
    /// Wall-clock duration, present for threaded runs.
    pub wall: Option<Duration>,
}

impl ExecOutcome {
    /// Model execution time `T` of the program.
    pub fn total_time(&self) -> f64 {
        self.sim.total_time
    }
}

/// Which engine an [`Executor`] builds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum EngineKind {
    Simulator,
    Threads,
}

/// What to do when a run dies with a fault-typed error.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum RecoveryPolicy {
    /// Surface the typed error to the caller (the default).
    #[default]
    FailFast,
    /// Degrade the machine around the dead processors and re-run from
    /// the superstep boundary ([`Executor::run_recovering`]).
    Degrade,
    /// Treat barrier stalls as *transient*: up to `max_attempts` times,
    /// clear the stall faults that just fired from the plan, charge a
    /// deterministically-seeded exponential backoff (base `backoff`,
    /// recorded in [`FaultReport::backoff_total`]), and replay from the
    /// superstep boundary on the *same* machine. A crash, a stall with
    /// no budget left, or a timeout the plan cannot explain escalates
    /// to the [`RecoveryPolicy::Degrade`] behavior.
    Retry {
        /// Replays allowed before a stall escalates to degradation.
        max_attempts: usize,
        /// Base backoff charge per retry; retry `k` charges
        /// `backoff · 2^(k-1)` scaled by a seeded jitter in `[0.5, 1)`.
        backoff: f64,
    },
}

/// One recovery step taken by [`Executor::run_recovering`].
#[derive(Debug, Clone)]
pub struct RecoveryEvent {
    /// Superstep at which the fault was detected.
    pub step: usize,
    /// The typed error the engine raised.
    pub error: SimError,
    /// Processors declared dead and dropped from the machine.
    pub dead: Vec<ProcId>,
    /// Processors surviving after degradation.
    pub remaining: usize,
}

/// What happened across a whole [`Executor::run_recovering`] call.
#[derive(Debug, Clone, Default)]
pub struct FaultReport {
    /// Faults scripted into the executor's plan (before any remapping).
    pub faults_injected: usize,
    /// Every degradation performed, in order.
    pub events: Vec<RecoveryEvent>,
    /// Number of engine runs performed (1 = fault-free).
    pub attempts: usize,
    /// Supersteps re-executed across all restarts: each recovery
    /// restarts from superstep 0, so the steps completed before each
    /// detection are replayed on the surviving machine.
    pub steps_replayed: usize,
    /// Replays performed under [`RecoveryPolicy::Retry`] (stalls
    /// cleared as transient instead of degrading the machine).
    pub retries: usize,
    /// Total backoff charged across all retries (virtual-time units;
    /// deterministic for a given fault plan, identical on both
    /// engines).
    pub backoff_total: f64,
}

impl FaultReport {
    /// True if the run needed no recovery at all.
    pub fn clean(&self) -> bool {
        self.events.is_empty()
    }
}

/// A completed (possibly degraded) recovering run.
#[derive(Debug, Clone)]
pub struct Recovered<S> {
    /// Outcome of the final, successful attempt.
    pub outcome: ExecOutcome,
    /// Final per-processor states, indexed by the *final* machine's
    /// ranks.
    pub states: Vec<S>,
    /// Everything that went wrong and how it was handled.
    pub report: FaultReport,
    /// The machine the successful attempt ran on (the original tree if
    /// `report.clean()`, otherwise the degraded survivor tree).
    pub tree: Arc<MachineTree>,
}

/// A configured execution engine for one machine.
#[derive(Clone)]
pub struct Executor {
    tree: Arc<MachineTree>,
    cfg: Option<NetConfig>,
    kind: EngineKind,
    trace: bool,
    check: Option<bool>,
    faults: FaultPlan,
    recovery: RecoveryPolicy,
    probe: Option<Arc<dyn Probe>>,
}

impl Executor {
    fn new(tree: Arc<MachineTree>, kind: EngineKind, cfg: Option<NetConfig>) -> Self {
        Executor {
            tree,
            cfg,
            kind,
            trace: false,
            check: None,
            faults: FaultPlan::new(),
            recovery: RecoveryPolicy::default(),
            probe: None,
        }
    }

    /// Simulator with default (PVM-like) microcosts.
    pub fn simulator(tree: Arc<MachineTree>) -> Self {
        Executor::new(tree, EngineKind::Simulator, None)
    }

    /// Simulator with explicit microcosts.
    pub fn simulator_with(tree: Arc<MachineTree>, cfg: NetConfig) -> Self {
        Executor::new(tree, EngineKind::Simulator, Some(cfg))
    }

    /// Threaded runtime with default microcosts (for its virtual
    /// clock).
    pub fn threads(tree: Arc<MachineTree>) -> Self {
        Executor::new(tree, EngineKind::Threads, None)
    }

    /// Threaded runtime with explicit microcosts.
    pub fn threads_with(tree: Arc<MachineTree>, cfg: NetConfig) -> Self {
        Executor::new(tree, EngineKind::Threads, Some(cfg))
    }

    /// Record per-processor activity timelines on either engine (the
    /// raw material for §4.1's "faster machines sit idle" Gantt
    /// charts); retrieve them from [`ExecOutcome`]'s `sim.timelines`.
    pub fn trace(mut self, enable: bool) -> Self {
        self.trace = enable;
        self
    }

    /// Toggle the static pre-flight check ([`SpmdProgram::preflight`])
    /// on either engine. On by default in debug builds: a fatally
    /// malformed program — e.g. a schedule transferring data its source
    /// never holds — is rejected at submit time with
    /// `SimError::Preflight` instead of deadlocking or mis-delivering
    /// mid-run.
    pub fn check(mut self, enable: bool) -> Self {
        self.check = Some(enable);
        self
    }

    /// Script deterministic faults into every run (see
    /// [`hbsp_sim::FaultPlan`]). Both engines honor the same plan with
    /// bit-identical outcomes.
    pub fn faults(mut self, plan: FaultPlan) -> Self {
        self.faults = plan;
        self
    }

    /// Attach a telemetry [`Probe`] (e.g. [`hbsp_obs::Recorder`]):
    /// every engine built by this executor publishes per-superstep
    /// [`hbsp_obs::StepRecord`]s through it, and
    /// [`Executor::run_recovering`] additionally reports degradations
    /// and restart attempts as [`ObsEvent`]s. Both engines emit the
    /// same schema; the threaded runtime adds wall-clock marks.
    pub fn probe(mut self, probe: Arc<dyn Probe>) -> Self {
        self.probe = Some(probe);
        self
    }

    /// Choose what happens when a run dies with a fault-typed error.
    /// [`RecoveryPolicy::Degrade`] only takes effect through
    /// [`Executor::run_recovering`]; plain [`Executor::run`] always
    /// fails fast.
    pub fn recovery(mut self, policy: RecoveryPolicy) -> Self {
        self.recovery = policy;
        self
    }

    /// The machine this executor runs on.
    pub fn tree(&self) -> &Arc<MachineTree> {
        &self.tree
    }

    /// Stable engine name for forensics (`sim` or `threads`).
    pub fn engine_name(&self) -> &'static str {
        match self.kind {
            EngineKind::Simulator => "sim",
            EngineKind::Threads => "threads",
        }
    }

    /// Snapshot a post-mortem bundle from `flight`: the flight
    /// recorder's retained steps, events, and metrics, stamped with
    /// this executor's engine name, rendered machine tree, and
    /// rendered fault plan. Call it when a run dies to capture
    /// forensics before the error propagates:
    ///
    /// ```ignore
    /// let flight = Arc::new(FlightRecorder::new());
    /// let exec = Executor::threads(tree).probe(flight.clone());
    /// if let Err(e) = exec.run(&prog) {
    ///     let bundle = exec.postmortem(&format!("{e}"), &flight);
    ///     std::fs::write("postmortem.jsonl", bundle.to_jsonl())?;
    /// }
    /// ```
    pub fn postmortem(
        &self,
        reason: &str,
        flight: &hbsp_obs::FlightRecorder,
    ) -> hbsp_obs::PostmortemBundle {
        flight.bundle(
            reason,
            self.engine_name(),
            &self.tree.to_string(),
            &self.faults.render(),
        )
    }

    /// The configured fault plan (the adaptive executor re-bases it
    /// per segment).
    pub(crate) fn faults_ref(&self) -> &FaultPlan {
        &self.faults
    }

    /// The configured probe, if any (the adaptive executor forwards
    /// its re-plan events there).
    pub(crate) fn probe_ref(&self) -> Option<&Arc<dyn Probe>> {
        self.probe.as_ref()
    }

    /// Build the configured engine once and keep it for many
    /// submissions. This is the seam a scheduler drives: one engine
    /// instance per machine, [`ExecSession::submit`] per job batch,
    /// instead of one throwaway engine per `run()`.
    pub fn session(&self) -> ExecSession {
        self.session_on(self.tree.clone(), self.faults.clone())
    }

    /// Build a session for an explicit tree and fault plan (recovery
    /// rebuilds engines on degraded trees through this).
    fn session_on(&self, tree: Arc<MachineTree>, faults: FaultPlan) -> ExecSession {
        let engine = match self.kind {
            EngineKind::Simulator => {
                let mut sim = match &self.cfg {
                    Some(cfg) => Simulator::with_config(tree.clone(), cfg.clone()),
                    None => Simulator::new(tree.clone()),
                };
                sim = sim.trace(self.trace).faults(faults);
                if let Some(chk) = self.check {
                    sim = sim.check(chk);
                }
                if let Some(p) = &self.probe {
                    sim = sim.probe(p.clone());
                }
                EngineInstance::Simulator(sim)
            }
            EngineKind::Threads => {
                let mut rt = match &self.cfg {
                    Some(cfg) => ThreadedRuntime::with_config(tree.clone(), cfg.clone()),
                    None => ThreadedRuntime::new(tree.clone()),
                };
                rt = rt.trace(self.trace).faults(faults);
                if let Some(chk) = self.check {
                    rt = rt.check(chk);
                }
                if let Some(p) = &self.probe {
                    rt = rt.probe(p.clone());
                }
                EngineInstance::Threads(rt)
            }
        };
        ExecSession { tree, engine }
    }

    /// Run `prog` once on `tree` with `faults`, building a fresh engine
    /// from this configuration.
    fn run_once<P: SpmdProgram>(
        &self,
        tree: &Arc<MachineTree>,
        faults: &FaultPlan,
        prog: &P,
    ) -> Result<(ExecOutcome, Vec<P::State>), SimError> {
        self.session_on(tree.clone(), faults.clone()).submit(prog)
    }

    /// Run `prog` to completion; returns the outcome and every
    /// processor's final state. Always fails fast: faults surface as
    /// typed [`SimError`]s regardless of the configured policy.
    pub fn run<P: SpmdProgram>(&self, prog: &P) -> Result<(ExecOutcome, Vec<P::State>), SimError> {
        self.run_once(&self.tree, &self.faults, prog)
    }

    /// Run with graceful degradation: on a fault-typed error
    /// ([`SimError::ProcCrashed`] or [`SimError::BarrierTimeout`]) and
    /// [`RecoveryPolicy::Degrade`], drop the dead processors from the
    /// machine ([`MachineTree::degrade`]), re-make the program via
    /// `factory` on the surviving tree (collectives re-lower their
    /// schedules here), remap the fault plan onto the new ranks, and
    /// re-run from the superstep boundary. Under
    /// [`RecoveryPolicy::FailFast`] this behaves exactly like
    /// [`Executor::run`] (plus a clean [`FaultReport`]).
    ///
    /// Degradation that is itself impossible (a cluster lost every
    /// leaf, or no processor survives) surfaces as
    /// [`SimError::DegradeFailed`].
    pub fn run_recovering<P, F>(&self, factory: F) -> Result<Recovered<P::State>, SimError>
    where
        P: SpmdProgram,
        F: Fn(&Arc<MachineTree>) -> Result<P, SimError>,
    {
        let mut tree = self.tree.clone();
        let mut faults = self.faults.clone();
        let mut report = FaultReport {
            faults_injected: self.faults.faults().len(),
            ..FaultReport::default()
        };
        // Each degradation removes at least one processor and each
        // retry spends budget, so p + max_attempts runs is a hard
        // bound; the loop normally exits far earlier.
        let observing = self.probe.as_ref().is_some_and(|p| p.enabled());
        let retry_budget = match self.recovery {
            RecoveryPolicy::Retry { max_attempts, .. } => max_attempts,
            _ => 0,
        };
        for _ in 0..=self.tree.num_procs() + retry_budget {
            let prog = factory(&tree)?;
            report.attempts += 1;
            if observing && report.attempts > 1 {
                if let Some(p) = &self.probe {
                    p.on_event(&ObsEvent::RecoveryAttempt {
                        attempt: report.attempts,
                    });
                }
            }
            match self.run_once(&tree, &faults, &prog) {
                Ok((outcome, states)) => {
                    return Ok(Recovered {
                        outcome,
                        states,
                        report,
                        tree,
                    });
                }
                Err(err) => match self.recovery {
                    RecoveryPolicy::FailFast => return Err(err),
                    RecoveryPolicy::Retry {
                        max_attempts,
                        backoff,
                    } => {
                        if let SimError::BarrierTimeout { missing, step } = &err {
                            let cleared = faults.without_stalls_at(missing, *step);
                            if report.retries < max_attempts && cleared != faults {
                                // The timeout is explained by scripted
                                // stalls: treat them as transient,
                                // charge a seeded backoff, and replay
                                // on the same machine.
                                report.retries += 1;
                                let mut rng = SplitMix64::new(
                                    0x7E7C_ACE5 ^ ((*step as u64) << 20) ^ report.retries as u64,
                                );
                                let jitter = 0.5 + rng.below(1_000) as f64 / 2_000.0;
                                let exp = (report.retries - 1).min(30) as u32;
                                report.backoff_total +=
                                    backoff.max(0.0) * (1u64 << exp) as f64 * jitter;
                                report.steps_replayed += step;
                                faults = cleared;
                                continue;
                            }
                        }
                        // Budget exhausted, an unexplained timeout, or
                        // a crash: escalate to degradation.
                        self.degrade_around(&mut tree, &mut faults, &mut report, err, observing)?;
                    }
                    RecoveryPolicy::Degrade => {
                        self.degrade_around(&mut tree, &mut faults, &mut report, err, observing)?;
                    }
                },
            }
        }
        unreachable!("each degradation removes a processor and each retry spends budget");
    }

    /// The shared escalation path of [`Executor::run_recovering`]: drop
    /// the dead processors from `tree`, remap `faults`, record the
    /// event, and report it to the probe.
    fn degrade_around(
        &self,
        tree: &mut Arc<MachineTree>,
        faults: &mut FaultPlan,
        report: &mut FaultReport,
        err: SimError,
        observing: bool,
    ) -> Result<(), SimError> {
        let (dead, step) = match &err {
            SimError::ProcCrashed { pids, step } => (pids.clone(), *step),
            SimError::BarrierTimeout { missing, step } => (missing.clone(), *step),
            _ => return Err(err),
        };
        let Degraded {
            tree: survivor,
            rank_map,
        } = tree.degrade(&dead).map_err(|de| SimError::DegradeFailed {
            message: de.to_string(),
        })?;
        *faults = faults.remap(&rank_map);
        report.steps_replayed += step;
        if observing {
            if let Some(p) = &self.probe {
                p.on_event(&ObsEvent::Degraded {
                    step,
                    dead: &dead,
                    remaining: survivor.num_procs(),
                });
            }
        }
        report.events.push(RecoveryEvent {
            step,
            error: err,
            dead,
            remaining: survivor.num_procs(),
        });
        *tree = Arc::new(survivor);
        Ok(())
    }
}

/// One engine, built once from an [`Executor`]'s configuration.
enum EngineInstance {
    Simulator(Simulator),
    Threads(ThreadedRuntime),
}

/// A built engine accepting many program submissions — the executor
/// seam for schedulers. [`Executor::run`] is "configure, build, run
/// once"; a multi-tenant scheduler instead calls
/// [`Executor::session`] once and [`ExecSession::submit`]s every job
/// batch against the same engine instance, so per-submission cost is
/// the program, not engine construction.
///
/// Submissions are sequential (`submit` takes `&self` but each call
/// runs its program to completion before returning); the engines'
/// determinism guarantees make a session's outcomes identical to the
/// equivalent sequence of one-shot [`Executor::run`] calls.
pub struct ExecSession {
    tree: Arc<MachineTree>,
    engine: EngineInstance,
}

impl ExecSession {
    /// The machine this session's engine runs on.
    pub fn tree(&self) -> &Arc<MachineTree> {
        &self.tree
    }

    /// True if this session drives the threaded runtime (and so reports
    /// wall-clock durations).
    pub fn is_threaded(&self) -> bool {
        matches!(self.engine, EngineInstance::Threads(_))
    }

    /// Run one program to completion on this session's engine.
    pub fn submit<P: SpmdProgram>(
        &self,
        prog: &P,
    ) -> Result<(ExecOutcome, Vec<P::State>), SimError> {
        match &self.engine {
            EngineInstance::Simulator(sim) => {
                let (out, states) = sim.run_with_states(prog)?;
                Ok((
                    ExecOutcome {
                        sim: out,
                        wall: None,
                    },
                    states,
                ))
            }
            EngineInstance::Threads(rt) => {
                let (out, states) = rt.run_with_states(prog)?;
                Ok((
                    ExecOutcome {
                        sim: out.virtual_outcome,
                        wall: Some(out.wall),
                    },
                    states,
                ))
            }
        }
    }
}

/// Price `prog` with the pure HBSP^k cost model (no microcosts): runs
/// the program's supersteps through [`hbsp_sim::ModelEvaluator`] and
/// returns the `Σ (w + g·h + L)` report. The analytic counterpart of
/// [`Executor::run`].
pub fn predict_program<P: SpmdProgram>(
    tree: Arc<MachineTree>,
    prog: &P,
) -> Result<hbsp_core::CostReport, SimError> {
    hbsp_sim::ModelEvaluator::new(tree).run(prog)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hbsp_core::{ProcEnv, ProcId, SpmdContext, StepOutcome, SyncScope, TreeBuilder};

    struct PingPong;
    impl SpmdProgram for PingPong {
        type State = u32;
        fn init(&self, _env: &ProcEnv) -> u32 {
            0
        }
        fn step(
            &self,
            step: usize,
            env: &ProcEnv,
            state: &mut u32,
            ctx: &mut dyn SpmdContext,
        ) -> StepOutcome {
            *state += ctx.messages().len() as u32;
            if step >= 2 {
                return StepOutcome::Done;
            }
            let peer = ProcId(1 - env.pid.0);
            ctx.send(peer, 0, &vec![0; 16]);
            StepOutcome::Continue(SyncScope::global(&env.tree))
        }
    }

    fn tree() -> Arc<MachineTree> {
        Arc::new(TreeBuilder::flat(1.0, 10.0, &[(1.0, 1.0), (2.0, 0.5)]).unwrap())
    }

    #[test]
    fn engines_agree_through_executor() {
        let prog = PingPong;
        let (sim_out, sim_states) = Executor::simulator(tree()).run(&prog).unwrap();
        let (thr_out, thr_states) = Executor::threads(tree()).run(&prog).unwrap();
        assert_eq!(sim_states, thr_states);
        assert_eq!(sim_out.total_time(), thr_out.total_time());
        assert!(sim_out.wall.is_none());
        assert!(thr_out.wall.is_some());
    }

    #[test]
    fn one_session_accepts_many_submissions() {
        for exec in [Executor::simulator(tree()), Executor::threads(tree())] {
            let session = exec.session();
            let (first, states1) = session.submit(&PingPong).unwrap();
            let (second, states2) = session.submit(&PingPong).unwrap();
            // The engine is reused, not rebuilt: outcomes stay
            // deterministic and identical to one-shot runs.
            assert_eq!(states1, states2);
            assert_eq!(first.total_time(), second.total_time());
            let (oneshot, oneshot_states) = exec.run(&PingPong).unwrap();
            assert_eq!(states1, oneshot_states);
            assert_eq!(first.total_time(), oneshot.total_time());
            assert_eq!(session.is_threaded(), first.wall.is_some());
        }
    }

    #[test]
    fn predict_program_prices_the_same_program() {
        let report = predict_program(tree(), &PingPong).unwrap();
        assert_eq!(report.num_steps(), 3);
        assert!(report.total() > 0.0);
        // The model prediction is a lower bound on the simulated time
        // (the simulator adds pack/wire/unpack and per-message
        // overheads the model abstracts).
        let (sim_out, _) = Executor::simulator(tree()).run(&PingPong).unwrap();
        assert!(report.total() <= sim_out.total_time());
    }

    #[test]
    fn trace_flows_through_both_engines() {
        for exec in [Executor::simulator(tree()), Executor::threads(tree())] {
            let (out, _) = exec.trace(true).run(&PingPong).unwrap();
            let tls = out.sim.timelines.expect("tracing enabled");
            assert_eq!(tls.len(), 2);
            assert!(tls.iter().all(|t| !t.spans.is_empty()));
        }
        let (plain, _) = Executor::simulator(tree()).run(&PingPong).unwrap();
        assert!(plain.sim.timelines.is_none());
    }

    #[test]
    fn custom_config_flows_through() {
        let cfg = NetConfig::ideal();
        let (a, _) = Executor::simulator_with(tree(), cfg.clone())
            .run(&PingPong)
            .unwrap();
        let (b, _) = Executor::threads_with(tree(), cfg).run(&PingPong).unwrap();
        assert_eq!(a.total_time(), b.total_time());
        // Ideal network is cheaper than the PVM-like default.
        let (c, _) = Executor::simulator(tree()).run(&PingPong).unwrap();
        assert!(a.total_time() < c.total_time());
    }

    /// A machine-shape-agnostic program: every processor counts the
    /// messages it hears from its peers each superstep, so it runs
    /// unchanged on any (possibly degraded) tree.
    struct Gossip {
        rounds: usize,
    }
    impl SpmdProgram for Gossip {
        type State = u32;
        fn init(&self, _env: &ProcEnv) -> u32 {
            0
        }
        fn step(
            &self,
            step: usize,
            env: &ProcEnv,
            state: &mut u32,
            ctx: &mut dyn SpmdContext,
        ) -> StepOutcome {
            *state += ctx.messages().len() as u32;
            if step >= self.rounds {
                return StepOutcome::Done;
            }
            for p in 0..env.nprocs {
                if p != env.pid.rank() {
                    ctx.send(ProcId(p as u32), 0, &vec![0; 4]);
                }
            }
            StepOutcome::Continue(SyncScope::global(&env.tree))
        }
    }

    fn clustered() -> Arc<MachineTree> {
        Arc::new(
            TreeBuilder::two_level(
                2.0,
                500.0,
                &[
                    (50.0, vec![(1.0, 1.0), (2.0, 0.5)]),
                    (60.0, vec![(1.5, 0.8), (3.0, 0.3)]),
                ],
            )
            .unwrap(),
        )
    }

    #[test]
    fn fail_fast_surfaces_the_typed_error() {
        let exec = Executor::simulator(clustered()).faults(FaultPlan::new().crash(ProcId(1), 1));
        let err = exec.run(&Gossip { rounds: 3 }).unwrap_err();
        assert_eq!(
            err,
            SimError::ProcCrashed {
                pids: vec![ProcId(1)],
                step: 1
            }
        );
        // run_recovering under FailFast surfaces the same error.
        let err2 = exec
            .run_recovering(|_| Ok(Gossip { rounds: 3 }))
            .unwrap_err();
        assert_eq!(err, err2);
    }

    #[test]
    fn degrade_policy_completes_on_the_survivor_tree() {
        for exec in [
            Executor::simulator(clustered()),
            Executor::threads(clustered()),
        ] {
            let exec = exec
                .faults(FaultPlan::new().crash(ProcId(1), 1))
                .recovery(RecoveryPolicy::Degrade);
            let rec = exec
                .run_recovering(|_| Ok(Gossip { rounds: 3 }))
                .expect("degrades and completes");
            assert_eq!(rec.tree.num_procs(), 3);
            assert_eq!(rec.states.len(), 3);
            // Each survivor heard 2 peers for 3 rounds on the replay.
            assert!(rec.states.iter().all(|&s| s == 6));
            assert_eq!(rec.report.attempts, 2);
            assert_eq!(rec.report.events.len(), 1);
            assert_eq!(rec.report.events[0].dead, vec![ProcId(1)]);
            assert_eq!(rec.report.events[0].step, 1);
            assert_eq!(rec.report.steps_replayed, 1);
            rec.tree.validate().unwrap();
        }
    }

    #[test]
    fn clean_runs_report_clean() {
        let rec = Executor::simulator(clustered())
            .recovery(RecoveryPolicy::Degrade)
            .run_recovering(|_| Ok(Gossip { rounds: 2 }))
            .unwrap();
        assert!(rec.report.clean());
        assert_eq!(rec.report.attempts, 1);
        assert_eq!(rec.report.steps_replayed, 0);
        assert_eq!(rec.tree.num_procs(), 4);
    }

    #[test]
    fn cascading_crashes_degrade_repeatedly() {
        // P1 dies at step 1; after degradation old P3 is rank 2 and its
        // remapped crash at step 2 kills the second attempt too.
        let plan = FaultPlan::new().crash(ProcId(1), 1).crash(ProcId(3), 2);
        let rec = Executor::simulator(clustered())
            .faults(plan)
            .recovery(RecoveryPolicy::Degrade)
            .run_recovering(|_| Ok(Gossip { rounds: 4 }))
            .unwrap();
        assert_eq!(rec.report.attempts, 3);
        assert_eq!(rec.report.events.len(), 2);
        assert_eq!(rec.tree.num_procs(), 2);
        assert_eq!(rec.report.steps_replayed, 1 + 2);
        rec.tree.validate().unwrap();
    }

    #[test]
    fn impossible_degradation_is_a_typed_error() {
        // Kill both processors of cluster 0 at once: the cluster
        // empties and degradation must refuse with a typed error.
        let plan = FaultPlan::new().crash(ProcId(0), 1).crash(ProcId(1), 1);
        let err = Executor::simulator(clustered())
            .faults(plan)
            .recovery(RecoveryPolicy::Degrade)
            .run_recovering(|_| Ok(Gossip { rounds: 3 }))
            .unwrap_err();
        match err {
            SimError::DegradeFailed { message } => {
                assert!(
                    message.contains("c0"),
                    "names the emptied cluster: {message}"
                )
            }
            other => panic!("expected DegradeFailed, got {other:?}"),
        }
    }

    #[test]
    fn retry_clears_a_transient_stall_without_degrading() {
        let plan = FaultPlan::new().stall(ProcId(3), 0);
        for exec in [
            Executor::simulator(clustered()),
            Executor::threads(clustered()),
        ] {
            let rec = exec
                .faults(plan.clone())
                .recovery(RecoveryPolicy::Retry {
                    max_attempts: 2,
                    backoff: 10.0,
                })
                .run_recovering(|_| Ok(Gossip { rounds: 2 }))
                .unwrap();
            assert_eq!(rec.tree.num_procs(), 4, "nobody degraded");
            assert!(rec.report.events.is_empty());
            assert_eq!(rec.report.attempts, 2);
            assert_eq!(rec.report.retries, 1);
            assert!(rec.report.backoff_total > 0.0);
            // Full machine: every survivor hears 3 peers for 2 rounds.
            assert!(rec.states.iter().all(|&s| s == 6));
        }
    }

    #[test]
    fn retry_budget_exhausted_escalates_to_degrade() {
        // Two stalls on P3 but only one retry allowed: the first
        // timeout is retried, the second degrades P3 away.
        let plan = FaultPlan::new().stall(ProcId(3), 0).stall(ProcId(3), 1);
        let rec = Executor::simulator(clustered())
            .faults(plan)
            .recovery(RecoveryPolicy::Retry {
                max_attempts: 1,
                backoff: 5.0,
            })
            .run_recovering(|_| Ok(Gossip { rounds: 3 }))
            .unwrap();
        assert_eq!(rec.report.retries, 1);
        assert_eq!(rec.report.events.len(), 1, "second stall degraded P3");
        assert_eq!(rec.tree.num_procs(), 3);
        rec.tree.validate().unwrap();
    }

    #[test]
    fn retry_escalates_crashes_immediately() {
        let rec = Executor::simulator(clustered())
            .faults(FaultPlan::new().crash(ProcId(1), 1))
            .recovery(RecoveryPolicy::Retry {
                max_attempts: 3,
                backoff: 1.0,
            })
            .run_recovering(|_| Ok(Gossip { rounds: 3 }))
            .unwrap();
        assert_eq!(rec.report.retries, 0, "crashes are not transient");
        assert_eq!(rec.report.events.len(), 1);
        assert_eq!(rec.tree.num_procs(), 3);
    }

    #[test]
    fn retry_backoff_is_deterministic_and_engine_agnostic() {
        let plan = FaultPlan::new().stall(ProcId(0), 1);
        let run = |exec: Executor| {
            exec.faults(plan.clone())
                .recovery(RecoveryPolicy::Retry {
                    max_attempts: 2,
                    backoff: 7.0,
                })
                .run_recovering(|_| Ok(Gossip { rounds: 2 }))
                .unwrap()
                .report
        };
        let a = run(Executor::simulator(clustered()));
        let b = run(Executor::simulator(clustered()));
        let c = run(Executor::threads(clustered()));
        assert!(a.backoff_total > 0.0);
        assert_eq!(a.backoff_total.to_bits(), b.backoff_total.to_bits());
        assert_eq!(a.backoff_total.to_bits(), c.backoff_total.to_bits());
        assert_eq!(a.steps_replayed, 1);
    }

    #[test]
    fn stalled_processors_are_degraded_like_crashes() {
        let plan = FaultPlan::new().stall(ProcId(3), 0);
        for exec in [
            Executor::simulator(clustered()),
            Executor::threads(clustered()),
        ] {
            let rec = exec
                .faults(plan.clone())
                .recovery(RecoveryPolicy::Degrade)
                .run_recovering(|_| Ok(Gossip { rounds: 2 }))
                .unwrap();
            assert_eq!(rec.tree.num_procs(), 3);
            assert!(matches!(
                rec.report.events[0].error,
                SimError::BarrierTimeout { .. }
            ));
        }
    }
}
