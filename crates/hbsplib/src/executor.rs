//! Engine selection: run the same program on the simulator or on
//! threads.

use hbsp_core::{MachineTree, SpmdProgram};
use hbsp_runtime::ThreadedRuntime;
use hbsp_sim::{NetConfig, SimError, SimOutcome, Simulator};
use std::sync::Arc;
use std::time::Duration;

/// Outcome of an execution on either engine.
#[derive(Debug, Clone)]
pub struct ExecOutcome {
    /// Virtual (model) time outcome — identical across engines.
    pub sim: SimOutcome,
    /// Wall-clock duration, present for threaded runs.
    pub wall: Option<Duration>,
}

impl ExecOutcome {
    /// Model execution time `T` of the program.
    pub fn total_time(&self) -> f64 {
        self.sim.total_time
    }
}

/// A configured execution engine for one machine.
pub enum Executor {
    /// Deterministic discrete-event simulation (`hbsp-sim`).
    Simulator(Simulator),
    /// One OS thread per processor (`hbsp-runtime`).
    Threads(ThreadedRuntime),
}

impl Executor {
    /// Simulator with default (PVM-like) microcosts.
    pub fn simulator(tree: Arc<MachineTree>) -> Self {
        Executor::Simulator(Simulator::new(tree))
    }

    /// Simulator with explicit microcosts.
    pub fn simulator_with(tree: Arc<MachineTree>, cfg: NetConfig) -> Self {
        Executor::Simulator(Simulator::with_config(tree, cfg))
    }

    /// Threaded runtime with default microcosts (for its virtual
    /// clock).
    pub fn threads(tree: Arc<MachineTree>) -> Self {
        Executor::Threads(ThreadedRuntime::new(tree))
    }

    /// Threaded runtime with explicit microcosts.
    pub fn threads_with(tree: Arc<MachineTree>, cfg: NetConfig) -> Self {
        Executor::Threads(ThreadedRuntime::with_config(tree, cfg))
    }

    /// Record per-processor activity timelines on either engine (the
    /// raw material for §4.1's "faster machines sit idle" Gantt
    /// charts); retrieve them from [`ExecOutcome`]'s `sim.timelines`.
    pub fn trace(self, enable: bool) -> Self {
        match self {
            Executor::Simulator(s) => Executor::Simulator(s.trace(enable)),
            Executor::Threads(t) => Executor::Threads(t.trace(enable)),
        }
    }

    /// Toggle the static pre-flight check ([`SpmdProgram::preflight`])
    /// on either engine. On by default in debug builds: a fatally
    /// malformed program — e.g. a schedule transferring data its source
    /// never holds — is rejected at submit time with
    /// `SimError::Preflight` instead of deadlocking or mis-delivering
    /// mid-run.
    pub fn check(self, enable: bool) -> Self {
        match self {
            Executor::Simulator(s) => Executor::Simulator(s.check(enable)),
            Executor::Threads(t) => Executor::Threads(t.check(enable)),
        }
    }

    /// The machine this executor runs on.
    pub fn tree(&self) -> &Arc<MachineTree> {
        match self {
            Executor::Simulator(s) => s.tree(),
            Executor::Threads(t) => t.tree(),
        }
    }

    /// Run `prog` to completion; returns the outcome and every
    /// processor's final state.
    pub fn run<P: SpmdProgram>(&self, prog: &P) -> Result<(ExecOutcome, Vec<P::State>), SimError> {
        match self {
            Executor::Simulator(s) => {
                let (out, states) = s.run_with_states(prog)?;
                Ok((
                    ExecOutcome {
                        sim: out,
                        wall: None,
                    },
                    states,
                ))
            }
            Executor::Threads(t) => {
                let (out, states) = t.run_with_states(prog)?;
                Ok((
                    ExecOutcome {
                        sim: out.virtual_outcome,
                        wall: Some(out.wall),
                    },
                    states,
                ))
            }
        }
    }
}

/// Price `prog` with the pure HBSP^k cost model (no microcosts): runs
/// the program's supersteps through [`hbsp_sim::ModelEvaluator`] and
/// returns the `Σ (w + g·h + L)` report. The analytic counterpart of
/// [`Executor::run`].
pub fn predict_program<P: SpmdProgram>(
    tree: Arc<MachineTree>,
    prog: &P,
) -> Result<hbsp_core::CostReport, SimError> {
    hbsp_sim::ModelEvaluator::new(tree).run(prog)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hbsp_core::{ProcEnv, ProcId, SpmdContext, StepOutcome, SyncScope, TreeBuilder};

    struct PingPong;
    impl SpmdProgram for PingPong {
        type State = u32;
        fn init(&self, _env: &ProcEnv) -> u32 {
            0
        }
        fn step(
            &self,
            step: usize,
            env: &ProcEnv,
            state: &mut u32,
            ctx: &mut dyn SpmdContext,
        ) -> StepOutcome {
            *state += ctx.messages().len() as u32;
            if step >= 2 {
                return StepOutcome::Done;
            }
            let peer = ProcId(1 - env.pid.0);
            ctx.send(peer, 0, vec![0; 16]);
            StepOutcome::Continue(SyncScope::global(&env.tree))
        }
    }

    fn tree() -> Arc<MachineTree> {
        Arc::new(TreeBuilder::flat(1.0, 10.0, &[(1.0, 1.0), (2.0, 0.5)]).unwrap())
    }

    #[test]
    fn engines_agree_through_executor() {
        let prog = PingPong;
        let (sim_out, sim_states) = Executor::simulator(tree()).run(&prog).unwrap();
        let (thr_out, thr_states) = Executor::threads(tree()).run(&prog).unwrap();
        assert_eq!(sim_states, thr_states);
        assert_eq!(sim_out.total_time(), thr_out.total_time());
        assert!(sim_out.wall.is_none());
        assert!(thr_out.wall.is_some());
    }

    #[test]
    fn predict_program_prices_the_same_program() {
        let report = predict_program(tree(), &PingPong).unwrap();
        assert_eq!(report.num_steps(), 3);
        assert!(report.total() > 0.0);
        // The model prediction is a lower bound on the simulated time
        // (the simulator adds pack/wire/unpack and per-message
        // overheads the model abstracts).
        let (sim_out, _) = Executor::simulator(tree()).run(&PingPong).unwrap();
        assert!(report.total() <= sim_out.total_time());
    }

    #[test]
    fn trace_flows_through_both_engines() {
        for exec in [Executor::simulator(tree()), Executor::threads(tree())] {
            let (out, _) = exec.trace(true).run(&PingPong).unwrap();
            let tls = out.sim.timelines.expect("tracing enabled");
            assert_eq!(tls.len(), 2);
            assert!(tls.iter().all(|t| !t.spans.is_empty()));
        }
        let (plain, _) = Executor::simulator(tree()).run(&PingPong).unwrap();
        assert!(plain.sim.timelines.is_none());
    }

    #[test]
    fn custom_config_flows_through() {
        let cfg = NetConfig::ideal();
        let (a, _) = Executor::simulator_with(tree(), cfg.clone())
            .run(&PingPong)
            .unwrap();
        let (b, _) = Executor::threads_with(tree(), cfg).run(&PingPong).unwrap();
        assert_eq!(a.total_time(), b.total_time());
        // Ideal network is cheaper than the PVM-like default.
        let (c, _) = Executor::simulator(tree()).run(&PingPong).unwrap();
        assert!(a.total_time() < c.total_time());
    }
}
