//! The typed superstep context.

use crate::codec;
use crate::enquiry::TreeEnquiry;
use hbsp_core::{
    Level, MachineTree, MsgBatch, MsgView, ProcEnv, ProcId, SpmdContext, StepOutcome, SyncScope,
};

/// Ergonomic, typed wrapper over the raw engine context. Construct one
/// at the top of each superstep body:
///
/// ```ignore
/// fn step(&self, step: usize, env: &ProcEnv, st: &mut S, raw: &mut dyn SpmdContext) -> StepOutcome {
///     let mut ctx = Ctx::new(env, raw);
///     ...
/// }
/// ```
pub struct Ctx<'a> {
    env: &'a ProcEnv,
    raw: &'a mut dyn SpmdContext,
}

impl<'a> Ctx<'a> {
    /// Wrap the engine context.
    pub fn new(env: &'a ProcEnv, raw: &'a mut dyn SpmdContext) -> Self {
        Ctx { env, raw }
    }

    // ----- enquiry ------------------------------------------------------

    /// This processor's rank (`bsp_pid`).
    pub fn pid(&self) -> ProcId {
        self.env.pid
    }

    /// Total processors (`bsp_nprocs`).
    pub fn nprocs(&self) -> usize {
        self.env.nprocs
    }

    /// The machine.
    pub fn tree(&self) -> &MachineTree {
        &self.env.tree
    }

    /// Relative compute speed of this processor (1 = fastest).
    pub fn speed(&self) -> f64 {
        self.env.speed()
    }

    /// Relative communication slowness `r` of this processor.
    pub fn r(&self) -> f64 {
        self.env.r()
    }

    /// The machine-wide fastest processor (the paper's `P_f`).
    pub fn fastest(&self) -> ProcId {
        self.env.tree.fastest_proc()
    }

    /// The machine-wide slowest processor (the paper's `P_s`).
    pub fn slowest(&self) -> ProcId {
        self.env.tree.slowest_proc()
    }

    /// Coordinator of this processor's cluster at `level`.
    pub fn coordinator(&self, level: Level) -> ProcId {
        self.env.tree.coordinator_of(self.env.pid, level)
    }

    /// Members of this processor's cluster at `level` (rank order).
    pub fn cluster(&self, level: Level) -> Vec<ProcId> {
        self.env.tree.cluster_members(self.env.pid, level)
    }

    // ----- message passing ----------------------------------------------

    /// Send raw bytes.
    pub fn send_bytes(&mut self, dst: ProcId, tag: u32, payload: &[u8]) {
        self.raw.send(dst, tag, payload);
    }

    /// Send a `u32` buffer, encoded straight into the outbox arena (no
    /// temporary buffer).
    pub fn send_u32s(&mut self, dst: ProcId, tag: u32, values: &[u32]) {
        self.raw.send_with(dst, tag, values.len() * 4, &mut |buf| {
            codec::write_u32s(values, buf)
        });
    }

    /// Send a `u64` buffer, encoded straight into the outbox arena.
    pub fn send_u64s(&mut self, dst: ProcId, tag: u32, values: &[u64]) {
        self.raw.send_with(dst, tag, values.len() * 8, &mut |buf| {
            codec::write_u64s(values, buf)
        });
    }

    /// Send an `f64` buffer, encoded straight into the outbox arena.
    pub fn send_f64s(&mut self, dst: ProcId, tag: u32, values: &[f64]) {
        self.raw.send_with(dst, tag, values.len() * 8, &mut |buf| {
            codec::write_f64s(values, buf)
        });
    }

    /// All messages delivered for this superstep (arrival order).
    pub fn messages(&self) -> &MsgBatch {
        self.raw.messages()
    }

    /// Decode and concatenate every delivered payload as `u32`s, in
    /// arrival order.
    pub fn recv_all_u32s(&self) -> Vec<u32> {
        let mut out = Vec::new();
        for m in self.raw.messages() {
            out.extend(codec::decode_u32s(m.payload));
        }
        out
    }

    /// Decode messages with `tag` as `(src, values)` pairs, arrival
    /// order.
    pub fn recv_tagged_u32s(&self, tag: u32) -> Vec<(ProcId, Vec<u32>)> {
        self.raw
            .messages()
            .iter()
            .filter(|m| m.tag == tag)
            .map(|m| (m.src, codec::decode_u32s(m.payload)))
            .collect()
    }

    /// The payload from `src` with `tag`, if any (first match).
    pub fn recv_from(&self, src: ProcId, tag: u32) -> Option<MsgView<'_>> {
        self.raw
            .messages()
            .iter()
            .find(|m| m.src == src && m.tag == tag)
    }

    // ----- work and synchronization ---------------------------------------

    /// Charge local computation (units at fastest-machine speed).
    pub fn charge(&mut self, units: f64) {
        self.raw.charge(units);
    }

    /// End the superstep with a global barrier (level `k`).
    pub fn sync_global(&self) -> StepOutcome {
        StepOutcome::Continue(SyncScope::global(&self.env.tree))
    }

    /// End the superstep with a level-`i` barrier (each level-`i`
    /// cluster synchronizes independently — a super^i-step boundary).
    pub fn sync_level(&self, level: Level) -> StepOutcome {
        StepOutcome::Continue(SyncScope::Level(level))
    }

    /// Finish the program on this processor (all processors must finish
    /// at the same superstep).
    pub fn done(&self) -> StepOutcome {
        StepOutcome::Done
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hbsp_core::{SpmdProgram, TreeBuilder};
    use hbsp_sim::Simulator;
    use std::sync::Arc;

    /// Odd pids send (pid, pid²) to even pid-1; evens verify.
    struct PairTalk;
    impl SpmdProgram for PairTalk {
        type State = bool;
        fn init(&self, _env: &ProcEnv) -> bool {
            false
        }
        fn step(
            &self,
            step: usize,
            env: &ProcEnv,
            ok: &mut bool,
            raw: &mut dyn SpmdContext,
        ) -> StepOutcome {
            let mut ctx = Ctx::new(env, raw);
            match step {
                0 => {
                    let me = ctx.pid().0;
                    if me % 2 == 1 {
                        ctx.send_u32s(ProcId(me - 1), 3, &[me, me * me]);
                    }
                    ctx.charge(5.0);
                    ctx.sync_global()
                }
                _ => {
                    let me = ctx.pid().0;
                    if me.is_multiple_of(2) {
                        let got = ctx.recv_tagged_u32s(3);
                        *ok = got.len() == 1
                            && got[0].0 == ProcId(me + 1)
                            && got[0].1 == vec![me + 1, (me + 1) * (me + 1)];
                        // recv_from sees the same message.
                        assert!(ctx.recv_from(ProcId(me + 1), 3).is_some());
                        assert!(ctx.recv_from(ProcId(me + 1), 99).is_none());
                    } else {
                        *ok = ctx.messages().is_empty();
                    }
                    ctx.done()
                }
            }
        }
    }

    #[test]
    fn typed_send_recv_round_trip() {
        let tree = Arc::new(
            TreeBuilder::flat(1.0, 1.0, &[(1.0, 1.0), (1.0, 1.0), (2.0, 0.5), (2.0, 0.5)]).unwrap(),
        );
        let sim = Simulator::new(tree);
        let (_, states) = sim.run_with_states(&PairTalk).unwrap();
        assert!(
            states.iter().all(|&ok| ok),
            "every processor verified its traffic"
        );
    }

    #[test]
    fn enquiry_through_ctx() {
        struct Enq;
        impl SpmdProgram for Enq {
            type State = (u32, u32);
            fn init(&self, _env: &ProcEnv) -> (u32, u32) {
                (u32::MAX, u32::MAX)
            }
            fn step(
                &self,
                _step: usize,
                env: &ProcEnv,
                out: &mut (u32, u32),
                raw: &mut dyn SpmdContext,
            ) -> StepOutcome {
                let ctx = Ctx::new(env, raw);
                *out = (ctx.fastest().0, ctx.slowest().0);
                assert_eq!(ctx.cluster(1).len(), ctx.nprocs());
                ctx.done()
            }
        }
        let tree = Arc::new(TreeBuilder::flat(1.0, 1.0, &[(2.0, 0.5), (1.0, 1.0)]).unwrap());
        let (_, states) = Simulator::new(tree).run_with_states(&Enq).unwrap();
        assert!(states.iter().all(|&s| s == (1, 0)));
    }
}
