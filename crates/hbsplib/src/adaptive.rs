//! Closed-loop adaptive execution: calibrate → re-tune → re-balance
//! while the job is running.
//!
//! The paper's pipeline is open-loop: benchmark the machine once
//! (§5's BYTEmark numbers), write the machine file, tune, run. This
//! module closes the loop. [`AdaptiveExecutor`] runs a long job as a
//! sequence of *segments* (every [`AdaptiveConfig::window`] rounds is
//! one checkpointed superstep boundary) and drives a deterministic
//! controller between segments:
//!
//! * **Observe** — a fresh [`Recorder`] captures the segment's
//!   [`StepTrace`]s (virtual-time telemetry, bit-identical on both
//!   engines).
//! * **Detect** — the observed steps are folded against the
//!   prediction the planner made for the same schedule
//!   ([`DriftReport`]); the mean absolute per-step relative error is
//!   the drift statistic.
//! * **Replan** — when drift exceeds
//!   [`AdaptiveConfig::drift_threshold`], the cost model is
//!   re-calibrated from the trailing window
//!   ([`hbsp_obs::calibrate_robust`], so faulted steps don't poison
//!   the fit) and folded into the *belief tree* via
//!   [`MachineTree::reparameterize`]. The next segment's
//!   [`AdaptivePlan::lower`] call re-tunes on that belief — including
//!   switching flat ↔ hierarchical strategies mid-job — and
//!   re-partitions `c_{i,j}` workloads in proportion to the freshly
//!   observed speeds.
//! * **Migrate** — the re-lowered program executes on the *physical*
//!   tree from the checkpointed boundary, with the fault plan
//!   re-based onto the remaining window ([`FaultPlan::shifted`]) the
//!   same way [`RecoveryPolicy::Degrade`] replays from a boundary.
//!
//! Every decision depends only on virtual-time telemetry, so the
//! [`AdaptiveOutcome::decision_log`] is bit-identical across the
//! simulator and the threaded runtime — the same determinism contract
//! the engines themselves keep. The static control arm
//! ([`AdaptiveExecutor::run_static`]) is the identical loop with an
//! infinite threshold: same segmentation, same telemetry, zero
//! re-plans — so "adaptive beats static" isolates exactly the value
//! of closing the loop.
//!
//! [`RecoveryPolicy::Degrade`]: crate::executor::RecoveryPolicy

use crate::executor::Executor;
use hbsp_core::{MachineTree, ObservedParams, SuperstepCost};
use hbsp_obs::{
    calibrate_robust, proc_estimates, CausalKind, CausalSpan, CausalTree, DriftReport, EventTrace,
    ObsEvent, PostmortemBundle, Recorder,
};
use hbsp_sim::SimError;
use std::fmt;
use std::sync::Arc;
use std::time::Duration;

#[cfg(doc)]
use hbsp_obs::StepTrace;
#[cfg(doc)]
use hbsp_sim::FaultPlan;

/// A re-plannable job: something that can lower itself onto any
/// (belief) tree for a given number of remaining rounds, together
/// with the cost model's per-superstep claim about the result.
///
/// The contract that makes mid-job migration safe: the belief tree
/// always has the same shape and pids as the physical tree (it is a
/// [`MachineTree::reparameterize`] of it), so a program lowered on
/// the belief is valid to execute on the physical machine.
pub trait AdaptivePlan {
    /// The program a lowering produces.
    type Prog: hbsp_core::SpmdProgram;

    /// Tune and lower `rounds` rounds of the job for `tree`.
    fn lower(&self, tree: &Arc<MachineTree>, rounds: usize) -> Result<Planned<Self::Prog>, String>;
}

/// One lowered segment: the program, the cost model's per-superstep
/// prediction for it (on the tree it was lowered for), and a
/// human-readable strategy tag for the decision log.
pub struct Planned<P> {
    /// The executable program.
    pub prog: P,
    /// Predicted cost of each superstep the program will execute, in
    /// order (free drains included, at zero).
    pub predicted: Vec<SuperstepCost>,
    /// Strategy tag, e.g. `broadcast/two_phase`.
    pub strategy: String,
}

/// Controller tuning knobs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdaptiveConfig {
    /// Rounds per segment: the controller observes, detects, and
    /// (maybe) re-plans at every `window`-round superstep boundary.
    pub window: usize,
    /// Re-plan when the segment's mean absolute per-step relative
    /// error exceeds this. `f64::INFINITY` never re-plans (the static
    /// control arm).
    pub drift_threshold: f64,
    /// `max_trim` handed to [`hbsp_obs::calibrate_robust`]: the
    /// fraction of the window that residual trimming may discard as
    /// transient glitches.
    pub calibration_trim: f64,
}

impl Default for AdaptiveConfig {
    fn default() -> Self {
        AdaptiveConfig {
            window: 4,
            drift_threshold: 0.25,
            calibration_trim: 0.25,
        }
    }
}

/// Why an [`AdaptiveExecutor`] run failed.
#[derive(Debug)]
pub enum AdaptiveError {
    /// The planner could not lower a segment (e.g. the collective
    /// does not support repetition).
    Plan(String),
    /// An engine run died with a typed error. The attached
    /// [`PostmortemBundle`] (when the dying segment had telemetry)
    /// carries the segment's step records, events, metrics, the
    /// decision log up to the failure, and the causal span tree.
    Exec(SimError, Option<Box<PostmortemBundle>>),
}

impl AdaptiveError {
    /// The forensics bundle captured at the failing segment, if any.
    pub fn bundle(&self) -> Option<&PostmortemBundle> {
        match self {
            AdaptiveError::Exec(_, Some(b)) => Some(b),
            _ => None,
        }
    }
}

impl fmt::Display for AdaptiveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AdaptiveError::Plan(msg) => write!(f, "adaptive planning failed: {msg}"),
            AdaptiveError::Exec(err, _) => write!(f, "adaptive execution failed: {err}"),
        }
    }
}

impl std::error::Error for AdaptiveError {}

impl From<SimError> for AdaptiveError {
    fn from(err: SimError) -> Self {
        AdaptiveError::Exec(err, None)
    }
}

/// What the controller did at one segment boundary.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Action {
    /// Drift under threshold: keep the current belief and plan.
    Keep,
    /// Drift over threshold: belief re-calibrated, next segment
    /// re-tuned on it.
    Replan,
    /// Drift over threshold but re-calibration failed (singular fit
    /// *and* unusable fallback): belief kept unchanged.
    Hold,
}

impl fmt::Display for Action {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Action::Keep => "keep",
            Action::Replan => "replan",
            Action::Hold => "hold",
        })
    }
}

/// One controller decision, recorded at a segment boundary.
#[derive(Debug, Clone, PartialEq)]
pub struct Decision {
    /// Segment index (0-based).
    pub segment: usize,
    /// Rounds executed in this segment.
    pub rounds: usize,
    /// Supersteps executed in this segment.
    pub steps: usize,
    /// Strategy tag of the plan that ran.
    pub strategy: String,
    /// Predicted virtual time of the segment (on the belief tree it
    /// was lowered for).
    pub predicted: f64,
    /// Observed virtual time of the segment.
    pub observed: f64,
    /// Drift statistic (mean absolute per-step relative error;
    /// `inf` when observation and prediction disagree structurally).
    pub drift: f64,
    /// What the controller did.
    pub action: Action,
}

impl Decision {
    /// One canonical log line. `f64`s print with Rust's
    /// shortest-roundtrip formatting, so textual equality of two logs
    /// is bit equality of every number in them.
    pub fn render(&self) -> String {
        format!(
            "segment={} rounds={} steps={} strategy={} predicted={} observed={} drift={} action={}",
            self.segment,
            self.rounds,
            self.steps,
            self.strategy,
            self.predicted,
            self.observed,
            self.drift,
            self.action
        )
    }
}

/// A completed adaptive run.
#[derive(Debug, Clone)]
pub struct AdaptiveOutcome {
    /// Total virtual time accumulated across all segments (each
    /// engine run restarts its clock at zero; this is the sum).
    pub total_time: f64,
    /// Accumulated wall-clock time, present for threaded runs.
    pub wall: Option<Duration>,
    /// Segments executed.
    pub segments: usize,
    /// Re-plans performed.
    pub replans: usize,
    /// Every controller decision, in order.
    pub decisions: Vec<Decision>,
    /// The final belief tree (the physical tree re-parameterized by
    /// every accepted calibration).
    pub belief: Arc<MachineTree>,
    /// Causal span tree of the run: one [`CausalKind::Segment`] span
    /// per segment (offset by the cumulative virtual time, since each
    /// engine run restarts its clock) containing one
    /// [`CausalKind::Superstep`] span per retained step. Supersteps
    /// discarded by the per-segment telemetry bound are not spanned.
    pub spans: Vec<CausalSpan>,
}

impl AdaptiveOutcome {
    /// The canonical decision log: one [`Decision::render`] line per
    /// segment. Bit-identical across engines for the same job.
    pub fn decision_log(&self) -> String {
        let mut out = String::new();
        for d in &self.decisions {
            out.push_str(&d.render());
            out.push('\n');
        }
        out
    }
}

/// Closed-loop executor: wraps a configured [`Executor`] (engine
/// kind, machine, microcosts, fault plan, probe) and runs an
/// [`AdaptivePlan`] through the Observe → Detect → Replan → Migrate
/// controller.
pub struct AdaptiveExecutor {
    exec: Executor,
    cfg: AdaptiveConfig,
}

impl AdaptiveExecutor {
    /// Wrap `exec` with default controller knobs.
    pub fn new(exec: Executor) -> Self {
        AdaptiveExecutor {
            exec,
            cfg: AdaptiveConfig::default(),
        }
    }

    /// Override the controller knobs.
    pub fn config(mut self, cfg: AdaptiveConfig) -> Self {
        self.cfg = cfg;
        self
    }

    /// Run `total_rounds` rounds of `plan` adaptively.
    pub fn run<P: AdaptivePlan>(
        &self,
        plan: &P,
        total_rounds: usize,
    ) -> Result<AdaptiveOutcome, AdaptiveError> {
        self.run_with_threshold(plan, total_rounds, self.cfg.drift_threshold)
    }

    /// The static control arm: the identical segmented loop with an
    /// infinite drift threshold, so the initial tuning decision is
    /// never revisited. Comparing [`AdaptiveExecutor::run`] against
    /// this isolates the value of closing the loop.
    pub fn run_static<P: AdaptivePlan>(
        &self,
        plan: &P,
        total_rounds: usize,
    ) -> Result<AdaptiveOutcome, AdaptiveError> {
        self.run_with_threshold(plan, total_rounds, f64::INFINITY)
    }

    fn run_with_threshold<P: AdaptivePlan>(
        &self,
        plan: &P,
        total_rounds: usize,
        threshold: f64,
    ) -> Result<AdaptiveOutcome, AdaptiveError> {
        // Planning happens on the belief tree; execution always on
        // the physical tree. Re-parameterization preserves shape and
        // pids, so plans transfer.
        let mut belief = self.exec.tree().clone();
        let full_faults = self.exec.faults_ref().clone();
        let mut rounds_done = 0usize;
        let mut steps_done = 0usize;
        let mut total_time = 0.0f64;
        let mut wall = Duration::ZERO;
        let mut saw_wall = false;
        let mut decisions: Vec<Decision> = Vec::new();
        let mut causal = CausalTree::new();
        let mut replans = 0usize;
        let mut segment = 0usize;
        while rounds_done < total_rounds {
            let seg_rounds = self.cfg.window.max(1).min(total_rounds - rounds_done);
            let planned = plan
                .lower(&belief, seg_rounds)
                .map_err(AdaptiveError::Plan)?;
            // Migrate: execute on the physical machine from the
            // checkpointed boundary. `check(true)` forces the
            // hbsp-check preflight on every re-lowered schedule, and
            // the fault plan is re-based so faults scripted against
            // global superstep indices fire in the right segment.
            // The recorder is bounded at the planned step count: a
            // well-behaved segment drops nothing, and a runaway one
            // stops accumulating memory (and reads as infinite drift
            // below).
            let recorder = Arc::new(Recorder::new().keep_last(planned.predicted.len().max(1)));
            let seg_exec = self
                .exec
                .clone()
                .faults(full_faults.shifted(steps_done))
                .check(true)
                .probe(recorder.clone());
            let seg_offset = total_time;
            let (outcome, _states) = match seg_exec.run(&planned.prog) {
                Ok(ok) => ok,
                Err(err) => {
                    let bundle = self.segment_bundle(
                        &err,
                        &full_faults,
                        &recorder,
                        &causal,
                        &decisions,
                        segment,
                        seg_offset,
                    );
                    return Err(AdaptiveError::Exec(err, Some(Box::new(bundle))));
                }
            };
            total_time += outcome.total_time();
            if let Some(w) = outcome.wall {
                wall += w;
                saw_wall = true;
            }
            // Observe.
            let steps = recorder.steps();
            let seg_steps = steps.len();
            steps_done += seg_steps;
            rounds_done += seg_rounds;
            let seg_span = causal.push(
                CausalKind::Segment,
                format!("segment {segment}"),
                None,
                seg_offset,
                seg_offset + outcome.total_time(),
            );
            causal.push_steps(Some(seg_span), &steps, seg_offset);
            // Detect. A structural mismatch — step counts disagree
            // with the plan, or the bounded recorder had to discard
            // steps (the program did not execute the schedule the
            // planner priced) — is infinite drift: always over any
            // finite threshold.
            let (drift, predicted_total, observed_total) = if recorder.dropped() > 0 {
                (
                    f64::INFINITY,
                    planned.predicted.iter().map(SuperstepCost::total).sum(),
                    outcome.total_time(),
                )
            } else {
                match DriftReport::new(&steps, &planned.predicted) {
                    Ok(rep) => (
                        rep.mean_abs_rel_error(),
                        rep.predicted_total(),
                        rep.observed_total(),
                    ),
                    Err(_) => (
                        f64::INFINITY,
                        planned.predicted.iter().map(SuperstepCost::total).sum(),
                        outcome.total_time(),
                    ),
                }
            };
            // Replan: only when drift trips the threshold and work
            // remains. (`inf > inf` is false, so the static arm never
            // re-plans, even on structural mismatch.)
            let mut action = Action::Keep;
            if drift > threshold && rounds_done < total_rounds {
                match recalibrated(
                    &belief,
                    &steps,
                    &recorder.events(),
                    self.cfg.calibration_trim,
                ) {
                    Some(updated) => {
                        belief = updated;
                        replans += 1;
                        action = Action::Replan;
                        if let Some(p) = self.exec.probe_ref() {
                            if p.enabled() {
                                p.on_event(&ObsEvent::Replan {
                                    segment,
                                    step: steps_done,
                                    drift,
                                    strategy: &planned.strategy,
                                    predicted: predicted_total,
                                });
                            }
                        }
                    }
                    None => action = Action::Hold,
                }
            }
            decisions.push(Decision {
                segment,
                rounds: seg_rounds,
                steps: seg_steps,
                strategy: planned.strategy,
                predicted: predicted_total,
                observed: observed_total,
                drift,
                action,
            });
            segment += 1;
        }
        Ok(AdaptiveOutcome {
            total_time,
            wall: saw_wall.then_some(wall),
            segments: segment,
            replans,
            decisions,
            belief,
            spans: causal.into_spans(),
        })
    }

    /// Snapshot forensics for a segment that died mid-run: the
    /// segment recorder's retained steps/events/metrics, the decision
    /// log up to the failure, and the causal span tree so far plus a
    /// span for the dying segment (ending at its last retained
    /// release).
    #[allow(clippy::too_many_arguments)]
    fn segment_bundle(
        &self,
        err: &SimError,
        full_faults: &hbsp_sim::FaultPlan,
        recorder: &Recorder,
        causal: &CausalTree,
        decisions: &[Decision],
        segment: usize,
        seg_offset: f64,
    ) -> PostmortemBundle {
        let steps = recorder.steps();
        let mut spans = causal.spans().to_vec();
        let mut tail = CausalTree::new();
        let seg_end = seg_offset
            + steps
                .iter()
                .flat_map(|s| s.releases().iter().copied())
                .fold(0.0f64, f64::max);
        let seg_span = tail.push(
            CausalKind::Segment,
            format!("segment {segment}"),
            None,
            seg_offset,
            seg_end,
        );
        tail.push_steps(Some(seg_span), &steps, seg_offset);
        let base = spans.len();
        for mut cs in tail.into_spans() {
            cs.id += base;
            cs.parent = cs.parent.map(|p| p + base);
            spans.push(cs);
        }
        let mut decision_log = String::new();
        for d in decisions {
            decision_log.push_str(&d.render());
            decision_log.push('\n');
        }
        PostmortemBundle {
            reason: err.to_string(),
            engine: self.exec.engine_name().to_string(),
            step: steps.last().map(|s| s.step).unwrap_or(0),
            machine: self.exec.tree().to_string(),
            fault_plan: full_faults.render(),
            steps,
            events: recorder.events(),
            decision_log,
            metrics: recorder.metrics(),
            spans,
        }
    }
}

/// Fold the trailing window's telemetry into a new belief tree.
///
/// The full robust fit recovers `ĝ`, per-level `L̂`, speeds, and `r̂`
/// at once. When it is singular — a window of identical-`h` steps
/// cannot separate `g` from `L`, the shape of a repeated single-step
/// body — the fallback keeps the belief's `g`/`L` and refreshes only
/// the per-processor estimates. Crucially the fallback uses *raw*
/// send rates, not the min-normalized `r̂`: with a lone sender (a
/// one-phase broadcast root) normalization maps the only observation
/// to 1 and erases the straggle signal, while the raw rate is in
/// belief-`r` units (`send_word_cost ≈ 1`) and survives the merge
/// with the unobserved processors' kept beliefs. `None` only when
/// re-parameterization itself rejects the estimates.
///
/// Public because every closed-loop consumer (the [`AdaptiveExecutor`]
/// here, `hbsp-sched`'s batch re-placement) must fold telemetry into a
/// belief the same way, or their decision logs diverge.
pub fn recalibrated(
    belief: &Arc<MachineTree>,
    steps: &[hbsp_obs::StepTrace],
    events: &[EventTrace],
    max_trim: f64,
) -> Option<Arc<MachineTree>> {
    let params = match calibrate_robust(steps, events, max_trim) {
        Ok(rc) => ObservedParams {
            g: Some(rc.calibration.g),
            r_by_proc: rc.calibration.r_by_proc,
            speed_by_proc: rc.calibration.speed_by_proc,
            l_by_level: rc.calibration.l_by_level,
        },
        Err(_) => {
            let est = proc_estimates(steps, belief.g());
            ObservedParams {
                g: None,
                r_by_proc: raw_send_rates(steps, belief.g()),
                speed_by_proc: est.speed_by_proc,
                l_by_level: Vec::new(),
            }
        }
    };
    belief.reparameterize(&params).ok().map(Arc::new)
}

/// Per-processor raw send rates over the window: observed pack time
/// per `g`-word, unnormalized (0 = sent nothing, keep the belief).
/// Under the default microcosts (`send_word_cost = 1`) this is in the
/// same units as the machine file's `r`, up to per-message overhead.
fn raw_send_rates(steps: &[hbsp_obs::StepTrace], g: f64) -> Vec<f64> {
    let p = steps.iter().map(|s| s.procs()).max().unwrap_or(0);
    let mut time = vec![0.0f64; p];
    let mut words = vec![0u64; p];
    for s in steps {
        for i in 0..s.procs() {
            time[i] += s.send_done()[i] - s.compute_done()[i];
            words[i] += s.sent_words()[i];
        }
    }
    (0..p)
        .map(|i| {
            if words[i] > 0 && g > 0.0 && time[i] > 0.0 {
                time[i] / (g * words[i] as f64)
            } else {
                0.0
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use hbsp_core::{CostModel, HRelation, MachineId, TreeBuilder};
    use hbsp_core::{ProcEnv, ProcId, SpmdContext, SpmdProgram, StepOutcome, SyncScope};
    use hbsp_sim::FaultPlan;

    /// A trivially re-plannable job: `rounds` all-to-all gossip
    /// supersteps plus a final drain, priced with the pure cost
    /// model on whatever tree it is lowered for.
    struct GossipPlan;

    struct GossipProg {
        rounds: usize,
    }
    impl SpmdProgram for GossipProg {
        type State = u32;
        fn init(&self, _env: &ProcEnv) -> u32 {
            0
        }
        fn step(
            &self,
            step: usize,
            env: &ProcEnv,
            state: &mut u32,
            ctx: &mut dyn SpmdContext,
        ) -> StepOutcome {
            *state += ctx.messages().len() as u32;
            if step >= self.rounds {
                return StepOutcome::Done;
            }
            for p in 0..env.nprocs {
                if p != env.pid.rank() {
                    ctx.send(ProcId(p as u32), 0, &vec![0u8; 4]);
                }
            }
            ctx.charge(1.0);
            StepOutcome::Continue(SyncScope::global(&env.tree))
        }
    }

    impl AdaptivePlan for GossipPlan {
        type Prog = GossipProg;
        fn lower(
            &self,
            tree: &Arc<MachineTree>,
            rounds: usize,
        ) -> Result<Planned<GossipProg>, String> {
            let cm = CostModel::new(tree);
            let p = tree.num_procs();
            let work: Vec<(ProcId, f64)> = (0..p).map(|i| (ProcId(i as u32), 1.0)).collect();
            // Every processor sends one word to each peer.
            let mut hr = HRelation::new();
            for i in 0..p {
                for j in 0..p {
                    if i != j {
                        hr.send(MachineId::new(0, i as u32), MachineId::new(0, j as u32), 1);
                    }
                }
            }
            let step_cost = cm.schedule_step(Some(tree.height()), &work, &hr);
            let mut predicted = vec![step_cost; rounds];
            predicted.push(cm.schedule_step(None, &[], &HRelation::new())); // free drain
            Ok(Planned {
                prog: GossipProg { rounds },
                predicted,
                strategy: "gossip/flat".to_string(),
            })
        }
    }

    fn clustered() -> Arc<MachineTree> {
        Arc::new(
            TreeBuilder::two_level(
                2.0,
                500.0,
                &[
                    (50.0, vec![(1.0, 1.0), (2.0, 0.5)]),
                    (60.0, vec![(1.5, 0.8), (3.0, 0.3)]),
                ],
            )
            .unwrap(),
        )
    }

    #[test]
    fn static_arm_never_replans() {
        let adaptive = AdaptiveExecutor::new(Executor::simulator(clustered()));
        let out = adaptive.run_static(&GossipPlan, 8).unwrap();
        assert_eq!(out.replans, 0);
        assert_eq!(out.segments, 2);
        assert!(out.decisions.iter().all(|d| d.action == Action::Keep));
        assert!(out.total_time > 0.0);
    }

    #[test]
    fn decision_logs_are_bit_identical_across_engines() {
        let faults = FaultPlan::new().straggle_ramp(ProcId(3), 2, 6, 2.0, 1.0);
        let run = |exec: Executor| {
            AdaptiveExecutor::new(exec.faults(faults.clone()))
                .config(AdaptiveConfig {
                    window: 3,
                    drift_threshold: 0.4,
                    calibration_trim: 0.25,
                })
                .run(&GossipPlan, 9)
                .unwrap()
        };
        let sim = run(Executor::simulator(clustered()));
        let thr = run(Executor::threads(clustered()));
        assert_eq!(sim.decision_log(), thr.decision_log());
        assert_eq!(sim.total_time, thr.total_time);
        assert!(sim.wall.is_none());
        assert!(thr.wall.is_some());
        // The log is non-trivial: one line per segment.
        assert_eq!(sim.decision_log().lines().count(), sim.segments);
    }

    #[test]
    fn drift_over_threshold_triggers_a_replan() {
        // A hard persistent straggler on P3 from step 2 on: drift in
        // segment 0 stays low, later segments trip the threshold.
        let faults = FaultPlan::new().straggle_ramp(ProcId(3), 2, 8, 4.0, 2.0);
        let out = AdaptiveExecutor::new(Executor::simulator(clustered()).faults(faults))
            .config(AdaptiveConfig {
                window: 2,
                drift_threshold: 0.5,
                calibration_trim: 0.25,
            })
            .run(&GossipPlan, 10)
            .unwrap();
        assert!(out.replans > 0, "log:\n{}", out.decision_log());
        assert!(out.decisions.iter().any(|d| d.action == Action::Replan));
        // The belief tree moved away from the machine file.
        let physical = clustered();
        assert_eq!(out.belief.num_procs(), physical.num_procs());
        out.belief.validate().unwrap();
    }

    #[test]
    fn causal_spans_nest_and_match_across_engines() {
        let faults = FaultPlan::new().straggle_ramp(ProcId(3), 2, 6, 2.0, 1.0);
        let run = |exec: Executor| {
            AdaptiveExecutor::new(exec.faults(faults.clone()))
                .config(AdaptiveConfig {
                    window: 3,
                    drift_threshold: 0.4,
                    calibration_trim: 0.25,
                })
                .run(&GossipPlan, 9)
                .unwrap()
        };
        let sim = run(Executor::simulator(clustered()));
        let thr = run(Executor::threads(clustered()));
        hbsp_obs::check_causal_spans(&sim.spans).unwrap();
        assert_eq!(sim.spans, thr.spans);
        // One segment span per segment, each a root; supersteps nest
        // inside them.
        let seg_spans: Vec<_> = sim
            .spans
            .iter()
            .filter(|s| s.kind == CausalKind::Segment)
            .collect();
        assert_eq!(seg_spans.len(), sim.segments);
        assert!(seg_spans.iter().all(|s| s.parent.is_none()));
        assert!(sim
            .spans
            .iter()
            .filter(|s| s.kind == CausalKind::Superstep)
            .all(|s| s.parent.is_some()));
        // Segments tile the cumulative clock: the last ends at
        // total_time.
        let last = seg_spans.last().unwrap();
        assert!((last.end - sim.total_time).abs() < 1e-9 * (1.0 + sim.total_time));
    }

    #[test]
    fn failed_segment_attaches_a_postmortem_bundle() {
        // P2 crashes at (global) step 4 — inside the second segment —
        // and the executor's default recovery policy is fail-fast.
        let faults = FaultPlan::new().crash(ProcId(2), 4);
        let err = AdaptiveExecutor::new(Executor::simulator(clustered()).faults(faults))
            .config(AdaptiveConfig {
                window: 3,
                drift_threshold: 0.4,
                calibration_trim: 0.25,
            })
            .run(&GossipPlan, 9)
            .unwrap_err();
        let bundle = err.bundle().expect("exec failure carries a bundle");
        bundle.validate().unwrap();
        assert_eq!(bundle.engine, "sim");
        assert!(!bundle.reason.is_empty());
        assert!(bundle.machine.contains("cluster") || !bundle.machine.is_empty());
        assert!(bundle.fault_plan.contains("crash"), "{}", bundle.fault_plan);
        // Segment 0 completed, so its decision is in the log.
        assert!(bundle.decision_log.contains("segment=0"));
        // The bundle round-trips and renders as a Chrome trace.
        let reparsed = hbsp_obs::PostmortemBundle::parse(&bundle.to_jsonl()).unwrap();
        assert_eq!(&reparsed, bundle);
        hbsp_obs::validate_chrome_trace(&bundle.chrome_trace()).unwrap();
    }

    #[test]
    fn replans_reach_the_attached_probe() {
        let faults = FaultPlan::new().straggle_ramp(ProcId(3), 2, 8, 4.0, 2.0);
        let recorder = Arc::new(Recorder::new());
        let out = AdaptiveExecutor::new(
            Executor::simulator(clustered())
                .faults(faults)
                .probe(recorder.clone()),
        )
        .config(AdaptiveConfig {
            window: 2,
            drift_threshold: 0.5,
            calibration_trim: 0.25,
        })
        .run(&GossipPlan, 10)
        .unwrap();
        let replans = recorder
            .events()
            .iter()
            .filter(|e| matches!(e, EventTrace::Replan { .. }))
            .count();
        assert_eq!(replans, out.replans);
        assert!(out.replans > 0);
        // The hbsp_adaptive_* metrics moved.
        let text = recorder.metrics_text();
        assert!(
            text.contains("hbsp_adaptive_replans_total"),
            "metrics:\n{text}"
        );
    }
}
