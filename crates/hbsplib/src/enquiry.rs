//! Heterogeneity enquiry: the HBSPlib functions that "return the rank of
//! a processor as well as guide the programmer toward balanced
//! workloads".

use hbsp_core::{Level, MachineTree, NodeIdx, ProcId};

/// Enquiry extensions on [`MachineTree`], mirroring HBSPlib's enquiry
/// API (plus the hierarchical queries an HBSP^k program needs).
pub trait TreeEnquiry {
    /// Relative compute speed of `pid` (1 = fastest).
    fn speed_of(&self, pid: ProcId) -> f64;

    /// Relative communication slowness `r` of `pid`.
    fn r_of(&self, pid: ProcId) -> f64;

    /// Processors sorted fastest-first (speed descending, rank ascending
    /// on ties) — the "rank of a processor" enquiry.
    fn speed_ranking(&self) -> Vec<ProcId>;

    /// The coordinator (representative) processor of the cluster that
    /// contains `pid` at `level`: the fastest leaf of that subtree. At
    /// `level = k` this is the paper's `P_f` for every pid.
    fn coordinator_of(&self, pid: ProcId, level: Level) -> ProcId;

    /// All processors in `pid`'s level-`level` cluster, in rank order
    /// (including `pid`).
    fn cluster_members(&self, pid: ProcId, level: Level) -> Vec<ProcId>;

    /// Index `j` of `pid`'s cluster among the level-`level` machines
    /// (its `M_{level,j}` coordinate), if the cluster exists.
    fn cluster_index(&self, pid: ProcId, level: Level) -> Option<u32>;

    /// The coordinators of all level-`level` machines, in `M_{level,j}`
    /// order — the participant set of a super^`level+1`-step.
    fn level_coordinators(&self, level: Level) -> Vec<ProcId>;
}

impl TreeEnquiry for MachineTree {
    fn speed_of(&self, pid: ProcId) -> f64 {
        self.leaf(pid).params().speed
    }

    fn r_of(&self, pid: ProcId) -> f64 {
        self.leaf(pid).params().r
    }

    fn speed_ranking(&self) -> Vec<ProcId> {
        let mut pids: Vec<ProcId> = (0..self.num_procs()).map(|i| ProcId(i as u32)).collect();
        pids.sort_by(|&a, &b| {
            self.speed_of(b)
                .total_cmp(&self.speed_of(a))
                .then(a.cmp(&b))
        });
        pids
    }

    fn coordinator_of(&self, pid: ProcId, level: Level) -> ProcId {
        let cluster = self
            .cluster_of(pid, level)
            .unwrap_or_else(|| self.leaves()[pid.rank()]);
        self.node(self.node(cluster).representative())
            .proc_id()
            .expect("representative is a leaf")
    }

    fn cluster_members(&self, pid: ProcId, level: Level) -> Vec<ProcId> {
        let cluster: NodeIdx = match self.cluster_of(pid, level) {
            Some(c) => c,
            None => return vec![pid],
        };
        self.subtree_leaves(cluster)
            .into_iter()
            .map(|l| self.node(l).proc_id().expect("leaf"))
            .collect()
    }

    fn cluster_index(&self, pid: ProcId, level: Level) -> Option<u32> {
        self.cluster_of(pid, level)
            .map(|c| self.node(c).machine_id().index)
    }

    fn level_coordinators(&self, level: Level) -> Vec<ProcId> {
        self.level_nodes(level)
            .map(|nodes| {
                nodes
                    .iter()
                    .map(|&n| {
                        self.node(self.node(n).representative())
                            .proc_id()
                            .expect("representative is a leaf")
                    })
                    .collect()
            })
            .unwrap_or_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hbsp_core::TreeBuilder;

    fn hbsp2() -> MachineTree {
        TreeBuilder::two_level(
            1.0,
            100.0,
            &[
                (10.0, vec![(2.0, 0.5), (1.0, 1.0)]),  // P0, P1 (P1 fastest)
                (20.0, vec![(3.0, 0.4), (2.5, 0.45)]), // P2, P3
            ],
        )
        .unwrap()
    }

    #[test]
    fn speed_ranking_is_fastest_first() {
        let t = hbsp2();
        let ranking = t.speed_ranking();
        assert_eq!(ranking, vec![ProcId(1), ProcId(0), ProcId(3), ProcId(2)]);
    }

    #[test]
    fn coordinators_are_fastest_in_cluster() {
        let t = hbsp2();
        assert_eq!(t.coordinator_of(ProcId(0), 1), ProcId(1));
        assert_eq!(t.coordinator_of(ProcId(2), 1), ProcId(3));
        // Global coordinator is P_f for everyone.
        for i in 0..4 {
            assert_eq!(t.coordinator_of(ProcId(i), 2), ProcId(1));
        }
    }

    #[test]
    fn cluster_membership() {
        let t = hbsp2();
        assert_eq!(t.cluster_members(ProcId(0), 1), vec![ProcId(0), ProcId(1)]);
        assert_eq!(t.cluster_members(ProcId(3), 1), vec![ProcId(2), ProcId(3)]);
        assert_eq!(t.cluster_members(ProcId(0), 2).len(), 4);
        assert_eq!(t.cluster_index(ProcId(2), 1), Some(1));
        assert_eq!(t.cluster_index(ProcId(0), 1), Some(0));
    }

    #[test]
    fn level_coordinators_in_mij_order() {
        let t = hbsp2();
        assert_eq!(t.level_coordinators(1), vec![ProcId(1), ProcId(3)]);
        assert_eq!(t.level_coordinators(2), vec![ProcId(1)]);
        // Level 0: every level-0 processor is its own coordinator.
        assert_eq!(t.level_coordinators(0).len(), 4);
    }

    #[test]
    fn enquiry_on_flat_machine() {
        let t = TreeBuilder::flat(1.0, 5.0, &[(1.0, 1.0), (4.0, 0.25)]).unwrap();
        assert_eq!(t.speed_of(ProcId(1)), 0.25);
        assert_eq!(t.r_of(ProcId(1)), 4.0);
        assert_eq!(t.coordinator_of(ProcId(1), 1), ProcId(0));
    }
}
