//! Balanced-workload helpers: the library functions that "guide the
//! programmer toward balanced workloads" (the paper's `c_j` feature).

use hbsp_core::{MachineTree, ModelError, Partition, ProcId};

/// A balanced partition of `n` items over the machine's processors:
/// shares proportional to compute speed (the paper's
/// `c_j` from benchmark indices). See
/// [`hbsp_core::Partition::balanced_for`].
pub fn balanced_partition(tree: &MachineTree, n: u64) -> Result<Partition, ModelError> {
    Partition::balanced_for(tree, n)
}

/// The homogeneous split (`c_j = 1/p`) — the paper's *unbalanced*
/// workload on a heterogeneous machine.
pub fn equal_partition(tree: &MachineTree, n: u64) -> Result<Partition, ModelError> {
    Partition::equal(n, tree.num_procs())
}

/// This processor's share of a balanced `n`-item workload.
pub fn my_share(tree: &MachineTree, pid: ProcId, n: u64) -> Result<u64, ModelError> {
    Ok(balanced_partition(tree, n)?.share(pid))
}

#[cfg(test)]
mod tests {
    use super::*;
    use hbsp_core::TreeBuilder;

    #[test]
    fn balanced_respects_speeds() {
        let t = TreeBuilder::flat(1.0, 0.0, &[(1.0, 1.0), (2.0, 0.5), (4.0, 0.25)]).unwrap();
        let p = balanced_partition(&t, 700).unwrap();
        assert_eq!(p.shares(), &[400, 200, 100]);
        assert_eq!(my_share(&t, ProcId(2), 700).unwrap(), 100);
    }

    #[test]
    fn equal_ignores_speeds() {
        let t = TreeBuilder::flat(1.0, 0.0, &[(1.0, 1.0), (4.0, 0.25)]).unwrap();
        let p = equal_partition(&t, 10).unwrap();
        assert_eq!(p.shares(), &[5, 5]);
    }
}
