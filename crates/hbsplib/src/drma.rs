//! DRMA-style remote memory access, BSPlib's `bsp_put` / `bsp_get`.
//!
//! BSPlib programs may register memory and write into (or read from)
//! other processors' registered regions; all accesses take effect at
//! the next synchronization. HBSPlib "incorporates many of the
//! functions contained in BSPlib", so this module provides the same
//! surface on top of the message-passing substrate:
//!
//! * [`Region::put`] — write `values` into a remote region at `offset`;
//!   visible on the target after the next sync (apply incoming puts
//!   with [`Region::apply`] at the top of the following superstep).
//!   Overlapping puts resolve deterministically in delivery order
//!   (last writer wins), matching BSPlib's in-order put semantics.
//! * [`Region::get`] — request a remote slice. The request travels one
//!   superstep, the serving processor answers from the *value at the
//!   time it applies the request*, and the reply travels one more
//!   superstep: the value is available **two** syncs after the request
//!   (one more than native BSPlib, which fetches inside the sync —
//!   over a message-passing substrate like PVM the round trip is
//!   explicit; the paper's library has the same structure underneath).
//!
//! All traffic is charged to the cost model like any other message.

use crate::codec;
use hbsp_core::{ProcId, SpmdContext};

/// Tag for put traffic.
const TAG_PUT: u32 = 0x44_52_01;
/// Tag for get requests.
const TAG_GET_REQ: u32 = 0x44_52_02;
/// Tag for get replies.
const TAG_GET_REP: u32 = 0x44_52_03;

/// A completed `get`: the requested slice.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GetReply {
    /// The caller-chosen token identifying the request.
    pub token: u32,
    /// The processor the data came from.
    pub src: ProcId,
    /// The requested values.
    pub values: Vec<u32>,
}

/// A registered region of `u32` words, with BSP-synchronized remote
/// access.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Region {
    data: Vec<u32>,
}

impl Region {
    /// Register a region with initial contents.
    pub fn new(data: Vec<u32>) -> Self {
        Region { data }
    }

    /// Register a zeroed region of `len` words.
    pub fn zeroed(len: usize) -> Self {
        Region { data: vec![0; len] }
    }

    /// Local read access.
    pub fn data(&self) -> &[u32] {
        &self.data
    }

    /// Local write access (local writes need no synchronization).
    pub fn data_mut(&mut self) -> &mut [u32] {
        &mut self.data
    }

    /// Length in words.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True if the region is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Queue a write of `values` into `dst`'s region at `offset`.
    /// Takes effect on the target after the next sync, once the target
    /// calls [`Region::apply`].
    pub fn put(ctx: &mut dyn SpmdContext, dst: ProcId, offset: usize, values: &[u32]) {
        // Header word (the offset) plus the values, encoded straight
        // into the outbox arena — no temporary buffer.
        ctx.send_with(dst, TAG_PUT, (values.len() + 1) * 4, &mut |buf| {
            buf[..4].copy_from_slice(&(offset as u32).to_le_bytes());
            codec::write_u32s(values, &mut buf[4..]);
        });
    }

    /// Request `len` words from `src`'s region at `offset`. The reply
    /// arrives two syncs later, carrying `token`.
    pub fn get(ctx: &mut dyn SpmdContext, src: ProcId, offset: usize, len: usize, token: u32) {
        ctx.send_with(src, TAG_GET_REQ, 12, &mut |buf| {
            codec::write_u32s(&[token, offset as u32, len as u32], buf)
        });
    }

    /// Process this superstep's incoming DRMA traffic: apply puts to
    /// the local region (in delivery order — last writer wins), answer
    /// get requests from the current contents, and return any completed
    /// get replies.
    ///
    /// Call once at the top of every superstep body, before reading the
    /// region.
    ///
    /// # Panics
    /// Panics if a put or get addresses out-of-range words — remote
    /// memory corruption is a program bug, not a recoverable condition.
    pub fn apply(&mut self, ctx: &mut dyn SpmdContext) -> Vec<GetReply> {
        let mut replies = Vec::new();
        let mut requests: Vec<(ProcId, u32, usize, usize)> = Vec::new();
        for m in ctx.messages() {
            match m.tag {
                TAG_PUT => {
                    let words = codec::decode_u32s(m.payload);
                    let offset = words[0] as usize;
                    let values = &words[1..];
                    assert!(
                        offset + values.len() <= self.data.len(),
                        "put from {} writes {}..{} past region of {}",
                        m.src,
                        offset,
                        offset + values.len(),
                        self.data.len()
                    );
                    self.data[offset..offset + values.len()].copy_from_slice(values);
                }
                TAG_GET_REQ => {
                    let words = codec::decode_u32s(m.payload);
                    let (token, offset, len) = (words[0], words[1] as usize, words[2] as usize);
                    assert!(
                        offset + len <= self.data.len(),
                        "get from {} reads {}..{} past region of {}",
                        m.src,
                        offset,
                        offset + len,
                        self.data.len()
                    );
                    requests.push((m.src, token, offset, len));
                }
                TAG_GET_REP => {
                    let words = codec::decode_u32s(m.payload);
                    replies.push(GetReply {
                        token: words[0],
                        src: m.src,
                        values: words[1..].to_vec(),
                    });
                }
                _ => {} // not DRMA traffic; the program handles it
            }
        }
        // Answer requests after all puts applied (a get issued in the
        // same superstep as a put to the same words sees the put — the
        // BSPlib ordering).
        for (requester, token, offset, len) in requests {
            let served = &self.data[offset..offset + len];
            ctx.send_with(requester, TAG_GET_REP, (len + 1) * 4, &mut |buf| {
                buf[..4].copy_from_slice(&token.to_le_bytes());
                codec::write_u32s(served, &mut buf[4..]);
            });
        }
        replies
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ClosureProgram, Executor};
    use hbsp_core::{ProcEnv, StepOutcome, SyncScope, TreeBuilder};
    use std::sync::Arc;

    fn machine(p: usize) -> Arc<hbsp_core::MachineTree> {
        let procs: Vec<(f64, f64)> = (0..p)
            .map(|i| (1.0 + i as f64, 1.0 / (1.0 + i as f64)))
            .collect();
        Arc::new(TreeBuilder::flat(1.0, 10.0, &procs).unwrap())
    }

    #[test]
    fn put_is_visible_after_sync() {
        // Every processor puts its pid into slot `pid` of processor 0's
        // region.
        let tree = machine(4);
        let prog = ClosureProgram::new(
            |_env: &ProcEnv| Region::zeroed(4),
            |step, env, region: &mut Region, ctx| {
                let replies = region.apply(ctx);
                assert!(replies.is_empty());
                match step {
                    0 => {
                        Region::put(
                            ctx,
                            hbsp_core::ProcId(0),
                            env.pid.rank(),
                            &[env.pid.0 + 100],
                        );
                        StepOutcome::Continue(SyncScope::global(&env.tree))
                    }
                    _ => StepOutcome::Done,
                }
            },
        );
        let (_, regions) = Executor::simulator(tree).run(&prog).unwrap();
        assert_eq!(regions[0].data(), &[100, 101, 102, 103]);
        assert_eq!(regions[1].data(), &[0, 0, 0, 0], "only P0 was written");
    }

    #[test]
    fn get_round_trips_in_two_syncs() {
        // P1 gets P0's slice; the reply arrives at step 2.
        let tree = machine(2);
        let prog = ClosureProgram::new(
            |env: &ProcEnv| {
                let base = if env.pid.0 == 0 {
                    vec![7, 8, 9, 10]
                } else {
                    vec![0; 4]
                };
                (Region::new(base), Vec::<GetReply>::new())
            },
            |step, env, state: &mut (Region, Vec<GetReply>), ctx| {
                let replies = state.0.apply(ctx);
                state.1.extend(replies);
                match step {
                    0 => {
                        if env.pid.0 == 1 {
                            Region::get(ctx, hbsp_core::ProcId(0), 1, 2, 42);
                        }
                        StepOutcome::Continue(SyncScope::global(&env.tree))
                    }
                    1 => StepOutcome::Continue(SyncScope::global(&env.tree)),
                    _ => StepOutcome::Done,
                }
            },
        );
        let (_, states) = Executor::simulator(tree).run(&prog).unwrap();
        assert_eq!(
            states[1].1,
            vec![GetReply {
                token: 42,
                src: hbsp_core::ProcId(0),
                values: vec![8, 9]
            }]
        );
        assert!(states[0].1.is_empty());
    }

    #[test]
    fn overlapping_puts_are_deterministic() {
        // All processors put to the same slot; delivery order (and so
        // the winner) is deterministic across runs and engines.
        let _tree = machine(4);
        let prog = ClosureProgram::new(
            |_env: &ProcEnv| Region::zeroed(1),
            |step, env, region: &mut Region, ctx| {
                region.apply(ctx);
                match step {
                    0 => {
                        if env.pid.0 != 0 {
                            Region::put(ctx, hbsp_core::ProcId(0), 0, &[env.pid.0]);
                        }
                        StepOutcome::Continue(SyncScope::global(&env.tree))
                    }
                    _ => StepOutcome::Done,
                }
            },
        );
        let (_, a) = Executor::simulator(Arc::clone(&machine(4)))
            .run(&prog)
            .unwrap();
        let (_, b) = Executor::simulator(Arc::clone(&machine(4)))
            .run(&prog)
            .unwrap();
        let (_, c) = Executor::threads(machine(4)).run(&prog).unwrap();
        assert_eq!(a[0].data(), b[0].data());
        assert_eq!(a[0].data(), c[0].data());
        assert!(a[0].data()[0] != 0, "someone's put landed");
    }

    #[test]
    fn get_sees_same_superstep_put() {
        // P1 puts into P0 at step 0; P2 gets the same word at step 0.
        // Both messages are applied by P0 at step 1 — puts first — so
        // the get reply (arriving at P2 in step 2) sees the put.
        let tree = machine(3);
        let prog = ClosureProgram::new(
            |_env: &ProcEnv| (Region::zeroed(1), Vec::<GetReply>::new()),
            |step, env, state: &mut (Region, Vec<GetReply>), ctx| {
                let replies = state.0.apply(ctx);
                state.1.extend(replies);
                match step {
                    0 => {
                        match env.pid.0 {
                            1 => Region::put(ctx, hbsp_core::ProcId(0), 0, &[77]),
                            2 => Region::get(ctx, hbsp_core::ProcId(0), 0, 1, 5),
                            _ => {}
                        }
                        StepOutcome::Continue(SyncScope::global(&env.tree))
                    }
                    1 => StepOutcome::Continue(SyncScope::global(&env.tree)),
                    _ => StepOutcome::Done,
                }
            },
        );
        let (_, states) = Executor::simulator(tree).run(&prog).unwrap();
        assert_eq!(
            states[2].1[0].values,
            vec![77],
            "get observes the concurrent put"
        );
    }

    #[test]
    #[should_panic(expected = "past region")]
    fn out_of_range_put_panics() {
        let tree = machine(2);
        let prog = ClosureProgram::new(
            |_env: &ProcEnv| Region::zeroed(2),
            |step, env, region: &mut Region, ctx| {
                region.apply(ctx);
                if step == 0 {
                    if env.pid.0 == 1 {
                        Region::put(ctx, hbsp_core::ProcId(0), 1, &[1, 2, 3]);
                    }
                    StepOutcome::Continue(SyncScope::global(&env.tree))
                } else {
                    StepOutcome::Done
                }
            },
        );
        let _ = Executor::simulator(tree).run(&prog);
    }
}
