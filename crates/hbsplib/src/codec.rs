//! Payload encoding for typed messages.
//!
//! The paper's experiments move buffers of integers; the library ships
//! them as little-endian bytes. Encodings are exact inverses and
//! total-length checked on decode.

/// Encode a `u32` slice (the model's "words") as little-endian bytes.
pub fn encode_u32s(values: &[u32]) -> Vec<u8> {
    let mut out = Vec::with_capacity(values.len() * 4);
    for v in values {
        out.extend_from_slice(&v.to_le_bytes());
    }
    out
}

/// Encode a `u32` slice directly into `out` (exactly `4 * values.len()`
/// bytes) — the allocation-free variant for
/// [`hbsp_core::SpmdContext::send_with`] payload fills.
///
/// # Panics
/// Panics if `out` is not exactly the encoded length.
pub fn write_u32s(values: &[u32], out: &mut [u8]) {
    assert_eq!(out.len(), values.len() * 4, "destination length mismatch");
    for (v, chunk) in values.iter().zip(out.chunks_exact_mut(4)) {
        chunk.copy_from_slice(&v.to_le_bytes());
    }
}

/// Decode little-endian bytes into `u32`s.
///
/// # Panics
/// Panics if the length is not a multiple of 4 — a malformed payload is
/// a program bug, not a recoverable condition.
pub fn decode_u32s(bytes: &[u8]) -> Vec<u32> {
    assert!(
        bytes.len().is_multiple_of(4),
        "payload length {} is not a whole number of u32s",
        bytes.len()
    );
    bytes
        .chunks_exact(4)
        .map(|c| u32::from_le_bytes(c.try_into().unwrap()))
        .collect()
}

/// Encode a `u64` slice as little-endian bytes.
pub fn encode_u64s(values: &[u64]) -> Vec<u8> {
    let mut out = Vec::with_capacity(values.len() * 8);
    for v in values {
        out.extend_from_slice(&v.to_le_bytes());
    }
    out
}

/// Encode a `u64` slice directly into `out` (exactly `8 * values.len()`
/// bytes); see [`write_u32s`].
///
/// # Panics
/// Panics if `out` is not exactly the encoded length.
pub fn write_u64s(values: &[u64], out: &mut [u8]) {
    assert_eq!(out.len(), values.len() * 8, "destination length mismatch");
    for (v, chunk) in values.iter().zip(out.chunks_exact_mut(8)) {
        chunk.copy_from_slice(&v.to_le_bytes());
    }
}

/// Decode little-endian bytes into `u64`s.
///
/// # Panics
/// Panics if the length is not a multiple of 8.
pub fn decode_u64s(bytes: &[u8]) -> Vec<u64> {
    assert!(
        bytes.len().is_multiple_of(8),
        "payload length {} is not a whole number of u64s",
        bytes.len()
    );
    bytes
        .chunks_exact(8)
        .map(|c| u64::from_le_bytes(c.try_into().unwrap()))
        .collect()
}

/// Encode an `f64` slice as little-endian bytes.
pub fn encode_f64s(values: &[f64]) -> Vec<u8> {
    let mut out = Vec::with_capacity(values.len() * 8);
    for v in values {
        out.extend_from_slice(&v.to_le_bytes());
    }
    out
}

/// Encode an `f64` slice directly into `out` (exactly `8 * values.len()`
/// bytes); see [`write_u32s`].
///
/// # Panics
/// Panics if `out` is not exactly the encoded length.
pub fn write_f64s(values: &[f64], out: &mut [u8]) {
    assert_eq!(out.len(), values.len() * 8, "destination length mismatch");
    for (v, chunk) in values.iter().zip(out.chunks_exact_mut(8)) {
        chunk.copy_from_slice(&v.to_le_bytes());
    }
}

/// Decode little-endian bytes into `f64`s.
///
/// # Panics
/// Panics if the length is not a multiple of 8.
pub fn decode_f64s(bytes: &[u8]) -> Vec<f64> {
    assert!(
        bytes.len().is_multiple_of(8),
        "payload length {} is not a whole number of f64s",
        bytes.len()
    );
    bytes
        .chunks_exact(8)
        .map(|c| f64::from_le_bytes(c.try_into().unwrap()))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn u32_round_trip() {
        let v = vec![0, 1, u32::MAX, 0xDEAD_BEEF];
        assert_eq!(decode_u32s(&encode_u32s(&v)), v);
        assert!(decode_u32s(&[]).is_empty());
    }

    #[test]
    fn in_place_writers_match_the_allocating_encoders() {
        let u32s = [0u32, 1, u32::MAX, 0xDEAD_BEEF];
        let mut buf = vec![0u8; u32s.len() * 4];
        write_u32s(&u32s, &mut buf);
        assert_eq!(buf, encode_u32s(&u32s));

        let u64s = [0u64, u64::MAX, 42];
        let mut buf = vec![0u8; u64s.len() * 8];
        write_u64s(&u64s, &mut buf);
        assert_eq!(buf, encode_u64s(&u64s));

        let f64s = [0.0f64, -0.0, f64::INFINITY, std::f64::consts::PI];
        let mut buf = vec![0u8; f64s.len() * 8];
        write_f64s(&f64s, &mut buf);
        assert_eq!(buf, encode_f64s(&f64s));
    }

    #[test]
    #[should_panic(expected = "destination length mismatch")]
    fn in_place_writer_rejects_wrong_length() {
        write_u32s(&[1, 2], &mut [0u8; 7]);
    }

    #[test]
    fn u64_round_trip() {
        let v = vec![0, u64::MAX, 42];
        assert_eq!(decode_u64s(&encode_u64s(&v)), v);
    }

    #[test]
    fn f64_round_trip_preserves_bits() {
        let v = vec![0.0, -0.0, f64::INFINITY, 1.5e-300, std::f64::consts::PI];
        let out = decode_f64s(&encode_f64s(&v));
        for (a, b) in v.iter().zip(&out) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    #[should_panic(expected = "whole number of u32s")]
    fn truncated_u32_payload_panics() {
        decode_u32s(&[1, 2, 3]);
    }

    #[test]
    fn word_count_matches_model_charging() {
        // 10 u32s encode to 40 bytes = 10 model words.
        let payload = encode_u32s(&[7; 10]);
        let m = hbsp_core::Message::new(hbsp_core::ProcId(0), hbsp_core::ProcId(1), 0, payload);
        assert_eq!(m.words(), 10);
    }
}
