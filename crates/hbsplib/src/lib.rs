//! # hbsplib — the HBSP Programming Library
//!
//! The paper implements its collectives with *HBSPlib*, a library
//! "incorporating many of the functions (message passing,
//! synchronization, enquiry) contained in BSPlib" plus "primitives that
//! allow the programmer to take advantage of the heterogeneity of the
//! underlying system". This crate is that library:
//!
//! * [`Ctx`] — an ergonomic, typed wrapper around the engine-agnostic
//!   superstep context: BSMP-style `send`/typed receives, work
//!   accounting, and enquiry;
//! * [`codec`] — payload encoding for words (`u32`), `u64`, `f64`;
//! * [`TreeEnquiry`] — the heterogeneity enquiry functions: speed
//!   ranking, fastest/slowest processor, cluster membership and
//!   coordinators at any level;
//! * [`hetero`] — balanced-workload helpers (`balanced_partition`,
//!   `my_share`) implementing the paper's `c_j` guidance;
//! * [`Executor`] — run the same [`Program`] on the discrete-event
//!   simulator (`hbsp-sim`) or on real threads (`hbsp-runtime`), with
//!   optional fault injection and graceful degradation
//!   ([`RecoveryPolicy`], `docs/faults.md`);
//! * [`closure`] — build programs from closures without hand-writing a
//!   state machine.
//!
//! ```
//! use hbsplib::{Ctx, Executor, Program};
//! use hbsp_core::{ProcEnv, SpmdContext, StepOutcome, SyncScope, TreeBuilder};
//! use std::sync::Arc;
//!
//! /// Every processor reports its pid to the fastest processor.
//! struct Census;
//! impl Program for Census {
//!     type State = u64;
//!     fn init(&self, _env: &ProcEnv) -> u64 { 0 }
//!     fn step(&self, step: usize, env: &ProcEnv, count: &mut u64, raw: &mut dyn SpmdContext)
//!         -> StepOutcome
//!     {
//!         let mut ctx = Ctx::new(env, raw);
//!         match step {
//!             0 => {
//!                 let root = ctx.fastest();
//!                 if ctx.pid() != root {
//!                     ctx.send_u32s(root, 0, &[ctx.pid().0]);
//!                 }
//!                 ctx.sync_global()
//!             }
//!             _ => {
//!                 *count = ctx.recv_all_u32s().len() as u64;
//!                 StepOutcome::Done
//!             }
//!         }
//!     }
//! }
//!
//! let tree = Arc::new(TreeBuilder::flat(1.0, 10.0, &[(1.0, 1.0), (2.0, 0.5), (2.0, 0.5)]).unwrap());
//! let (outcome, states) = Executor::simulator(tree).run(&Census).unwrap();
//! assert_eq!(states[0], 2, "the fastest processor heard from both peers");
//! assert!(outcome.total_time() > 0.0);
//! ```

#![forbid(unsafe_code)]

pub mod adaptive;
pub mod closure;
pub mod codec;
pub mod ctx;
pub mod drma;
pub mod enquiry;
pub mod executor;
pub mod hetero;

pub use adaptive::{
    recalibrated, Action, AdaptiveConfig, AdaptiveError, AdaptiveExecutor, AdaptiveOutcome,
    AdaptivePlan, Decision, Planned,
};
pub use closure::ClosureProgram;
pub use ctx::Ctx;
pub use drma::{GetReply, Region};
pub use enquiry::TreeEnquiry;
pub use executor::{
    predict_program, ExecOutcome, ExecSession, Executor, FaultReport, Recovered, RecoveryEvent,
    RecoveryPolicy,
};
pub use hetero::{balanced_partition, equal_partition, my_share};

// The program surface is defined in hbsp-core; re-export under the
// library's own names so user code only needs `hbsplib`.
pub use hbsp_core::spmd::{Message, ProcEnv, SpmdContext, StepOutcome, SyncScope};

/// An HBSP program (the library's name for [`hbsp_core::SpmdProgram`]).
pub use hbsp_core::spmd::SpmdProgram as Program;
