//! Build programs from closures, for tests, examples, and one-off
//! experiments that don't warrant a named program type.

use hbsp_core::{ProcEnv, SpmdContext, SpmdProgram, StepOutcome};

/// An [`SpmdProgram`] assembled from two closures.
///
/// ```
/// use hbsplib::{ClosureProgram, Ctx, Executor};
/// use hbsp_core::TreeBuilder;
/// use std::sync::Arc;
///
/// let tree = Arc::new(TreeBuilder::flat(1.0, 5.0, &[(1.0, 1.0), (2.0, 0.5)]).unwrap());
/// // Each processor counts its own supersteps.
/// let prog = ClosureProgram::new(
///     |_env| 0usize,
///     |step, env, count: &mut usize, raw| {
///         let ctx = Ctx::new(env, raw);
///         *count += 1;
///         if step == 2 { ctx.done() } else { ctx.sync_global() }
///     },
/// );
/// let (_, states) = Executor::simulator(tree).run(&prog).unwrap();
/// assert_eq!(states, vec![3, 3]);
/// ```
pub struct ClosureProgram<S, I, F>
where
    I: Fn(&ProcEnv) -> S + Sync,
    F: Fn(usize, &ProcEnv, &mut S, &mut dyn SpmdContext) -> StepOutcome + Sync,
{
    init: I,
    step: F,
    _marker: std::marker::PhantomData<fn() -> S>,
}

impl<S, I, F> ClosureProgram<S, I, F>
where
    I: Fn(&ProcEnv) -> S + Sync,
    F: Fn(usize, &ProcEnv, &mut S, &mut dyn SpmdContext) -> StepOutcome + Sync,
{
    /// Program from an `init` closure and a `step` closure.
    pub fn new(init: I, step: F) -> Self {
        ClosureProgram {
            init,
            step,
            _marker: std::marker::PhantomData,
        }
    }
}

impl<S, I, F> SpmdProgram for ClosureProgram<S, I, F>
where
    S: Send,
    I: Fn(&ProcEnv) -> S + Sync,
    F: Fn(usize, &ProcEnv, &mut S, &mut dyn SpmdContext) -> StepOutcome + Sync,
{
    type State = S;

    fn init(&self, env: &ProcEnv) -> S {
        (self.init)(env)
    }

    fn step(
        &self,
        step: usize,
        env: &ProcEnv,
        state: &mut S,
        ctx: &mut dyn SpmdContext,
    ) -> StepOutcome {
        (self.step)(step, env, state, ctx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Executor;
    use hbsp_core::{ProcId, TreeBuilder};
    use std::sync::Arc;

    #[test]
    fn closure_program_runs_on_both_engines() {
        let tree = Arc::new(TreeBuilder::flat(1.0, 2.0, &[(1.0, 1.0), (3.0, 0.4)]).unwrap());
        let prog = ClosureProgram::new(
            |env: &ProcEnv| env.pid.0 as u64,
            |step, env, state: &mut u64, ctx| {
                if step == 0 {
                    let peer = ProcId(1 - env.pid.0);
                    ctx.send(peer, 0, &vec![*state as u8]);
                    StepOutcome::Continue(hbsp_core::SyncScope::global(&env.tree))
                } else {
                    *state += ctx.messages().get(0).payload[0] as u64 * 100;
                    StepOutcome::Done
                }
            },
        );
        let (_, a) = Executor::simulator(Arc::clone(&tree)).run(&prog).unwrap();
        let (_, b) = Executor::threads(tree).run(&prog).unwrap();
        assert_eq!(a, vec![100, 1]);
        assert_eq!(a, b);
    }
}
