//! NEURAL NET: forward/backward passes of a small fully-connected
//! network, BYTEmark's back-propagation test.

use super::{checksum, Kernel};
use crate::rng::SplitMix64;

/// Back-propagation benchmark: a `inputs → hidden → outputs` multilayer
/// perceptron trained for `epochs` epochs on random patterns.
#[derive(Debug, Clone)]
pub struct NeuralNet {
    inputs: usize,
    hidden: usize,
    outputs: usize,
    patterns: usize,
    epochs: usize,
}

impl NeuralNet {
    /// Network of the given shape trained on `patterns` random patterns
    /// for `epochs` epochs.
    pub fn new(
        inputs: usize,
        hidden: usize,
        outputs: usize,
        patterns: usize,
        epochs: usize,
    ) -> Self {
        assert!(inputs > 0 && hidden > 0 && outputs > 0 && patterns > 0 && epochs > 0);
        NeuralNet {
            inputs,
            hidden,
            outputs,
            patterns,
            epochs,
        }
    }
}

impl Default for NeuralNet {
    fn default() -> Self {
        // BYTEmark uses a 35-8-8 network.
        NeuralNet::new(35, 8, 8, 16, 30)
    }
}

#[inline]
fn sigmoid(x: f64) -> f64 {
    1.0 / (1.0 + (-x).exp())
}

/// A two-layer MLP with sigmoid activations, exposed for tests.
#[derive(Debug, Clone)]
pub struct Mlp {
    inputs: usize,
    hidden: usize,
    outputs: usize,
    /// `w1[h][i]`: input→hidden weights (row-major, +1 bias column).
    w1: Vec<f64>,
    /// `w2[o][h]`: hidden→output weights (+1 bias column).
    w2: Vec<f64>,
}

impl Mlp {
    /// Random small weights.
    pub fn random(inputs: usize, hidden: usize, outputs: usize, rng: &mut SplitMix64) -> Self {
        let w1 = (0..hidden * (inputs + 1))
            .map(|_| rng.next_f64() * 0.6 - 0.3)
            .collect();
        let w2 = (0..outputs * (hidden + 1))
            .map(|_| rng.next_f64() * 0.6 - 0.3)
            .collect();
        Mlp {
            inputs,
            hidden,
            outputs,
            w1,
            w2,
        }
    }

    /// Forward pass; returns (hidden activations, output activations).
    pub fn forward(&self, x: &[f64]) -> (Vec<f64>, Vec<f64>) {
        debug_assert_eq!(x.len(), self.inputs);
        let h: Vec<f64> = (0..self.hidden)
            .map(|j| {
                let row = &self.w1[j * (self.inputs + 1)..(j + 1) * (self.inputs + 1)];
                let net: f64 = row[..self.inputs]
                    .iter()
                    .zip(x)
                    .map(|(w, xi)| w * xi)
                    .sum::<f64>()
                    + row[self.inputs];
                sigmoid(net)
            })
            .collect();
        let o: Vec<f64> = (0..self.outputs)
            .map(|k| {
                let row = &self.w2[k * (self.hidden + 1)..(k + 1) * (self.hidden + 1)];
                let net: f64 = row[..self.hidden]
                    .iter()
                    .zip(&h)
                    .map(|(w, hi)| w * hi)
                    .sum::<f64>()
                    + row[self.hidden];
                sigmoid(net)
            })
            .collect();
        (h, o)
    }

    /// One backprop step with learning rate `eta`; returns the squared
    /// error before the update.
    pub fn train(&mut self, x: &[f64], target: &[f64], eta: f64) -> f64 {
        let (h, o) = self.forward(x);
        let err: f64 = o
            .iter()
            .zip(target)
            .map(|(oi, ti)| (ti - oi) * (ti - oi))
            .sum();
        // Output deltas.
        let delta_o: Vec<f64> = o
            .iter()
            .zip(target)
            .map(|(oi, ti)| (ti - oi) * oi * (1.0 - oi))
            .collect();
        // Hidden deltas.
        let delta_h: Vec<f64> = (0..self.hidden)
            .map(|j| {
                let back: f64 = (0..self.outputs)
                    .map(|k| delta_o[k] * self.w2[k * (self.hidden + 1) + j])
                    .sum();
                back * h[j] * (1.0 - h[j])
            })
            .collect();
        // Weight updates.
        for (k, &dk) in delta_o.iter().enumerate() {
            let row = &mut self.w2[k * (self.hidden + 1)..(k + 1) * (self.hidden + 1)];
            for (w, &hj) in row.iter_mut().zip(&h) {
                *w += eta * dk * hj;
            }
            row[self.hidden] += eta * dk;
        }
        for (j, &dj) in delta_h.iter().enumerate() {
            let row = &mut self.w1[j * (self.inputs + 1)..(j + 1) * (self.inputs + 1)];
            for (w, &xi) in row.iter_mut().zip(x) {
                *w += eta * dj * xi;
            }
            row[self.inputs] += eta * dj;
        }
        err
    }
}

impl Kernel for NeuralNet {
    fn name(&self) -> &'static str {
        "NEURAL NET"
    }

    fn ops(&self) -> u64 {
        let fwd = self.hidden * (self.inputs + 1) + self.outputs * (self.hidden + 1);
        // Backward is ~2x forward; 2 flops per weight visit.
        (self.epochs * self.patterns * fwd * 3 * 2) as u64
    }

    fn run(&self, seed: u64) -> u64 {
        let mut rng = SplitMix64::new(seed);
        let mut net = Mlp::random(self.inputs, self.hidden, self.outputs, &mut rng);
        let patterns: Vec<(Vec<f64>, Vec<f64>)> = (0..self.patterns)
            .map(|_| {
                let x: Vec<f64> = (0..self.inputs)
                    .map(|_| if rng.next_below(2) == 1 { 1.0 } else { 0.0 })
                    .collect();
                let t: Vec<f64> = (0..self.outputs)
                    .map(|_| if rng.next_below(2) == 1 { 0.9 } else { 0.1 })
                    .collect();
                (x, t)
            })
            .collect();
        let mut last_err = 0.0;
        for _ in 0..self.epochs {
            last_err = patterns.iter().map(|(x, t)| net.train(x, t, 0.25)).sum();
        }
        checksum([last_err.to_bits()])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sigmoid_bounds() {
        assert!(sigmoid(-100.0) < 1e-9);
        assert!(sigmoid(100.0) > 1.0 - 1e-9);
        assert!((sigmoid(0.0) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn training_reduces_error() {
        let mut rng = SplitMix64::new(77);
        let mut net = Mlp::random(4, 6, 1, &mut rng);
        // Learn XOR of the first two inputs.
        let data: Vec<(Vec<f64>, Vec<f64>)> = vec![
            (vec![0.0, 0.0, 1.0, 0.0], vec![0.1]),
            (vec![0.0, 1.0, 1.0, 0.0], vec![0.9]),
            (vec![1.0, 0.0, 1.0, 0.0], vec![0.9]),
            (vec![1.0, 1.0, 1.0, 0.0], vec![0.1]),
        ];
        let initial: f64 = data
            .iter()
            .map(|(x, t)| {
                let (_, o) = net.forward(x);
                (o[0] - t[0]).powi(2)
            })
            .sum();
        for _ in 0..2000 {
            for (x, t) in &data {
                net.train(x, t, 0.5);
            }
        }
        let fin: f64 = data
            .iter()
            .map(|(x, t)| {
                let (_, o) = net.forward(x);
                (o[0] - t[0]).powi(2)
            })
            .sum();
        assert!(fin < initial / 10.0, "error must drop: {initial} -> {fin}");
    }

    #[test]
    fn forward_is_deterministic() {
        let mut rng = SplitMix64::new(3);
        let net = Mlp::random(5, 4, 2, &mut rng);
        let x = vec![1.0, 0.0, 1.0, 0.5, 0.25];
        assert_eq!(net.forward(&x), net.forward(&x));
    }
}
