//! BITFIELD: set / clear / complement runs of bits in a large bitmap.

use super::{checksum, Kernel};
use crate::rng::SplitMix64;

/// Bit-manipulation benchmark over a bitmap of `bits` bits, applying
/// `ops_count` random range operations.
#[derive(Debug, Clone)]
pub struct BitField {
    bits: usize,
    ops_count: usize,
}

impl BitField {
    /// A bitmap of `bits` bits with `ops_count` operations.
    pub fn new(bits: usize, ops_count: usize) -> Self {
        assert!(bits >= 64, "bitmap too small");
        BitField { bits, ops_count }
    }
}

impl Default for BitField {
    fn default() -> Self {
        BitField::new(1 << 17, 4096)
    }
}

/// A simple bitmap supporting range set/clear/complement, exposed for
/// direct testing.
#[derive(Debug, Clone)]
pub struct Bitmap {
    words: Vec<u64>,
    bits: usize,
}

impl Bitmap {
    /// All-zero bitmap of `bits` bits.
    pub fn new(bits: usize) -> Self {
        Bitmap {
            words: vec![0; bits.div_ceil(64)],
            bits,
        }
    }

    /// Number of bits.
    pub fn len(&self) -> usize {
        self.bits
    }

    /// True if no bits exist.
    pub fn is_empty(&self) -> bool {
        self.bits == 0
    }

    /// Test one bit.
    pub fn get(&self, i: usize) -> bool {
        self.words[i / 64] >> (i % 64) & 1 == 1
    }

    /// Set bits `start..start+len` (clamped to the bitmap).
    pub fn set_range(&mut self, start: usize, len: usize) {
        self.apply(start, len, |w, m| *w |= m);
    }

    /// Clear bits `start..start+len`.
    pub fn clear_range(&mut self, start: usize, len: usize) {
        self.apply(start, len, |w, m| *w &= !m);
    }

    /// Complement bits `start..start+len`.
    pub fn flip_range(&mut self, start: usize, len: usize) {
        self.apply(start, len, |w, m| *w ^= m);
    }

    /// Population count of the whole bitmap.
    pub fn count_ones(&self) -> u64 {
        self.words.iter().map(|w| w.count_ones() as u64).sum()
    }

    fn apply(&mut self, start: usize, len: usize, f: impl Fn(&mut u64, u64)) {
        let end = usize::min(start + len, self.bits);
        let mut i = start.min(self.bits);
        while i < end {
            let word = i / 64;
            let bit = i % 64;
            let span = usize::min(64 - bit, end - i);
            let mask = if span == 64 {
                !0
            } else {
                ((1u64 << span) - 1) << bit
            };
            f(&mut self.words[word], mask);
            i += span;
        }
    }

    /// Raw words for checksumming.
    pub fn words(&self) -> &[u64] {
        &self.words
    }
}

impl Kernel for BitField {
    fn name(&self) -> &'static str {
        "BITFIELD"
    }

    fn ops(&self) -> u64 {
        // Each op touches ~bits/64 words in the worst case; use the
        // average range length (bits/2 bits => bits/128 words).
        (self.ops_count as u64) * (self.bits as u64 / 128).max(1)
    }

    fn run(&self, seed: u64) -> u64 {
        let mut rng = SplitMix64::new(seed);
        let mut bm = Bitmap::new(self.bits);
        for _ in 0..self.ops_count {
            let start = rng.next_below(self.bits as u64) as usize;
            let len = rng.next_below((self.bits / 2) as u64) as usize + 1;
            match rng.next_below(3) {
                0 => bm.set_range(start, len),
                1 => bm.clear_range(start, len),
                _ => bm.flip_range(start, len),
            }
        }
        checksum(bm.words().iter().copied().chain([bm.count_ones()]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_then_get() {
        let mut bm = Bitmap::new(200);
        bm.set_range(10, 50);
        assert!(!bm.get(9));
        assert!(bm.get(10));
        assert!(bm.get(59));
        assert!(!bm.get(60));
        assert_eq!(bm.count_ones(), 50);
    }

    #[test]
    fn clear_and_flip() {
        let mut bm = Bitmap::new(128);
        bm.set_range(0, 128);
        bm.clear_range(32, 64);
        assert_eq!(bm.count_ones(), 64);
        bm.flip_range(0, 128);
        assert_eq!(bm.count_ones(), 64);
        assert!(!bm.get(0));
        assert!(bm.get(32));
    }

    #[test]
    fn ranges_clamp_at_end() {
        let mut bm = Bitmap::new(100);
        bm.set_range(90, 1000);
        assert_eq!(bm.count_ones(), 10);
        bm.set_range(200, 5); // fully out of range: no-op
        assert_eq!(bm.count_ones(), 10);
    }

    #[test]
    fn cross_word_boundaries() {
        let mut bm = Bitmap::new(256);
        bm.set_range(60, 10); // spans words 0 and 1
        assert_eq!(bm.count_ones(), 10);
        assert!(bm.get(60) && bm.get(69) && !bm.get(70));
    }

    #[test]
    fn full_word_mask() {
        let mut bm = Bitmap::new(192);
        bm.set_range(64, 64); // exactly word 1
        assert_eq!(bm.words()[0], 0);
        assert_eq!(bm.words()[1], !0);
        assert_eq!(bm.words()[2], 0);
    }
}
