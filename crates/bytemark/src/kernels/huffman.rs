//! HUFFMAN: build a Huffman code over random text, compress, decompress.

use super::{checksum, Kernel};
use crate::rng::SplitMix64;

/// Huffman round-trip benchmark over `len` bytes of skewed random text.
#[derive(Debug, Clone)]
pub struct Huffman {
    len: usize,
}

impl Huffman {
    /// Compress/decompress `len` bytes.
    pub fn new(len: usize) -> Self {
        assert!(len > 0);
        Huffman { len }
    }
}

impl Default for Huffman {
    fn default() -> Self {
        Huffman::new(16 * 1024)
    }
}

#[derive(Debug, Clone)]
enum Tree {
    Leaf(u8),
    Node(Box<Tree>, Box<Tree>),
}

/// Build a canonical Huffman tree for the given byte frequencies.
/// Symbols with zero frequency are excluded; at least one symbol must be
/// present. Deterministic: ties are broken by symbol value.
fn build_tree(freq: &[u64; 256]) -> Tree {
    // (weight, tiebreak, tree) min-heap via sorted Vec (256 symbols max,
    // simplicity over asymptotics).
    let mut heap: Vec<(u64, u32, Tree)> = freq
        .iter()
        .enumerate()
        .filter(|&(_, &f)| f > 0)
        .map(|(s, &f)| (f, s as u32, Tree::Leaf(s as u8)))
        .collect();
    assert!(!heap.is_empty(), "cannot build a code for empty input");
    if heap.len() == 1 {
        // Degenerate: single symbol; give it a 1-bit code by pairing
        // the leaf with a copy of itself.
        let (_, _, leaf) = heap.pop().unwrap();
        let twin = leaf.clone();
        return Tree::Node(Box::new(leaf), Box::new(twin));
    }
    let mut next_tag = 256u32;
    while heap.len() > 1 {
        heap.sort_by(|a, b| b.0.cmp(&a.0).then(b.1.cmp(&a.1)));
        let (w1, _, t1) = heap.pop().unwrap();
        let (w2, _, t2) = heap.pop().unwrap();
        heap.push((w1 + w2, next_tag, Tree::Node(Box::new(t1), Box::new(t2))));
        next_tag += 1;
    }
    heap.pop().unwrap().2
}

fn codes(tree: &Tree) -> Vec<Option<(u32, u8)>> {
    let mut table = vec![None; 256];
    fn walk(t: &Tree, code: u32, len: u8, table: &mut Vec<Option<(u32, u8)>>) {
        match t {
            Tree::Leaf(s) => table[*s as usize] = Some((code, len.max(1))),
            Tree::Node(l, r) => {
                walk(l, code << 1, len + 1, table);
                walk(r, (code << 1) | 1, len + 1, table);
            }
        }
    }
    walk(tree, 0, 0, &mut table);
    table
}

/// An opaque Huffman codebook produced by [`compress`] and consumed by
/// [`decompress`].
#[derive(Debug, Clone)]
pub struct Codebook {
    tree: Tree,
}

/// Huffman-compress `input`. Returns `(bits, bit_len, codebook)` for
/// [`decompress`].
pub fn compress(input: &[u8]) -> (Vec<u8>, usize, Codebook) {
    let mut freq = [0u64; 256];
    for &b in input {
        freq[b as usize] += 1;
    }
    let tree = build_tree(&freq);
    let table = codes(&tree);
    let mut out = Vec::with_capacity(input.len() / 2);
    let mut cur = 0u8;
    let mut used = 0u8;
    let mut bit_len = 0usize;
    for &b in input {
        let (code, len) = table[b as usize].expect("symbol present in freq table");
        for i in (0..len).rev() {
            cur = (cur << 1) | ((code >> i) & 1) as u8;
            used += 1;
            bit_len += 1;
            if used == 8 {
                out.push(cur);
                cur = 0;
                used = 0;
            }
        }
    }
    if used > 0 {
        out.push(cur << (8 - used));
    }
    (out, bit_len, Codebook { tree })
}

/// Decompress `bit_len` bits from `bits` using the codebook returned by
/// [`compress`].
pub fn decompress(bits: &[u8], bit_len: usize, book: &Codebook, expect: usize) -> Vec<u8> {
    let tree = &book.tree;
    let mut out = Vec::with_capacity(expect);
    let mut node = tree;
    for i in 0..bit_len {
        let bit = (bits[i / 8] >> (7 - i % 8)) & 1;
        node = match node {
            Tree::Node(l, r) => {
                if bit == 0 {
                    l
                } else {
                    r
                }
            }
            Tree::Leaf(_) => unreachable!("walk starts at root"),
        };
        if let Tree::Leaf(s) = node {
            out.push(*s);
            node = tree;
        }
    }
    out
}

impl Kernel for Huffman {
    fn name(&self) -> &'static str {
        "HUFFMAN"
    }

    fn ops(&self) -> u64 {
        // ~ 6 bit-ops per input bit round trip.
        (self.len as u64) * 8 * 6
    }

    fn run(&self, seed: u64) -> u64 {
        let mut rng = SplitMix64::new(seed);
        // Skewed text: common letters dominate, like English.
        let input: Vec<u8> = (0..self.len)
            .map(|_| {
                let r = rng.next_below(100);
                match r {
                    0..=39 => b'e',
                    40..=59 => b't',
                    60..=74 => b'a',
                    75..=84 => b' ',
                    _ => b'a' + (rng.next_below(26)) as u8,
                }
            })
            .collect();
        let (bits, bit_len, tree) = compress(&input);
        let out = decompress(&bits, bit_len, &tree, input.len());
        assert_eq!(out, input, "huffman round trip");
        checksum(bits.chunks(8).map(|c| {
            let mut w = [0u8; 8];
            w[..c.len()].copy_from_slice(c);
            u64::from_le_bytes(w)
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_random_text() {
        let mut rng = SplitMix64::new(21);
        let input: Vec<u8> = (0..5000).map(|_| rng.next_below(64) as u8).collect();
        let (bits, bit_len, tree) = compress(&input);
        assert_eq!(decompress(&bits, bit_len, &tree, input.len()), input);
    }

    #[test]
    fn skewed_text_compresses() {
        let input: Vec<u8> = std::iter::repeat_n(b'e', 900)
            .chain(std::iter::repeat_n(b'z', 100))
            .collect();
        let (bits, _, _) = compress(&input);
        assert!(
            bits.len() < input.len() / 4,
            "90/10 split should compress >4x, got {}",
            bits.len()
        );
    }

    #[test]
    fn single_symbol_input() {
        let input = vec![b'x'; 100];
        let (bits, bit_len, tree) = compress(&input);
        assert_eq!(bit_len, 100, "one bit per symbol in degenerate code");
        assert_eq!(decompress(&bits, bit_len, &tree, 100), input);
    }

    #[test]
    fn one_byte_input() {
        let input = vec![7u8];
        let (bits, bit_len, tree) = compress(&input);
        assert_eq!(decompress(&bits, bit_len, &tree, 1), input);
    }
}
