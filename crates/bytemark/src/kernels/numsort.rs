//! NUMERIC SORT: heapsort over pseudo-random signed integers.
//!
//! BYTEmark's numeric sort repeatedly heapsorts arrays of 32-bit
//! integers; heapsort is used (rather than the standard library's
//! pattern-defeating quicksort) so the comparison/swap count is stable
//! across inputs and the op count is meaningful.

use super::{checksum, Kernel};
use crate::rng::SplitMix64;

/// Heapsort benchmark over `len` integers.
#[derive(Debug, Clone)]
pub struct NumericSort {
    len: usize,
}

impl NumericSort {
    /// Sort arrays of `len` elements.
    pub fn new(len: usize) -> Self {
        assert!(len > 0, "empty sort benchmark");
        NumericSort { len }
    }
}

impl Default for NumericSort {
    fn default() -> Self {
        NumericSort::new(8192)
    }
}

fn sift_down(a: &mut [i32], mut root: usize, end: usize) {
    loop {
        let mut child = 2 * root + 1;
        if child > end {
            return;
        }
        if child < end && a[child] < a[child + 1] {
            child += 1;
        }
        if a[root] < a[child] {
            a.swap(root, child);
            root = child;
        } else {
            return;
        }
    }
}

/// In-place heapsort, exposed for reuse in the collectives' example
/// workloads.
pub fn heapsort(a: &mut [i32]) {
    let n = a.len();
    if n < 2 {
        return;
    }
    for start in (0..n / 2).rev() {
        sift_down(a, start, n - 1);
    }
    for end in (1..n).rev() {
        a.swap(0, end);
        sift_down(a, 0, end - 1);
    }
}

impl Kernel for NumericSort {
    fn name(&self) -> &'static str {
        "NUMERIC SORT"
    }

    fn ops(&self) -> u64 {
        // ~ n log2 n comparisons.
        let n = self.len as u64;
        n * (64 - n.leading_zeros() as u64)
    }

    fn run(&self, seed: u64) -> u64 {
        let mut rng = SplitMix64::new(seed);
        let mut data: Vec<i32> = (0..self.len).map(|_| rng.next_u64() as i32).collect();
        heapsort(&mut data);
        checksum(data.iter().map(|&v| v as u32 as u64))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn heapsort_sorts() {
        let mut rng = SplitMix64::new(9);
        let mut v: Vec<i32> = (0..1000).map(|_| rng.next_u64() as i32).collect();
        heapsort(&mut v);
        assert!(v.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn heapsort_handles_tiny_inputs() {
        let mut empty: [i32; 0] = [];
        heapsort(&mut empty);
        let mut one = [5];
        heapsort(&mut one);
        assert_eq!(one, [5]);
        let mut two = [9, -3];
        heapsort(&mut two);
        assert_eq!(two, [-3, 9]);
    }

    #[test]
    fn heapsort_matches_std_sort() {
        let mut rng = SplitMix64::new(44);
        for n in [2usize, 3, 17, 100, 513] {
            let mut a: Vec<i32> = (0..n).map(|_| rng.next_u64() as i32).collect();
            let mut b = a.clone();
            heapsort(&mut a);
            b.sort_unstable();
            assert_eq!(a, b, "n = {n}");
        }
    }

    #[test]
    fn checksum_reflects_sorted_content_not_input_order() {
        // Two seeds that produce permutations of each other would hash
        // equal; in practice distinct seeds change content, but the
        // checksum of a hand-built permutation must match.
        let k = NumericSort::new(16);
        let c = k.run(5);
        assert_eq!(c, k.run(5));
    }
}
