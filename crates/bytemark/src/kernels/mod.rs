//! The eight benchmark kernels.
//!
//! Every kernel implements [`Kernel`]: given a seed it generates its own
//! input, does a fixed amount of work, and returns a checksum that the
//! tests pin and that keeps the optimizer honest. `ops()` is the
//! kernel's nominal operation count, used by the deterministic
//! [`crate::Timer::OpCount`] timing mode.

pub mod assignment;
pub mod bitfield;
pub mod cipher;
pub mod fourier;
pub mod huffman;
pub mod lu;
pub mod nnet;
pub mod numsort;
pub mod strsort;

pub use assignment::Assignment;
pub use bitfield::BitField;
pub use cipher::Cipher;
pub use fourier::Fourier;
pub use huffman::Huffman;
pub use lu::LuDecomposition;
pub use nnet::NeuralNet;
pub use numsort::NumericSort;
pub use strsort::StringSort;

/// A deterministic benchmark kernel.
pub trait Kernel: Send + Sync {
    /// Short uppercase name, BYTEmark style (e.g. `"NUMERIC SORT"`).
    fn name(&self) -> &'static str;

    /// Nominal operation count of one run — the deterministic "work"
    /// this kernel represents, independent of the host CPU.
    fn ops(&self) -> u64;

    /// Run once with the given seed, returning a checksum of the result.
    fn run(&self, seed: u64) -> u64;
}

/// The standard kernel set at the default problem sizes.
pub fn standard() -> Vec<Box<dyn Kernel>> {
    vec![
        Box::new(Assignment::default()),
        Box::new(NumericSort::default()),
        Box::new(StringSort::default()),
        Box::new(BitField::default()),
        Box::new(Fourier::default()),
        Box::new(LuDecomposition::default()),
        Box::new(Huffman::default()),
        Box::new(Cipher::default()),
        Box::new(NeuralNet::default()),
    ]
}

/// A reduced kernel set with small problem sizes, for fast tests.
pub fn quick() -> Vec<Box<dyn Kernel>> {
    vec![
        Box::new(NumericSort::new(512)),
        Box::new(BitField::new(1 << 10, 200)),
        Box::new(LuDecomposition::new(12)),
        Box::new(Cipher::new(64)),
    ]
}

/// Fold a stream of words into a checksum (FNV-1a over u64 words).
pub(crate) fn checksum(words: impl IntoIterator<Item = u64>) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for w in words {
        h ^= w;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_kernels_are_deterministic() {
        for k in standard() {
            assert_eq!(
                k.run(1234),
                k.run(1234),
                "{} must be deterministic",
                k.name()
            );
        }
    }

    #[test]
    fn different_seeds_give_different_checksums() {
        for k in standard() {
            assert_ne!(
                k.run(1),
                k.run(2),
                "{} should depend on its input",
                k.name()
            );
        }
    }

    #[test]
    fn ops_are_positive() {
        for k in standard() {
            assert!(k.ops() > 0, "{}", k.name());
        }
    }

    #[test]
    fn names_are_unique() {
        let ks = standard();
        let mut names: Vec<_> = ks.iter().map(|k| k.name()).collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), ks.len());
    }

    #[test]
    fn checksum_is_order_sensitive() {
        assert_ne!(checksum([1, 2, 3]), checksum([3, 2, 1]));
    }
}
