//! FOURIER: numerical integration of Fourier series coefficients.
//!
//! BYTEmark's FOURIER test computes coefficients of the Fourier series
//! of `(x + 1)^x` on `[0, 2]` by trapezoidal integration; we do the
//! same, which makes the kernel trig- and pow-heavy floating point.

use super::Kernel;
use crate::rng::SplitMix64;

/// Fourier-coefficient benchmark computing `pairs` (aₙ, bₙ) pairs with
/// `steps` integration steps each.
#[derive(Debug, Clone)]
pub struct Fourier {
    pairs: usize,
    steps: usize,
}

impl Fourier {
    /// `pairs` coefficient pairs at `steps` trapezoid steps.
    pub fn new(pairs: usize, steps: usize) -> Self {
        assert!(pairs > 0 && steps > 1);
        Fourier { pairs, steps }
    }
}

impl Default for Fourier {
    fn default() -> Self {
        Fourier::new(32, 200)
    }
}

fn f(x: f64) -> f64 {
    (x + 1.0).powf(x)
}

/// Trapezoidal integral of `g` over `[lo, hi]` with `steps` intervals.
pub fn trapezoid(lo: f64, hi: f64, steps: usize, g: impl Fn(f64) -> f64) -> f64 {
    let dx = (hi - lo) / steps as f64;
    let mut sum = 0.5 * (g(lo) + g(hi));
    for i in 1..steps {
        sum += g(lo + i as f64 * dx);
    }
    sum * dx
}

/// The `n`-th Fourier coefficient pair of `(x+1)^x` over `[0, 2]`.
pub fn coefficient(n: usize, steps: usize) -> (f64, f64) {
    let omega = std::f64::consts::PI; // 2π / period, period = 2
    let a = trapezoid(0.0, 2.0, steps, |x| f(x) * (omega * n as f64 * x).cos());
    let b = trapezoid(0.0, 2.0, steps, |x| f(x) * (omega * n as f64 * x).sin());
    (a, b)
}

impl Kernel for Fourier {
    fn name(&self) -> &'static str {
        "FOURIER"
    }

    fn ops(&self) -> u64 {
        // Two integrals per pair, each `steps` evaluations of pow+trig
        // (~20 flops each).
        (self.pairs * self.steps * 2 * 20) as u64
    }

    fn run(&self, seed: u64) -> u64 {
        // The seed perturbs the interval slightly so different seeds
        // yield different checksums while the workload stays identical.
        let eps = SplitMix64::new(seed).next_f64() * 1e-6;
        let mut acc = 0u64;
        for n in 0..self.pairs {
            let omega = std::f64::consts::PI;
            let a = trapezoid(eps, 2.0 + eps, self.steps, |x| {
                f(x) * (omega * n as f64 * x).cos()
            });
            let b = trapezoid(eps, 2.0 + eps, self.steps, |x| {
                f(x) * (omega * n as f64 * x).sin()
            });
            acc = acc
                .wrapping_mul(0x100000001B3)
                .wrapping_add(a.to_bits() ^ b.to_bits());
        }
        acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trapezoid_integrates_polynomials() {
        // ∫₀¹ x² dx = 1/3.
        let v = trapezoid(0.0, 1.0, 10_000, |x| x * x);
        assert!((v - 1.0 / 3.0).abs() < 1e-6, "got {v}");
    }

    #[test]
    fn trapezoid_handles_constants_exactly() {
        let v = trapezoid(0.0, 2.0, 3, |_| 5.0);
        assert!((v - 10.0).abs() < 1e-12);
    }

    #[test]
    fn zeroth_coefficient_is_integral() {
        // a₀ = ∫₀² (x+1)^x dx ≈ 5.7638 (converges with step refinement:
        // check the value is stable between 20k and 40k steps).
        let (a0, b0) = coefficient(0, 20_000);
        let (a0_fine, _) = coefficient(0, 40_000);
        assert!((a0 - 5.7638).abs() < 1e-3, "a0 = {a0}");
        assert!((a0 - a0_fine).abs() < 1e-6, "integral must have converged");
        assert!(b0.abs() < 1e-9, "sin(0·x) integral must vanish, got {b0}");
    }

    #[test]
    fn coefficients_decay() {
        let (a1, b1) = coefficient(1, 4000);
        let (a8, b8) = coefficient(8, 4000);
        let m1 = (a1 * a1 + b1 * b1).sqrt();
        let m8 = (a8 * a8 + b8 * b8).sqrt();
        assert!(
            m8 < m1,
            "high harmonics are smaller: |c8|={m8} vs |c1|={m1}"
        );
    }
}
