//! LU DECOMPOSITION: dense LU factorization with partial pivoting and a
//! linear solve, BYTEmark's "numerical analysis" test.

use super::{checksum, Kernel};
use crate::rng::SplitMix64;

/// LU benchmark on an `n × n` system.
#[derive(Debug, Clone)]
pub struct LuDecomposition {
    n: usize,
}

impl LuDecomposition {
    /// Factor `n × n` matrices.
    pub fn new(n: usize) -> Self {
        assert!(n >= 2);
        LuDecomposition { n }
    }
}

impl Default for LuDecomposition {
    fn default() -> Self {
        LuDecomposition::new(64)
    }
}

/// Row-major dense matrix utilities used by the kernel and its tests.
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    n: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Zero matrix.
    pub fn zeros(n: usize) -> Self {
        Matrix {
            n,
            data: vec![0.0; n * n],
        }
    }

    /// Dimension.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Element access.
    #[inline]
    pub fn at(&self, i: usize, j: usize) -> f64 {
        self.data[i * self.n + j]
    }

    /// Mutable element access.
    #[inline]
    pub fn at_mut(&mut self, i: usize, j: usize) -> &mut f64 {
        &mut self.data[i * self.n + j]
    }

    /// A diagonally dominant random matrix (always non-singular).
    pub fn random_dominant(n: usize, rng: &mut SplitMix64) -> Self {
        let mut m = Matrix::zeros(n);
        for i in 0..n {
            let mut row_sum = 0.0;
            for j in 0..n {
                if i != j {
                    let v = rng.next_f64() * 2.0 - 1.0;
                    *m.at_mut(i, j) = v;
                    row_sum += v.abs();
                }
            }
            *m.at_mut(i, i) = row_sum + 1.0 + rng.next_f64();
        }
        m
    }

    /// `self · x`.
    pub fn mul_vec(&self, x: &[f64]) -> Vec<f64> {
        (0..self.n)
            .map(|i| (0..self.n).map(|j| self.at(i, j) * x[j]).sum())
            .collect()
    }
}

/// In-place LU factorization with partial pivoting. Returns the pivot
/// permutation, or `None` if the matrix is numerically singular.
pub fn lu_factor(a: &mut Matrix) -> Option<Vec<usize>> {
    let n = a.n();
    let mut piv: Vec<usize> = (0..n).collect();
    for k in 0..n {
        // Pivot: largest |a[i][k]| for i >= k.
        let mut pk = k;
        let mut best = a.at(k, k).abs();
        for i in k + 1..n {
            let v = a.at(i, k).abs();
            if v > best {
                best = v;
                pk = i;
            }
        }
        if best < 1e-12 {
            return None;
        }
        if pk != k {
            for j in 0..n {
                let tmp = a.at(k, j);
                *a.at_mut(k, j) = a.at(pk, j);
                *a.at_mut(pk, j) = tmp;
            }
            piv.swap(k, pk);
        }
        for i in k + 1..n {
            let factor = a.at(i, k) / a.at(k, k);
            *a.at_mut(i, k) = factor;
            for j in k + 1..n {
                *a.at_mut(i, j) -= factor * a.at(k, j);
            }
        }
    }
    Some(piv)
}

/// Solve `A x = b` given the LU factors and pivots from [`lu_factor`].
pub fn lu_solve(lu: &Matrix, piv: &[usize], b: &[f64]) -> Vec<f64> {
    let n = lu.n();
    // Apply permutation, forward-substitute L (unit diagonal).
    let mut y: Vec<f64> = piv.iter().map(|&p| b[p]).collect();
    for i in 1..n {
        for j in 0..i {
            y[i] -= lu.at(i, j) * y[j];
        }
    }
    // Back-substitute U.
    let mut x = y;
    for i in (0..n).rev() {
        for j in i + 1..n {
            x[i] -= lu.at(i, j) * x[j];
        }
        x[i] /= lu.at(i, i);
    }
    x
}

impl Kernel for LuDecomposition {
    fn name(&self) -> &'static str {
        "LU DECOMPOSITION"
    }

    fn ops(&self) -> u64 {
        // 2/3 n³ flops for the factorization.
        let n = self.n as u64;
        2 * n * n * n / 3
    }

    fn run(&self, seed: u64) -> u64 {
        let mut rng = SplitMix64::new(seed);
        let mut a = Matrix::random_dominant(self.n, &mut rng);
        let b: Vec<f64> = (0..self.n).map(|_| rng.next_f64()).collect();
        let piv = lu_factor(&mut a).expect("diagonally dominant => non-singular");
        let x = lu_solve(&a, &piv, &b);
        checksum(x.iter().map(|v| v.to_bits()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn solve_recovers_known_solution() {
        let mut rng = SplitMix64::new(11);
        for n in [2usize, 5, 16, 33] {
            let a = Matrix::random_dominant(n, &mut rng);
            let x_true: Vec<f64> = (0..n).map(|i| (i as f64 + 1.0) / n as f64).collect();
            let b = a.mul_vec(&x_true);
            let mut lu = a.clone();
            let piv = lu_factor(&mut lu).unwrap();
            let x = lu_solve(&lu, &piv, &b);
            for (xa, xb) in x.iter().zip(&x_true) {
                assert!((xa - xb).abs() < 1e-8, "n={n}: {xa} vs {xb}");
            }
        }
    }

    #[test]
    fn singular_matrix_detected() {
        let mut a = Matrix::zeros(3);
        // Rank-1 matrix.
        for i in 0..3 {
            for j in 0..3 {
                *a.at_mut(i, j) = (i + 1) as f64 * (j + 1) as f64;
            }
        }
        assert!(lu_factor(&mut a).is_none());
    }

    #[test]
    fn pivoting_handles_zero_leading_entry() {
        let mut a = Matrix::zeros(2);
        *a.at_mut(0, 1) = 1.0;
        *a.at_mut(1, 0) = 1.0;
        let piv = lu_factor(&mut a).expect("permutation matrix is invertible");
        let x = lu_solve(&a, &piv, &[3.0, 4.0]);
        assert!((x[0] - 4.0).abs() < 1e-12 && (x[1] - 3.0).abs() < 1e-12);
    }
}
