//! ASSIGNMENT: the task-allocation test — solve the linear assignment
//! problem on a random cost matrix.
//!
//! BYTEmark's ASSIGNMENT exercises array-heavy integer control flow by
//! optimally assigning tasks to machines. We use Bertsekas' auction
//! algorithm with integer benefits: with bid increments of `ε = 1` and
//! benefits scaled by `n + 1`, the auction terminates with an optimal
//! assignment (standard ε-optimality argument), and it is fully
//! deterministic for a fixed input.

use super::{checksum, Kernel};
use crate::rng::SplitMix64;

/// Assignment benchmark on an `n × n` benefit matrix.
#[derive(Debug, Clone)]
pub struct Assignment {
    n: usize,
}

impl Assignment {
    /// Solve `n × n` assignment problems.
    pub fn new(n: usize) -> Self {
        assert!(n > 0);
        Assignment { n }
    }
}

impl Default for Assignment {
    fn default() -> Self {
        // BYTEmark uses 101×101; we keep the spirit at a round size.
        Assignment::new(96)
    }
}

/// Solve the assignment problem (maximize total benefit) by auction.
/// `benefit[i][j]` is person `i`'s benefit for object `j`. Returns the
/// object assigned to each person.
pub fn auction(benefit: &[Vec<i64>]) -> Vec<usize> {
    let n = benefit.len();
    assert!(
        benefit.iter().all(|row| row.len() == n),
        "square matrix required"
    );
    // Scale so ε = 1 guarantees optimality: values × (n + 1).
    let scale = (n + 1) as i64;
    let mut price = vec![0i64; n];
    let mut owner: Vec<Option<usize>> = vec![None; n]; // object -> person
    let mut assigned: Vec<Option<usize>> = vec![None; n]; // person -> object
    let mut queue: Vec<usize> = (0..n).collect();
    while let Some(person) = queue.pop() {
        // Find best and second-best object values for this person.
        let (mut best_j, mut best_v, mut second_v) = (0usize, i64::MIN, i64::MIN);
        for j in 0..n {
            let v = benefit[person][j] * scale - price[j];
            if v > best_v {
                second_v = best_v;
                best_v = v;
                best_j = j;
            } else if v > second_v {
                second_v = v;
            }
        }
        // Bid: raise the price by the value margin plus ε.
        let eps = 1i64;
        let raise = if second_v == i64::MIN {
            eps
        } else {
            best_v - second_v + eps
        };
        price[best_j] += raise;
        if let Some(evicted) = owner[best_j].replace(person) {
            assigned[evicted] = None;
            queue.push(evicted);
        }
        assigned[person] = Some(best_j);
    }
    assigned
        .into_iter()
        .map(|a| a.expect("auction terminates fully assigned"))
        .collect()
}

/// Total benefit of an assignment.
pub fn total_benefit(benefit: &[Vec<i64>], assignment: &[usize]) -> i64 {
    assignment
        .iter()
        .enumerate()
        .map(|(i, &j)| benefit[i][j])
        .sum()
}

impl Kernel for Assignment {
    fn name(&self) -> &'static str {
        "ASSIGNMENT"
    }

    fn ops(&self) -> u64 {
        // Empirically the auction with ε = 1 scans each person's row a
        // small multiple of n times; charge n³ scan work.
        let n = self.n as u64;
        n * n * n / 4
    }

    fn run(&self, seed: u64) -> u64 {
        let mut rng = SplitMix64::new(seed);
        let benefit: Vec<Vec<i64>> = (0..self.n)
            .map(|_| (0..self.n).map(|_| rng.next_below(1000) as i64).collect())
            .collect();
        let assignment = auction(&benefit);
        checksum(
            assignment
                .iter()
                .map(|&j| j as u64)
                .chain([total_benefit(&benefit, &assignment) as u64]),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn brute_force(benefit: &[Vec<i64>]) -> i64 {
        fn go(benefit: &[Vec<i64>], person: usize, used: &mut Vec<bool>) -> i64 {
            if person == benefit.len() {
                return 0;
            }
            let mut best = i64::MIN;
            for j in 0..benefit.len() {
                if !used[j] {
                    used[j] = true;
                    best = best.max(benefit[person][j] + go(benefit, person + 1, used));
                    used[j] = false;
                }
            }
            best
        }
        go(benefit, 0, &mut vec![false; benefit.len()])
    }

    #[test]
    fn auction_is_optimal_on_small_instances() {
        let mut rng = SplitMix64::new(33);
        for n in [1usize, 2, 3, 5, 7] {
            let benefit: Vec<Vec<i64>> = (0..n)
                .map(|_| (0..n).map(|_| rng.next_below(50) as i64).collect())
                .collect();
            let assignment = auction(&benefit);
            // It is a permutation.
            let mut seen = vec![false; n];
            for &j in &assignment {
                assert!(!seen[j], "object {j} assigned twice");
                seen[j] = true;
            }
            // And optimal.
            assert_eq!(
                total_benefit(&benefit, &assignment),
                brute_force(&benefit),
                "n = {n}"
            );
        }
    }

    #[test]
    fn identity_benefit_prefers_diagonal() {
        // Strong diagonal: optimal assignment is the identity.
        let n = 6;
        let benefit: Vec<Vec<i64>> = (0..n)
            .map(|i| (0..n).map(|j| if i == j { 100 } else { 1 }).collect())
            .collect();
        assert_eq!(auction(&benefit), (0..n).collect::<Vec<_>>());
    }

    #[test]
    fn deterministic_at_full_size() {
        let k = Assignment::default();
        assert_eq!(k.run(7), k.run(7));
        assert_ne!(k.run(7), k.run(8));
    }
}
