//! IDEA-analogue: an XTEA-style 64-bit block cipher round benchmark.
//!
//! BYTEmark's IDEA test measures integer multiply/add/xor round
//! functions. We use the public-domain XTEA round structure (64-bit
//! blocks, 128-bit key, 32 rounds) — the point is the instruction mix,
//! not cryptographic strength.

use super::{checksum, Kernel};
use crate::rng::SplitMix64;

const DELTA: u32 = 0x9E37_79B9;
const ROUNDS: u32 = 32;

/// Encrypt/decrypt benchmark over `blocks` 64-bit blocks.
#[derive(Debug, Clone)]
pub struct Cipher {
    blocks: usize,
}

impl Cipher {
    /// Process `blocks` blocks.
    pub fn new(blocks: usize) -> Self {
        assert!(blocks > 0);
        Cipher { blocks }
    }
}

impl Default for Cipher {
    fn default() -> Self {
        Cipher::new(8192)
    }
}

/// Encrypt one 64-bit block under a 128-bit key.
pub fn encrypt_block(v: [u32; 2], key: &[u32; 4]) -> [u32; 2] {
    let [mut v0, mut v1] = v;
    let mut sum = 0u32;
    for _ in 0..ROUNDS {
        v0 = v0.wrapping_add(
            (((v1 << 4) ^ (v1 >> 5)).wrapping_add(v1))
                ^ (sum.wrapping_add(key[(sum & 3) as usize])),
        );
        sum = sum.wrapping_add(DELTA);
        v1 = v1.wrapping_add(
            (((v0 << 4) ^ (v0 >> 5)).wrapping_add(v0))
                ^ (sum.wrapping_add(key[((sum >> 11) & 3) as usize])),
        );
    }
    [v0, v1]
}

/// Decrypt one 64-bit block under a 128-bit key.
pub fn decrypt_block(v: [u32; 2], key: &[u32; 4]) -> [u32; 2] {
    let [mut v0, mut v1] = v;
    let mut sum = DELTA.wrapping_mul(ROUNDS);
    for _ in 0..ROUNDS {
        v1 = v1.wrapping_sub(
            (((v0 << 4) ^ (v0 >> 5)).wrapping_add(v0))
                ^ (sum.wrapping_add(key[((sum >> 11) & 3) as usize])),
        );
        sum = sum.wrapping_sub(DELTA);
        v0 = v0.wrapping_sub(
            (((v1 << 4) ^ (v1 >> 5)).wrapping_add(v1))
                ^ (sum.wrapping_add(key[(sum & 3) as usize])),
        );
    }
    [v0, v1]
}

impl Kernel for Cipher {
    fn name(&self) -> &'static str {
        "CIPHER"
    }

    fn ops(&self) -> u64 {
        // ~11 integer ops per half-round, 2 half-rounds, 32 rounds, twice
        // (encrypt + decrypt).
        (self.blocks as u64) * 11 * 2 * ROUNDS as u64 * 2
    }

    fn run(&self, seed: u64) -> u64 {
        let mut rng = SplitMix64::new(seed);
        let key = [
            rng.next_u64() as u32,
            rng.next_u64() as u32,
            rng.next_u64() as u32,
            rng.next_u64() as u32,
        ];
        let mut acc = 0u64;
        let mut cs = Vec::with_capacity(self.blocks);
        for _ in 0..self.blocks {
            let block = [rng.next_u64() as u32, rng.next_u64() as u32];
            let enc = encrypt_block(block, &key);
            let dec = decrypt_block(enc, &key);
            assert_eq!(dec, block, "cipher round trip");
            acc ^= (enc[0] as u64) << 32 | enc[1] as u64;
            cs.push(acc);
        }
        checksum(cs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_all_blocks() {
        let key = [1, 2, 3, 4];
        let mut rng = SplitMix64::new(2);
        for _ in 0..200 {
            let block = [rng.next_u64() as u32, rng.next_u64() as u32];
            assert_eq!(decrypt_block(encrypt_block(block, &key), &key), block);
        }
    }

    #[test]
    fn encryption_changes_data() {
        let key = [9, 9, 9, 9];
        let block = [0, 0];
        assert_ne!(encrypt_block(block, &key), block);
    }

    #[test]
    fn different_keys_differ() {
        let block = [123, 456];
        assert_ne!(
            encrypt_block(block, &[1, 2, 3, 4]),
            encrypt_block(block, &[4, 3, 2, 1])
        );
    }

    #[test]
    fn xtea_reference_vector() {
        // Published XTEA test vector: key = 00010203 04050607 08090a0b
        // 0c0d0e0f, plaintext = 41424344 45464748 -> 497df3d0 72612cb5.
        let key = [0x0001_0203, 0x0405_0607, 0x0809_0a0b, 0x0c0d_0e0f];
        let ct = encrypt_block([0x4142_4344, 0x4546_4748], &key);
        assert_eq!(ct, [0x497d_f3d0, 0x7261_2cb5]);
    }
}
