//! STRING SORT: merge sort over variable-length byte strings.

use super::{checksum, Kernel};
use crate::rng::SplitMix64;

/// Merge-sort benchmark over `count` strings of 4–30 bytes (BYTEmark's
/// string lengths).
#[derive(Debug, Clone)]
pub struct StringSort {
    count: usize,
}

impl StringSort {
    /// Sort `count` random strings.
    pub fn new(count: usize) -> Self {
        assert!(count > 0, "empty string-sort benchmark");
        StringSort { count }
    }
}

impl Default for StringSort {
    fn default() -> Self {
        StringSort::new(4096)
    }
}

/// Bottom-up merge sort (stable), exposed for tests.
///
/// Takes `&mut Vec` (not a slice) deliberately: the sort ping-pongs
/// between the vector and a scratch buffer of equal length.
#[allow(clippy::ptr_arg)]
pub fn merge_sort<T: Ord + Clone>(items: &mut Vec<T>) {
    let n = items.len();
    let mut buf: Vec<T> = items.clone();
    let mut width = 1;
    // Alternate between items and buf each pass; track which holds the
    // current data.
    let mut src_is_items = true;
    while width < n {
        {
            let (src, dst): (&[T], &mut [T]) = if src_is_items {
                (&items[..], &mut buf[..])
            } else {
                (&buf[..], &mut items[..])
            };
            let mut i = 0;
            while i < n {
                let mid = usize::min(i + width, n);
                let end = usize::min(i + 2 * width, n);
                merge(&src[i..mid], &src[mid..end], &mut dst[i..end]);
                i = end;
            }
        }
        src_is_items = !src_is_items;
        width *= 2;
    }
    if !src_is_items {
        items.clone_from_slice(&buf);
    }
}

fn merge<T: Ord + Clone>(a: &[T], b: &[T], out: &mut [T]) {
    let (mut i, mut j) = (0, 0);
    for slot in out.iter_mut() {
        if i < a.len() && (j >= b.len() || a[i] <= b[j]) {
            *slot = a[i].clone();
            i += 1;
        } else {
            *slot = b[j].clone();
            j += 1;
        }
    }
}

impl Kernel for StringSort {
    fn name(&self) -> &'static str {
        "STRING SORT"
    }

    fn ops(&self) -> u64 {
        let n = self.count as u64;
        // n log n comparisons, each over ~17 bytes on average.
        n * (64 - n.leading_zeros() as u64) * 17
    }

    fn run(&self, seed: u64) -> u64 {
        let mut rng = SplitMix64::new(seed);
        let mut strings: Vec<Vec<u8>> = (0..self.count)
            .map(|_| {
                let len = 4 + rng.next_below(27) as usize;
                let mut s = vec![0u8; len];
                rng.fill_bytes(&mut s);
                for b in &mut s {
                    *b = b'a' + (*b % 26);
                }
                s
            })
            .collect();
        merge_sort(&mut strings);
        checksum(strings.iter().map(|s| {
            s.iter()
                .fold(0u64, |acc, &b| acc.wrapping_mul(31).wrapping_add(b as u64))
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_sort_sorts_and_is_stable() {
        // Stability: equal keys keep relative order. Use (key, tag) with
        // Ord on key only via a wrapper.
        #[derive(Clone, PartialEq, Eq, Debug)]
        struct KV(u8, usize);
        impl PartialOrd for KV {
            fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
                Some(self.cmp(other))
            }
        }
        impl Ord for KV {
            fn cmp(&self, other: &Self) -> std::cmp::Ordering {
                self.0.cmp(&other.0)
            }
        }
        let mut v = vec![KV(2, 0), KV(1, 1), KV(2, 2), KV(1, 3), KV(0, 4)];
        merge_sort(&mut v);
        assert_eq!(v, vec![KV(0, 4), KV(1, 1), KV(1, 3), KV(2, 0), KV(2, 2)]);
    }

    #[test]
    fn merge_sort_various_sizes() {
        let mut rng = SplitMix64::new(5);
        for n in [0usize, 1, 2, 3, 15, 16, 17, 100] {
            let mut a: Vec<u32> = (0..n).map(|_| rng.next_u64() as u32).collect();
            let mut b = a.clone();
            merge_sort(&mut a);
            b.sort();
            assert_eq!(a, b, "n = {n}");
        }
    }

    #[test]
    fn strings_are_lowercase_ascii() {
        let k = StringSort::new(10);
        // Indirect check: the checksum must be stable, and generation
        // maps all bytes into a..z (exercised via run).
        assert_eq!(k.run(3), k.run(3));
    }
}
