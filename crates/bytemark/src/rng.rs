//! A tiny deterministic RNG for kernel inputs.
//!
//! SplitMix64 (Steele, Lea & Flood) — chosen because it is trivially
//! portable and its output sequence is stable forever, so kernel
//! checksums can be pinned in tests. Not for cryptographic use.

/// SplitMix64 generator.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Seeded generator; the same seed always yields the same sequence.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next 64-bit value.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Next value reduced to `0..bound` (bound > 0); slight modulo bias
    /// is irrelevant for benchmark inputs.
    #[inline]
    pub fn next_below(&mut self, bound: u64) -> u64 {
        self.next_u64() % bound
    }

    /// Uniform float in `[0, 1)`.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Fill a byte slice.
    pub fn fill_bytes(&mut self, out: &mut [u8]) {
        for chunk in out.chunks_mut(8) {
            let v = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&v[..chunk.len()]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_sequence() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn known_first_value() {
        // Reference value for seed 0 from the SplitMix64 reference
        // implementation.
        let mut r = SplitMix64::new(0);
        assert_eq!(r.next_u64(), 0xE220_A839_7B1D_CDAF);
    }

    #[test]
    fn floats_in_unit_interval() {
        let mut r = SplitMix64::new(7);
        for _ in 0..1000 {
            let f = r.next_f64();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn fill_bytes_covers_partial_chunks() {
        let mut r = SplitMix64::new(1);
        let mut buf = [0u8; 13];
        r.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }

    #[test]
    fn bounded_values_in_range() {
        let mut r = SplitMix64::new(3);
        for _ in 0..1000 {
            assert!(r.next_below(17) < 17);
        }
    }
}
