//! Run the bytemark suite on the host machine with wall-clock timing —
//! what the paper did with BYTEmark on each workstation.
//!
//! ```text
//! cargo run --release -p bytemark --bin bytemark
//! ```

use bytemark::{MachineProfile, Suite, Timer};

fn main() {
    println!("bytemark — BYTEmark-style CPU suite (wall-clock timing)\n");
    let suite = Suite::standard().timer(Timer::Wall);
    let this_machine = MachineProfile::reference("this-machine");
    let scores = suite.run(&this_machine);
    println!(
        "{:<18} {:>12} {:>12} {:>14} {:>18}",
        "kernel", "ops", "time (ms)", "index (op/s)", "checksum"
    );
    let mut sum_ln = 0.0;
    for s in &scores {
        sum_ln += s.index.ln();
        println!(
            "{:<18} {:>12} {:>12.3} {:>14.0} {:>#18x}",
            s.kernel,
            s.ops,
            s.time * 1e3,
            s.index,
            s.checksum
        );
    }
    let index = (sum_ln / scores.len() as f64).exp();
    println!("\ngeometric-mean index: {index:.0} op/s");
    println!(
        "(relative machine speed = this index divided by the fastest \
         machine's index; see `rank()`)"
    );
}
