//! Running the kernel suite against (simulated) machines and turning the
//! results into HBSP^k speed parameters.

use crate::kernels::{self, Kernel};
use std::time::Instant;

/// How kernel time is measured.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Timer {
    /// Deterministic: one run of a kernel on a machine with compute
    /// slowdown `s` is charged `ops × s` time units. Every experiment in
    /// the reproduction uses this so results are bit-stable.
    OpCount,
    /// Wall-clock: actually time the kernel (then scale by the profile's
    /// slowdown). For running the suite on real hardware; inherently
    /// noisy.
    Wall,
}

/// A (simulated) machine to be ranked: BYTEmark ranks real SUN/SGI
/// boxes; we describe each testbed machine by how much slower than the
/// reference machine it computes and communicates.
///
/// The two slowdowns are deliberately *separate*: BYTEmark (and our
/// suite) measures only computation, while the model's `r` parameter is
/// about communication. The imperfect correlation between the two is
/// exactly what the paper observes in Figure 3(b), where the
/// compute-derived `c_j` of the second-fastest machine overestimates its
/// communication ability.
#[derive(Debug, Clone, PartialEq)]
pub struct MachineProfile {
    /// Human-readable machine name.
    pub name: String,
    /// Compute slowdown vs. the reference machine (1.0 = reference).
    pub compute_slowdown: f64,
    /// Communication slowdown vs. the reference machine — becomes the
    /// model's `r` after normalization.
    pub comm_slowdown: f64,
}

impl MachineProfile {
    /// A profile with the given slowdowns.
    pub fn new(name: impl Into<String>, compute_slowdown: f64, comm_slowdown: f64) -> Self {
        assert!(
            compute_slowdown >= 1.0,
            "slowdown is relative to the fastest, so >= 1"
        );
        assert!(comm_slowdown >= 1.0);
        MachineProfile {
            name: name.into(),
            compute_slowdown,
            comm_slowdown,
        }
    }

    /// The reference (fastest) machine.
    pub fn reference(name: impl Into<String>) -> Self {
        MachineProfile::new(name, 1.0, 1.0)
    }
}

/// Result of one kernel on one machine.
#[derive(Debug, Clone)]
pub struct Score {
    /// Kernel name.
    pub kernel: &'static str,
    /// Nominal operation count.
    pub ops: u64,
    /// Charged time (model units for [`Timer::OpCount`], seconds for
    /// [`Timer::Wall`]).
    pub time: f64,
    /// Throughput index `ops / time` — higher is faster.
    pub index: f64,
    /// Kernel checksum, for integrity assertions.
    pub checksum: u64,
}

/// A configured benchmark suite.
pub struct Suite {
    kernels: Vec<Box<dyn Kernel>>,
    seed: u64,
    timer: Timer,
}

impl Suite {
    /// The full eight-kernel suite with deterministic timing.
    pub fn standard() -> Self {
        Suite {
            kernels: kernels::standard(),
            seed: 0xB17E_0001,
            timer: Timer::OpCount,
        }
    }

    /// A small, fast suite for tests.
    pub fn quick() -> Self {
        Suite {
            kernels: kernels::quick(),
            seed: 0xB17E_0002,
            timer: Timer::OpCount,
        }
    }

    /// A suite over custom kernels.
    pub fn with_kernels(kernels: Vec<Box<dyn Kernel>>) -> Self {
        Suite {
            kernels,
            seed: 0xB17E_0003,
            timer: Timer::OpCount,
        }
    }

    /// Change the timing mode.
    pub fn timer(mut self, timer: Timer) -> Self {
        self.timer = timer;
        self
    }

    /// Change the input seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Run every kernel "on" `profile` and return per-kernel scores.
    pub fn run(&self, profile: &MachineProfile) -> Vec<Score> {
        self.kernels
            .iter()
            .map(|k| {
                let start = Instant::now();
                let checksum = k.run(self.seed);
                let time = match self.timer {
                    Timer::OpCount => k.ops() as f64 * profile.compute_slowdown,
                    Timer::Wall => {
                        start.elapsed().as_secs_f64().max(1e-9) * profile.compute_slowdown
                    }
                };
                Score {
                    kernel: k.name(),
                    ops: k.ops(),
                    time,
                    index: k.ops() as f64 / time,
                    checksum,
                }
            })
            .collect()
    }

    /// The machine's overall index: geometric mean of per-kernel
    /// indices, BYTEmark style.
    pub fn index(&self, profile: &MachineProfile) -> f64 {
        let scores = self.run(profile);
        geometric_mean(scores.iter().map(|s| s.index))
    }

    /// Indices for a whole testbed.
    pub fn indices(&self, profiles: &[MachineProfile]) -> Vec<f64> {
        profiles.iter().map(|p| self.index(p)).collect()
    }
}

fn geometric_mean(values: impl IntoIterator<Item = f64>) -> f64 {
    let (sum_ln, count) = values
        .into_iter()
        .fold((0.0, 0usize), |(s, c), v| (s + v.ln(), c + 1));
    assert!(count > 0, "geometric mean of nothing");
    (sum_ln / count as f64).exp()
}

/// Normalize benchmark indices into the model's relative compute speeds:
/// the fastest machine gets 1.0, everything else its fraction of that.
/// These are the `speed` values of `hbsp-core`'s `NodeParams` and the
/// basis of the paper's `c_j` fractions.
pub fn rank(indices: &[f64]) -> Vec<f64> {
    let max = indices.iter().fold(0.0f64, |a, &b| a.max(b));
    assert!(max > 0.0, "cannot rank an empty or zero-index testbed");
    indices.iter().map(|&i| i / max).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn opcount_timing_is_deterministic() {
        let suite = Suite::quick();
        let p = MachineProfile::new("sun1", 2.0, 2.0);
        let a = suite.run(&p);
        let b = suite.run(&p);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.time, y.time);
            assert_eq!(x.checksum, y.checksum);
        }
    }

    #[test]
    fn slower_machine_scores_lower() {
        let suite = Suite::quick();
        let fast = suite.index(&MachineProfile::reference("ref"));
        let slow = suite.index(&MachineProfile::new("old", 3.0, 3.0));
        assert!(
            (fast / slow - 3.0).abs() < 1e-9,
            "opcount mode scales exactly: {fast} vs {slow}"
        );
    }

    #[test]
    fn rank_normalizes_to_fastest() {
        let ranks = rank(&[100.0, 50.0, 25.0]);
        assert_eq!(ranks, vec![1.0, 0.5, 0.25]);
    }

    #[test]
    fn geometric_mean_of_equal_values() {
        assert!((geometric_mean([4.0, 4.0, 4.0]) - 4.0).abs() < 1e-12);
    }

    #[test]
    fn geometric_mean_is_scale_invariant_per_kernel() {
        // Doubling one kernel's index scales the mean by 2^(1/n).
        let base = geometric_mean([1.0, 1.0]);
        let bumped = geometric_mean([2.0, 1.0]);
        assert!((bumped / base - 2.0f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "slowdown is relative to the fastest")]
    fn profile_rejects_speedup() {
        MachineProfile::new("impossible", 0.5, 1.0);
    }

    #[test]
    fn wall_timer_runs() {
        let suite = Suite::quick().timer(Timer::Wall);
        let scores = suite.run(&MachineProfile::reference("ref"));
        assert!(scores.iter().all(|s| s.time > 0.0 && s.index > 0.0));
    }
}
