//! # bytemark — a BYTEmark-style machine-ranking suite
//!
//! The paper ranks the processors of its testbed with the BYTEmark
//! benchmark (BYTE Magazine, 1995), "which consists of tests such as
//! sorting, floating-point manipulation, and numerical analysis", and
//! derives the workload fractions `c_j` from the resulting indices.
//! BYTEmark itself is a proprietary C suite; this crate is a from-scratch
//! Rust suite in the same spirit with nine deterministic kernels:
//!
//! | kernel | BYTEmark analogue | exercises |
//! |---|---|---|
//! | [`kernels::Assignment`]   | ASSIGNMENT   | array-heavy integer control flow |
//! | [`kernels::NumericSort`]  | NUMERIC SORT | integer comparison + swap |
//! | [`kernels::StringSort`]   | STRING SORT  | byte-string comparison |
//! | [`kernels::BitField`]     | BITFIELD     | bit manipulation |
//! | [`kernels::Fourier`]      | FOURIER      | trig-heavy floating point |
//! | [`kernels::LuDecomposition`] | LU DECOMPOSITION | dense linear algebra |
//! | [`kernels::Huffman`]      | HUFFMAN      | tree building + bit I/O |
//! | [`kernels::Cipher`]       | IDEA         | integer block rounds |
//! | [`kernels::NeuralNet`]    | NEURAL NET   | dot products + sigmoid |
//!
//! Each kernel is deterministic (seeded by a [`rng::SplitMix64`]),
//! returns a checksum so optimizers cannot delete the work, and reports a
//! nominal operation count. [`Suite`] combines kernels into a geometric-
//! mean *index* per machine; [`rank`] normalizes indices into the model's
//! relative speeds (fastest = 1).
//!
//! Because the reproduction runs on simulated machines, timing comes in
//! two flavors ([`Timer`]): deterministic op-counting (a machine with
//! slowdown `s` takes `ops × s` time units — used by every experiment so
//! results are reproducible) and wall-clock (provided for running the
//! suite on real hardware).

#![forbid(unsafe_code)]

pub mod kernels;
pub mod rng;
pub mod suite;

pub use kernels::Kernel;
pub use suite::{rank, MachineProfile, Score, Suite, Timer};
