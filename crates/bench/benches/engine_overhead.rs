//! Per-superstep overhead of the threaded runtime's synchronization
//! path, as a function of processor count and barrier implementation.
//!
//! The program under test does nothing per step — no work charged, no
//! messages — so the measured wall time is pure engine overhead: thread
//! rendezvous, leader-section coordination, and release. Each iteration
//! runs `ROUNDS` supersteps; divide the reported time by `ROUNDS` for
//! the per-superstep figure.
//!
//! Machines are two-level HBSP^2 trees in clusters of at most 4, so the
//! hierarchical barrier's combining tree has real interior nodes to
//! exploit.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hbsp_core::{
    MachineTree, ProcEnv, SpmdContext, SpmdProgram, StepOutcome, SyncScope, TreeBuilder,
};
use hbsp_runtime::{BarrierKind, ThreadedRuntime};
use std::hint::black_box;
use std::sync::Arc;
use std::time::Duration;

const ROUNDS: usize = 200;

/// `ROUNDS` empty globally-synchronized supersteps.
struct Spin;

impl SpmdProgram for Spin {
    type State = ();
    fn init(&self, _env: &ProcEnv) {}
    fn step(
        &self,
        step: usize,
        env: &ProcEnv,
        _state: &mut (),
        _ctx: &mut dyn SpmdContext,
    ) -> StepOutcome {
        if step == ROUNDS {
            StepOutcome::Done
        } else {
            StepOutcome::Continue(SyncScope::global(&env.tree))
        }
    }
}

/// A two-level machine with `p` identical processors grouped in
/// clusters of at most 4.
fn clustered(p: usize) -> Arc<MachineTree> {
    let mut clusters: Vec<(f64, Vec<(f64, f64)>)> = Vec::new();
    let mut left = p;
    while left > 0 {
        let take = left.min(4);
        clusters.push((10.0, vec![(1.0, 1.0); take]));
        left -= take;
    }
    Arc::new(TreeBuilder::two_level(1.0, 50.0, &clusters).expect("valid machine"))
}

fn bench_engine_overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine_overhead");
    group.sample_size(10);
    group.measurement_time(Duration::from_millis(300));
    for p in [2usize, 4, 8, 16] {
        let tree = clustered(p);
        for (name, kind) in [
            ("central", BarrierKind::Central),
            ("hierarchical", BarrierKind::Hierarchical),
        ] {
            let rt = ThreadedRuntime::new(Arc::clone(&tree)).barrier(kind);
            group.bench_with_input(BenchmarkId::new(name, p), &rt, |b, rt| {
                b.iter(|| black_box(rt.run(&Spin).expect("spin program runs")).wall)
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_engine_overhead);
criterion_main!(benches);
