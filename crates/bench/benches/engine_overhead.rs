//! Per-superstep overhead of the threaded runtime's synchronization
//! path, as a function of processor count, barrier implementation, and
//! telemetry probe state.
//!
//! The program under test does nothing per step — no work charged, no
//! messages — so the measured wall time is pure engine overhead: thread
//! rendezvous, leader-section coordination, release, and (in the
//! probe-on rows) telemetry assembly. The probe-off column is the
//! regression guard for the no-op probe path: attaching a disabled
//! probe must not put telemetry on the hot path.
//!
//! ```text
//! cargo bench -p hbsp-bench --bench engine_overhead -- \
//!     [--json PATH] [--check BASELINE [--tolerance 0.05]] [--quick]
//! ```
//!
//! `--json` writes the medians as a machine-readable baseline;
//! `--check` compares this run's probe-off medians against a committed
//! baseline (see `BENCH_engine_overhead.json`) and exits non-zero when
//! any regresses by more than the tolerance.
//!
//! Machines are two-level HBSP^2 trees in clusters of at most 4, so the
//! hierarchical barrier's combining tree has real interior nodes to
//! exploit.

use hbsp_core::{
    MachineTree, ProcEnv, SpmdContext, SpmdProgram, StepOutcome, SyncScope, TreeBuilder,
};
use hbsp_obs::json::{parse, Value};
use hbsp_obs::Recorder;
use hbsp_runtime::{BarrierKind, ThreadedRuntime};
use std::process::exit;
use std::sync::Arc;

const ROUNDS: usize = 200;

/// `ROUNDS` empty globally-synchronized supersteps (plus the drain).
struct Spin;

impl SpmdProgram for Spin {
    type State = ();
    fn init(&self, _env: &ProcEnv) {}
    fn step(
        &self,
        step: usize,
        env: &ProcEnv,
        _state: &mut (),
        _ctx: &mut dyn SpmdContext,
    ) -> StepOutcome {
        if step == ROUNDS {
            StepOutcome::Done
        } else {
            StepOutcome::Continue(SyncScope::global(&env.tree))
        }
    }
}

/// A two-level machine with `p` identical processors grouped in
/// clusters of at most 4.
fn clustered(p: usize) -> Arc<MachineTree> {
    let mut clusters: Vec<(f64, Vec<(f64, f64)>)> = Vec::new();
    let mut left = p;
    while left > 0 {
        let take = left.min(4);
        clusters.push((10.0, vec![(1.0, 1.0); take]));
        left -= take;
    }
    Arc::new(TreeBuilder::two_level(1.0, 50.0, &clusters).expect("valid machine"))
}

/// Median wall nanoseconds per superstep over `samples` runs.
fn median_ns_per_step(rt: &ThreadedRuntime, samples: usize) -> f64 {
    let steps = (ROUNDS + 1) as f64;
    let mut measured: Vec<f64> = (0..samples)
        .map(|_| {
            let out = rt.run(&Spin).expect("spin program runs");
            out.wall.as_nanos() as f64 / steps
        })
        .collect();
    measured.sort_by(f64::total_cmp);
    measured[measured.len() / 2]
}

struct Row {
    p: usize,
    barrier: &'static str,
    probe: &'static str,
    ns: f64,
}

fn run_matrix(samples: usize) -> Vec<Row> {
    let mut rows = Vec::new();
    for p in [2usize, 4, 8, 16] {
        let tree = clustered(p);
        for (barrier, kind) in [
            ("central", BarrierKind::Central),
            ("hierarchical", BarrierKind::Hierarchical),
        ] {
            for probe in ["off", "on"] {
                let mut rt = ThreadedRuntime::new(Arc::clone(&tree)).barrier(kind);
                if probe == "on" {
                    rt = rt.probe(Arc::new(Recorder::new()));
                }
                let ns = median_ns_per_step(&rt, samples);
                println!("p={p:>2} barrier={barrier:<12} probe={probe:<3} {ns:>10.0} ns/superstep");
                rows.push(Row {
                    p,
                    barrier,
                    probe,
                    ns,
                });
            }
        }
    }
    rows
}

fn to_json(rows: &[Row], samples: usize) -> String {
    let mut out = String::from("{\"bench\":\"engine_overhead\",");
    out.push_str(&format!("\"rounds\":{ROUNDS},\"samples\":{samples},"));
    out.push_str("\"results\":[");
    for (i, r) in rows.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"p\":{},\"barrier\":\"{}\",\"probe\":\"{}\",\"ns_per_superstep\":{:.1}}}",
            r.p, r.barrier, r.probe, r.ns
        ));
    }
    out.push_str("]}\n");
    out
}

/// Compare this run's probe-off medians against a committed baseline;
/// returns the regressions found.
fn check_against(rows: &[Row], baseline: &Value, tolerance: f64) -> Vec<String> {
    let mut regressions = Vec::new();
    let empty = Vec::new();
    let results = baseline
        .get("results")
        .and_then(Value::as_arr)
        .unwrap_or(&empty);
    for row in rows.iter().filter(|r| r.probe == "off") {
        let base = results.iter().find_map(|v| {
            let p = v.get("p").and_then(Value::as_f64)? as usize;
            let barrier = v.get("barrier").and_then(Value::as_str)?;
            let probe = v.get("probe").and_then(Value::as_str)?;
            (p == row.p && barrier == row.barrier && probe == "off")
                .then(|| v.get("ns_per_superstep").and_then(Value::as_f64))
                .flatten()
        });
        let Some(base) = base else {
            regressions.push(format!(
                "baseline has no probe-off entry for p={} barrier={}",
                row.p, row.barrier
            ));
            continue;
        };
        let limit = base * (1.0 + tolerance);
        if row.ns > limit {
            regressions.push(format!(
                "p={} barrier={}: {:.0} ns/superstep exceeds baseline {:.0} by more than {:.0}%",
                row.p,
                row.barrier,
                row.ns,
                base,
                tolerance * 100.0
            ));
        }
    }
    regressions
}

/// `cargo bench` runs with the package directory as cwd; resolve
/// baseline paths that do not exist there against the workspace root so
/// `--check BENCH_engine_overhead.json` works from either.
fn resolve(path: &str) -> std::path::PathBuf {
    let direct = std::path::PathBuf::from(path);
    if direct.exists() {
        return direct;
    }
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join(path);
    if root.exists() {
        root
    } else {
        direct
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut json_out: Option<String> = None;
    let mut check: Option<String> = None;
    let mut tolerance = 0.05f64;
    let mut samples = 15usize;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--json" => json_out = it.next().cloned(),
            "--check" => check = it.next().cloned(),
            "--tolerance" => {
                tolerance = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--tolerance takes a fraction, e.g. 0.05")
            }
            "--quick" => samples = 5,
            // `cargo bench` passes --bench; ignore it and any filter.
            "--bench" => {}
            _ => {}
        }
    }

    let rows = run_matrix(samples);

    if let Some(path) = &json_out {
        std::fs::write(path, to_json(&rows, samples)).expect("write json baseline");
        println!("baseline written to {path}");
    }
    if let Some(path) = &check {
        let text = std::fs::read_to_string(resolve(path)).expect("read baseline");
        let baseline = parse(&text).expect("baseline parses as JSON");
        let regressions = check_against(&rows, &baseline, tolerance);
        if regressions.is_empty() {
            println!(
                "probe-off medians within {:.0}% of {path}",
                tolerance * 100.0
            );
        } else {
            for r in &regressions {
                eprintln!("REGRESSION: {r}");
            }
            exit(1);
        }
    }
}
