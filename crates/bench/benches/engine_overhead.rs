//! Per-superstep overhead of the threaded runtime's synchronization
//! path, as a function of processor count, barrier implementation, and
//! telemetry probe state.
//!
//! The program under test does nothing per step — no work charged, no
//! messages — so the measured wall time is pure engine overhead: thread
//! rendezvous, leader-section coordination, release, and (in the
//! probe-on rows) telemetry assembly. The probe-off column is the
//! regression guard for the no-op probe path: attaching a disabled
//! probe must not put telemetry on the hot path. The probe-on rows
//! attach an armed [`FlightRecorder`] — the always-on production
//! probe — so they price the full flight-recorder tax: record
//! assembly in the leader section plus the ring write and streaming
//! anomaly detector.
//!
//! ```text
//! cargo bench -p hbsp-bench --bench engine_overhead -- \
//!     [--json PATH] [--check BASELINE [--tolerance 0.05]] \
//!     [--max-ratio 1.2] [--quick] [--procs 32,64]
//! ```
//!
//! `--json` writes the per-config medians (and MADs) as a
//! machine-readable baseline; `--check` compares this run's probe-off
//! **and probe-on** medians against a committed baseline (see
//! `BENCH_engine_overhead.json`) and exits non-zero when any regresses
//! by more than the tolerance. A `--check` also enforces the **probe
//! tax bound** on the committed baseline itself: every (p, barrier)
//! pair's probe-on median must be at most `--max-ratio` (default
//! 1.20×) its probe-off median. That bound is checked against the
//! committed numbers, not this run's samples, so it is deterministic
//! in CI — regenerating the baseline is where the bound bites.
//! `--procs` restricts the matrix to a comma-separated subset of
//! processor counts (the CI gate uses this to focus on the largest
//! machines).
//!
//! # Methodology
//!
//! Every runtime configuration is built **once**, then warmed with one
//! untimed run, and the sample loop **interleaves** configurations:
//! sample round `i` measures every configuration once before round
//! `i+1` starts. Block scheduling (all samples of config A, then all of
//! B) lets slow machine-wide drift — thermal state, co-running daemons,
//! page-cache churn — land entirely on whichever configs run last and
//! masquerade as an algorithmic difference; interleaving spreads any
//! drift uniformly across the matrix. Per config the reported statistic
//! is the median, with the median absolute deviation (MAD) as the
//! dispersion measure; both are robust to the occasional
//! scheduler-induced outlier that the mean would smear into the result.
//!
//! Machines are two-level HBSP^2 trees in clusters of at most 4, so the
//! hierarchical barrier's combining tree has real interior nodes to
//! exploit.

use hbsp_core::{
    MachineTree, ProcEnv, SpmdContext, SpmdProgram, StepOutcome, SyncScope, TreeBuilder,
};
use hbsp_obs::json::{parse, Value};
use hbsp_obs::FlightRecorder;
use hbsp_runtime::{BarrierKind, ThreadedRuntime};
use std::process::exit;
use std::sync::Arc;

const ROUNDS: usize = 200;
const ALL_PROCS: [usize; 6] = [2, 4, 8, 16, 32, 64];

/// `ROUNDS` empty globally-synchronized supersteps (plus the drain).
struct Spin;

impl SpmdProgram for Spin {
    type State = ();
    fn init(&self, _env: &ProcEnv) {}
    fn step(
        &self,
        step: usize,
        env: &ProcEnv,
        _state: &mut (),
        _ctx: &mut dyn SpmdContext,
    ) -> StepOutcome {
        if step == ROUNDS {
            StepOutcome::Done
        } else {
            StepOutcome::Continue(SyncScope::global(&env.tree))
        }
    }
}

/// A two-level machine with `p` identical processors grouped in
/// clusters of at most 4.
fn clustered(p: usize) -> Arc<MachineTree> {
    let mut clusters: Vec<(f64, Vec<(f64, f64)>)> = Vec::new();
    let mut left = p;
    while left > 0 {
        let take = left.min(4);
        clusters.push((10.0, vec![(1.0, 1.0); take]));
        left -= take;
    }
    Arc::new(TreeBuilder::two_level(1.0, 50.0, &clusters).expect("valid machine"))
}

/// One built runtime configuration plus its collected samples.
struct Config {
    p: usize,
    barrier: &'static str,
    probe: &'static str,
    rt: ThreadedRuntime,
    samples_ns: Vec<f64>,
}

/// One wall-clock measurement: ns per superstep for a single run.
fn sample_ns_per_step(rt: &ThreadedRuntime) -> f64 {
    let steps = (ROUNDS + 1) as f64;
    let out = rt.run(&Spin).expect("spin program runs");
    out.wall.as_nanos() as f64 / steps
}

/// Median of a sample set (sorted copy; even sizes take the upper
/// middle, as the original baseline did).
fn median(samples: &[f64]) -> f64 {
    let mut s = samples.to_vec();
    s.sort_by(f64::total_cmp);
    s[s.len() / 2]
}

/// Median absolute deviation from the median — the dispersion figure
/// reported next to each median.
fn mad(samples: &[f64]) -> f64 {
    let m = median(samples);
    let dev: Vec<f64> = samples.iter().map(|&v| (v - m).abs()).collect();
    median(&dev)
}

struct Row {
    p: usize,
    barrier: &'static str,
    probe: &'static str,
    ns: f64,
    mad_ns: f64,
}

fn run_matrix(samples: usize, procs: &[usize]) -> Vec<Row> {
    // Build every configuration up front, once.
    let mut configs: Vec<Config> = Vec::new();
    for &p in procs {
        let tree = clustered(p);
        for (barrier, kind) in [
            ("central", BarrierKind::Central),
            ("hierarchical", BarrierKind::Hierarchical),
        ] {
            for probe in ["off", "on"] {
                let mut rt = ThreadedRuntime::new(Arc::clone(&tree)).barrier(kind);
                if probe == "on" {
                    // The warmup run arms the recorder's arena, so
                    // every timed sample sees the steady-state path:
                    // no allocation, no locks.
                    rt = rt.probe(Arc::new(FlightRecorder::new()));
                }
                configs.push(Config {
                    p,
                    barrier,
                    probe,
                    rt,
                    samples_ns: Vec::with_capacity(samples),
                });
            }
        }
    }

    // One untimed warmup run per config, then interleaved sampling:
    // each round measures every configuration once, so machine-wide
    // drift spreads across the matrix instead of biasing whole blocks.
    for cfg in &configs {
        let _ = sample_ns_per_step(&cfg.rt);
    }
    for _round in 0..samples {
        for cfg in &mut configs {
            let ns = sample_ns_per_step(&cfg.rt);
            cfg.samples_ns.push(ns);
        }
    }

    configs
        .iter()
        .map(|cfg| {
            let ns = median(&cfg.samples_ns);
            let mad_ns = mad(&cfg.samples_ns);
            println!(
                "p={:>2} barrier={:<12} probe={:<3} {:>10.0} ns/superstep (±{:.0} MAD)",
                cfg.p, cfg.barrier, cfg.probe, ns, mad_ns
            );
            Row {
                p: cfg.p,
                barrier: cfg.barrier,
                probe: cfg.probe,
                ns,
                mad_ns,
            }
        })
        .collect()
}

fn to_json(rows: &[Row], samples: usize) -> String {
    let mut out = String::from("{\"bench\":\"engine_overhead\",");
    out.push_str(&format!("\"rounds\":{ROUNDS},\"samples\":{samples},"));
    out.push_str("\"scheduling\":\"interleaved\",");
    out.push_str("\"results\":[");
    for (i, r) in rows.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"p\":{},\"barrier\":\"{}\",\"probe\":\"{}\",\"ns_per_superstep\":{:.1},\"mad_ns\":{:.1}}}",
            r.p, r.barrier, r.probe, r.ns, r.mad_ns
        ));
    }
    out.push_str("]}\n");
    out
}

/// Find the baseline median for one (p, barrier, probe) cell.
fn baseline_ns(results: &[Value], p: usize, barrier: &str, probe: &str) -> Option<f64> {
    results.iter().find_map(|v| {
        let bp = v.get("p").and_then(Value::as_f64)? as usize;
        let bb = v.get("barrier").and_then(Value::as_str)?;
        let bpr = v.get("probe").and_then(Value::as_str)?;
        (bp == p && bb == barrier && bpr == probe)
            .then(|| v.get("ns_per_superstep").and_then(Value::as_f64))
            .flatten()
    })
}

/// Compare this run's medians (both probe columns) against a committed
/// baseline; returns the regressions found.
fn check_against(rows: &[Row], baseline: &Value, tolerance: f64) -> Vec<String> {
    let mut regressions = Vec::new();
    let empty = Vec::new();
    let results = baseline
        .get("results")
        .and_then(Value::as_arr)
        .unwrap_or(&empty);
    for row in rows {
        let Some(base) = baseline_ns(results, row.p, row.barrier, row.probe) else {
            regressions.push(format!(
                "baseline has no probe-{} entry for p={} barrier={}",
                row.probe, row.p, row.barrier
            ));
            continue;
        };
        let limit = base * (1.0 + tolerance);
        if row.ns > limit {
            regressions.push(format!(
                "p={} barrier={} probe={}: {:.0} ns/superstep exceeds baseline {:.0} \
                 by more than {:.0}%",
                row.p,
                row.barrier,
                row.probe,
                row.ns,
                base,
                tolerance * 100.0
            ));
        }
    }
    regressions
}

/// Enforce the probe-tax bound on the committed baseline itself: for
/// every (p, barrier) pair present, probe-on must cost at most
/// `max_ratio` × probe-off. Deterministic — it reads the file, not
/// this run's samples.
fn check_probe_tax(baseline: &Value, max_ratio: f64) -> Vec<String> {
    let mut violations = Vec::new();
    let empty = Vec::new();
    let results = baseline
        .get("results")
        .and_then(Value::as_arr)
        .unwrap_or(&empty);
    for &p in &ALL_PROCS {
        for barrier in ["central", "hierarchical"] {
            let (Some(off), Some(on)) = (
                baseline_ns(results, p, barrier, "off"),
                baseline_ns(results, p, barrier, "on"),
            ) else {
                continue;
            };
            if on > off * max_ratio {
                violations.push(format!(
                    "p={p} barrier={barrier}: probe-on {on:.0} ns is {:.2}x probe-off \
                     {off:.0} ns (bound {max_ratio:.2}x)",
                    on / off
                ));
            }
        }
    }
    violations
}

/// `cargo bench` runs with the package directory as cwd; resolve
/// baseline paths that do not exist there against the workspace root so
/// `--check BENCH_engine_overhead.json` works from either.
fn resolve(path: &str) -> std::path::PathBuf {
    let direct = std::path::PathBuf::from(path);
    if direct.exists() {
        return direct;
    }
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join(path);
    if root.exists() {
        root
    } else {
        direct
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut json_out: Option<String> = None;
    let mut check: Option<String> = None;
    let mut tolerance = 0.05f64;
    let mut max_ratio = 1.2f64;
    let mut samples = 15usize;
    let mut procs: Vec<usize> = ALL_PROCS.to_vec();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--json" => json_out = it.next().cloned(),
            "--check" => check = it.next().cloned(),
            "--tolerance" => {
                tolerance = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--tolerance takes a fraction, e.g. 0.05")
            }
            "--max-ratio" => {
                max_ratio = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--max-ratio takes a factor, e.g. 1.2")
            }
            "--procs" => {
                procs = it
                    .next()
                    .map(|v| {
                        v.split(',')
                            .map(|n| n.trim().parse().expect("--procs takes e.g. 32,64"))
                            .collect()
                    })
                    .expect("--procs takes a comma-separated list")
            }
            "--quick" => samples = 5,
            // `cargo bench` passes --bench; ignore it and any filter.
            "--bench" => {}
            _ => {}
        }
    }

    let rows = run_matrix(samples, &procs);

    if let Some(path) = &json_out {
        std::fs::write(path, to_json(&rows, samples)).expect("write json baseline");
        println!("baseline written to {path}");
    }
    if let Some(path) = &check {
        let text = std::fs::read_to_string(resolve(path)).expect("read baseline");
        let baseline = parse(&text).expect("baseline parses as JSON");
        let mut failures = check_against(&rows, &baseline, tolerance);
        failures.extend(check_probe_tax(&baseline, max_ratio));
        if failures.is_empty() {
            println!(
                "medians within {:.0}% of {path}; baseline probe tax within {max_ratio:.2}x",
                tolerance * 100.0
            );
        } else {
            for r in &failures {
                eprintln!("REGRESSION: {r}");
            }
            exit(1);
        }
    }
}
