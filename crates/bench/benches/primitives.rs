//! Microbenches of the substrate primitives: the event queue, the
//! superstep timing algebra, the threaded runtime's barrier, and the
//! bytemark kernels (real wall time of one run each).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hbsp_core::{ProcId, TreeBuilder};
use hbsp_runtime::CentralBarrier;
use hbsp_sim::timing::{superstep_timing, SendIntent};
use hbsp_sim::{NetConfig, TimeQueue};
use std::hint::black_box;

fn bench_event_queue(c: &mut Criterion) {
    c.bench_function("time_queue_push_pop_10k", |b| {
        b.iter(|| {
            let mut q = TimeQueue::new();
            for i in 0..10_000u64 {
                // Deterministic pseudo-times.
                q.push(((i.wrapping_mul(2654435761)) % 1000) as f64, i);
            }
            let mut acc = 0u64;
            while let Some((_, v)) = q.pop() {
                acc = acc.wrapping_add(v);
            }
            black_box(acc)
        })
    });
}

fn bench_timing(c: &mut Criterion) {
    let mut group = c.benchmark_group("superstep_timing");
    for p in [4usize, 16, 64] {
        let procs: Vec<(f64, f64)> = (0..p)
            .map(|i| (1.0 + i as f64 * 0.05, 1.0 / (1.0 + i as f64 * 0.05)))
            .collect();
        let tree = TreeBuilder::flat(1.0, 100.0, &procs).unwrap();
        let starts = vec![0.0; p];
        let work = vec![10.0; p];
        // All-to-all pattern.
        let sends: Vec<SendIntent> = (0..p)
            .flat_map(|i| {
                (0..p).filter(move |&j| j != i).map(move |j| SendIntent {
                    src: ProcId(i as u32),
                    dst: ProcId(j as u32),
                    words: 256,
                })
            })
            .collect();
        let cfg = NetConfig::pvm_like();
        group.bench_with_input(BenchmarkId::new("alltoall", p), &p, |b, _| {
            b.iter(|| black_box(superstep_timing(&tree, &cfg, &starts, &work, &sends)))
        });
    }
    group.finish();
}

fn bench_barrier(c: &mut Criterion) {
    c.bench_function("central_barrier_4_threads_100_rounds", |b| {
        b.iter(|| {
            let barrier = CentralBarrier::new(4);
            std::thread::scope(|s| {
                for _ in 0..4 {
                    s.spawn(|| {
                        for _ in 0..100 {
                            barrier.wait();
                        }
                    });
                }
            });
        })
    });
}

fn bench_bytemark(c: &mut Criterion) {
    let mut group = c.benchmark_group("bytemark");
    for k in bytemark::kernels::quick() {
        group.bench_function(k.name().replace(' ', "_").to_lowercase(), |b| {
            b.iter(|| black_box(k.run(black_box(42))))
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_event_queue,
    bench_timing,
    bench_barrier,
    bench_bytemark
);
criterion_main!(benches);
