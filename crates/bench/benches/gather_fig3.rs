//! Criterion bench regenerating Figure 3 (E1/E2): gather under the
//! four plan variants on the 10-machine testbed, 100 KB input.
//!
//! Criterion measures the wall time of the *simulation*; the reported
//! custom "model time" lives in the bin `fig3_gather`. What this bench
//! pins is that the experiment pipeline stays fast enough to iterate.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hbsp_bench::{input_kb, testbed};
use hbsp_collectives::gather::{simulate_gather, GatherPlan};
use std::hint::black_box;

fn bench_gather(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig3_gather");
    let items = input_kb(100);
    for p in [2usize, 6, 10] {
        let tree = testbed(p).expect("testbed builds");
        for (name, plan) in [
            ("fast_root", GatherPlan::fast_root()),
            ("slow_root", GatherPlan::slow_root()),
            ("balanced", GatherPlan::balanced()),
            ("bsp_baseline", GatherPlan::bsp_baseline()),
        ] {
            group.bench_with_input(BenchmarkId::new(name, p), &p, |b, _| {
                b.iter(|| {
                    let run = simulate_gather(black_box(&tree), black_box(&items), plan).unwrap();
                    black_box(run.time)
                })
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_gather);
criterion_main!(benches);
