//! Ablation benches for the design choices DESIGN.md calls out:
//!
//! * hierarchical vs flat collectives on an HBSP^2 machine with slow
//!   top-level links (the paper's future-work `r` extension via the
//!   per-level bandwidth factor);
//! * level-scoped (`sync_level`) vs global barriers;
//! * balanced vs equal partitioning for gather.

use criterion::{criterion_group, criterion_main, Criterion};
use hbsp_bench::{hbsp2_testbed, input_kb};
use hbsp_collectives::gather::{simulate_gather_with, GatherPlan};
use hbsp_collectives::plan::{RootPolicy, Strategy};
use hbsp_collectives::reduce::{simulate_reduce_with, ReduceOp};
use hbsp_sim::NetConfig;
use std::hint::black_box;

/// A campus whose backbone is 8x slower per word than the LANs.
fn wan_cfg() -> NetConfig {
    NetConfig::pvm_like()
        .with_bandwidth_factors(vec![1.0, 1.0, 8.0])
        .with_latency(vec![0.0, 0.0, 5_000.0])
}

fn bench_hierarchy_ablation(c: &mut Criterion) {
    let tree = hbsp2_testbed(20_000.0).expect("testbed builds");
    let items = input_kb(100);
    let vectors: Vec<Vec<u32>> = (0..tree.num_procs())
        .map(|i| vec![i as u32; 4096])
        .collect();
    let mut group = c.benchmark_group("hierarchy_ablation");
    group.bench_function("gather_hierarchical_wan", |b| {
        b.iter(|| {
            black_box(
                simulate_gather_with(&tree, wan_cfg(), &items, GatherPlan::hierarchical())
                    .unwrap()
                    .time,
            )
        })
    });
    group.bench_function("gather_flat_wan", |b| {
        b.iter(|| {
            black_box(
                simulate_gather_with(&tree, wan_cfg(), &items, GatherPlan::fast_root())
                    .unwrap()
                    .time,
            )
        })
    });
    group.bench_function("reduce_hierarchical_wan", |b| {
        b.iter(|| {
            black_box(
                simulate_reduce_with(
                    &tree,
                    wan_cfg(),
                    vectors.clone(),
                    ReduceOp::Sum,
                    RootPolicy::Fastest,
                    Strategy::Hierarchical,
                )
                .unwrap()
                .time,
            )
        })
    });
    group.bench_function("reduce_flat_wan", |b| {
        b.iter(|| {
            black_box(
                simulate_reduce_with(
                    &tree,
                    wan_cfg(),
                    vectors.clone(),
                    ReduceOp::Sum,
                    RootPolicy::Fastest,
                    Strategy::Flat,
                )
                .unwrap()
                .time,
            )
        })
    });
    group.finish();
}

fn bench_partitioning_ablation(c: &mut Criterion) {
    let tree = hbsp_bench::testbed(10).expect("testbed builds");
    let items = input_kb(200);
    let mut group = c.benchmark_group("partitioning_ablation");
    group.bench_function("gather_equal", |b| {
        b.iter(|| {
            black_box(
                simulate_gather(&tree, &items, GatherPlan::fast_root())
                    .unwrap()
                    .time,
            )
        })
    });
    group.bench_function("gather_balanced", |b| {
        b.iter(|| {
            black_box(
                simulate_gather(&tree, &items, GatherPlan::balanced())
                    .unwrap()
                    .time,
            )
        })
    });
    group.finish();
}

use hbsp_collectives::gather::simulate_gather;

fn bench_barrier_ablation(c: &mut Criterion) {
    let mut group = c.benchmark_group("barrier_ablation");
    group.bench_function("sync_level_1_scoped", |b| {
        b.iter(|| black_box(hbsp_bench::barrier_scope_ablation(&[4], 40_000.0).unwrap()[0].scoped))
    });
    group.bench_function("sync_global", |b| {
        b.iter(|| black_box(hbsp_bench::barrier_scope_ablation(&[4], 40_000.0).unwrap()[0].global))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_hierarchy_ablation,
    bench_partitioning_ablation,
    bench_barrier_ablation
);
criterion_main!(benches);
