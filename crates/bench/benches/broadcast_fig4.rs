//! Criterion bench regenerating Figure 4 (E3/E4): broadcast plan
//! variants on the testbed, 100 KB input.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hbsp_bench::{input_kb, testbed};
use hbsp_collectives::broadcast::{simulate_broadcast, BroadcastPlan};
use std::hint::black_box;

fn bench_broadcast(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig4_broadcast");
    let items = input_kb(100);
    for p in [2usize, 6, 10] {
        let tree = testbed(p).expect("testbed builds");
        for (name, plan) in [
            ("two_phase_fast", BroadcastPlan::two_phase()),
            ("two_phase_slow", BroadcastPlan::slow_root()),
            ("balanced", BroadcastPlan::balanced()),
            ("one_phase", BroadcastPlan::one_phase()),
        ] {
            group.bench_with_input(BenchmarkId::new(name, p), &p, |b, _| {
                b.iter(|| {
                    let run =
                        simulate_broadcast(black_box(&tree), black_box(&items), plan).unwrap();
                    black_box(run.time)
                })
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_broadcast);
criterion_main!(benches);
