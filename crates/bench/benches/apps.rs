//! Criterion benches for the complete applications on the testbed:
//! sample sort, matrix-vector multiply, and the Jacobi stencil, each
//! under equal vs balanced workloads (the end-to-end version of the
//! paper's balanced-workload claim, on compute-bound programs where it
//! actually pays).

use criterion::{criterion_group, criterion_main, Criterion};
use hbsp_apps::matvec::simulate_matvec;
use hbsp_apps::sort::simulate_sample_sort;
use hbsp_apps::stencil::simulate_stencil;
use hbsp_bench::testbed;
use hbsp_collectives::plan::WorkloadPolicy;
use std::hint::black_box;

fn bench_apps(c: &mut Criterion) {
    let tree = testbed(6).expect("testbed builds");
    let mut group = c.benchmark_group("apps");

    let items: Vec<u32> = (0..50_000u32).map(|i| i.wrapping_mul(2654435761)).collect();
    for (name, wl) in [
        ("equal", WorkloadPolicy::Equal),
        ("balanced", WorkloadPolicy::Balanced),
    ] {
        group.bench_function(format!("sample_sort_50k_{name}"), |b| {
            b.iter(|| black_box(simulate_sample_sort(&tree, &items, wl).unwrap().time))
        });
    }

    let (n, m) = (300usize, 120usize);
    let a = vec![1.5f64; n * m];
    let x = vec![0.25f64; m];
    for (name, wl) in [
        ("equal", WorkloadPolicy::Equal),
        ("balanced", WorkloadPolicy::Balanced),
    ] {
        group.bench_function(format!("matvec_300x120_{name}"), |b| {
            b.iter(|| black_box(simulate_matvec(&tree, &a, &x, n, m, wl).unwrap().time))
        });
    }

    let mut field = vec![0.0f64; 2048];
    field[0] = 100.0;
    group.bench_function("stencil_2048x20_balanced", |b| {
        b.iter(|| {
            black_box(
                simulate_stencil(&tree, &field, 20, WorkloadPolicy::Balanced)
                    .unwrap()
                    .time,
            )
        })
    });
    group.finish();
}

criterion_group!(benches, bench_apps);
criterion_main!(benches);
