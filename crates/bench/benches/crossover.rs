//! Criterion bench for the §4.4 crossover analyses (E6/E7).

use criterion::{criterion_group, criterion_main, Criterion};
use hbsp_bench::{broadcast_crossover, hbsp2_phase_study};
use std::hint::black_box;

fn bench_crossover(c: &mut Criterion) {
    c.bench_function("e6_flat_crossover_100kb", |b| {
        b.iter(|| black_box(broadcast_crossover(&[2, 4, 8], black_box(100)).unwrap()))
    });
    c.bench_function("e7_hbsp2_phase_study_100kb", |b| {
        b.iter(|| black_box(hbsp2_phase_study(&[10_000.0, 100_000.0], black_box(100)).unwrap()))
    });
}

criterion_group!(benches, bench_crossover);
criterion_main!(benches);
