//! End-to-end tests of the `hbsp_run`, `hbsp_chaos`, and
//! `hbsp_postmortem` CLI binaries.

use std::process::Command;

fn run(args: &[&str]) -> (String, String, bool) {
    let out = Command::new(env!("CARGO_BIN_EXE_hbsp_run"))
        .args(args)
        .output()
        .expect("binary runs");
    (
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
        out.status.success(),
    )
}

#[test]
fn gather_on_testbed() {
    let (stdout, _, ok) = run(&["testbed:4", "gather", "--kb", "10"]);
    assert!(ok);
    assert!(stdout.contains("HBSP^1 with 4 processors"), "{stdout}");
    assert!(stdout.contains("model time"), "{stdout}");
    assert!(stdout.contains("supersteps      : 2"), "{stdout}");
}

#[test]
fn traced_gather_prints_gantt() {
    let (stdout, _, ok) = run(&["testbed:4", "gather", "--kb", "10", "--trace"]);
    assert!(ok);
    assert!(stdout.contains("activity"), "{stdout}");
    assert!(stdout.contains("P0 |"), "{stdout}");
}

#[test]
fn hierarchical_reduce_on_testbed2() {
    let (stdout, _, ok) = run(&["testbed2", "reduce", "--strategy", "hier", "--kb", "20"]);
    assert!(ok);
    assert!(stdout.contains("HBSP^2 with 10 processors"), "{stdout}");
    // Hierarchical reduce: level-1 step then level-2 step.
    assert!(stdout.contains("scope Level(1)"), "{stdout}");
    assert!(stdout.contains("scope Level(2)"), "{stdout}");
}

#[test]
fn bad_arguments_exit_nonzero_with_usage() {
    let (_, stderr, ok) = run(&["testbed:4"]);
    assert!(!ok);
    assert!(stderr.contains("usage:"), "{stderr}");
    let (_, stderr, ok) = run(&["testbed:4", "gather", "--bogus"]);
    assert!(!ok);
    assert!(stderr.contains("usage:"), "{stderr}");
}

#[test]
fn missing_machine_file_reports_cleanly() {
    let (_, stderr, ok) = run(&["/nonexistent/machine.hbsp", "gather"]);
    assert!(!ok);
    assert!(stderr.contains("cannot read machine file"), "{stderr}");
}

fn chaos(args: &[&str]) -> (String, String, bool) {
    let out = Command::new(env!("CARGO_BIN_EXE_hbsp_chaos"))
        .args(args)
        .output()
        .expect("binary runs");
    (
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
        out.status.success(),
    )
}

#[test]
fn chaos_terminates_with_verified_outcomes_on_shipped_machines() {
    let campus = concat!(env!("CARGO_MANIFEST_DIR"), "/../../machines/campus.hbsp");
    let (stdout, stderr, ok) = chaos(&["--seed", "7", "--runs", "8", "--ramps", "4", campus]);
    assert!(ok, "{stderr}");
    assert!(
        stdout.contains("12/12 chaos runs (8 random, 4 straggler ramps)"),
        "{stdout}"
    );
}

#[test]
fn chaos_usage_and_bad_files_exit_nonzero() {
    let (_, stderr, ok) = chaos(&[]);
    assert!(!ok);
    assert!(stderr.contains("usage:"), "{stderr}");
    let (_, stderr, ok) = chaos(&["/nonexistent/machine.hbsp"]);
    assert!(!ok);
    assert!(stderr.contains("error"), "{stderr}");
}

fn postmortem(args: &[&str]) -> (String, String, bool) {
    let out = Command::new(env!("CARGO_BIN_EXE_hbsp_postmortem"))
        .args(args)
        .output()
        .expect("binary runs");
    (
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
        out.status.success(),
    )
}

/// The forensics acceptance path end to end: a seeded chaos crash
/// dumps one `PostmortemBundle` per engine, `hbsp_postmortem`
/// validates and renders them, and the two bundles are bit-identical
/// except for the self-identifying engine header.
#[test]
fn chaos_crashes_dump_bundles_that_postmortem_validates_and_diffs_clean() {
    let campus = concat!(env!("CARGO_MANIFEST_DIR"), "/../../machines/campus.hbsp");
    let dir = std::env::temp_dir().join(format!("hbsp_pm_cli_{}", std::process::id()));
    let dir_s = dir.to_str().expect("utf-8 temp dir");
    // Seed 0 on campus produces crashing fault plans within a few runs.
    let (stdout, stderr, ok) =
        chaos(&["--seed", "0", "--runs", "6", "--postmortem", dir_s, campus]);
    assert!(ok, "{stderr}");
    let _ = stdout;
    assert!(stderr.contains("postmortem bundle(s) written"), "{stderr}");

    let mut pairs = 0;
    for entry in std::fs::read_dir(&dir).expect("dump dir exists") {
        let path = entry.expect("dir entry").path();
        let p = path.to_str().expect("utf-8 path");
        if !p.ends_with("_sim.jsonl") {
            continue;
        }
        pairs += 1;
        let other = p.replace("_sim.jsonl", "_threads.jsonl");
        // Validate + summarize both.
        let (stdout, stderr, ok) = postmortem(&[p]);
        assert!(ok, "{stderr}");
        assert!(stdout.contains("sim bundle at step"), "{stdout}");
        // Without --ignore-engine the engine header differs: exit 1.
        let (_, stderr, ok) = postmortem(&[p, "--diff", &other]);
        assert!(!ok, "engine headers must differ");
        assert!(stderr.contains("engine:"), "{stderr}");
        // With it, the bundles are bit-identical.
        let (stdout, stderr, ok) = postmortem(&[p, "--diff", &other, "--ignore-engine"]);
        assert!(ok, "{stderr}");
        assert!(stdout.contains("bundles agree"), "{stdout}");
        // And the re-rendered Chrome trace validates before writing.
        let trace = format!("{p}.trace.json");
        let (stdout, stderr, ok) = postmortem(&[p, "--chrome", &trace]);
        assert!(ok, "{stderr}");
        assert!(stdout.contains("chrome trace written"), "{stdout}");
        assert!(std::fs::metadata(&trace).expect("trace file").len() > 0);
    }
    assert!(pairs > 0, "seeded chaos produced no crash bundles");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn postmortem_usage_and_bad_input_exit_nonzero() {
    let (_, stderr, ok) = postmortem(&[]);
    assert!(!ok);
    assert!(stderr.contains("usage:"), "{stderr}");
    let (_, stderr, ok) = postmortem(&["/nonexistent/bundle.jsonl"]);
    assert!(!ok);
    assert!(stderr.contains("No such file"), "{stderr}");
}

#[test]
fn all_operations_run_on_a_machine_file() {
    let machine = concat!(env!("CARGO_MANIFEST_DIR"), "/../../machines/campus.hbsp");
    for op in [
        "gather",
        "broadcast",
        "scatter",
        "allgather",
        "alltoall",
        "reduce",
        "scan",
    ] {
        let (stdout, stderr, ok) = run(&[machine, op, "--kb", "5"]);
        assert!(ok, "{op} failed: {stderr}");
        assert!(stdout.contains("model time"), "{op}: {stdout}");
    }
}
