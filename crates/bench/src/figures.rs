//! Plain-text rendering of the regenerated figures and tables.

use crate::experiments::{AccuracyRow, AmortizationRow, CrossoverRow, FigurePoint, Hbsp2PhaseRow};
use std::collections::BTreeSet;
use std::fmt::Write;

/// Render a Figure-3/4-style table: rows = problem size (KB), columns =
/// processor counts, cells = improvement factors.
pub fn improvement_table(title: &str, points: &[FigurePoint]) -> String {
    let ps: BTreeSet<usize> = points.iter().map(|pt| pt.p).collect();
    let kbs: BTreeSet<usize> = points.iter().map(|pt| pt.kb).collect();
    let mut out = String::new();
    let _ = writeln!(out, "{title}");
    let _ = write!(out, "{:>8} |", "KB \\ p");
    for p in &ps {
        let _ = write!(out, "{p:>8}");
    }
    let _ = writeln!(out);
    let _ = writeln!(out, "{}", "-".repeat(10 + 8 * ps.len()));
    for kb in &kbs {
        let _ = write!(out, "{kb:>8} |");
        for p in &ps {
            match points.iter().find(|pt| pt.p == *p && pt.kb == *kb) {
                Some(pt) => {
                    let _ = write!(out, "{:>8.3}", pt.factor);
                }
                None => {
                    let _ = write!(out, "{:>8}", "-");
                }
            }
        }
        let _ = writeln!(out);
    }
    out
}

/// Render the E6 crossover rows.
pub fn crossover_table(rows: &[CrossoverRow]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:>4} {:>6} {:>14} {:>14} {:>14} {:>14}  winner(sim/pred)",
        "p", "r_s", "1-phase sim", "2-phase sim", "1-phase pred", "2-phase pred"
    );
    for r in rows {
        let sim_w = if r.one_sim < r.two_sim {
            "1-phase"
        } else {
            "2-phase"
        };
        let pred_w = if r.one_pred < r.two_pred {
            "1-phase"
        } else {
            "2-phase"
        };
        let _ = writeln!(
            out,
            "{:>4} {:>6.2} {:>14.0} {:>14.0} {:>14.0} {:>14.0}  {}/{}",
            r.p, r.r_s, r.one_sim, r.two_sim, r.one_pred, r.two_pred, sim_w, pred_w
        );
    }
    out
}

/// Render the E7 HBSP^2 phase-study rows.
pub fn hbsp2_phase_table(rows: &[Hbsp2PhaseRow]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:>10} {:>14} {:>14} {:>16} {:>16}",
        "L_{2,0}", "1-phase sim", "2-phase sim", "1-ph pred(sup2)", "2-ph pred(sup2)"
    );
    for r in rows {
        let _ = writeln!(
            out,
            "{:>10.0} {:>14.0} {:>14.0} {:>16.0} {:>16.0}",
            r.l2, r.one_sim, r.two_sim, r.one_pred, r.two_pred
        );
    }
    out
}

/// Render the E8 amortization rows.
pub fn amortization_table(rows: &[AmortizationRow]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:>6} {:>14} {:>14} {:>12} {:>12} {:>14} {:>14}",
        "KB",
        "hier gather",
        "flat gather",
        "ideal g\u{b7}n",
        "overhead",
        "hier top msgs",
        "flat top msgs"
    );
    for r in rows {
        let _ = writeln!(
            out,
            "{:>6} {:>14.0} {:>14.0} {:>12.0} {:>12.3} {:>14} {:>14}",
            r.kb,
            r.hier,
            r.flat,
            r.ideal,
            r.overhead(),
            r.hier_top_msgs,
            r.flat_top_msgs
        );
    }
    out
}

/// Render the E9 accuracy rows.
pub fn accuracy_table(rows: &[AccuracyRow]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:>32} {:>14} {:>14} {:>8}",
        "operation", "predicted", "simulated", "ratio"
    );
    for r in rows {
        let _ = writeln!(
            out,
            "{:>32} {:>14.0} {:>14.0} {:>8.3}",
            r.op,
            r.predicted,
            r.simulated,
            r.ratio()
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn improvement_table_layout() {
        let pts = vec![
            FigurePoint {
                p: 2,
                kb: 100,
                factor: 0.95,
            },
            FigurePoint {
                p: 4,
                kb: 100,
                factor: 1.51,
            },
            FigurePoint {
                p: 2,
                kb: 200,
                factor: 0.96,
            },
            FigurePoint {
                p: 4,
                kb: 200,
                factor: 1.49,
            },
        ];
        let s = improvement_table("Figure 3(a)", &pts);
        assert!(s.contains("Figure 3(a)"));
        assert!(s.contains("0.950"));
        assert!(s.contains("1.490"));
        assert_eq!(s.lines().count(), 5, "title + header + rule + 2 rows");
    }

    #[test]
    fn missing_cells_render_as_dash() {
        let pts = vec![
            FigurePoint {
                p: 2,
                kb: 100,
                factor: 1.0,
            },
            FigurePoint {
                p: 4,
                kb: 200,
                factor: 2.0,
            },
        ];
        let s = improvement_table("t", &pts);
        assert!(s.contains('-'));
    }

    #[test]
    fn crossover_names_winners() {
        let rows = vec![CrossoverRow {
            p: 4,
            r_s: 2.0,
            one_sim: 100.0,
            two_sim: 50.0,
            one_pred: 90.0,
            two_pred: 40.0,
        }];
        let s = crossover_table(&rows);
        assert!(s.contains("2-phase/2-phase"), "{s}");
    }
}
