//! The simulated UCF testbed.
//!
//! The paper's testbed is ten SUN/SGI workstations on 100 Mbit/s
//! Ethernet, ranked by BYTEmark. We recreate it as ten
//! [`MachineProfile`]s with calibrated compute and communication
//! slowdowns (spread ≈ 1–4×, typical of late-90s workstation pools).
//! Compute ranks come from actually running the `bytemark` suite on
//! each profile; communication slowness `r` is the profile's comm
//! slowdown, normalized so the fastest communicator is 1.
//!
//! One deliberate calibration detail, taken straight from the paper's
//! §5.2: the *second-fastest* machine ("ultra1") computes nearly as
//! fast as the reference but has a mediocre network path. BYTEmark
//! therefore assigns it a large `c_j` that its network cannot honor —
//! "the second fastest processor's workload does not match its
//! abilities" — which is what flattens Figure 3(b).

use bytemark::{rank, MachineProfile, Suite};
use hbsp_core::{MachineTree, ModelError, TreeBuilder};

/// Processor counts evaluated in the paper's figures.
pub const TESTBED_PS: [usize; 5] = [2, 4, 6, 8, 10];

/// Input sizes (KB of 4-byte integers) on the figures' x-axis.
pub const PAPER_SIZES_KB: [usize; 10] = [100, 200, 300, 400, 500, 600, 700, 800, 900, 1000];

/// Barrier cost used for the flat testbed cluster (model time units;
/// one unit = one word at fastest-machine speed).
pub const TESTBED_L: f64 = 2_000.0;

/// The ten simulated workstations: `(name, compute slowdown, comm
/// slowdown)` relative to the fastest machine.
pub fn ucf_profiles() -> Vec<MachineProfile> {
    vec![
        MachineProfile::new("ultra2", 1.0, 1.0),
        // Fast CPU, mediocre NIC: the §5.2 mis-estimated machine.
        MachineProfile::new("ultra1", 1.15, 2.4),
        MachineProfile::new("sgi-o2", 1.6, 1.6),
        MachineProfile::new("sparc20", 2.0, 2.0),
        MachineProfile::new("sgi-indy", 2.2, 2.5),
        MachineProfile::new("sparc10", 2.6, 2.4),
        MachineProfile::new("sparc5", 3.0, 3.2),
        MachineProfile::new("classic", 3.4, 3.0),
        MachineProfile::new("lx", 3.8, 3.6),
        MachineProfile::new("ipx", 4.2, 4.0),
    ]
}

/// Build the flat (HBSP^1) testbed from the first `p` profiles:
/// compute speeds from the `bytemark` indices, `r` from the comm
/// slowdowns (re-normalized so the subset's fastest communicator is 1,
/// as the model requires).
pub fn testbed(p: usize) -> Result<MachineTree, ModelError> {
    let profiles = ucf_profiles();
    assert!(
        (1..=profiles.len()).contains(&p),
        "testbed supports 1..=10 machines, asked for {p}"
    );
    let selected = &profiles[..p];
    let suite = Suite::quick();
    let speeds = rank(&suite.indices(selected));
    let min_comm = selected
        .iter()
        .map(|m| m.comm_slowdown)
        .fold(f64::INFINITY, f64::min);
    let mut b = TreeBuilder::new(1.0);
    let root = b.cluster("ucf-lan", hbsp_core::NodeParams::cluster(TESTBED_L));
    for (profile, &speed) in selected.iter().zip(&speeds) {
        b.child_proc(
            root,
            profile.name.clone(),
            hbsp_core::NodeParams::proc(profile.comm_slowdown / min_comm, speed),
        );
    }
    b.build()
}

/// An HBSP^2 view of the full testbed: the ten machines as two
/// department LANs joined by a campus backbone (used by the §4.3/§4.4
/// hierarchical analyses). `l2` is the campus barrier cost `L_{2,0}`.
pub fn hbsp2_testbed(l2: f64) -> Result<MachineTree, ModelError> {
    let profiles = ucf_profiles();
    let suite = Suite::quick();
    let speeds = rank(&suite.indices(&profiles));
    let min_comm = profiles
        .iter()
        .map(|m| m.comm_slowdown)
        .fold(f64::INFINITY, f64::min);
    let mut b = TreeBuilder::new(1.0);
    let root = b.cluster("campus", hbsp_core::NodeParams::cluster(l2));
    let lan_a = b.child_cluster(root, "lan-a", hbsp_core::NodeParams::cluster(TESTBED_L));
    let lan_b = b.child_cluster(root, "lan-b", hbsp_core::NodeParams::cluster(TESTBED_L));
    for (i, (profile, &speed)) in profiles.iter().zip(&speeds).enumerate() {
        let lan = if i % 2 == 0 { lan_a } else { lan_b };
        b.child_proc(
            lan,
            profile.name.clone(),
            hbsp_core::NodeParams::proc(profile.comm_slowdown / min_comm, speed),
        );
    }
    b.build()
}

/// Items (4-byte words) in a `kb`-kilobyte input, as in the paper's
/// "problem size" axis.
pub fn items_for_kb(kb: usize) -> usize {
    kb * 1024 / 4
}

/// Deterministic "uniformly distributed integers" input of `kb`
/// kilobytes (§5.1).
pub fn input_kb(kb: usize) -> Vec<u32> {
    let mut rng = bytemark::rng::SplitMix64::new(0x5EED_0000 + kb as u64);
    (0..items_for_kb(kb))
        .map(|_| rng.next_u64() as u32)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn testbed_validates_at_every_p() {
        for p in TESTBED_PS {
            let t = testbed(p).unwrap();
            assert_eq!(t.num_procs(), p);
            assert_eq!(t.height(), 1);
            t.validate().unwrap();
        }
    }

    #[test]
    fn fastest_is_ultra2_and_slowest_is_last() {
        let t = testbed(10).unwrap();
        assert_eq!(t.leaf(t.fastest_proc()).name(), "ultra2");
        assert_eq!(t.leaf(t.slowest_proc()).name(), "ipx");
    }

    #[test]
    fn second_fastest_has_mismatched_network() {
        // The §5.2 calibration: ultra1 ranks second on compute but its
        // r is worse than machines ranked below it.
        let t = testbed(4).unwrap();
        let ultra1 = t
            .leaves()
            .iter()
            .find(|&&l| t.node(l).name() == "ultra1")
            .copied()
            .unwrap();
        let sgi = t
            .leaves()
            .iter()
            .find(|&&l| t.node(l).name() == "sgi-o2")
            .copied()
            .unwrap();
        assert!(t.node(ultra1).params().speed > t.node(sgi).params().speed);
        assert!(t.node(ultra1).params().r > t.node(sgi).params().r);
    }

    #[test]
    fn speeds_equal_inverse_compute_slowdowns() {
        // OpCount timing makes the bytemark index exactly inverse to
        // the slowdown.
        let t = testbed(10).unwrap();
        for (leaf, profile) in t.leaves().iter().zip(ucf_profiles()) {
            let speed = t.node(*leaf).params().speed;
            assert!(
                (speed - 1.0 / profile.compute_slowdown).abs() < 1e-9,
                "{}: {speed} vs 1/{}",
                profile.name,
                profile.compute_slowdown
            );
        }
    }

    #[test]
    fn hbsp2_testbed_shape() {
        let t = hbsp2_testbed(20_000.0).unwrap();
        assert_eq!(t.height(), 2);
        assert_eq!(t.num_procs(), 10);
        assert_eq!(t.machines_on_level(1).unwrap(), 2);
        t.validate().unwrap();
    }

    #[test]
    fn input_sizes_match_paper_axis() {
        assert_eq!(items_for_kb(100), 25_600);
        assert_eq!(items_for_kb(1000), 256_000);
        assert_eq!(input_kb(100).len(), 25_600);
        // Deterministic.
        assert_eq!(input_kb(300)[..16], input_kb(300)[..16]);
    }
}
