//! Regenerates **Figure 4** of the paper: one-to-all broadcast
//! improvement factors on the simulated testbed.
//!
//! * `(a)` — `T_s / T_f`: slow root vs fast root (E3);
//! * `(b)` — `T_u / T_b`: equal vs balanced first-phase pieces (E4).
//!
//! Usage: `cargo run -p hbsp-bench --bin fig4_broadcast [--experiment root|balance|both]`

use hbsp_bench::figures::improvement_table;
use hbsp_bench::{
    broadcast_balance_improvement, broadcast_root_improvement, PAPER_SIZES_KB, TESTBED_PS,
};

fn main() {
    let mode = std::env::args().nth(2).unwrap_or_else(|| "both".into());
    let ps = TESTBED_PS;
    let kbs = PAPER_SIZES_KB;
    if mode == "root" || mode == "both" {
        let pts = broadcast_root_improvement(&ps, &kbs).expect("simulation succeeds");
        println!(
            "{}",
            improvement_table(
                "Figure 4(a) — broadcast, improvement factor T_s / T_f",
                &pts
            )
        );
    }
    if mode == "balance" || mode == "both" {
        let pts = broadcast_balance_improvement(&ps, &kbs).expect("simulation succeeds");
        println!(
            "{}",
            improvement_table(
                "Figure 4(b) — broadcast, improvement factor T_u / T_b",
                &pts
            )
        );
    }
}
