//! `hbsp_adapt` — closed-loop adaptive execution harness.
//!
//! ```text
//! hbsp_adapt [options] <machine.hbsp>
//!
//! options:
//!   --engine sim|threads|both  engine(s) to drive            (default both)
//!   --collective K             broadcast|gather|scatter|allgather|alltoall
//!                                                            (default broadcast)
//!   --n N                      collective size hint          (default 256)
//!   --rounds R                 total rounds of the job       (default 12)
//!   --window W                 rounds per controller segment (default 2)
//!   --threshold T              drift threshold for re-plans  (default 0.6)
//!   --faults FILE              fault plan to inject (FaultPlan text format)
//!   --log FILE                 write the adaptive decision log to FILE
//!   --postmortem DIR           on a failed run, dump the attached
//!                              PostmortemBundle to DIR as JSONL
//!                              (inspect with hbsp_postmortem)
//!   --require-win              exit 1 unless adaptive beats static on
//!                              every selected engine
//!   --json                     one JSONL record per engine on stdout
//! ```
//!
//! Runs `R` rounds of the chosen collective as a
//! [`RepeatedCollective`] job through hbsplib's [`AdaptiveExecutor`]
//! twice per engine: once closed-loop (calibrate → re-tune →
//! re-balance at every `W`-round boundary whose drift exceeds `T`) and
//! once as the static control arm (identical segmentation, infinite
//! threshold). With `--engine both` the adaptive decision logs of the
//! two engines are additionally asserted byte-identical — the
//! controller's determinism contract.
//!
//! Exit status: 0 on success, 1 on a broken contract (divergent logs,
//! or `--require-win` unmet), 2 on usage errors.
//!
//! Example (the CI `adaptive` job):
//!
//! ```text
//! cargo run -p hbsp-bench --bin hbsp_adapt -- \
//!   --engine both --faults fixtures/straggler_ramp.faults \
//!   --require-win --log decisions.log machines/campus.hbsp
//! ```

use hbsp_collectives::{CollectiveKind, RepeatedCollective};
use hbsp_core::topology;
use hbsp_sim::FaultPlan;
use hbsplib::{AdaptiveConfig, AdaptiveExecutor, AdaptiveOutcome, Executor};
use std::process::exit;
use std::sync::Arc;

fn usage() -> ! {
    eprintln!(
        "usage: hbsp_adapt [options] <machine.hbsp>\n\
         \x20 --engine sim|threads|both  engines to drive (default both)\n\
         \x20 --collective K             broadcast|gather|scatter|allgather|alltoall\n\
         \x20 --n N                      collective size hint (default 256)\n\
         \x20 --rounds R                 total rounds (default 12)\n\
         \x20 --window W                 rounds per segment (default 2)\n\
         \x20 --threshold T              drift threshold (default 0.6)\n\
         \x20 --faults FILE              inject a fault plan\n\
         \x20 --log FILE                 write the decision log to FILE\n\
         \x20 --postmortem DIR           dump crash bundles to DIR on failure\n\
         \x20 --require-win              exit 1 unless adaptive beats static\n\
         \x20 --json                     JSONL records on stdout"
    );
    exit(2)
}

struct EngineResult {
    name: &'static str,
    adaptive: AdaptiveOutcome,
    static_arm: AdaptiveOutcome,
}

/// Write the crash bundle attached to a failed run (if any) to
/// `DIR/postmortem_adapt_<arm>_<engine>.jsonl` for `hbsp_postmortem`.
fn dump_bundle(dir: &Option<String>, engine: &str, arm: &str, err: &hbsplib::AdaptiveError) {
    let (Some(dir), Some(bundle)) = (dir, err.bundle()) else {
        return;
    };
    if let Err(e) = std::fs::create_dir_all(dir) {
        eprintln!("hbsp_adapt: {dir}: {e}");
        return;
    }
    let path = format!("{dir}/postmortem_adapt_{arm}_{engine}.jsonl");
    match std::fs::write(&path, bundle.to_jsonl()) {
        Ok(()) => eprintln!("hbsp_adapt: postmortem bundle written to {path}"),
        Err(e) => eprintln!("hbsp_adapt: {path}: {e}"),
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut engine = "both".to_string();
    let mut collective = CollectiveKind::Broadcast;
    let mut n: u64 = 256;
    let mut rounds: usize = 12;
    let mut window: usize = 2;
    let mut threshold: f64 = 0.6;
    let mut faults = FaultPlan::new();
    let mut log_file: Option<String> = None;
    let mut postmortem: Option<String> = None;
    let mut require_win = false;
    let mut json = false;
    let mut machine: Option<String> = None;

    let mut it = args.iter();
    while let Some(a) = it.next() {
        let mut value = || it.next().cloned().unwrap_or_else(|| usage());
        match a.as_str() {
            "--engine" => engine = value(),
            "--collective" => {
                collective = CollectiveKind::parse(&value()).unwrap_or_else(|| usage())
            }
            "--n" => n = value().parse().unwrap_or_else(|_| usage()),
            "--rounds" => rounds = value().parse().unwrap_or_else(|_| usage()),
            "--window" => window = value().parse().unwrap_or_else(|_| usage()),
            "--threshold" => threshold = value().parse().unwrap_or_else(|_| usage()),
            "--faults" => {
                let path = value();
                let text = std::fs::read_to_string(&path).unwrap_or_else(|e| {
                    eprintln!("hbsp_adapt: {path}: {e}");
                    exit(2)
                });
                faults = FaultPlan::parse(&text).unwrap_or_else(|e| {
                    eprintln!("hbsp_adapt: {path}: {e}");
                    exit(2)
                });
            }
            "--log" => log_file = Some(value()),
            "--postmortem" => postmortem = Some(value()),
            "--require-win" => require_win = true,
            "--json" => json = true,
            "--help" | "-h" => usage(),
            f if f.starts_with('-') => usage(),
            f => machine = Some(f.to_string()),
        }
    }
    let Some(machine) = machine else { usage() };
    let engines: Vec<&'static str> = match engine.as_str() {
        "sim" => vec!["sim"],
        "threads" => vec!["threads"],
        "both" => vec!["sim", "threads"],
        _ => usage(),
    };

    let tree = match std::fs::read_to_string(&machine)
        .map_err(|e| e.to_string())
        .and_then(|t| topology::parse(&t).map_err(|e| e.to_string()))
    {
        Ok(t) => Arc::new(t),
        Err(e) => {
            eprintln!("hbsp_adapt: {machine}: {e}");
            exit(2)
        }
    };

    let job = RepeatedCollective::new(collective, n, 3);
    let cfg = AdaptiveConfig {
        window,
        drift_threshold: threshold,
        calibration_trim: AdaptiveConfig::default().calibration_trim,
    };

    let mut failures = 0usize;
    let mut results: Vec<EngineResult> = Vec::new();
    for name in engines {
        let exec = match name {
            "sim" => Executor::simulator(tree.clone()),
            _ => Executor::threads(tree.clone()),
        }
        .faults(faults.clone());
        let runner = AdaptiveExecutor::new(exec).config(cfg);
        let adaptive = runner.run(&job, rounds).unwrap_or_else(|e| {
            eprintln!("hbsp_adapt: {name}: adaptive run failed: {e}");
            dump_bundle(&postmortem, name, "adaptive", &e);
            exit(1)
        });
        let static_arm = runner.run_static(&job, rounds).unwrap_or_else(|e| {
            eprintln!("hbsp_adapt: {name}: static run failed: {e}");
            dump_bundle(&postmortem, name, "static", &e);
            exit(1)
        });
        let win = adaptive.total_time < static_arm.total_time;
        if json {
            use hbsp_obs::json::escape;
            println!(
                "{{\"kind\":\"adapt\",\"machine\":\"{}\",\"engine\":\"{name}\",\
                 \"collective\":\"{}\",\"rounds\":{rounds},\"window\":{window},\
                 \"threshold\":{threshold},\"adaptive_time\":{},\"static_time\":{},\
                 \"replans\":{},\"segments\":{},\"win\":{win}}}",
                escape(&machine),
                collective.name(),
                adaptive.total_time,
                static_arm.total_time,
                adaptive.replans,
                adaptive.segments
            );
        } else {
            println!(
                "{name}: adaptive T = {:.1} ({} re-plans over {} segments), \
                 static T = {:.1} -> {}",
                adaptive.total_time,
                adaptive.replans,
                adaptive.segments,
                static_arm.total_time,
                if win { "adaptive wins" } else { "no win" }
            );
        }
        if require_win && !win {
            eprintln!(
                "hbsp_adapt: {name}: adaptive ({}) did not beat static ({})",
                adaptive.total_time, static_arm.total_time
            );
            failures += 1;
        }
        results.push(EngineResult {
            name,
            adaptive,
            static_arm,
        });
    }

    // The determinism contract: the controller saw the same telemetry
    // and made the same decisions on every engine.
    if results.len() == 2 {
        let (a, b) = (&results[0], &results[1]);
        if a.adaptive.decision_log() != b.adaptive.decision_log() {
            eprintln!(
                "hbsp_adapt: decision logs diverge between {} and {}:\n--- {} ---\n{}\
                 --- {} ---\n{}",
                a.name,
                b.name,
                a.name,
                a.adaptive.decision_log(),
                b.name,
                b.adaptive.decision_log()
            );
            failures += 1;
        }
        if a.static_arm.total_time != b.static_arm.total_time {
            eprintln!(
                "hbsp_adapt: static virtual time diverges: {} vs {}",
                a.static_arm.total_time, b.static_arm.total_time
            );
            failures += 1;
        }
    }

    if let (Some(path), Some(r)) = (&log_file, results.first()) {
        let mut text = String::new();
        for line in r.adaptive.decision_log().lines() {
            text.push_str(line);
            text.push('\n');
        }
        if let Err(e) = std::fs::write(path, text) {
            eprintln!("hbsp_adapt: {path}: {e}");
            exit(1);
        }
    }
    if !json {
        if let Some(r) = results.first() {
            print!("{}", r.adaptive.decision_log());
        }
    }
    if failures > 0 {
        eprintln!("hbsp_adapt: {failures} failure(s)");
        exit(1);
    }
}
