//! `hbsp_check` — static verification of machine description files,
//! the schedules the collectives lower on them, and job-graph files.
//!
//! ```text
//! hbsp_check [--schedules] [--items N] <machine.hbsp>...
//! hbsp_check --jobs <graph.jobs>...
//!
//! options:
//!   --schedules   additionally lower all seven collectives (flat and
//!                 hierarchical strategies) on each valid machine and
//!                 verify every schedule statically
//!   --items N     problem size for --schedules      (default 100)
//!   --jobs        treat the files as job-graph files (the format
//!                 `hbsp_sched --jobs` executes) and lint them:
//!                 syntax, unknown dependency ids, dependency cycles,
//!                 zero-word payloads
//! ```
//!
//! Machine files are linted against the model's Table-1 invariants —
//! fastest processor has r = 1, children fractions sum to the cluster
//! share, the coordinator is the fastest machine in its subtree, L and
//! g positive, declared `k` matches the tree height — with
//! `file:line:col:`-style diagnostics. Every violation is reported, not
//! just the first. Job-graph files go through the same parser
//! `hbsp_sched` runs them with (`hbsp_bench::jobfile`), so a graph
//! that lints clean here cannot fail admission-time validation there.
//!
//! Exit status: 0 when everything is clean, 1 when any violation was
//! found (or a file could not be read/parsed), 2 on usage errors.
//!
//! Examples:
//!
//! ```text
//! cargo run -p hbsp-bench --bin hbsp_check -- machines/campus.hbsp machines/grid3.hbsp
//! cargo run -p hbsp-bench --bin hbsp_check -- --schedules --items 500 machines/*.hbsp
//! cargo run -p hbsp-bench --bin hbsp_check -- --jobs fixtures/jobs_1000.jobs
//! ```

use hbsp_check::lint_with_spans;
use hbsp_collectives::verify::verify_standard_lowerings;
use hbsp_core::topology;
use std::process::exit;

fn usage() -> ! {
    eprintln!(
        "usage: hbsp_check [--schedules] [--items N] <machine.hbsp>...\n\
         \x20      hbsp_check --jobs <graph.jobs>...\n\
         \x20 --schedules  also verify all collective lowerings on each valid machine\n\
         \x20 --items N    problem size for --schedules (default 100)\n\
         \x20 --jobs       lint job-graph files (syntax, unknown ids, cycles,\n\
         \x20              zero-word payloads) instead of machine files"
    );
    exit(2)
}

/// Lint job-graph files; returns the number of violations.
fn check_jobs(files: &[String]) -> usize {
    let mut violations = 0usize;
    for file in files {
        let text = match std::fs::read_to_string(file) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("{file}: error: cannot read: {e}");
                violations += 1;
                continue;
            }
        };
        let (jobs, mut diags) = hbsp_bench::jobfile::parse(&text);
        diags.extend(hbsp_bench::jobfile::validate(&jobs));
        diags.sort_by_key(|d| d.line);
        for d in &diags {
            eprintln!("{file}:{}: error: {}", d.line, d.message);
        }
        violations += diags.len();
        if diags.is_empty() {
            let edges: usize = jobs.iter().map(|pj| pj.job.blocked_by.len()).sum();
            println!("{file}: ok ({} jobs, {edges} dependency edges)", jobs.len());
        }
    }
    violations
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut schedules = false;
    let mut jobs_mode = false;
    let mut items: u64 = 100;
    let mut files = Vec::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--schedules" => schedules = true,
            "--jobs" => jobs_mode = true,
            "--items" => {
                items = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--help" | "-h" => usage(),
            f if f.starts_with('-') => usage(),
            f => files.push(f.to_string()),
        }
    }
    if files.is_empty() || (jobs_mode && schedules) {
        usage();
    }
    if jobs_mode {
        let violations = check_jobs(&files);
        if violations > 0 {
            eprintln!("hbsp_check: {violations} violation(s) found");
            exit(1);
        }
        return;
    }

    let mut violations = 0usize;
    for file in &files {
        let text = match std::fs::read_to_string(file) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("{file}: error: cannot read: {e}");
                violations += 1;
                continue;
            }
        };
        let parsed = match topology::parse_unvalidated(&text) {
            Ok(p) => p,
            Err(e) => {
                eprintln!("{file}: error: {e}");
                violations += 1;
                continue;
            }
        };
        let diags = lint_with_spans(&parsed.tree, parsed.declared_k, &parsed.spans);
        for d in &diags {
            match d.span {
                Some((line, col)) => eprintln!("{file}:{line}:{col}: error: {}", d.violation),
                None => eprintln!("{file}: error: {}", d.violation),
            }
        }
        violations += diags.len();
        if !diags.is_empty() {
            continue; // don't lower schedules on a broken machine
        }
        println!(
            "{file}: ok (HBSP^{}, {} processors)",
            parsed.tree.height(),
            parsed.tree.num_procs()
        );
        if schedules {
            for run in verify_standard_lowerings(&parsed.tree, items) {
                if run.violations.is_empty() {
                    println!("{file}: {}: schedule verifies clean", run.name);
                } else {
                    for v in &run.violations {
                        eprintln!("{file}: {}: error: {v}", run.name);
                    }
                    violations += run.violations.len();
                }
            }
        }
    }
    if violations > 0 {
        eprintln!("hbsp_check: {violations} violation(s) found");
        exit(1);
    }
}
