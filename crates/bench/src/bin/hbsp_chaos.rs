//! `hbsp_chaos` — randomized fault-injection harness for the HBSP^k
//! stack.
//!
//! ```text
//! hbsp_chaos [--seed S] [--runs N] [--ramps N] [--json]
//!            [--postmortem DIR] <machine.hbsp>...
//!
//! options:
//!   --seed S          base seed for fault-plan generation   (default 0)
//!   --runs N          fault plans per machine               (default 64)
//!   --ramps N         straggler-ramp plans per machine      (default 8)
//!   --json            one JSONL record per machine × seed on stdout
//!   --postmortem DIR  dump a PostmortemBundle (one per engine) for
//!                     every failed or violating run into DIR
//! ```
//!
//! For every machine × seed, a deterministic random [`FaultPlan`]
//! (crashes, stalls, stragglers, message drops/truncation) is scripted
//! into both engines and the same panic-free workload is run twice:
//!
//! 1. **Fail-fast parity** — the discrete-event simulator and the
//!    threaded runtime must produce the *same* result: the identical
//!    typed [`SimError`] or the identical virtual time and final
//!    states. A hang is impossible by construction (scripted stalls arm
//!    the barrier watchdog) and any divergence is a property violation.
//! 2. **Graceful degradation** — the same plan under
//!    [`RecoveryPolicy::Degrade`] must either complete on a survivor
//!    machine whose tree passes the `hbsp_check` machine lints, or
//!    refuse with a typed error (e.g. a cluster lost every leaf).
//!
//! `--ramps` additionally scripts deterministic *straggler-ramp* plans
//! (one processor's communication slows by a growing factor, the shape
//! the adaptive executor is built to detect) through the same two
//! properties — ramps never kill anyone, so these runs must complete
//! with bit-identical virtual times on both engines.
//!
//! Exit status: 0 when every run terminated with a verified outcome,
//! 1 on any property violation, 2 on usage errors.
//!
//! Example:
//!
//! ```text
//! cargo run -p hbsp-bench --bin hbsp_chaos -- --seed 0 --runs 64 machines/*.hbsp
//! ```

use hbsp_check::lint_machine;
use hbsp_core::{topology, MachineTree, ProcEnv, ProcId, SpmdContext, StepOutcome, SyncScope};
use hbsp_obs::FlightRecorder;
use hbsp_sim::{FaultPlan, SimError};
use hbsplib::{Executor, Program, RecoveryPolicy};
use std::process::exit;
use std::sync::Arc;

fn usage() -> ! {
    eprintln!(
        "usage: hbsp_chaos [--seed S] [--runs N] [--ramps N] [--json] \
         [--postmortem DIR] <machine.hbsp>...\n\
         \x20 --seed S          base seed for fault-plan generation (default 0)\n\
         \x20 --runs N          fault plans per machine (default 64)\n\
         \x20 --ramps N         straggler-ramp plans per machine (default 8)\n\
         \x20 --json            one JSONL record per machine × seed on stdout\n\
         \x20 --postmortem DIR  dump a PostmortemBundle per engine for every\n\
         \x20                   failed or violating run into DIR"
    );
    exit(2)
}

/// A deterministic straggler-ramp plan: one seeded processor slows by
/// a growing factor over a seeded window. Never lethal — both engines
/// must complete it with identical virtual times.
fn ramp_plan(seed: u64, tree: &MachineTree) -> FaultPlan {
    let mut rng = hbsp_sim::SplitMix64::new(seed ^ 0x5742_A4B1_7E11_AA02);
    let pid = ProcId(rng.below(tree.num_procs() as u64) as u32);
    let start = rng.below(3) as usize;
    let steps = 2 + rng.below(6) as usize;
    let factor = 2.0 + rng.below(5) as f64;
    let factor_step = 0.5 * (1 + rng.below(4)) as f64;
    FaultPlan::new().straggle_ramp(pid, start, steps, factor, factor_step)
}

/// The chaos workload: every processor gossips a word to every peer for
/// a few supersteps and counts what it hears. Machine-shape-agnostic
/// (it re-reads `nprocs` each step, so it runs unchanged on a degraded
/// tree) and panic-free (fault handling must come from the engines, not
/// from the program noticing odd inputs).
struct Gossip;

impl Program for Gossip {
    type State = u64;
    fn init(&self, _env: &ProcEnv) -> u64 {
        0
    }
    fn step(
        &self,
        step: usize,
        env: &ProcEnv,
        state: &mut u64,
        ctx: &mut dyn SpmdContext,
    ) -> StepOutcome {
        for m in ctx.messages() {
            *state = state.wrapping_mul(31).wrapping_add(m.payload.len() as u64);
        }
        if step >= 3 {
            return StepOutcome::Done;
        }
        for p in 0..env.nprocs {
            if p != env.pid.rank() {
                ctx.send(ProcId(p as u32), 0, &vec![0x5A; 8]);
            }
        }
        StepOutcome::Continue(SyncScope::global(&env.tree))
    }
}

/// A comparable digest of one fail-fast run.
#[derive(Debug, PartialEq)]
enum RunDigest {
    Completed { time: f64, states: Vec<u64> },
    Failed(SimError),
}

fn digest(result: Result<(hbsplib::ExecOutcome, Vec<u64>), SimError>) -> RunDigest {
    match result {
        Ok((out, states)) => RunDigest::Completed {
            time: out.total_time(),
            states,
        },
        Err(e) => RunDigest::Failed(e),
    }
}

/// What one machine × seed chaos run produced (for reporting).
struct ChaosRecord {
    /// A property-violation description, or None for a verified outcome.
    violation: Option<String>,
    /// Degradations performed by the recovering run.
    recovery_events: usize,
    /// Engine runs the recovering attempt needed (0 on typed refusal).
    attempts: usize,
    /// Supersteps of the final successful attempt (0 on refusal).
    steps: usize,
    /// Postmortem bundle files written (with `--postmortem`).
    dumps: Vec<String>,
}

/// Write both engines' flight-recorder bundles for a dead or
/// violating run; returns the file paths written.
fn dump_bundles(
    dir: &str,
    stem: &str,
    seed: u64,
    reason: &str,
    tree: &MachineTree,
    plan: &FaultPlan,
    recorders: &[(&str, &FlightRecorder)],
) -> Vec<String> {
    let machine = tree.to_string();
    let faults = plan.render();
    let mut written = Vec::new();
    for (engine, fr) in recorders {
        let bundle = fr.bundle(reason, engine, &machine, &faults);
        let path = format!("{dir}/postmortem_{stem}_s{seed}_{engine}.jsonl");
        match std::fs::write(&path, bundle.to_jsonl()) {
            Ok(()) => written.push(path),
            Err(e) => eprintln!("hbsp_chaos: cannot write {path}: {e}"),
        }
    }
    written
}

/// One machine × one plan. `must_complete` marks plans with no lethal
/// fault (straggler ramps): both engines have to finish them, an error
/// outcome is itself a violation. With `postmortem` set, any failed or
/// violating run dumps each engine's [`FlightRecorder`] as a
/// `PostmortemBundle` JSONL file into that directory.
fn chaos_run(
    tree: &Arc<MachineTree>,
    plan: &FaultPlan,
    must_complete: bool,
    postmortem: Option<(&str, &str, u64)>,
) -> ChaosRecord {
    let mut rec_out = ChaosRecord {
        violation: None,
        recovery_events: 0,
        attempts: 0,
        steps: 0,
        dumps: Vec::new(),
    };

    // Property 1: both engines fail fast with identical outcomes. Both
    // run under an armed flight recorder — the always-on probe is part
    // of the configuration chaos exercises, and it is what a failed
    // run's forensics come from.
    let sim_fr = Arc::new(FlightRecorder::new());
    let thr_fr = Arc::new(FlightRecorder::new());
    let sim = digest(
        Executor::simulator(tree.clone())
            .faults(plan.clone())
            .probe(sim_fr.clone())
            .run(&Gossip),
    );
    let thr = digest(
        Executor::threads(tree.clone())
            .faults(plan.clone())
            .probe(thr_fr.clone())
            .run(&Gossip),
    );
    let dump = |reason: &str| {
        postmortem
            .map(|(dir, stem, seed)| {
                dump_bundles(
                    dir,
                    stem,
                    seed,
                    reason,
                    tree,
                    plan,
                    &[("sim", &sim_fr), ("threads", &thr_fr)],
                )
            })
            .unwrap_or_default()
    };
    if sim != thr {
        rec_out.violation = Some(format!(
            "engine divergence under plan {plan:?}: simulator {sim:?} vs threads {thr:?}"
        ));
        rec_out.dumps = dump("engine divergence");
        return rec_out;
    }
    if let RunDigest::Failed(e) = &sim {
        if must_complete {
            rec_out.violation = Some(format!(
                "non-lethal plan {plan:?} failed instead of completing: {e}"
            ));
        }
        // A fail-fast death is a verified outcome for random plans,
        // but it is exactly when forensics matter: dump both engines'
        // bundles (bit-identical for the same seeded failure).
        rec_out.dumps = dump(&e.to_string());
        if rec_out.violation.is_some() {
            return rec_out;
        }
    }

    // Property 2: degradation either verifiably completes or refuses
    // with a typed error.
    let recovering = Executor::simulator(tree.clone())
        .faults(plan.clone())
        .recovery(RecoveryPolicy::Degrade)
        .run_recovering(|_| Ok(Gossip));
    match recovering {
        Ok(rec) => {
            rec_out.recovery_events = rec.report.events.len();
            rec_out.attempts = rec.report.attempts;
            rec_out.steps = rec.outcome.sim.num_steps();
            let lints = lint_machine(&rec.tree, None);
            if !lints.is_empty() {
                rec_out.violation = Some(format!(
                    "degraded tree fails machine lints under plan {plan:?}: {lints:?}"
                ));
            } else if let Err(e) = rec.tree.validate() {
                rec_out.violation = Some(format!("degraded tree fails validate: {e}"));
            }
        }
        // A typed refusal is a verified outcome: the machine could not
        // be degraded (or the fault was not a death), never a hang.
        Err(_) => {}
    }
    rec_out
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut seed: u64 = 0;
    let mut runs: u64 = 64;
    let mut ramps: u64 = 8;
    let mut json = false;
    let mut postmortem: Option<String> = None;
    let mut files = Vec::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--json" => json = true,
            "--postmortem" => {
                postmortem = Some(it.next().cloned().unwrap_or_else(|| usage()));
            }
            "--seed" => {
                seed = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--runs" => {
                runs = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--ramps" => {
                ramps = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--help" | "-h" => usage(),
            f if f.starts_with('-') => usage(),
            f => files.push(f.to_string()),
        }
    }
    if files.is_empty() {
        usage();
    }
    if let Some(dir) = &postmortem {
        if let Err(e) = std::fs::create_dir_all(dir) {
            eprintln!("hbsp_chaos: cannot create {dir}: {e}");
            exit(2);
        }
    }

    let mut violations = 0usize;
    let mut dumped = 0usize;
    for file in &files {
        let tree = match std::fs::read_to_string(file)
            .map_err(|e| e.to_string())
            .and_then(|t| topology::parse(&t).map_err(|e| e.to_string()))
        {
            Ok(t) => Arc::new(t),
            Err(e) => {
                eprintln!("{file}: error: {e}");
                violations += 1;
                continue;
            }
        };
        let mut ok_runs = 0u64;
        let total = runs + ramps;
        for i in 0..total {
            let s = seed.wrapping_add(i);
            let (plan, shape, must_complete) = if i < runs {
                (FaultPlan::random(s, &tree), "random", false)
            } else {
                (ramp_plan(s, &tree), "ramp", true)
            };
            let stem: String = std::path::Path::new(file)
                .file_stem()
                .and_then(|s| s.to_str())
                .unwrap_or("machine")
                .chars()
                .map(|c| if c.is_ascii_alphanumeric() { c } else { '-' })
                .collect();
            let rec = chaos_run(
                &tree,
                &plan,
                must_complete,
                postmortem.as_deref().map(|dir| (dir, stem.as_str(), s)),
            );
            for path in &rec.dumps {
                eprintln!("{file}: seed {s} ({shape}): postmortem bundle: {path}");
            }
            dumped += rec.dumps.len();
            if json {
                use hbsp_obs::json::escape;
                let (outcome, viol) = match &rec.violation {
                    Some(v) => ("violation", format!(",\"violation\":\"{}\"", escape(v))),
                    None => ("ok", String::new()),
                };
                println!(
                    "{{\"kind\":\"chaos\",\"machine\":\"{}\",\"seed\":{s},\
                     \"plan\":\"{shape}\",\"outcome\":\"{outcome}\"{viol},\
                     \"recovery_events\":{},\"attempts\":{},\"steps\":{}}}",
                    escape(file),
                    rec.recovery_events,
                    rec.attempts,
                    rec.steps
                );
            }
            if let Some(v) = rec.violation {
                eprintln!("{file}: seed {s} ({shape}): VIOLATION: {v}");
                violations += 1;
            } else {
                ok_runs += 1;
            }
        }
        if !json {
            println!(
                "{file}: {ok_runs}/{total} chaos runs ({runs} random, {ramps} straggler ramps) \
                 terminated with verified outcomes (HBSP^{}, {} processors)",
                tree.height(),
                tree.num_procs()
            );
        }
    }
    if dumped > 0 {
        eprintln!("hbsp_chaos: {dumped} postmortem bundle(s) written");
    }
    if violations > 0 {
        eprintln!("hbsp_chaos: {violations} violation(s) found");
        exit(1);
    }
}
