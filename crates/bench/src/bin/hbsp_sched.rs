//! `hbsp_sched` — replay a job-graph file on a shared machine tree
//! through the multi-tenant scheduler, or generate one.
//!
//! ```text
//! hbsp_sched --machine <machine.hbsp> --jobs <graph.jobs>
//!            [--engine sim|threads|both] [--serial] [--trace out.json]
//! hbsp_sched --generate N [--seed S]
//! ```
//!
//! Job-graph files are line-oriented: one job per line, `#` comments
//! and blank lines ignored.
//!
//! ```text
//! <name> <kind> n=<words> [procs=<min>] [after=<id>,<id>,...] [seed=<u64>]
//! ```
//!
//! `<kind>` is any of the seven collectives (`gather`, `broadcast`,
//! `scatter`, `allgather`, `alltoall`, `reduce`, `scan`); `after`
//! references 0-based job ids, i.e. line positions among job lines.
//! The scheduler validates the DAG, so forward or cyclic references are
//! reported, not crashed on.
//!
//! With `--engine both` the graph is drained once per engine and the
//! two runs are compared for bit-identical per-job results and virtual
//! makespan — the scheduler's determinism contract.
//!
//! Exit status: 0 when every run is clean (and, for `both`, the engines
//! agree), 1 on scheduling/execution errors or dirty reports, 2 on
//! usage errors.
//!
//! Examples:
//!
//! ```text
//! cargo run -p hbsp-bench --bin hbsp_sched -- --generate 1000 --seed 42 > fixtures/jobs_1000.jobs
//! cargo run -p hbsp-bench --bin hbsp_sched -- --machine machines/campus.hbsp \
//!     --jobs fixtures/jobs_1000.jobs --engine both
//! ```

use hbsp_core::topology;
use hbsp_sched::{CollectiveKind, Engine, Job, RunOptions, SchedReport, Scheduler};
use std::process::exit;
use std::sync::Arc;

fn usage() -> ! {
    eprintln!(
        "usage: hbsp_sched --machine <file> --jobs <file> [--engine sim|threads|both]\n\
         \x20                [--serial] [--trace out.json]\n\
         \x20      hbsp_sched --generate N [--seed S]\n\
         \x20 --machine F   machine description (.hbsp topology file)\n\
         \x20 --jobs F      job-graph file (see --help-format in the bin docs)\n\
         \x20 --engine E    sim (default), threads, or both (compare bit-identically)\n\
         \x20 --serial      one job per admission round (the batching control arm)\n\
         \x20 --trace F     write the job timeline as a Chrome trace JSON file\n\
         \x20 --generate N  print a deterministic N-job workflow graph to stdout\n\
         \x20 --seed S      seed for --generate (default 42)"
    );
    exit(2)
}

struct Args {
    machine: Option<String>,
    jobs: Option<String>,
    engine: String,
    serial: bool,
    trace: Option<String>,
    generate: Option<usize>,
    seed: u64,
}

fn parse_args() -> Args {
    let mut a = Args {
        machine: None,
        jobs: None,
        engine: "sim".to_string(),
        serial: false,
        trace: None,
        generate: None,
        seed: 42,
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut it = argv.iter();
    let val = |it: &mut std::slice::Iter<String>| -> String {
        it.next().cloned().unwrap_or_else(|| usage())
    };
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--machine" => a.machine = Some(val(&mut it)),
            "--jobs" => a.jobs = Some(val(&mut it)),
            "--engine" => a.engine = val(&mut it),
            "--serial" => a.serial = true,
            "--trace" => a.trace = Some(val(&mut it)),
            "--generate" => a.generate = Some(val(&mut it).parse().unwrap_or_else(|_| usage())),
            "--seed" => a.seed = val(&mut it).parse().unwrap_or_else(|_| usage()),
            _ => usage(),
        }
    }
    a
}

// ---- job-graph file parsing -----------------------------------------

/// Parse via the shared [`hbsp_bench::jobfile`] parser (the same one
/// `hbsp_check --jobs` lints with), exiting on the first diagnostic.
fn parse_jobs(path: &str) -> Vec<Job> {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("cannot read job-graph file `{path}`: {e}");
        exit(1)
    });
    let (jobs, errors) = hbsp_bench::jobfile::parse(&text);
    if let Some(e) = errors.first() {
        eprintln!("{path}:{e}");
        exit(1)
    }
    jobs.into_iter().map(|pj| pj.job).collect()
}

// ---- deterministic graph generation ---------------------------------

struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        // splitmix64: full-period, seed-stable across platforms.
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn pick<T: Copy>(&mut self, xs: &[T]) -> T {
        xs[(self.next() % xs.len() as u64) as usize]
    }
}

/// Emit `count` jobs as fork-join blocks interleaved with the five
/// basic workflow patterns (fan, sequence, diamond, pipeline pairs,
/// independent singles), every `after` edge pointing backwards.
fn generate(count: usize, seed: u64) -> String {
    let mut rng = Rng(seed);
    let mut out = String::new();
    out.push_str(&format!(
        "# {count} jobs generated by `hbsp_sched --generate {count} --seed {seed}`\n\
         # <name> <kind> n=<words> [procs=<min>] [after=<ids>] [seed=<u64>]\n"
    ));
    fn emit(out: &mut String, rng: &mut Rng, id: &mut usize, after: &[usize]) -> usize {
        const SIZES: [u64; 4] = [8, 16, 32, 64];
        let kind = CollectiveKind::ALL[(rng.next() % 7) as usize];
        let n = rng.pick(&SIZES);
        let my = *id;
        out.push_str(&format!("j{my} {kind} n={n} seed={}", rng.next() % 1000));
        if !after.is_empty() {
            let ids: Vec<String> = after.iter().map(|d| d.to_string()).collect();
            out.push_str(&format!(" after={}", ids.join(",")));
        }
        out.push('\n');
        *id += 1;
        my
    }
    let mut id = 0usize;
    let mut block = 0usize;
    while id < count {
        let room = count - id;
        match block % 5 {
            // Fork-join: src -> {m1, m2, m3} -> join.
            0 if room >= 5 => {
                let src = emit(&mut out, &mut rng, &mut id, &[]);
                let mids: Vec<usize> = (0..3)
                    .map(|_| emit(&mut out, &mut rng, &mut id, &[src]))
                    .collect();
                emit(&mut out, &mut rng, &mut id, &mids);
            }
            // Fan: one source, three dependents.
            1 if room >= 4 => {
                let src = emit(&mut out, &mut rng, &mut id, &[]);
                for _ in 0..3 {
                    emit(&mut out, &mut rng, &mut id, &[src]);
                }
            }
            // Sequence: a four-stage chain.
            2 if room >= 4 => {
                let mut prev = emit(&mut out, &mut rng, &mut id, &[]);
                for _ in 0..3 {
                    prev = emit(&mut out, &mut rng, &mut id, &[prev]);
                }
            }
            // Diamond: a -> {b, c} -> d.
            3 if room >= 4 => {
                let a = emit(&mut out, &mut rng, &mut id, &[]);
                let b = emit(&mut out, &mut rng, &mut id, &[a]);
                let c = emit(&mut out, &mut rng, &mut id, &[a]);
                emit(&mut out, &mut rng, &mut id, &[b, c]);
            }
            // Pipeline pairs: two independent two-stage chains.
            4 if room >= 4 => {
                let a = emit(&mut out, &mut rng, &mut id, &[]);
                emit(&mut out, &mut rng, &mut id, &[a]);
                let b = emit(&mut out, &mut rng, &mut id, &[]);
                emit(&mut out, &mut rng, &mut id, &[b]);
            }
            // Tail: independent singles until the count is exact.
            _ => {
                emit(&mut out, &mut rng, &mut id, &[]);
            }
        }
        block += 1;
    }
    out
}

// ---- replay ----------------------------------------------------------

fn drain(sched: &Scheduler, engine: Engine, serial: bool, label: &str) -> SchedReport {
    let report = sched
        .run(&RunOptions {
            engine,
            serial,
            adapt: None,
        })
        .unwrap_or_else(|e| {
            eprintln!("hbsp_sched: {label}: {e}");
            exit(1)
        });
    if !report.clean() {
        eprintln!("hbsp_sched: {label}: report not clean (a job decoded garbage)");
        exit(1);
    }
    println!(
        "{label}: {} jobs in {} batches, makespan {:.0}, report clean",
        report.jobs.len(),
        report.batches.len(),
        report.total_time
    );
    report
}

fn main() {
    let args = parse_args();
    if let Some(count) = args.generate {
        print!("{}", generate(count, args.seed));
        return;
    }
    let (Some(machine), Some(jobs_file)) = (&args.machine, &args.jobs) else {
        usage();
    };
    let text = std::fs::read_to_string(machine).unwrap_or_else(|e| {
        eprintln!("cannot read machine file `{machine}`: {e}");
        exit(1)
    });
    let tree = topology::parse(&text).unwrap_or_else(|e| {
        eprintln!("invalid machine description `{machine}`: {e}");
        exit(1)
    });
    println!(
        "{machine}: HBSP^{}, {} processors",
        tree.height(),
        tree.num_procs()
    );

    let mut sched = Scheduler::new(Arc::new(tree));
    for job in parse_jobs(jobs_file) {
        sched.submit(job);
    }

    let report = match args.engine.as_str() {
        "sim" => drain(&sched, Engine::Simulator, args.serial, "sim"),
        "threads" => drain(&sched, Engine::Threads, args.serial, "threads"),
        "both" => {
            let sim = drain(&sched, Engine::Simulator, args.serial, "sim");
            let thr = drain(&sched, Engine::Threads, args.serial, "threads");
            let states_agree = sim
                .jobs
                .iter()
                .zip(&thr.jobs)
                .all(|(a, b)| a.states == b.states && a.leaves == b.leaves);
            if !states_agree || sim.total_time != thr.total_time {
                eprintln!("hbsp_sched: engines disagree (determinism contract broken)");
                exit(1);
            }
            println!("engines agree: bit-identical per-job results and makespan");
            sim
        }
        _ => usage(),
    };

    if let Some(path) = &args.trace {
        let trace = hbsp_obs::jobs_chrome_trace(&report.spans);
        std::fs::write(path, &trace).unwrap_or_else(|e| {
            eprintln!("cannot write trace `{path}`: {e}");
            exit(1)
        });
        println!(
            "{path}: job timeline written ({} spans)",
            report.spans.len()
        );
    }
}
