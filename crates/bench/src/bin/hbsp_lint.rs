//! `hbsp_lint` — repo-specific concurrency lints, run in CI.
//!
//! ```text
//! hbsp_lint [<crates-dir>]
//! ```
//!
//! Three rules, all motivated by bugs the model checker can only catch
//! if the runtime's synchronization actually flows through its facade:
//!
//! 1. **Facade bypass** — inside `crates/runtime/src/` (except
//!    `sync.rs` itself, which *is* the facade), `std::sync::atomic` and
//!    `std::thread` must not be referenced: every atomic, park, yield,
//!    spawn, or sleep must go through `crate::sync` so the `model`
//!    feature can interpose the `weave` checker. A raw `std` atomic is
//!    invisible to exploration — its races simply don't exist there.
//!
//! 2. **Bare `.lock().unwrap()`** — runtime locks must use
//!    `lock_anyway` (poison-tolerant, records the recovery in
//!    telemetry): a panicking thread elsewhere must not cascade
//!    `PoisonError` panics through surviving waiters.
//!
//! 3. **NaN-unsafe comparison** — `partial_cmp(..).unwrap()` on one
//!    line: cost aggregation works in `f64`, and a NaN must surface as
//!    a typed violation, not a panic deep in a sort. Use `total_cmp`.
//!
//! Test code (everything at or after the first `#[cfg(test)]` line of
//! a file, and files under `tests/` directories) is exempt from rules
//! 1–2: tests may exercise raw `std` primitives deliberately. Line
//! comments are stripped before matching so prose about the forbidden
//! patterns doesn't trip the lint.
//!
//! Exit status: 0 clean, 1 violations found, 2 usage errors.

use std::path::{Path, PathBuf};
use std::process::exit;

struct Violation {
    file: PathBuf,
    line: usize,
    message: String,
}

/// Strip a line comment (`// ...`), ignoring `//` inside string
/// literals — good enough for lint purposes on this codebase.
fn strip_comment(line: &str) -> &str {
    let mut in_str = false;
    let bytes = line.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'"' if i == 0 || bytes[i - 1] != b'\\' => in_str = !in_str,
            b'/' if !in_str && i + 1 < bytes.len() && bytes[i + 1] == b'/' => {
                return &line[..i];
            }
            _ => {}
        }
        i += 1;
    }
    line
}

fn walk(dir: &Path, files: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        if path.is_dir() {
            if path.file_name().is_some_and(|n| n == "target") {
                continue;
            }
            walk(&path, files);
        } else if path.extension().is_some_and(|e| e == "rs") {
            files.push(path);
        }
    }
}

fn lint_file(path: &Path, out: &mut Vec<Violation>) {
    let Ok(text) = std::fs::read_to_string(path) else {
        out.push(Violation {
            file: path.to_path_buf(),
            line: 0,
            message: "cannot read file".into(),
        });
        return;
    };
    let rel = path.to_string_lossy().replace('\\', "/");
    if rel.ends_with("/hbsp_lint.rs") {
        return; // the rule definitions spell out the forbidden patterns
    }
    let in_tests_dir = rel.contains("/tests/") || rel.contains("/benches/");
    let in_runtime_src = rel.contains("crates/runtime/src/");
    let is_facade = in_runtime_src && rel.ends_with("/sync.rs");
    let mut in_test_mod = false;
    for (idx, raw) in text.lines().enumerate() {
        if raw.trim_start().starts_with("#[cfg(test)]") {
            in_test_mod = true;
        }
        let line = strip_comment(raw);
        let lineno = idx + 1;
        let exempt = in_test_mod || in_tests_dir;
        if in_runtime_src && !is_facade && !exempt {
            if line.contains("std::sync::atomic") {
                out.push(Violation {
                    file: path.to_path_buf(),
                    line: lineno,
                    message: "raw `std::sync::atomic` in the runtime — use `crate::sync::atomic` \
                              so the model checker can interpose"
                        .into(),
                });
            }
            if line.contains("std::thread") {
                out.push(Violation {
                    file: path.to_path_buf(),
                    line: lineno,
                    message: "raw `std::thread` in the runtime — use `crate::sync::thread` \
                              so parks/yields/spawns are model transitions"
                        .into(),
                });
            }
        }
        if !exempt && line.contains(".lock().unwrap()") {
            out.push(Violation {
                file: path.to_path_buf(),
                line: lineno,
                message: "bare `.lock().unwrap()` — use `lock_anyway` (poison-tolerant, \
                          records the recovery)"
                    .into(),
            });
        }
        if line.contains("partial_cmp") && line.contains(".unwrap()") {
            out.push(Violation {
                file: path.to_path_buf(),
                line: lineno,
                message: "NaN-unsafe `partial_cmp(..).unwrap()` — use `f64::total_cmp`".into(),
            });
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let root = match args.as_slice() {
        [] => {
            // crates/bench/src/bin → workspace root → crates/
            Path::new(env!("CARGO_MANIFEST_DIR"))
                .ancestors()
                .nth(2)
                .map(|r| r.join("crates"))
                .filter(|p| p.is_dir())
                .unwrap_or_else(|| {
                    eprintln!("hbsp_lint: cannot locate the crates/ directory");
                    exit(2)
                })
        }
        [dir] if !dir.starts_with('-') => PathBuf::from(dir),
        _ => {
            eprintln!("usage: hbsp_lint [<crates-dir>]");
            exit(2)
        }
    };
    let mut files = Vec::new();
    walk(&root, &mut files);
    files.sort();
    if files.is_empty() {
        eprintln!("hbsp_lint: no .rs files under {}", root.display());
        exit(2);
    }
    let mut violations = Vec::new();
    for f in &files {
        lint_file(f, &mut violations);
    }
    for v in &violations {
        eprintln!("{}:{}: lint: {}", v.file.display(), v.line, v.message);
    }
    if violations.is_empty() {
        println!(
            "hbsp_lint: {} files clean (facade, lock_anyway, total_cmp)",
            files.len()
        );
    } else {
        eprintln!("hbsp_lint: {} violation(s) found", violations.len());
        exit(1);
    }
}
