//! Regenerates the §4.4 analyses (E6/E7): one- vs two-phase broadcast.
//!
//! * flat (HBSP^1): the `g·n·m` vs `g·n(1 + r_s) + 2L` crossover across
//!   processor counts, simulated and predicted;
//! * `--level 2`: the HBSP^2 super²-step variants across campus
//!   barrier costs.
//!
//! Usage: `cargo run -p hbsp-bench --bin crossover_broadcast [--level 2]`

use hbsp_bench::figures::{crossover_table, hbsp2_phase_table};
use hbsp_bench::{broadcast_crossover, hbsp2_phase_study};

fn main() {
    let level2 = std::env::args().any(|a| a == "2");
    if level2 {
        let rows = hbsp2_phase_study(&[1_000.0, 10_000.0, 50_000.0, 200_000.0], 400)
            .expect("simulation succeeds");
        println!("HBSP^2 broadcast: one- vs two-phase super^2-step (400 KB)");
        println!("{}", hbsp2_phase_table(&rows));
    } else {
        let rows = broadcast_crossover(&[2, 3, 4, 6, 8, 10], 400).expect("simulation succeeds");
        println!("HBSP^1 broadcast: one- vs two-phase crossover (400 KB)");
        println!("{}", crossover_table(&rows));
    }
}
