//! `hbsp_run` — drive any collective on any machine from the command
//! line.
//!
//! ```text
//! hbsp_run <machine> <operation> [options]
//!
//! machine:
//!   testbed:<p>        the simulated UCF testbed with p processors (1-10)
//!   testbed2           the HBSP^2 campus testbed
//!   <path>             a topology DSL file (see hbsp-core::topology)
//!
//! operation: gather | broadcast | scatter | allgather | alltoall | reduce | scan
//!
//! options:
//!   --kb <n>           problem size in KB of u32s      (default 100)
//!   --root <policy>    fastest | slowest | <rank>      (default fastest)
//!   --workload <w>     equal | balanced | commaware    (default equal)
//!   --strategy <s>     flat | hier                     (default flat)
//!   --phase <p>        one | two      (broadcast only; default two)
//!   --trace            print a Gantt chart of the run
//!   --json             emit one machine-readable JSON line instead
//! ```
//!
//! Examples:
//!
//! ```text
//! cargo run -p hbsp-bench --bin hbsp_run -- testbed:6 gather --root slowest --trace
//! cargo run -p hbsp-bench --bin hbsp_run -- machines/campus.hbsp broadcast --strategy hier
//! ```

use hbsp_bench::testbed::{hbsp2_testbed, input_kb, testbed};
use hbsp_collectives::allgather::simulate_allgather;
use hbsp_collectives::alltoall::{simulate_alltoall, simulate_alltoall_hier};
use hbsp_collectives::broadcast::{simulate_broadcast, BroadcastPlan};
use hbsp_collectives::gather::{simulate_gather, FlatGather, GatherPlan};
use hbsp_collectives::plan::{PhasePolicy, RootPolicy, Strategy, WorkloadPolicy};
use hbsp_collectives::reduce::{simulate_reduce, ReduceOp};
use hbsp_collectives::scan::simulate_scan;
use hbsp_collectives::scatter::simulate_scatter;
use hbsp_collectives::shares_for;
use hbsp_core::{topology, MachineTree};
use hbsp_sim::{ascii_gantt, SimOutcome, Simulator, TraceSummary};
use std::process::exit;
use std::sync::Arc;

struct Options {
    kb: usize,
    root: RootPolicy,
    workload: WorkloadPolicy,
    strategy: Strategy,
    phase: PhasePolicy,
    trace: bool,
    json: bool,
}

fn usage() -> ! {
    eprintln!(
        "usage: hbsp_run <machine> <operation> [--kb N] [--root fastest|slowest|RANK]\n\
         \x20              [--workload equal|balanced|commaware] [--strategy flat|hier]\n\
         \x20              [--phase one|two] [--trace] [--json]\n\
         machine: testbed:<p> | testbed2 | <topology file>\n\
         operation: gather | broadcast | scatter | allgather | reduce | scan"
    );
    exit(2)
}

fn parse_machine(spec: &str) -> MachineTree {
    if let Some(p) = spec.strip_prefix("testbed:") {
        let p: usize = p.parse().unwrap_or_else(|_| usage());
        return testbed(p).expect("testbed builds");
    }
    if spec == "testbed2" {
        return hbsp2_testbed(60_000.0).expect("testbed builds");
    }
    let text = std::fs::read_to_string(spec).unwrap_or_else(|e| {
        eprintln!("cannot read machine file `{spec}`: {e}");
        exit(1)
    });
    topology::parse(&text).unwrap_or_else(|e| {
        eprintln!("invalid machine description `{spec}`: {e}");
        exit(1)
    })
}

fn parse_options(args: &[String]) -> Options {
    let mut o = Options {
        kb: 100,
        root: RootPolicy::Fastest,
        workload: WorkloadPolicy::Equal,
        strategy: Strategy::Flat,
        phase: PhasePolicy::TwoPhase,
        trace: false,
        json: false,
    };
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--kb" => {
                o.kb = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--root" => {
                o.root = match it.next().map(String::as_str) {
                    Some("fastest") => RootPolicy::Fastest,
                    Some("slowest") => RootPolicy::Slowest,
                    Some(r) => RootPolicy::Rank(r.parse().unwrap_or_else(|_| usage())),
                    None => usage(),
                }
            }
            "--workload" => {
                o.workload = match it.next().map(String::as_str) {
                    Some("equal") => WorkloadPolicy::Equal,
                    Some("balanced") => WorkloadPolicy::Balanced,
                    Some("commaware") => WorkloadPolicy::CommAware,
                    _ => usage(),
                }
            }
            "--strategy" => {
                o.strategy = match it.next().map(String::as_str) {
                    Some("flat") => Strategy::Flat,
                    Some("hier") => Strategy::Hierarchical,
                    _ => usage(),
                }
            }
            "--phase" => {
                o.phase = match it.next().map(String::as_str) {
                    Some("one") => PhasePolicy::OnePhase,
                    Some("two") => PhasePolicy::TwoPhase,
                    _ => usage(),
                }
            }
            "--trace" => o.trace = true,
            "--json" => o.json = true,
            _ => usage(),
        }
    }
    o
}

/// One machine-readable line (the JSONL record for `--json`).
fn report_json(machine: &str, op: &str, sim: &SimOutcome) {
    use hbsp_obs::json::{escape, num};
    println!(
        "{{\"kind\":\"run\",\"machine\":\"{}\",\"operation\":\"{}\",\
         \"outcome\":\"ok\",\"model_time\":{},\"steps\":{},\"messages\":{}}}",
        escape(machine),
        escape(op),
        num(sim.total_time),
        sim.num_steps(),
        sim.messages_delivered
    );
}

fn report(sim: &SimOutcome) {
    println!("model time      : {:.0}", sim.total_time);
    println!("supersteps      : {}", sim.num_steps());
    println!("messages        : {}", sim.messages_delivered);
    for (i, step) in sim.steps.iter().enumerate() {
        println!(
            "  step {i}: scope {:?}, h = {:.0}, duration = {:.0}, words by level = {:?}",
            step.scope,
            step.hrelation,
            step.duration(),
            step.traffic.iter().map(|t| t.words).collect::<Vec<_>>()
        );
    }
    if let Some(tls) = &sim.timelines {
        let s = TraceSummary::of(tls);
        println!(
            "activity        : compute {:.0}, send {:.0}, unpack {:.0}, wait {:.0} ({:.1}% idle)",
            s.compute.max(0.0),
            s.send.max(0.0),
            s.unpack.max(0.0),
            s.barrier_wait.max(0.0),
            100.0 * s.wait_fraction()
        );
        println!("{}", ascii_gantt(tls, 72));
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.len() < 2 {
        usage();
    }
    let tree = parse_machine(&args[0]);
    let op = args[1].as_str();
    let o = parse_options(&args[2..]);
    let items = input_kb(o.kb);
    if !o.json {
        println!(
            "machine: HBSP^{} with {} processors; {} of {} KB ({} words)",
            tree.height(),
            tree.num_procs(),
            op,
            o.kb,
            items.len()
        );
    }

    let sim = match op {
        "gather" => {
            let plan = GatherPlan {
                root: o.root,
                workload: o.workload,
                strategy: o.strategy,
            };
            if o.trace {
                // Traced run via the raw simulator for timeline capture.
                let shares = Arc::new(shares_for(&tree, &items, o.workload));
                let root = o.root.resolve(&tree).expect("valid root rank");
                let sim = Simulator::new(Arc::new(tree.clone())).trace(true);
                sim.run(&FlatGather::new(root, shares)).expect("run")
            } else {
                simulate_gather(&tree, &items, plan).expect("run").sim
            }
        }
        "broadcast" => {
            let plan = BroadcastPlan {
                root: o.root,
                strategy: o.strategy,
                top_phase: o.phase,
                cluster_phase: PhasePolicy::TwoPhase,
                workload: o.workload,
            };
            simulate_broadcast(&tree, &items, plan).expect("run").sim
        }
        "scatter" => {
            simulate_scatter(&tree, &items, o.root, o.workload)
                .expect("run")
                .sim
        }
        "allgather" => {
            simulate_allgather(&tree, &items, o.workload, o.strategy)
                .expect("run")
                .sim
        }
        "alltoall" => {
            let p = tree.num_procs();
            let block = (items.len() / (p * p)).max(1);
            let blocks: Vec<Vec<Vec<u32>>> = (0..p)
                .map(|i| (0..p).map(|j| vec![(i * p + j) as u32; block]).collect())
                .collect();
            match o.strategy {
                Strategy::Flat => simulate_alltoall(&tree, blocks).expect("run").sim,
                Strategy::Hierarchical => simulate_alltoall_hier(&tree, blocks).expect("run").sim,
            }
        }
        "reduce" => {
            let p = tree.num_procs();
            let len = items.len() / p.max(1);
            let vectors: Vec<Vec<u32>> = (0..p)
                .map(|i| items[i * len..(i + 1) * len].to_vec())
                .collect();
            simulate_reduce(&tree, vectors, ReduceOp::Sum, o.root, o.strategy)
                .expect("run")
                .sim
        }
        "scan" => {
            let p = tree.num_procs();
            let len = items.len() / p.max(1);
            let vectors: Vec<Vec<u32>> = (0..p)
                .map(|i| items[i * len..(i + 1) * len].to_vec())
                .collect();
            simulate_scan(&tree, vectors, ReduceOp::Sum)
                .expect("run")
                .sim
        }
        _ => usage(),
    };
    if o.json {
        report_json(&args[0], op, &sim);
    } else {
        report(&sim);
    }
}
