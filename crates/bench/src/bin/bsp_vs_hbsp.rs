//! The headline end-to-end comparison: a complete application (sample
//! sort) configured two ways on the same heterogeneous machine —
//!
//! * **BSP-oblivious**: rank-0 coordinator, equal shares (what a
//!   program ported from a homogeneous BSP machine does);
//! * **HBSP-aware**: fastest-processor coordinator, `c_j`-balanced
//!   shares (the paper's two design rules).
//!
//! "Fundamental changes to the algorithms are not necessary to attain
//! an increase in performance. Instead, modifications consist of
//! selecting the root node and distributing the workload." (§6)
//!
//! Usage: `cargo run --release -p hbsp-bench --bin bsp_vs_hbsp`

use hbsp_bench::testbed::{input_kb, testbed, TESTBED_PS};
use hbsp_collectives::plan::{RootPolicy, WorkloadPolicy};
use hbsp_sim::NetConfig;

fn main() {
    println!("sample sort, 400 KB of integers: BSP-oblivious vs HBSP-aware configuration\n");
    println!(
        "{:>4} {:>14} {:>14} {:>12}",
        "p", "BSP config", "HBSP config", "improvement"
    );
    let items = input_kb(400);
    for p in TESTBED_PS {
        let tree = testbed(p).expect("testbed builds");
        let bsp = hbsp_apps::sort::simulate_sample_sort_plan(
            &tree,
            NetConfig::pvm_like(),
            &items,
            WorkloadPolicy::Equal,
            RootPolicy::Rank(p as u32 - 1), // arbitrary enumeration lands on a slow box
        )
        .expect("run");
        let hbsp = hbsp_apps::sort::simulate_sample_sort_plan(
            &tree,
            NetConfig::pvm_like(),
            &items,
            WorkloadPolicy::Balanced,
            RootPolicy::Fastest,
        )
        .expect("run");
        println!(
            "{:>4} {:>14.0} {:>14.0} {:>11.2}x",
            p,
            bsp.time,
            hbsp.time,
            bsp.time / hbsp.time
        );
    }
    println!(
        "\nsame algorithm, same machine — only the root selection and the\n\
         workload distribution changed (the paper's §6 conclusion)."
    );
}
