//! `hbsp_trace` — run a collective with telemetry on and export the
//! evidence: spans, metrics, and a cost-model drift report.
//!
//! ```text
//! hbsp_trace <machine> <operation> [options]
//! hbsp_trace --validate <trace.json>
//!
//! machine:
//!   testbed:<p>        the simulated UCF testbed with p processors (1-10)
//!   testbed2           the HBSP^2 campus testbed
//!   <path>             a topology DSL file (see hbsp-core::topology)
//!
//! operation: gather | broadcast | scatter | allgather
//!
//! options:
//!   --kb <n>           problem size in KB of u32s      (default 100)
//!   --strategy <s>     flat | hier                     (default flat)
//!   --engine <e>       sim | threads                   (default sim)
//!   --format <f>       chrome | jsonl                  (default chrome)
//!   --out <file>       write the trace there instead of stdout
//!   --gantt            also print the ASCII Gantt chart
//!   --calibrate        also back-fit g, L, speeds and r from the run
//! ```
//!
//! The run always prints the drift table (predicted vs observed per
//! superstep) and the metrics snapshot to stderr, so stdout stays a
//! clean trace stream when `--out` is omitted. `--format chrome` loads
//! in Perfetto / `chrome://tracing`; `--validate` checks any Chrome
//! trace file for well-formedness (sorted timestamps, balanced B/E or
//! complete X events) and exits non-zero on violations.
//!
//! Examples:
//!
//! ```text
//! cargo run -p hbsp-bench --bin hbsp_trace -- machines/campus.hbsp gather \
//!     --strategy hier --engine threads --out trace.json
//! cargo run -p hbsp-bench --bin hbsp_trace -- --validate trace.json
//! ```

use hbsp_bench::testbed::{hbsp2_testbed, input_kb, testbed};
use hbsp_collectives::allgather::{lower_flat_allgather, lower_hierarchical_allgather};
use hbsp_collectives::broadcast::{lower_broadcast, BroadcastPlan};
use hbsp_collectives::drift::predicted_steps;
use hbsp_collectives::gather::lower_gather;
use hbsp_collectives::plan::{PhasePolicy, RootPolicy, Strategy, WorkloadPolicy};
use hbsp_collectives::scatter::lower_scatter;
use hbsp_collectives::schedule::{
    execute, share_inits, CommSchedule, ProcInit, ScheduleProgram, UnitId,
};
use hbsp_core::{topology, MachineTree, ProcId};
use hbsp_obs::{calibrate, DriftReport, Recorder};
use hbsp_sim::{ascii_gantt, ProcTimeline};
use hbsplib::Executor;
use std::io::Write as _;
use std::process::exit;
use std::sync::Arc;

struct Options {
    kb: usize,
    strategy: Strategy,
    threads: bool,
    chrome: bool,
    out: Option<String>,
    gantt: bool,
    calibrate: bool,
}

fn usage() -> ! {
    eprintln!(
        "usage: hbsp_trace <machine> <operation> [--kb N] [--strategy flat|hier]\n\
         \x20                [--engine sim|threads] [--format chrome|jsonl]\n\
         \x20                [--out FILE] [--gantt] [--calibrate]\n\
         \x20      hbsp_trace --validate <trace.json>\n\
         machine: testbed:<p> | testbed2 | <topology file>\n\
         operation: gather | broadcast | scatter | allgather"
    );
    exit(2)
}

fn parse_machine(spec: &str) -> MachineTree {
    if let Some(p) = spec.strip_prefix("testbed:") {
        let p: usize = p.parse().unwrap_or_else(|_| usage());
        return testbed(p).expect("testbed builds");
    }
    if spec == "testbed2" {
        return hbsp2_testbed(60_000.0).expect("testbed builds");
    }
    let text = std::fs::read_to_string(spec).unwrap_or_else(|e| {
        eprintln!("cannot read machine file `{spec}`: {e}");
        exit(1)
    });
    topology::parse(&text).unwrap_or_else(|e| {
        eprintln!("invalid machine description `{spec}`: {e}");
        exit(1)
    })
}

fn parse_options(args: &[String]) -> Options {
    let mut o = Options {
        kb: 100,
        strategy: Strategy::Flat,
        threads: false,
        chrome: true,
        out: None,
        gantt: false,
        calibrate: false,
    };
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--kb" => {
                o.kb = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--strategy" => {
                o.strategy = match it.next().map(String::as_str) {
                    Some("flat") => Strategy::Flat,
                    Some("hier") => Strategy::Hierarchical,
                    _ => usage(),
                }
            }
            "--engine" => {
                o.threads = match it.next().map(String::as_str) {
                    Some("sim") => false,
                    Some("threads") => true,
                    _ => usage(),
                }
            }
            "--format" => {
                o.chrome = match it.next().map(String::as_str) {
                    Some("chrome") => true,
                    Some("jsonl") => false,
                    _ => usage(),
                }
            }
            "--out" => o.out = Some(it.next().cloned().unwrap_or_else(|| usage())),
            "--gantt" => o.gantt = true,
            "--calibrate" => o.calibrate = true,
            _ => usage(),
        }
    }
    o
}

/// Standalone validation mode: check a Chrome trace file and report.
fn validate(path: &str) -> ! {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("cannot read `{path}`: {e}");
        exit(1)
    });
    match hbsp_obs::validate_chrome_trace(&text) {
        Ok(check) => {
            println!(
                "{path}: OK — {} events ({} complete, {} begin/end pairs)",
                check.events, check.complete, check.pairs
            );
            exit(0)
        }
        Err(e) => {
            eprintln!("{path}: INVALID — {e}");
            exit(1)
        }
    }
}

/// Lower `op` on `tree`, producing the schedule and each processor's
/// initial data. The source-rooted collectives start with the fastest
/// processor holding all `items`; the others start from per-processor
/// shares.
fn lower(
    tree: &MachineTree,
    op: &str,
    items: &[u32],
    strategy: Strategy,
) -> (CommSchedule, Vec<ProcInit>) {
    let n = items.len() as u64;
    let full_at = |src: ProcId| -> Vec<ProcInit> {
        (0..tree.num_procs())
            .map(|j| {
                if j == src.rank() {
                    ProcInit {
                        units: vec![(UnitId::new(0, n as u32), items.to_vec())],
                        acc: None,
                    }
                } else {
                    ProcInit::default()
                }
            })
            .collect()
    };
    match op {
        "gather" => {
            let plan = hbsp_collectives::gather::GatherPlan {
                root: RootPolicy::Fastest,
                workload: WorkloadPolicy::Equal,
                strategy,
            };
            let (sched, _root) = lower_gather(tree, n, plan).expect("fastest root resolves");
            (sched, share_inits(tree, items, WorkloadPolicy::Equal))
        }
        "broadcast" => {
            let plan = BroadcastPlan {
                root: RootPolicy::Fastest,
                strategy,
                top_phase: PhasePolicy::TwoPhase,
                cluster_phase: PhasePolicy::TwoPhase,
                workload: WorkloadPolicy::Equal,
            };
            let (sched, src) = lower_broadcast(tree, n, &plan).expect("fastest root resolves");
            (sched, full_at(src))
        }
        "scatter" => {
            let root = RootPolicy::Fastest.resolve(tree).expect("fastest resolves");
            let sched = lower_scatter(tree, n, root, WorkloadPolicy::Equal);
            (sched, full_at(root))
        }
        "allgather" => {
            let sched = match strategy {
                Strategy::Flat => lower_flat_allgather(tree, n, WorkloadPolicy::Equal),
                Strategy::Hierarchical => {
                    lower_hierarchical_allgather(tree, n, WorkloadPolicy::Equal)
                }
            };
            (sched, share_inits(tree, items, WorkloadPolicy::Equal))
        }
        _ => usage(),
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) == Some("--validate") {
        match args.get(1) {
            Some(path) if args.len() == 2 => validate(path),
            _ => usage(),
        }
    }
    if args.len() < 2 {
        usage();
    }
    let tree = parse_machine(&args[0]);
    let op = args[1].as_str();
    let o = parse_options(&args[2..]);
    let items = input_kb(o.kb);

    let (sched, inits) = lower(&tree, op, &items, o.strategy);
    let predicted = predicted_steps(&tree, &sched);
    let prog = ScheduleProgram::new(Arc::new(sched), Arc::new(inits), None);

    let recorder = Arc::new(Recorder::new());
    let tree = Arc::new(tree);
    let exec = if o.threads {
        Executor::threads(tree.clone())
    } else {
        Executor::simulator(tree.clone())
    };
    let (outcome, _states) = execute(&exec.probe(recorder.clone()), &prog).unwrap_or_else(|e| {
        eprintln!("run failed: {e}");
        exit(1)
    });

    eprintln!(
        "machine: HBSP^{} with {} processors; {} of {} KB on the {}",
        tree.height(),
        tree.num_procs(),
        op,
        o.kb,
        if o.threads {
            "threaded runtime"
        } else {
            "simulator"
        }
    );
    eprintln!("model time: {:.0}", outcome.total_time());

    let steps = recorder.steps();
    match DriftReport::new(&steps, &predicted) {
        Ok(report) => eprintln!("\n{}", report.render()),
        Err(e) => eprintln!("drift report unavailable: {e}"),
    }
    eprintln!("{}", recorder.metrics_text());

    if o.gantt {
        let timelines: Vec<ProcTimeline> = recorder
            .timelines()
            .into_iter()
            .map(|(pid, spans)| ProcTimeline {
                pid: ProcId(pid as u32),
                spans,
            })
            .collect();
        eprintln!("{}", ascii_gantt(&timelines, 72));
    }
    if o.calibrate {
        match calibrate(&steps) {
            Ok(cal) => eprintln!("{}", cal.render()),
            Err(e) => eprintln!("calibration unavailable: {e}"),
        }
    }

    let trace = if o.chrome {
        recorder.chrome_trace()
    } else {
        recorder.jsonl()
    };
    match &o.out {
        Some(path) => {
            std::fs::write(path, &trace).unwrap_or_else(|e| {
                eprintln!("cannot write `{path}`: {e}");
                exit(1)
            });
            eprintln!("trace written to {path}");
        }
        None => {
            let mut stdout = std::io::stdout().lock();
            stdout.write_all(trace.as_bytes()).expect("stdout");
        }
    }
}
