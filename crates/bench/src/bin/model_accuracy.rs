//! Regenerates E9: cost-model predictability — §4's closed-form
//! predictions against simulated execution, per collective.
//!
//! Usage: `cargo run -p hbsp-bench --bin model_accuracy`

use hbsp_bench::figures::accuracy_table;
use hbsp_bench::model_accuracy;

fn main() {
    for p in [4, 8, 10] {
        for kb in [100, 500, 1000] {
            let rows = model_accuracy(p, kb).expect("simulation succeeds");
            println!("p = {p}, problem size = {kb} KB");
            println!("{}", accuracy_table(&rows));
        }
    }
}
