//! Regenerates the §4.3 analysis (E8): HBSP^2 gather amortization —
//! the overhead of the extra communication level over the `g·n` ideal
//! must shrink as the problem grows.
//!
//! Usage: `cargo run -p hbsp-bench --bin hbsp2_amortization`

use hbsp_bench::figures::amortization_table;
use hbsp_bench::hbsp2_amortization;

fn main() {
    let rows = hbsp2_amortization(&[25, 50, 100, 200, 400, 800, 1600], 60_000.0)
        .expect("simulation succeeds");
    println!("HBSP^2 gather amortization (campus L_{{2,0}} = 60000)");
    println!("{}", amortization_table(&rows));
}
