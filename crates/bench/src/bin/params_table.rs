//! Regenerates **Table 1** (E5): the model parameters, instantiated for
//! the simulated testbed so every symbol has a concrete value.
//!
//! Usage: `cargo run -p hbsp-bench --bin params_table`

use hbsp_bench::hbsp2_testbed;
use hbsp_core::topology;

fn main() {
    let tree = hbsp2_testbed(60_000.0).expect("testbed builds");
    println!("Table 1 — HBSP^k parameters of the simulated HBSP^2 testbed\n");
    println!("g (fastest-machine time per word) = {}", tree.g());
    println!("k (communication levels)          = {}", tree.height());
    for level in (0..=tree.height()).rev() {
        let nodes = tree.level_nodes(level).expect("level exists");
        println!("\nlevel {level}: m_{level} = {} machines", nodes.len());
        for &idx in nodes {
            let node = tree.node(idx);
            let p = node.params();
            println!(
                "  {:<10} {:<9} m_ij = {:<2} r = {:<5} L = {:<8} speed = {:.3}{}",
                node.machine_id().to_string(),
                node.name(),
                node.num_children(),
                p.r,
                p.l_sync,
                p.speed,
                node.proc_id()
                    .map(|id| format!("  ({id})"))
                    .unwrap_or_default(),
            );
        }
    }
    println!("\nTopology DSL round-trip of the same machine:\n");
    println!("{}", topology::to_dsl(&tree));
}
