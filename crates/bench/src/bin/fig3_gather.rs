//! Regenerates **Figure 3** of the paper: gather improvement factors on
//! the simulated testbed.
//!
//! * `(a)` — `T_s / T_f`: slow root vs fast root, equal workloads (E1);
//! * `(b)` — `T_u / T_b`: equal vs balanced workloads, fast root (E2);
//! * `commaware` — `T_u / T_c`: the E10 extension weighting `c_j` by
//!   compute *and* network ability.
//!
//! Usage: `cargo run -p hbsp-bench --bin fig3_gather [--experiment root|balance|commaware|all]`

use hbsp_bench::figures::improvement_table;
use hbsp_bench::{
    gather_balance_improvement, gather_comm_aware_improvement, gather_root_improvement,
    PAPER_SIZES_KB, TESTBED_PS,
};

fn main() {
    let mode = std::env::args().nth(2).unwrap_or_else(|| "all".into());
    let ps = TESTBED_PS;
    let kbs = PAPER_SIZES_KB;
    if mode == "root" || mode == "both" || mode == "all" {
        let pts = gather_root_improvement(&ps, &kbs).expect("simulation succeeds");
        println!(
            "{}",
            improvement_table("Figure 3(a) — gather, improvement factor T_s / T_f", &pts)
        );
    }
    if mode == "balance" || mode == "both" || mode == "all" {
        let pts = gather_balance_improvement(&ps, &kbs).expect("simulation succeeds");
        println!(
            "{}",
            improvement_table("Figure 3(b) — gather, improvement factor T_u / T_b", &pts)
        );
    }
    if mode == "commaware" || mode == "all" {
        let pts = gather_comm_aware_improvement(&ps, &kbs).expect("simulation succeeds");
        println!(
            "{}",
            improvement_table(
                "E10 (extension) — gather, improvement factor T_u / T_c (comm-aware c_j)",
                &pts
            )
        );
    }
}
