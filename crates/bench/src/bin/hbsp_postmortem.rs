//! `hbsp_postmortem` — inspect, diff, and re-render crash bundles.
//!
//! ```text
//! hbsp_postmortem [options] <bundle.jsonl>
//!
//! options:
//!   --diff OTHER.jsonl   compare against a second bundle; one line per
//!                        field that differs, exit 1 unless identical
//!   --ignore-engine      with --diff: tolerate differing "engine"
//!                        headers (the cross-engine conformance check —
//!                        a sim and a threads bundle of the same seeded
//!                        failure must agree on everything else)
//!   --chrome FILE        re-render the bundle as a Chrome trace
//!                        (steps + causal span tree) to FILE
//!   --events             also print the bundle's out-of-band events
//!   --log                also print the attached decision log
//! ```
//!
//! Default action: parse the bundle, run
//! [`PostmortemBundle::validate`], and print its one-paragraph summary
//! plus the recorded step range. The written Chrome trace is checked
//! with [`validate_chrome_trace`] before it touches disk.
//!
//! Exit status: 0 on success, 1 on validation failures or a dirty
//! diff, 2 on usage/IO errors.
//!
//! Example (inspecting what `hbsp_chaos --postmortem` dumped):
//!
//! ```text
//! cargo run -p hbsp-bench --bin hbsp_postmortem -- \
//!   pm/postmortem_campus_s3_sim.jsonl \
//!   --diff pm/postmortem_campus_s3_threads.jsonl --ignore-engine
//! ```

use hbsp_obs::{validate_chrome_trace, PostmortemBundle};
use std::process::exit;

fn usage() -> ! {
    eprintln!(
        "usage: hbsp_postmortem [options] <bundle.jsonl>\n\
         \x20 --diff OTHER.jsonl  compare bundles (exit 1 on differences)\n\
         \x20 --ignore-engine     with --diff: ignore the engine header\n\
         \x20 --chrome FILE       write a Chrome-trace rendering to FILE\n\
         \x20 --events            print out-of-band events\n\
         \x20 --log               print the decision log"
    );
    exit(2)
}

fn load(path: &str) -> PostmortemBundle {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("hbsp_postmortem: {path}: {e}");
        exit(2)
    });
    PostmortemBundle::parse(&text).unwrap_or_else(|e| {
        eprintln!("hbsp_postmortem: {path}: {e}");
        exit(2)
    })
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut diff_path: Option<String> = None;
    let mut ignore_engine = false;
    let mut chrome: Option<String> = None;
    let mut show_events = false;
    let mut show_log = false;
    let mut bundle_path: Option<String> = None;

    let mut it = args.iter();
    while let Some(a) = it.next() {
        let mut value = || it.next().cloned().unwrap_or_else(|| usage());
        match a.as_str() {
            "--diff" => diff_path = Some(value()),
            "--ignore-engine" => ignore_engine = true,
            "--chrome" => chrome = Some(value()),
            "--events" => show_events = true,
            "--log" => show_log = true,
            "--help" | "-h" => usage(),
            f if f.starts_with('-') => usage(),
            f => bundle_path = Some(f.to_string()),
        }
    }
    let Some(bundle_path) = bundle_path else {
        usage()
    };
    let bundle = load(&bundle_path);

    let mut failures = 0usize;
    match bundle.validate() {
        Ok(()) => println!("{}", bundle.summary()),
        Err(e) => {
            eprintln!("hbsp_postmortem: {bundle_path}: invalid bundle: {e}");
            failures += 1;
        }
    }
    if let (Some(first), Some(last)) = (bundle.steps.first(), bundle.steps.last()) {
        println!(
            "steps {}..={} on {} processor(s), fault plan {}",
            first.step,
            last.step,
            first.procs(),
            if bundle.fault_plan.trim().is_empty() {
                "empty".to_string()
            } else {
                format!("({} line(s))", bundle.fault_plan.lines().count())
            }
        );
    }
    if show_events {
        for ev in &bundle.events {
            println!("event: {ev:?}");
        }
    }
    if show_log && !bundle.decision_log.is_empty() {
        print!("{}", bundle.decision_log);
    }

    if let Some(other_path) = &diff_path {
        let other = load(other_path);
        if let Err(e) = other.validate() {
            eprintln!("hbsp_postmortem: {other_path}: invalid bundle: {e}");
            failures += 1;
        }
        let lines: Vec<String> = bundle
            .diff(&other)
            .into_iter()
            .filter(|l| !(ignore_engine && l.starts_with("engine:")))
            .collect();
        if lines.is_empty() {
            println!(
                "bundles agree{}",
                if ignore_engine {
                    " (engine header ignored)"
                } else {
                    ""
                }
            );
        } else {
            for l in &lines {
                eprintln!("diff: {l}");
            }
            eprintln!(
                "hbsp_postmortem: bundles differ in {} field(s)",
                lines.len()
            );
            failures += 1;
        }
    }

    if let Some(out) = &chrome {
        let trace = bundle.chrome_trace();
        if let Err(e) = validate_chrome_trace(&trace) {
            eprintln!("hbsp_postmortem: rendered trace is invalid: {e}");
            failures += 1;
        } else if let Err(e) = std::fs::write(out, &trace) {
            eprintln!("hbsp_postmortem: {out}: {e}");
            exit(2)
        } else {
            println!("chrome trace written to {out}");
        }
    }

    if failures > 0 {
        exit(1)
    }
}
