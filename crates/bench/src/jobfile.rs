//! Job-graph file parsing and validation, shared by `hbsp_sched`
//! (which executes the graphs) and `hbsp_check --jobs` (which lints
//! them statically).
//!
//! The format is line-oriented: one job per line, `#` comments and
//! blank lines ignored.
//!
//! ```text
//! <name> <kind> n=<words> [procs=<min>] [after=<id>,<id>,...] [seed=<u64>]
//! ```
//!
//! `<kind>` is any of the seven collectives (`gather`, `broadcast`,
//! `scatter`, `allgather`, `alltoall`, `reduce`, `scan`); `after`
//! references 0-based job ids — line positions among job lines.
//!
//! [`parse`] reports *every* malformed line (not just the first) with
//! its 1-based line number, and [`validate`] adds the graph-level
//! checks: dependency ids must exist, payloads must move at least one
//! word, and the DAG must be acyclic (an `after` cycle would make the
//! scheduler's admission loop starve the cycle forever, which it
//! reports at run time — the point of the static check is to say so
//! *before* anything runs, with a line number).

use hbsp_sched::{CollectiveKind, Job, JobId, JobWork};
use std::fmt;

/// One diagnostic tied to a line of the job-graph file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobfileError {
    /// 1-based line number (0 = file-level).
    pub line: usize,
    pub message: String,
}

impl fmt::Display for JobfileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.line, self.message)
    }
}

/// A parsed job plus the provenance [`validate`] needs.
#[derive(Debug, Clone)]
pub struct ParsedJob {
    pub job: Job,
    /// 1-based source line.
    pub line: usize,
}

/// Parse a job-graph file, collecting every malformed line as a
/// diagnostic. Jobs from well-formed lines are returned even when
/// other lines are broken, so `validate` can still check the rest.
pub fn parse(text: &str) -> (Vec<ParsedJob>, Vec<JobfileError>) {
    let mut jobs = Vec::new();
    let mut errors = Vec::new();
    for (idx, raw) in text.lines().enumerate() {
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let lineno = idx + 1;
        match parse_line(line) {
            Ok(job) => jobs.push(ParsedJob { job, line: lineno }),
            Err(message) => errors.push(JobfileError {
                line: lineno,
                message,
            }),
        }
    }
    (jobs, errors)
}

fn parse_line(line: &str) -> Result<Job, String> {
    let mut tokens = line.split_whitespace();
    let name = tokens.next().ok_or("missing job name")?;
    let kind_tok = tokens.next().ok_or("missing collective kind")?;
    let kind = CollectiveKind::parse(kind_tok)
        .ok_or_else(|| format!("unknown collective `{kind_tok}`"))?;
    let mut n: Option<u64> = None;
    let mut job = Job::collective(name, kind, 0);
    for tok in tokens {
        let (key, value) = tok
            .split_once('=')
            .ok_or_else(|| format!("expected key=value, got `{tok}`"))?;
        match key {
            "n" => n = Some(value.parse().map_err(|_| format!("bad size `{value}`"))?),
            "procs" => {
                job = job.with_min_procs(value.parse().map_err(|_| format!("bad procs `{value}`"))?)
            }
            "seed" => {
                job = job.with_seed(value.parse().map_err(|_| format!("bad seed `{value}`"))?)
            }
            "after" => {
                let deps = value
                    .split(',')
                    .map(|d| {
                        d.parse()
                            .map(JobId)
                            .map_err(|_| format!("bad dependency id `{d}`"))
                    })
                    .collect::<Result<Vec<JobId>, String>>()?;
                job = job.after(&deps);
            }
            other => return Err(format!("unknown key `{other}`")),
        }
    }
    let n = n.ok_or("missing n=<words>")?;
    if let JobWork::Collective { n: slot, .. } = &mut job.work {
        *slot = n;
    }
    Ok(job)
}

/// Graph-level validation: unknown dependency ids, zero-word payloads,
/// and dependency cycles, each reported against the offending line.
pub fn validate(jobs: &[ParsedJob]) -> Vec<JobfileError> {
    let mut errors = Vec::new();
    for (id, pj) in jobs.iter().enumerate() {
        if let JobWork::Collective { n: 0, .. } = pj.job.work {
            errors.push(JobfileError {
                line: pj.line,
                message: format!(
                    "job {id} `{}`: zero-word payload (n=0 moves nothing)",
                    pj.job.name
                ),
            });
        }
        for dep in &pj.job.blocked_by {
            if dep.0 >= jobs.len() {
                errors.push(JobfileError {
                    line: pj.line,
                    message: format!(
                        "job {id} `{}`: dependency on unknown job id {} (only {} jobs)",
                        pj.job.name,
                        dep.0,
                        jobs.len()
                    ),
                });
            } else if dep.0 == id {
                errors.push(JobfileError {
                    line: pj.line,
                    message: format!("job {id} `{}`: depends on itself", pj.job.name),
                });
            }
        }
    }
    // Cycle detection over the in-range edges (out-of-range ids were
    // reported above). Iterative DFS with tricolor marking.
    #[derive(Clone, Copy, PartialEq)]
    enum Mark {
        White,
        Grey,
        Black,
    }
    let mut marks = vec![Mark::White; jobs.len()];
    for start in 0..jobs.len() {
        if marks[start] != Mark::White {
            continue;
        }
        // Stack of (node, next-dep-index) frames.
        let mut stack: Vec<(usize, usize)> = vec![(start, 0)];
        marks[start] = Mark::Grey;
        while !stack.is_empty() {
            let frame = stack.len() - 1;
            let (node, next) = stack[frame];
            let deps = &jobs[node].job.blocked_by;
            if next >= deps.len() {
                marks[node] = Mark::Black;
                stack.pop();
                continue;
            }
            stack[frame].1 += 1;
            let dep = deps[next].0;
            if dep >= jobs.len() || dep == node {
                continue; // reported above
            }
            match marks[dep] {
                Mark::White => {
                    marks[dep] = Mark::Grey;
                    stack.push((dep, 0));
                }
                Mark::Grey => {
                    let cycle: Vec<String> = stack
                        .iter()
                        .skip_while(|(n, _)| *n != dep)
                        .map(|(n, _)| format!("{n} `{}`", jobs[*n].job.name))
                        .collect();
                    errors.push(JobfileError {
                        line: jobs[node].line,
                        message: format!(
                            "dependency cycle: {} -> {dep} `{}`",
                            cycle.join(" -> "),
                            jobs[dep].job.name
                        ),
                    });
                }
                Mark::Black => {}
            }
        }
    }
    errors.sort_by_key(|e| e.line);
    errors
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ids(errors: &[JobfileError]) -> Vec<usize> {
        errors.iter().map(|e| e.line).collect()
    }

    #[test]
    fn well_formed_file_parses_every_field() {
        let (jobs, errors) = parse(
            "# comment\n\
             a gather n=64\n\
             \n\
             b reduce n=32 procs=4 after=0 seed=9 # trailing\n",
        );
        assert!(errors.is_empty());
        assert_eq!(jobs.len(), 2);
        assert_eq!(jobs[0].line, 2);
        assert_eq!(jobs[1].line, 4);
        assert_eq!(jobs[1].job.min_procs, 4);
        assert_eq!(jobs[1].job.seed, 9);
        assert_eq!(jobs[1].job.blocked_by, vec![JobId(0)]);
        assert!(validate(&jobs).is_empty());
    }

    #[test]
    fn every_malformed_line_is_reported() {
        let (jobs, errors) = parse(
            "a gather n=64\n\
             bad-kind frobnicate n=1\n\
             c scatter\n\
             d scan n=not-a-number\n",
        );
        assert_eq!(jobs.len(), 1);
        assert_eq!(ids(&errors), vec![2, 3, 4]);
        assert!(errors[0].message.contains("frobnicate"));
        assert!(errors[1].message.contains("missing n="));
        assert!(errors[2].message.contains("bad size"));
    }

    #[test]
    fn validate_flags_unknown_ids_zero_payloads_and_cycles() {
        let (jobs, errors) = parse(
            "a gather n=0\n\
             b reduce n=8 after=9\n\
             c scan n=8 after=3\n\
             d scatter n=8 after=2\n",
        );
        assert!(errors.is_empty());
        let diags = validate(&jobs);
        let msgs: Vec<&str> = diags.iter().map(|e| e.message.as_str()).collect();
        assert!(msgs.iter().any(|m| m.contains("zero-word payload")));
        assert!(msgs.iter().any(|m| m.contains("unknown job id 9")));
        assert!(msgs.iter().any(|m| m.contains("dependency cycle")));
        // The cycle c(2) <-> d(3) names both participants.
        let cycle = msgs.iter().find(|m| m.contains("cycle")).unwrap();
        assert!(cycle.contains("`c`") && cycle.contains("`d`"), "{cycle}");
    }

    #[test]
    fn self_dependency_is_reported_without_a_cycle_walk() {
        let (jobs, errors) = parse("a gather n=4 after=0\n");
        assert!(errors.is_empty());
        let diags = validate(&jobs);
        assert_eq!(diags.len(), 1);
        assert!(diags[0].message.contains("depends on itself"));
    }
}
