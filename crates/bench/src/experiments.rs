//! Drivers for every experiment in the reproduction (see DESIGN.md's
//! experiment index E1–E9).

use crate::testbed::{input_kb, testbed};
use hbsp_collectives::broadcast::{simulate_broadcast, BroadcastPlan};
use hbsp_collectives::gather::{simulate_gather, GatherPlan};
use hbsp_collectives::plan::{PhasePolicy, RootPolicy, WorkloadPolicy};
use hbsp_collectives::predict;
use hbsp_collectives::CollectiveError;
use hbsp_core::{CostReport, Level, MachineTree, SuperstepCost};

/// One point of a Figure-3/4-style plot: processor count, problem size
/// (KB), and the improvement factor `T_A / T_B`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FigurePoint {
    /// Number of processors.
    pub p: usize,
    /// Problem size in KB (4-byte integers).
    pub kb: usize,
    /// Improvement factor.
    pub factor: f64,
}

fn sweep(
    ps: &[usize],
    kbs: &[usize],
    mut f: impl FnMut(&MachineTree, &[u32]) -> Result<f64, CollectiveError>,
) -> Result<Vec<FigurePoint>, CollectiveError> {
    let mut out = Vec::with_capacity(ps.len() * kbs.len());
    for &p in ps {
        let tree = testbed(p).expect("testbed builds");
        for &kb in kbs {
            let items = input_kb(kb);
            out.push(FigurePoint {
                p,
                kb,
                factor: f(&tree, &items)?,
            });
        }
    }
    Ok(out)
}

/// **E1 / Figure 3(a)** — gather improvement from rooting at `P_f`
/// instead of `P_s`: the factor `T_s / T_f` with equal workloads.
pub fn gather_root_improvement(
    ps: &[usize],
    kbs: &[usize],
) -> Result<Vec<FigurePoint>, CollectiveError> {
    sweep(ps, kbs, |tree, items| {
        let tf = simulate_gather(tree, items, GatherPlan::fast_root())?.time;
        let ts = simulate_gather(tree, items, GatherPlan::slow_root())?.time;
        Ok(ts / tf)
    })
}

/// **E2 / Figure 3(b)** — gather improvement from balanced workloads:
/// `T_u / T_b` with the fastest root (`T_u = T_f`).
pub fn gather_balance_improvement(
    ps: &[usize],
    kbs: &[usize],
) -> Result<Vec<FigurePoint>, CollectiveError> {
    sweep(ps, kbs, |tree, items| {
        let tu = simulate_gather(tree, items, GatherPlan::fast_root())?.time;
        let tb = simulate_gather(tree, items, GatherPlan::balanced())?.time;
        Ok(tu / tb)
    })
}

/// **E3 / Figure 4(a)** — broadcast improvement from rooting at `P_f`:
/// `T_s / T_f`, two-phase, equal workloads.
pub fn broadcast_root_improvement(
    ps: &[usize],
    kbs: &[usize],
) -> Result<Vec<FigurePoint>, CollectiveError> {
    sweep(ps, kbs, |tree, items| {
        let tf = simulate_broadcast(tree, items, BroadcastPlan::two_phase())?.time;
        let ts = simulate_broadcast(tree, items, BroadcastPlan::slow_root())?.time;
        Ok(ts / tf)
    })
}

/// **E4 / Figure 4(b)** — broadcast improvement from balanced
/// first-phase pieces: `T_u / T_b`.
pub fn broadcast_balance_improvement(
    ps: &[usize],
    kbs: &[usize],
) -> Result<Vec<FigurePoint>, CollectiveError> {
    sweep(ps, kbs, |tree, items| {
        let tu = simulate_broadcast(tree, items, BroadcastPlan::two_phase())?.time;
        let tb = simulate_broadcast(tree, items, BroadcastPlan::balanced())?.time;
        Ok(tu / tb)
    })
}

/// One row of the §4.4 crossover study (E6): simulated and predicted
/// times for one- and two-phase broadcast at a given `p`.
#[derive(Debug, Clone, Copy)]
pub struct CrossoverRow {
    /// Number of processors.
    pub p: usize,
    /// Slowest participant's `r`.
    pub r_s: f64,
    /// Simulated one-phase time.
    pub one_sim: f64,
    /// Simulated two-phase time.
    pub two_sim: f64,
    /// Predicted one-phase time (§4.4 formula).
    pub one_pred: f64,
    /// Predicted two-phase time (§4.4 formula).
    pub two_pred: f64,
}

impl CrossoverRow {
    /// True when the simulation and the model agree on the winner.
    pub fn winners_agree(&self) -> bool {
        (self.one_sim < self.two_sim) == (self.one_pred < self.two_pred)
    }
}

/// **E6** — flat one- vs two-phase broadcast across processor counts
/// (§4.4's `g·n·m` vs `g·n(1 + r_s) + 2L` crossover).
pub fn broadcast_crossover(ps: &[usize], kb: usize) -> Result<Vec<CrossoverRow>, CollectiveError> {
    let items = input_kb(kb);
    let n = items.len() as u64;
    let mut rows = Vec::new();
    for &p in ps {
        let tree = testbed(p).expect("testbed builds");
        let root = RootPolicy::Fastest
            .resolve(&tree)
            .expect("fastest root always resolves");
        let one_sim = simulate_broadcast(&tree, &items, BroadcastPlan::one_phase())?.time;
        let two_sim = simulate_broadcast(&tree, &items, BroadcastPlan::two_phase())?.time;
        let one_pred = predict::broadcast_one_phase(&tree, n, root).total();
        let two_pred = predict::broadcast_two_phase(&tree, n, root, WorkloadPolicy::Equal).total();
        let r_s = tree.leaf(tree.slowest_proc()).params().r;
        rows.push(CrossoverRow {
            p,
            r_s,
            one_sim,
            two_sim,
            one_pred,
            two_pred,
        });
    }
    Ok(rows)
}

/// One row of the §4.4 HBSP^2 top-level study (E7).
#[derive(Debug, Clone, Copy)]
pub struct Hbsp2PhaseRow {
    /// Campus barrier cost `L_{2,0}`.
    pub l2: f64,
    /// Simulated hierarchical broadcast, one-phase top.
    pub one_sim: f64,
    /// Simulated hierarchical broadcast, two-phase top.
    pub two_sim: f64,
    /// Predicted super²-step cost, one-phase.
    pub one_pred: f64,
    /// Predicted super²-step cost, two-phase.
    pub two_pred: f64,
}

/// §4.4's closed form for the *top-level* super²-step of a one-phase
/// hierarchical broadcast: the root coordinator ships the full array to
/// the `m − 1` other coordinators. Kept here (not in
/// `hbsp_collectives::predict`) because it prices only the top phase of
/// the operation — an analysis device for E7, not a whole schedule.
pub fn hbsp2_top_one_phase(tree: &MachineTree, n: u64) -> CostReport {
    let (root_r, slowest_coord_r, m, l) = top_level_params(tree);
    let h = (root_r * n as f64 * (m as f64 - 1.0)).max(slowest_coord_r * n as f64);
    let mut rep = CostReport::new();
    rep.push(top_step(tree, tree.height(), h, l));
    rep
}

/// §4.4's closed form for the top-level super²-steps of a two-phase
/// hierarchical broadcast: scatter pieces to the coordinators, then
/// all-gather among them.
pub fn hbsp2_top_two_phase(tree: &MachineTree, n: u64) -> CostReport {
    let (root_r, slowest_coord_r, m, l) = top_level_params(tree);
    let piece = n as f64 / m as f64;
    let h1 = (root_r * (n as f64 - piece)).max(slowest_coord_r * piece);
    let h2 = slowest_coord_r * n as f64;
    let mut rep = CostReport::new();
    rep.push(top_step(tree, tree.height(), h1, l));
    rep.push(top_step(tree, tree.height(), h2, l));
    rep
}

fn top_level_params(tree: &MachineTree) -> (f64, f64, usize, f64) {
    let k = tree.height();
    assert!(k >= 1, "top-level analysis needs a cluster machine");
    let root = tree.node(tree.root());
    let root_r = root.params().r;
    let mut slowest = root_r;
    for &child in root.children() {
        let rep_leaf = tree.node(child).representative();
        slowest = slowest.max(tree.node(rep_leaf).params().r);
    }
    (root_r, slowest, root.num_children(), root.params().l_sync)
}

fn top_step(tree: &MachineTree, level: Level, h: f64, l: f64) -> SuperstepCost {
    SuperstepCost {
        level,
        w: 0.0,
        h,
        comm: tree.g() * h,
        sync: l,
    }
}

/// **E7** — HBSP^2 one- vs two-phase super²-step distribution over a
/// range of campus barrier costs.
pub fn hbsp2_phase_study(l2s: &[f64], kb: usize) -> Result<Vec<Hbsp2PhaseRow>, CollectiveError> {
    let items = input_kb(kb);
    let n = items.len() as u64;
    let mut rows = Vec::new();
    for &l2 in l2s {
        let tree = crate::testbed::hbsp2_testbed(l2).expect("testbed builds");
        let one_sim = simulate_broadcast(
            &tree,
            &items,
            BroadcastPlan::hierarchical(PhasePolicy::OnePhase),
        )?
        .time;
        let two_sim = simulate_broadcast(
            &tree,
            &items,
            BroadcastPlan::hierarchical(PhasePolicy::TwoPhase),
        )?
        .time;
        let one_pred = hbsp2_top_one_phase(&tree, n).total();
        let two_pred = hbsp2_top_two_phase(&tree, n).total();
        rows.push(Hbsp2PhaseRow {
            l2,
            one_sim,
            two_sim,
            one_pred,
            two_pred,
        });
    }
    Ok(rows)
}

/// One row of the §4.3 amortization study (E8).
#[derive(Debug, Clone, Copy)]
pub struct AmortizationRow {
    /// Problem size (KB).
    pub kb: usize,
    /// HBSP^2 hierarchical gather time.
    pub hier: f64,
    /// Flat gather time on the same machine, for reference.
    pub flat: f64,
    /// The model's HBSP^1 lower bound `g·n` (§4.2's balanced-gather
    /// cost without any hierarchy overhead).
    pub ideal: f64,
    /// Messages that crossed the campus (level-2) links, hierarchical.
    pub hier_top_msgs: u64,
    /// Messages that crossed the campus links, flat.
    pub flat_top_msgs: u64,
}

impl AmortizationRow {
    /// Hierarchy overhead multiple: simulated HBSP^2 gather time over
    /// the `g·n` ideal. §4.3 says this must fall toward a constant as
    /// `n` grows (the `L` terms and extra super²-step amortize).
    pub fn overhead(&self) -> f64 {
        self.hier / self.ideal
    }
}

/// **E8** — §4.3: "efficient algorithm execution in this environment
/// implies that the size of the problem must outweigh the cost of
/// performing the extra level of communication and synchronization".
/// Sweeps `n` on the HBSP^2 testbed: the hierarchical gather's overhead
/// over the `g·n` ideal must shrink as `n` grows, and the hierarchy
/// must cross the campus links with fewer messages than the flat
/// gather.
pub fn hbsp2_amortization(kbs: &[usize], l2: f64) -> Result<Vec<AmortizationRow>, CollectiveError> {
    let tree = crate::testbed::hbsp2_testbed(l2).expect("testbed builds");
    let mut rows = Vec::new();
    for &kb in kbs {
        let items = input_kb(kb);
        let hier_run = simulate_gather(&tree, &items, GatherPlan::hierarchical())?;
        let flat_run = simulate_gather(&tree, &items, GatherPlan::fast_root())?;
        let top = |run: &hbsp_collectives::gather::GatherRun| -> u64 {
            run.sim
                .steps
                .iter()
                .map(|s| s.traffic.get(2).map_or(0, |t| t.messages))
                .sum()
        };
        rows.push(AmortizationRow {
            kb,
            hier: hier_run.time,
            flat: flat_run.time,
            ideal: tree.g() * items.len() as f64,
            hier_top_msgs: top(&hier_run),
            flat_top_msgs: top(&flat_run),
        });
    }
    Ok(rows)
}

/// **E10 (extension)** — gather improvement from *communication-aware*
/// balancing: `T_u / T_c` where `T_c` uses `c_j` from the geometric
/// mean of compute and communication speed. The paper's §5.2 blames
/// Figure 3(b)'s flatness on the compute-only `c_j` of the
/// second-fastest machine; weighting by both abilities (the model
/// text's actual instruction) should recover a real benefit.
pub fn gather_comm_aware_improvement(
    ps: &[usize],
    kbs: &[usize],
) -> Result<Vec<FigurePoint>, CollectiveError> {
    sweep(ps, kbs, |tree, items| {
        let tu = simulate_gather(tree, items, GatherPlan::fast_root())?.time;
        let tc = simulate_gather(
            tree,
            items,
            GatherPlan::fast_root().with_workload(WorkloadPolicy::CommAware),
        )?
        .time;
        Ok(tu / tc)
    })
}

/// One row of the barrier-scope ablation.
#[derive(Debug, Clone, Copy)]
pub struct BarrierAblationRow {
    /// Rounds of cluster-local exchange performed.
    pub rounds: usize,
    /// Total time with level-1 (cluster-scoped) barriers.
    pub scoped: f64,
    /// Total time with global (level-k) barriers.
    pub global: f64,
}

/// **Ablation** — why `sync_level` exists: a program that exchanges
/// only within clusters, synchronized either per cluster
/// (`SyncScope::Level(1)`, each cluster paying its own `L_{1,j}`) or
/// globally (every step paying `L_{2,0}` and waiting for the slowest
/// cluster). The paper's super^i-step notion is exactly this scoping.
pub fn barrier_scope_ablation(
    rounds_list: &[usize],
    l2: f64,
) -> Result<Vec<BarrierAblationRow>, CollectiveError> {
    use hbsp_core::{ProcEnv, SpmdContext, SpmdProgram, StepOutcome, SyncScope};
    use std::sync::Arc;

    /// Ring exchange within each level-1 cluster for `rounds` steps.
    struct ClusterRing {
        rounds: usize,
        scope_level: u32,
    }
    impl SpmdProgram for ClusterRing {
        type State = ();
        fn init(&self, _env: &ProcEnv) {}
        fn step(
            &self,
            step: usize,
            env: &ProcEnv,
            _state: &mut (),
            ctx: &mut dyn SpmdContext,
        ) -> StepOutcome {
            use hbsplib::TreeEnquiry;
            if step == self.rounds {
                return StepOutcome::Done;
            }
            let members = env.tree.cluster_members(env.pid, 1);
            if members.len() > 1 {
                let me = members.iter().position(|&m| m == env.pid).expect("member");
                let next = members[(me + 1) % members.len()];
                ctx.send(next, 0, &[0u8; 512]);
            }
            ctx.charge(200.0);
            StepOutcome::Continue(SyncScope::Level(self.scope_level))
        }
    }

    let tree = Arc::new(crate::testbed::hbsp2_testbed(l2).expect("testbed builds"));
    let mut rows = Vec::new();
    for &rounds in rounds_list {
        let scoped = hbsp_sim::Simulator::new(Arc::clone(&tree))
            .run(&ClusterRing {
                rounds,
                scope_level: 1,
            })?
            .total_time;
        let global = hbsp_sim::Simulator::new(Arc::clone(&tree))
            .run(&ClusterRing {
                rounds,
                scope_level: 2,
            })?
            .total_time;
        rows.push(BarrierAblationRow {
            rounds,
            scoped,
            global,
        });
    }
    Ok(rows)
}

/// One row of the model-accuracy study (E9).
#[derive(Debug, Clone)]
pub struct AccuracyRow {
    /// Operation label.
    pub op: &'static str,
    /// Model-predicted time (§4 formulas).
    pub predicted: f64,
    /// Simulated time.
    pub simulated: f64,
}

/// Price the real gather/broadcast programs with the generic
/// [`hbsp_sim::ModelEvaluator`] and compare against the closed forms —
/// the two prediction paths must agree (up to the few header words per
/// message the closed forms don't count).
pub fn model_evaluator_agreement(p: usize, kb: usize) -> Result<Vec<(f64, f64)>, CollectiveError> {
    use hbsp_collectives::data::shares_for;
    use hbsp_collectives::gather::FlatGather;
    use std::sync::Arc;

    let tree = testbed(p).expect("testbed builds");
    let items = input_kb(kb);
    let n = items.len() as u64;
    let root = RootPolicy::Fastest
        .resolve(&tree)
        .expect("fastest root always resolves");
    let mut pairs = Vec::new();
    for wl in [WorkloadPolicy::Equal, WorkloadPolicy::Balanced] {
        let closed = predict::gather_flat(&tree, n, root, wl).total();
        let shares = Arc::new(shares_for(&tree, &items, wl));
        let evaluated = hbsp_sim::ModelEvaluator::new(Arc::new(tree.clone()))
            .run(&FlatGather::new(root, shares))?
            .total();
        pairs.push((closed, evaluated));
    }
    Ok(pairs)
}

impl AccuracyRow {
    /// `simulated / predicted`.
    pub fn ratio(&self) -> f64 {
        self.simulated / self.predicted
    }
}

/// **E9** — predicted vs simulated time for the §4 collectives on the
/// `p`-machine testbed. The simulator's pack/unpack pipeline and
/// per-message overheads are *not* in the model, so ratios cluster
/// around a constant greater than 1; the claim under test is that the
/// model *ranks* designs correctly and tracks scale, not that it
/// predicts absolute microcosts.
pub fn model_accuracy(p: usize, kb: usize) -> Result<Vec<AccuracyRow>, CollectiveError> {
    let tree = testbed(p).expect("testbed builds");
    let items = input_kb(kb);
    let n = items.len() as u64;
    let root = RootPolicy::Fastest
        .resolve(&tree)
        .expect("fastest root always resolves");
    let rows = vec![
        AccuracyRow {
            op: "gather (fast root, equal)",
            predicted: predict::gather_flat(&tree, n, root, WorkloadPolicy::Equal).total(),
            simulated: simulate_gather(&tree, &items, GatherPlan::fast_root())?.time,
        },
        AccuracyRow {
            op: "gather (fast root, balanced)",
            predicted: predict::gather_flat(&tree, n, root, WorkloadPolicy::Balanced).total(),
            simulated: simulate_gather(&tree, &items, GatherPlan::balanced())?.time,
        },
        AccuracyRow {
            op: "broadcast (one-phase)",
            predicted: predict::broadcast_one_phase(&tree, n, root).total(),
            simulated: simulate_broadcast(&tree, &items, BroadcastPlan::one_phase())?.time,
        },
        AccuracyRow {
            op: "broadcast (two-phase)",
            predicted: predict::broadcast_two_phase(&tree, n, root, WorkloadPolicy::Equal).total(),
            simulated: simulate_broadcast(&tree, &items, BroadcastPlan::two_phase())?.time,
        },
    ];
    Ok(rows)
}

#[cfg(test)]
mod tests {
    use super::*;

    const SMALL_KB: [usize; 2] = [100, 300];

    #[test]
    fn fig3a_shape_holds() {
        let pts = gather_root_improvement(&[2, 6, 10], &SMALL_KB).unwrap();
        // p = 2: inverted (slow root wins) — the paper's anomaly.
        for pt in pts.iter().filter(|pt| pt.p == 2) {
            assert!(pt.factor < 1.0, "p=2 should invert: {pt:?}");
        }
        // p >= 6: fast root wins, and the factor grows with p.
        let avg = |p: usize| {
            let v: Vec<f64> = pts
                .iter()
                .filter(|pt| pt.p == p)
                .map(|pt| pt.factor)
                .collect();
            v.iter().sum::<f64>() / v.len() as f64
        };
        assert!(avg(6) > 1.0, "p=6 factor {}", avg(6));
        assert!(
            avg(10) > avg(6),
            "factor grows with p: {} vs {}",
            avg(10),
            avg(6)
        );
        // Flat across problem sizes: spread within a few percent.
        for p in [6, 10] {
            let v: Vec<f64> = pts
                .iter()
                .filter(|pt| pt.p == p)
                .map(|pt| pt.factor)
                .collect();
            let spread = (v[0] - v[1]).abs() / v[0];
            assert!(spread < 0.1, "p={p} factor should be flat in n: {v:?}");
        }
    }

    #[test]
    fn fig3b_shape_holds() {
        let pts = gather_balance_improvement(&[2, 6, 10], &SMALL_KB).unwrap();
        // p = 2: balanced workloads help.
        for pt in pts.iter().filter(|pt| pt.p == 2) {
            assert!(pt.factor > 1.03, "p=2 balanced should help: {pt:?}");
        }
        // p >= 6: virtually no benefit (§5.2: the second-fastest
        // machine's c_j overestimates its network).
        for pt in pts.iter().filter(|pt| pt.p >= 6) {
            assert!(
                (0.85..1.15).contains(&pt.factor),
                "balanced gather should be a wash at p={}: {}",
                pt.p,
                pt.factor
            );
        }
    }

    #[test]
    fn e10_comm_aware_beats_compute_only_balancing() {
        let naive = gather_balance_improvement(&[6, 10], &SMALL_KB).unwrap();
        let aware = gather_comm_aware_improvement(&[6, 10], &SMALL_KB).unwrap();
        for (n, a) in naive.iter().zip(&aware) {
            assert!(
                a.factor >= n.factor - 1e-9,
                "comm-aware balancing should do at least as well: {a:?} vs {n:?}"
            );
        }
        // And at p=10 it should show a real benefit where compute-only
        // was a wash.
        let a10 = aware
            .iter()
            .filter(|pt| pt.p == 10)
            .map(|pt| pt.factor)
            .sum::<f64>()
            / 2.0;
        let n10 = naive
            .iter()
            .filter(|pt| pt.p == 10)
            .map(|pt| pt.factor)
            .sum::<f64>()
            / 2.0;
        assert!(a10 > n10, "comm-aware {a10} vs compute-only {n10}");
    }

    #[test]
    fn fig4_shapes_hold() {
        let root_pts = broadcast_root_improvement(&[4, 10], &SMALL_KB).unwrap();
        for pt in &root_pts {
            assert!(
                (0.8..1.45).contains(&pt.factor),
                "broadcast root choice is nearly neutral: {pt:?}"
            );
        }
        let bal_pts = broadcast_balance_improvement(&[4, 10], &SMALL_KB).unwrap();
        for pt in &bal_pts {
            assert!(
                (0.85..1.15).contains(&pt.factor),
                "broadcast balancing is a wash: {pt:?}"
            );
        }
    }

    #[test]
    fn crossover_agrees_with_model() {
        let rows = broadcast_crossover(&[2, 4, 8, 10], 200).unwrap();
        for row in &rows {
            assert!(
                row.winners_agree(),
                "model and simulation disagree at p={}",
                row.p
            );
        }
        // Two-phase wins from modest p on.
        assert!(rows.last().unwrap().two_sim < rows.last().unwrap().one_sim);
    }

    #[test]
    fn amortization_overhead_shrinks_with_n() {
        let rows = hbsp2_amortization(&[25, 100, 800], 60_000.0).unwrap();
        // Hierarchy always crosses the campus with fewer messages.
        for r in &rows {
            assert!(r.hier_top_msgs < r.flat_top_msgs, "{r:?}");
        }
        // The overhead multiple over the g·n ideal falls as n grows —
        // the barriers and the extra super²-step amortize (§4.3).
        assert!(rows[0].overhead() > rows[1].overhead());
        assert!(rows[1].overhead() > rows[2].overhead());
    }

    #[test]
    fn scoped_barriers_beat_global_barriers_for_cluster_local_work() {
        let rows = barrier_scope_ablation(&[1, 8], 40_000.0).unwrap();
        for r in &rows {
            assert!(
                r.scoped < r.global,
                "cluster-local sync must win for cluster-local work: {r:?}"
            );
        }
        // And the gap grows with the number of supersteps (each global
        // step pays L_{2,0}).
        let gap = |r: &BarrierAblationRow| r.global - r.scoped;
        assert!(gap(&rows[1]) > gap(&rows[0]) * 4.0);
    }

    #[test]
    fn evaluator_and_closed_forms_agree() {
        for (closed, evaluated) in model_evaluator_agreement(8, 100).unwrap() {
            assert!(
                (closed - evaluated).abs() / closed < 0.01,
                "closed {closed} vs evaluated {evaluated}"
            );
        }
    }

    #[test]
    fn model_accuracy_is_stable_and_ranks_correctly() {
        let rows = model_accuracy(8, 200).unwrap();
        for r in &rows {
            assert!(
                r.ratio() > 0.5 && r.ratio() < 5.0,
                "{}: ratio {}",
                r.op,
                r.ratio()
            );
        }
        // The model must rank one- vs two-phase the same way the
        // simulator does.
        let one = rows.iter().find(|r| r.op.contains("one-phase")).unwrap();
        let two = rows.iter().find(|r| r.op.contains("two-phase")).unwrap();
        assert_eq!(
            one.predicted < two.predicted,
            one.simulated < two.simulated,
            "model preserves the design ranking"
        );
    }
}
