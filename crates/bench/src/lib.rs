//! # hbsp-bench — the paper's experiments, regenerated
//!
//! Section 5 of the paper evaluates the HBSP^1 collectives on a
//! non-dedicated cluster of ten SUN and SGI workstations (100 Mbit/s
//! Ethernet), ranking processors with BYTEmark and reporting
//! *improvement factors* over 100–1000 KB inputs. This crate rebuilds
//! that evaluation on the simulated testbed:
//!
//! * [`mod@testbed`] — the ten-machine simulated cluster, ranked by the
//!   `bytemark` suite, plus HBSP^2 variants for the hierarchical
//!   analyses;
//! * [`experiments`] — drivers for every figure/table:
//!   E1/E2 (Figure 3a/3b — gather), E3/E4 (Figure 4a/4b — broadcast),
//!   E5 (Table 1 parameters), E6/E7 (§4.4 one- vs two-phase
//!   crossovers), E8 (§4.3 HBSP^2 amortization), E9 (cost-model
//!   accuracy);
//! * [`figures`] — plain-text table/series rendering for the binaries.
//!
//! Each experiment is also wrapped in a criterion bench (`benches/`)
//! and a standalone binary (`src/bin/`) that prints the regenerated
//! figure.

#![forbid(unsafe_code)]

pub mod experiments;
pub mod figures;
pub mod jobfile;
pub mod testbed;

pub use experiments::{
    barrier_scope_ablation, broadcast_crossover, hbsp2_amortization, hbsp2_phase_study,
    model_accuracy, AccuracyRow, AmortizationRow, CrossoverRow, Hbsp2PhaseRow,
};
pub use experiments::{
    broadcast_balance_improvement, broadcast_root_improvement, gather_balance_improvement,
    gather_comm_aware_improvement, gather_root_improvement, FigurePoint,
};
pub use testbed::{
    hbsp2_testbed, input_kb, items_for_kb, testbed, ucf_profiles, PAPER_SIZES_KB, TESTBED_PS,
};
