//! Multi-tenant job scheduler for HBSP^k machines: a DAG of collectives
//! (and custom programs) on one shared machine tree.
//!
//! The layers below this crate answer "how does *one* program run on
//! *one* machine": `hbsp-collectives` lowers and prices a collective,
//! `hbsplib`'s [`Executor`] drives it on either engine. This crate adds
//! the tenancy axis the paper's campus scenario implies — many users
//! share the machine tree, each holding a *sub-tree* of it:
//!
//! 1. **Submission.** Users [`Scheduler::submit`] [`Job`]s: a
//!    [`CollectiveKind`] plus size hint (auto-tuned per placement), or a
//!    pre-lowered [`JobWork::Custom`] schedule. `blocked_by` edges form
//!    a DAG; fork-join is the core topology.
//! 2. **Carving.** For each ready job the scheduler probes every
//!    sub-tree of the shared machine via [`MachineTree::carve`] — the
//!    exact renormalization `degrade` uses (unit-normalized r, `g`
//!    absorbing the factor, coordinator-fastest re-election) — and
//!    prices the job there with `best_plan` / [`predict()`]. The job
//!    claims the cheapest adequate sub-tree whose leaves are still
//!    free; claims within a batch are leaf-disjoint by construction and
//!    re-checked with [`hbsp_check::verify_claims`].
//! 3. **Batched admission.** All claims of a round merge into *one*
//!    program on the shared tree (the `merge` module documents the
//!    shared-barrier containment argument): per superstep one shared
//!    barrier at the maximum claimed level, so co-scheduled tenants
//!    amortize synchronization instead of paying it serially. A round
//!    costs the *max* of its members, not the sum — the whole point of
//!    sharing the tree.
//! 4. **Draining.** Rounds repeat until the DAG is drained; the typed
//!    [`SchedReport`] carries per-job placements, predicted-vs-observed
//!    costs ([`hbsp_obs::DriftReport`] per batch), occupancy spans and
//!    the `hbsp_jobs_*` metric family.
//!
//! Determinism: job input data is generated from a splitmix-seeded
//! stream of the job's id, and both engines agree on virtual time, so a
//! job graph replays **bit-identically** on the [`Engine::Simulator`]
//! and [`Engine::Threads`], batched or serial.

pub mod job;
mod lower;
mod merge;
pub mod report;

pub use job::{Job, JobId, JobWork};
pub use report::{BatchReport, JobReport, SchedError, SchedReport};

/// Re-exported so job graphs can be described without importing
/// `hbsp_collectives` directly.
pub use hbsp_collectives::CollectiveKind;

use crate::lower::{lower_on, LoweredJob};
use hbsp_check::{verify_claims, verify_dag};
use hbsp_collectives::reduce::ReduceOp;
use hbsp_collectives::schedule::ScheduleState;
use hbsp_collectives::tune::best_plan;
use hbsp_collectives::{predict, ScheduleProgram};
use hbsp_core::{MachineTree, NodeIdx, ProcId};
use hbsp_obs::{
    CausalKind, CausalTree, DriftReport, JobMetrics, JobSpan, ObsEvent, PostmortemBundle, Probe,
    Recorder,
};
use hbsp_sim::FaultPlan;
use hbsplib::Executor;
use std::collections::HashMap;
use std::sync::Arc;

/// Which engine drains the graph. Virtual-time outcomes are
/// bit-identical across the two; threads additionally reports wall
/// durations to any probe.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Engine {
    /// The event-driven simulator.
    #[default]
    Simulator,
    /// The threaded runtime (one OS thread per processor).
    Threads,
}

/// Knobs for one [`Scheduler::run`].
#[derive(Debug, Clone, Copy, Default)]
pub struct RunOptions {
    /// Engine choice.
    pub engine: Engine,
    /// Admit one job per round instead of batching compatible ready
    /// jobs. Same placements, same per-job results — only the barrier
    /// sharing differs, which is what makes this the control arm of the
    /// batching experiment.
    pub serial: bool,
    /// Closed-loop adaptation threshold. When set, the scheduler
    /// prices and lowers on a *belief* copy of the machine; after any
    /// batch whose mean absolute per-step drift exceeds the threshold
    /// it re-calibrates the belief from that batch's telemetry
    /// ([`hbsplib::recalibrated`]), clears the price cache, and
    /// re-places the remaining jobs on the updated belief. `None`
    /// (default) is the open-loop scheduler.
    pub adapt: Option<f64>,
}

/// A sub-tree of the shared machine a job may claim.
struct Candidate {
    idx: NodeIdx,
    /// Global leaf ranks under `idx`, ascending.
    leaves: Vec<ProcId>,
}

/// The multi-tenant scheduler: owns the shared [`MachineTree`] and the
/// submitted job graph; [`Scheduler::run`] drains it.
#[derive(Debug)]
pub struct Scheduler {
    tree: Arc<MachineTree>,
    jobs: Vec<Job>,
    faults: FaultPlan,
}

impl Scheduler {
    /// A scheduler owning `tree` with an empty job graph.
    pub fn new(tree: Arc<MachineTree>) -> Scheduler {
        Scheduler {
            tree,
            jobs: Vec::new(),
            faults: FaultPlan::new(),
        }
    }

    /// Inject a fault plan into every admitted batch program. Engine
    /// step indices restart at 0 for each batch, so the plan describes
    /// the *shape* of interference each round sees (e.g. a persistent
    /// straggler), not one global timeline.
    pub fn with_faults(mut self, faults: FaultPlan) -> Self {
        self.faults = faults;
        self
    }

    /// The shared machine.
    pub fn tree(&self) -> &Arc<MachineTree> {
        &self.tree
    }

    /// Add a job to the graph. Ids are dense and ordered by submission;
    /// `blocked_by` edges may reference any id, validation happens at
    /// [`Scheduler::run`].
    pub fn submit(&mut self, job: Job) -> JobId {
        self.jobs.push(job);
        JobId(self.jobs.len() - 1)
    }

    /// The submitted jobs, in id order.
    pub fn jobs(&self) -> &[Job] {
        &self.jobs
    }

    /// Drain the job graph: repeatedly place every ready job on the
    /// cheapest adequate free sub-tree, merge the round's claims into
    /// one shared-barrier program, and execute it on the chosen engine.
    ///
    /// Virtual time is the scheduler's clock: each round advances it by
    /// the round's [`hbsplib::ExecOutcome::total_time`], and the
    /// report's `total_time` is the makespan of the whole graph.
    pub fn run(&self, opts: &RunOptions) -> Result<SchedReport, SchedError> {
        let n = self.jobs.len();
        let tree = &self.tree;
        let p = tree.num_procs();

        // Graph validation up front: nothing runs on a broken DAG.
        let edges: Vec<(usize, usize)> = self
            .jobs
            .iter()
            .enumerate()
            .flat_map(|(i, j)| j.blocked_by.iter().map(move |d| (i, d.0)))
            .collect();
        let violations = verify_dag(n, &edges);
        if !violations.is_empty() {
            return Err(SchedError::InvalidGraph(violations));
        }
        for (i, job) in self.jobs.iter().enumerate() {
            if let JobWork::Custom { schedule, .. } = &job.work {
                let steps = &schedule.steps;
                let body_ok = steps
                    .iter()
                    .enumerate()
                    .all(|(s, st)| (s + 1 == steps.len()) == st.scope.is_none());
                if steps.is_empty() || !body_ok {
                    return Err(SchedError::MalformedCustom { job: JobId(i) });
                }
            }
        }

        // Every node of the shared tree is a placement candidate; the
        // leaf sets are collected once through a reused scratch buffer
        // (`subtree_leaves_into`), so the admission loop below never
        // walks the tree again.
        let mut scratch = Vec::new();
        let candidates: Vec<Candidate> = tree
            .nodes()
            .map(|node| {
                let idx = node.idx();
                tree.subtree_leaves_into(idx, &mut scratch);
                Candidate {
                    idx,
                    leaves: scratch
                        .iter()
                        .map(|&l| tree.node(l).proc_id().expect("subtree leaf is a proc"))
                        .collect(),
                }
            })
            .collect();

        let recorder = Arc::new(Recorder::new());
        let exec = match opts.engine {
            Engine::Simulator => Executor::simulator(tree.clone()),
            Engine::Threads => Executor::threads(tree.clone()),
        }
        .faults(self.faults.clone())
        .probe(recorder.clone());
        let session = exec.session();
        let metrics = JobMetrics::new();
        metrics.submitted(n as u64);

        let mut done = vec![false; n];
        let mut num_done = 0usize;
        let mut clock = 0.0f64;
        let mut job_reports: Vec<Option<JobReport>> = (0..n).map(|_| None).collect();
        let mut batches: Vec<BatchReport> = Vec::new();
        let mut spans = Vec::new();
        let mut causal = CausalTree::new();
        let engine_name = match opts.engine {
            Engine::Simulator => "sim",
            Engine::Threads => "threads",
        };
        // Placement prices are pure functions of (collective, size,
        // node) — or (job, node) for custom work — so a graph of
        // repeated shapes prices each shape once.
        let mut prices: HashMap<(u8, u64, u32), Option<f64>> = HashMap::new();
        let mut recorded = 0usize;
        let mut recorded_events = 0usize;
        let max_batch = if opts.serial { 1 } else { usize::MAX };
        // Closed loop: placement prices and lowerings come from the
        // belief tree; execution stays on the physical tree (same
        // shape and pids, so lowered programs transfer). Open-loop
        // runs never move the belief, so both paths price identically.
        let mut belief = tree.clone();
        let mut replans = 0usize;
        // Same trimming budget the adaptive executor defaults to.
        let adapt_trim = hbsplib::AdaptiveConfig::default().calibration_trim;

        while num_done < n {
            let ready: Vec<usize> = (0..n)
                .filter(|&i| !done[i] && self.jobs[i].blocked_by.iter().all(|d| done[d.0]))
                .collect();
            debug_assert!(!ready.is_empty(), "acyclic graph always has a ready job");

            // Claim phase: ready jobs in submission order each take the
            // cheapest adequate sub-tree whose leaves are still free.
            let mut free = vec![true; p];
            let mut batch_op: Option<ReduceOp> = None;
            let mut lowered: Vec<LoweredJob> = Vec::new();
            let mut claims: Vec<(usize, NodeIdx)> = Vec::new();
            for &i in &ready {
                if lowered.len() >= max_batch {
                    break;
                }
                let job = &self.jobs[i];
                // One ReduceOp per merged program: defer jobs that would
                // impose a different operator to a later round.
                if let (Some(a), Some(b)) = (batch_op, job.op()) {
                    if a != b {
                        continue;
                    }
                }
                let mut best: Option<(f64, usize, u32)> = None;
                let mut best_cand: Option<&Candidate> = None;
                for cand in &candidates {
                    let adequate = match job.exact_procs() {
                        None => cand.leaves.len() >= job.min_procs,
                        Some(k) => cand.leaves.len() == k,
                    };
                    if !adequate || !cand.leaves.iter().all(|pid| free[pid.rank()]) {
                        continue;
                    }
                    let key = price_key(job, i, cand.idx);
                    let price = *prices
                        .entry(key)
                        .or_insert_with(|| price_on(&belief, job, cand.idx));
                    let Some(cost) = price else { continue };
                    let entry = (cost, cand.leaves.len(), cand.idx.index() as u32);
                    let beats = match best {
                        None => true,
                        Some(b) => {
                            entry
                                .0
                                .total_cmp(&b.0)
                                .then_with(|| entry.1.cmp(&b.1).then(entry.2.cmp(&b.2)))
                                == std::cmp::Ordering::Less
                        }
                    };
                    if beats {
                        best = Some(entry);
                        best_cand = Some(cand);
                    }
                }
                match best_cand {
                    Some(cand) => {
                        let lj = lower_on(belief.carve(cand.idx), job, i, cand.idx)?;
                        for pid in &cand.leaves {
                            free[pid.rank()] = false;
                        }
                        if batch_op.is_none() {
                            batch_op = job.op();
                        }
                        claims.push((i, cand.idx));
                        lowered.push(lj);
                    }
                    // An empty batch means every leaf is free and no op
                    // constraint is active — if the job still fits
                    // nowhere, no future round can do better.
                    None if lowered.is_empty() => {
                        return Err(SchedError::Unplaceable {
                            job: JobId(i),
                            name: job.name.clone(),
                            needed: job.exact_procs().unwrap_or(job.min_procs),
                            available: p,
                        });
                    }
                    None => {}
                }
            }

            // Defense in depth: the claim loop's free-leaf bookkeeping
            // should make this vacuous; a violation here is a scheduler
            // bug and must not reach tenant data.
            let overlaps = verify_claims(tree, &claims);
            if !overlaps.is_empty() {
                return Err(SchedError::ClaimOverlap(overlaps));
            }

            let batch_index = batches.len();
            let merged = merge::merge(tree, &lowered);
            let schedule = Arc::new(merged.schedule);
            // Predictions come from the belief: batch drift then
            // measures how wrong the *current* belief is, which is
            // exactly the statistic the adaptive loop thresholds.
            let predicted = predict(&belief, &schedule);
            let prog = ScheduleProgram::new(schedule, Arc::new(merged.init), merged.op);
            // On an engine failure, snapshot forensics before
            // surfacing the typed error: the dying batch's telemetry,
            // the batch log so far, and the causal span tree with the
            // partial batch appended (ending at its last retained
            // release).
            let (outcome, states) = match session.submit(&prog) {
                Ok(ok) => ok,
                Err(e) => {
                    let all_steps = recorder.steps();
                    let fail_steps = all_steps[recorded.min(all_steps.len())..].to_vec();
                    let fail_end = clock
                        + fail_steps
                            .iter()
                            .flat_map(|s| s.releases().iter().copied())
                            .fold(0.0f64, f64::max);
                    let b = causal.push(
                        CausalKind::Batch,
                        format!("batch {batch_index}"),
                        None,
                        clock,
                        fail_end,
                    );
                    for l in &lowered {
                        causal.push(
                            CausalKind::Job,
                            self.jobs[l.job].name.clone(),
                            Some(b),
                            clock,
                            fail_end,
                        );
                    }
                    causal.push_steps(Some(b), &fail_steps, clock);
                    let mut log = String::new();
                    for br in &batches {
                        use std::fmt::Write as _;
                        let _ = writeln!(
                            log,
                            "batch={} jobs={} predicted={} observed={} replanned={}",
                            br.index,
                            br.jobs.len(),
                            br.predicted,
                            br.observed(),
                            br.replanned
                        );
                    }
                    let all_events = recorder.events();
                    let bundle = PostmortemBundle {
                        reason: e.to_string(),
                        engine: engine_name.to_string(),
                        step: fail_steps.last().map(|s| s.step).unwrap_or(0),
                        machine: tree.to_string(),
                        fault_plan: self.faults.render(),
                        steps: fail_steps,
                        events: all_events[recorded_events.min(all_events.len())..].to_vec(),
                        decision_log: log,
                        metrics: metrics.snapshot(),
                        spans: causal.into_spans(),
                    };
                    return Err(SchedError::Exec(e, Some(Box::new(bundle))));
                }
            };
            let duration = outcome.total_time();
            let (start, end) = (clock, clock + duration);
            clock = end;

            let all_steps = recorder.steps();
            let all_events = recorder.events();
            let batch_steps = &all_steps[recorded..];
            let batch_events = &all_events[recorded_events..];
            let drift = DriftReport::new(batch_steps, predicted.steps()).ok();
            recorded = all_steps.len();
            recorded_events = all_events.len();

            let batch_span = causal.push(
                CausalKind::Batch,
                format!("batch {batch_index}"),
                None,
                start,
                end,
            );
            for l in &lowered {
                causal.push(
                    CausalKind::Job,
                    self.jobs[l.job].name.clone(),
                    Some(batch_span),
                    start,
                    end,
                );
            }
            causal.push_steps(Some(batch_span), batch_steps, start);

            for l in &lowered {
                let i = l.job;
                done[i] = true;
                num_done += 1;
                let job_states: Vec<ScheduleState> = l
                    .carved
                    .leaves
                    .iter()
                    .map(|pid| states[pid.rank()].clone())
                    .collect();
                if job_states.iter().any(|s| s.error().is_some()) {
                    metrics.failed();
                } else {
                    metrics.completed(duration);
                }
                spans.push(JobSpan {
                    job: i,
                    name: self.jobs[i].name.clone(),
                    batch: batch_index,
                    start,
                    end,
                    leaves: l
                        .carved
                        .leaves
                        .iter()
                        .map(|pid| pid.rank() as u32)
                        .collect(),
                });
                job_reports[i] = Some(JobReport {
                    id: JobId(i),
                    name: self.jobs[i].name.clone(),
                    batch: batch_index,
                    node: l.node,
                    machine: tree.node(l.node).machine_id(),
                    leaves: l.carved.leaves.clone(),
                    root: l.root.map(|r| l.carved.leaves[r.rank()]),
                    predicted: l.predicted,
                    start,
                    end,
                    states: job_states,
                });
            }
            metrics.batch();

            // Detect → Replan: fold a drifty batch's telemetry into
            // the belief so every remaining job is re-priced and
            // re-placed on it. A structural mismatch (the program did
            // not execute the schedule the belief priced) is infinite
            // drift. The price cache keys say nothing about the
            // belief, so it must be dropped wholesale.
            let mut replanned = false;
            if let Some(threshold) = opts.adapt {
                let batch_drift = drift
                    .as_ref()
                    .map(DriftReport::mean_abs_rel_error)
                    .unwrap_or(f64::INFINITY);
                if num_done < n && batch_drift > threshold {
                    if let Some(updated) =
                        hbsplib::recalibrated(&belief, batch_steps, batch_events, adapt_trim)
                    {
                        belief = updated;
                        prices.clear();
                        replans += 1;
                        replanned = true;
                        if recorder.enabled() {
                            recorder.on_event(&ObsEvent::Replan {
                                segment: batch_index,
                                step: recorded,
                                drift: batch_drift,
                                strategy: "sched/re-place",
                                predicted: predicted.total(),
                            });
                        }
                    }
                }
            }

            batches.push(BatchReport {
                index: batch_index,
                jobs: lowered.iter().map(|l| JobId(l.job)).collect(),
                start,
                end,
                predicted: predicted.total(),
                drift,
                replanned,
            });
        }

        Ok(SchedReport {
            jobs: job_reports
                .into_iter()
                .map(|r| r.expect("every job ran"))
                .collect(),
            batches,
            total_time: clock,
            spans,
            metrics: metrics.snapshot(),
            replans,
            causal: causal.into_spans(),
        })
    }
}

/// Price cache key: collective jobs share entries by shape, custom jobs
/// get per-job entries (discriminant 255 cannot collide with the
/// `CollectiveKind` discriminants).
fn price_key(job: &Job, id: usize, idx: NodeIdx) -> (u8, u64, u32) {
    match &job.work {
        JobWork::Collective { kind, n } => (*kind as u8, *n, idx.index() as u32),
        JobWork::Custom { .. } => (255, id as u64, idx.index() as u32),
    }
}

/// Price `job` on the machine carved at `idx`, or `None` if the carved
/// machine cannot host it (no plan, or a custom schedule's scopes
/// exceed the carved height).
fn price_on(tree: &MachineTree, job: &Job, idx: NodeIdx) -> Option<f64> {
    let carved = tree.carve(idx);
    match &job.work {
        JobWork::Collective { kind, n } => best_plan(&carved.tree, *kind, *n).ok().map(|p| p.cost),
        JobWork::Custom { schedule, .. } => {
            let max_scope = schedule
                .steps
                .iter()
                .filter_map(|s| s.scope.map(|sc| sc.level()))
                .max()
                .unwrap_or(0);
            if carved.tree.height() < max_scope {
                return None;
            }
            Some(predict(&carved.tree, schedule).total())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hbsp_collectives::schedule::ProcInit;
    use hbsp_collectives::{CommSchedule, Role, ScheduleStep, Transfer, UnitId};
    use hbsp_core::{SyncScope, TreeBuilder};

    /// Two unequal LANs under a campus root, 4 processors.
    fn campus_like() -> Arc<MachineTree> {
        Arc::new(
            TreeBuilder::two_level(
                1.0,
                50.0,
                &[
                    (10.0, vec![(1.0, 1.0), (2.0, 0.5)]),
                    (10.0, vec![(1.5, 0.8), (3.0, 0.4)]),
                ],
            )
            .unwrap(),
        )
    }

    fn run(sched: &Scheduler, engine: Engine, serial: bool) -> SchedReport {
        sched
            .run(&RunOptions {
                engine,
                serial,
                adapt: None,
            })
            .expect("graph drains")
    }

    #[test]
    fn single_job_is_bit_identical_across_engines() {
        let mut s = Scheduler::new(campus_like());
        s.submit(Job::collective("g", CollectiveKind::Gather, 16).with_seed(7));
        let sim = run(&s, Engine::Simulator, false);
        let thr = run(&s, Engine::Threads, false);
        assert!(sim.clean() && thr.clean());
        assert_eq!(sim.jobs[0].states, thr.jobs[0].states);
        assert_eq!(sim.jobs[0].leaves, thr.jobs[0].leaves);
        assert_eq!(sim.total_time, thr.total_time);
        assert_eq!(sim.jobs[0].root, thr.jobs[0].root);
    }

    #[test]
    fn fork_join_runs_dependencies_in_earlier_batches() {
        let mut s = Scheduler::new(campus_like());
        let src = s.submit(Job::collective("fork", CollectiveKind::Broadcast, 8));
        let a = s.submit(Job::collective("a", CollectiveKind::Gather, 8).after(&[src]));
        let b = s.submit(Job::collective("b", CollectiveKind::Gather, 8).after(&[src]));
        let join = s.submit(Job::collective("join", CollectiveKind::Allgather, 8).after(&[a, b]));
        let rep = run(&s, Engine::Simulator, false);
        assert!(rep.clean());
        let batch = |id: JobId| rep.jobs[id.0].batch;
        assert!(batch(src) < batch(a));
        assert!(batch(src) < batch(b));
        assert!(batch(a) < batch(join));
        assert!(batch(b) < batch(join));
        // The two independent middle jobs share a round.
        assert_eq!(batch(a), batch(b));
        assert_eq!(rep.batches.len(), 3);
    }

    #[test]
    fn batching_beats_serial_and_preserves_results() {
        let mut s = Scheduler::new(campus_like());
        for i in 0..4 {
            s.submit(Job::collective(format!("g{i}"), CollectiveKind::Gather, 32).with_seed(i));
        }
        let batched = run(&s, Engine::Simulator, false);
        let serial = run(&s, Engine::Simulator, true);
        assert!(batched.clean() && serial.clean());
        assert_eq!(serial.batches.len(), 4);
        assert!(batched.batches.len() < serial.batches.len());
        assert!(
            batched.total_time < serial.total_time,
            "batched {} vs serial {}",
            batched.total_time,
            serial.total_time
        );
        // Admission policy changes the clock, not the answers.
        for (b, s) in batched.jobs.iter().zip(&serial.jobs) {
            assert_eq!(b.states, s.states);
        }
    }

    #[test]
    fn concurrent_claims_are_leaf_disjoint() {
        let mut s = Scheduler::new(campus_like());
        for i in 0..6 {
            s.submit(Job::collective(format!("g{i}"), CollectiveKind::Gather, 8).with_seed(i));
        }
        let rep = run(&s, Engine::Simulator, false);
        assert!(rep.clean());
        for batch in &rep.batches {
            let mut seen = std::collections::HashSet::new();
            for &id in &batch.jobs {
                for leaf in &rep.jobs[id.0].leaves {
                    assert!(seen.insert(*leaf), "leaf {leaf} claimed twice in a batch");
                }
            }
        }
    }

    /// A 2-processor hand-lowered program: rank 0 ships its unit to
    /// rank 1.
    fn ship_right(op: Option<ReduceOp>) -> Job {
        let uid = UnitId::new(0, 4);
        let mut sched = CommSchedule::new();
        let mut step = ScheduleStep::at(SyncScope::Level(1));
        step.transfers.push(Transfer {
            src: ProcId(0),
            dst: ProcId(1),
            words: 4,
            role: Role::Piece(uid),
        });
        sched.push(step);
        sched.push(ScheduleStep::drain());
        let mut init = vec![ProcInit::default(), ProcInit::default()];
        init[0].units.push((uid, vec![1, 2, 3, 4]));
        Job::custom("ship", sched, init, op)
    }

    #[test]
    fn custom_jobs_merge_and_run() {
        let mut s = Scheduler::new(campus_like());
        s.submit(ship_right(None));
        s.submit(Job::collective("g", CollectiveKind::Gather, 8));
        let rep = run(&s, Engine::Simulator, false);
        assert!(rep.clean());
        assert_eq!(rep.batches.len(), 1, "custom and collective share a round");
        let ship = &rep.jobs[0];
        assert_eq!(ship.leaves.len(), 2);
        assert_eq!(ship.states[1].unit(UnitId::new(0, 4)), vec![1, 2, 3, 4]);
    }

    #[test]
    fn conflicting_reduce_ops_defer_to_a_later_batch() {
        let mut s = Scheduler::new(campus_like());
        let r = s.submit(Job::collective("sum", CollectiveKind::Reduce, 8));
        let m = s.submit(ship_right(Some(ReduceOp::Min)));
        let rep = run(&s, Engine::Simulator, false);
        assert!(rep.clean());
        assert_ne!(
            rep.jobs[r.0].batch, rep.jobs[m.0].batch,
            "jobs with different reduce ops must not share a merged program"
        );
    }

    #[test]
    fn oversized_job_is_unplaceable() {
        let mut s = Scheduler::new(campus_like());
        s.submit(Job::collective("big", CollectiveKind::Gather, 8).with_min_procs(64));
        match s.run(&RunOptions::default()) {
            Err(SchedError::Unplaceable {
                needed, available, ..
            }) => {
                assert_eq!(needed, 64);
                assert_eq!(available, 4);
            }
            other => panic!("expected Unplaceable, got {other:?}"),
        }
    }

    #[test]
    fn cyclic_graph_is_rejected() {
        let mut s = Scheduler::new(campus_like());
        let a = s.submit(Job::collective("a", CollectiveKind::Gather, 8));
        s.submit(Job::collective("b", CollectiveKind::Gather, 8).after(&[a, JobId(1)]));
        match s.run(&RunOptions::default()) {
            Err(SchedError::InvalidGraph(v)) => assert!(!v.is_empty()),
            other => panic!("expected InvalidGraph, got {other:?}"),
        }
    }

    /// Closed-loop re-placement: a persistent straggler on P0 makes
    /// the initially-cheapest sub-tree (the LAN holding the fastest
    /// processors) the wrong home for every broadcast in a chain. The
    /// open-loop scheduler keeps placing there; the adaptive scheduler
    /// re-calibrates after the first drifty batch, re-prices on the
    /// belief, and moves later jobs off the straggler.
    #[test]
    fn adaptive_rescheduling_moves_later_jobs_off_a_straggler() {
        let build =
            || {
                let mut s = Scheduler::new(campus_like())
                    .with_faults(FaultPlan::new().straggle_ramp(ProcId(0), 0, 4, 12.0, 0.0));
                let mut prev: Option<JobId> = None;
                for i in 0..4 {
                    let mut job = Job::collective(format!("b{i}"), CollectiveKind::Broadcast, 256)
                        .with_seed(i);
                    if let Some(p) = prev {
                        job = job.after(&[p]);
                    }
                    prev = Some(s.submit(job));
                }
                s
            };
        let drain = |s: &Scheduler, engine: Engine, adapt: Option<f64>| {
            s.run(&RunOptions {
                engine,
                serial: false,
                adapt,
            })
            .expect("graph drains")
        };
        let s = build();
        let open = drain(&s, Engine::Simulator, None);
        let adapt = drain(&s, Engine::Simulator, Some(0.5));
        assert!(open.clean() && adapt.clean());
        assert_eq!(open.replans, 0);
        assert!(open.batches.iter().all(|b| !b.replanned));
        assert!(adapt.replans > 0, "report:\n{}", adapt.render_text());
        assert!(adapt.batches.iter().any(|b| b.replanned));
        assert!(
            adapt.total_time < open.total_time,
            "adaptive {} !< open-loop {}\n{}",
            adapt.total_time,
            open.total_time,
            adapt.render_text()
        );
        // The belief shift actually moved later work: some job after
        // the first re-plan occupies different leaves (or a different
        // root) than its open-loop twin.
        let moved = open
            .jobs
            .iter()
            .zip(&adapt.jobs)
            .any(|(o, a)| a.batch > 0 && (o.leaves != a.leaves || o.root != a.root));
        assert!(moved, "no job moved:\n{}", adapt.render_text());
        // The closed loop is engine-agnostic: bit-identical makespan
        // and the same re-plan count on the threaded runtime.
        let thr = drain(&s, Engine::Threads, Some(0.5));
        assert_eq!(thr.total_time, adapt.total_time);
        assert_eq!(thr.replans, adapt.replans);
        for (a, b) in adapt.jobs.iter().zip(&thr.jobs) {
            assert_eq!(a.leaves, b.leaves);
            assert_eq!(a.root, b.root);
            assert_eq!(a.states, b.states);
        }
    }

    #[test]
    fn causal_tree_nests_batches_jobs_and_steps() {
        let mut s = Scheduler::new(campus_like());
        let a = s.submit(Job::collective("a", CollectiveKind::Gather, 16));
        s.submit(Job::collective("b", CollectiveKind::Scan, 16).after(&[a]));
        let sim = run(&s, Engine::Simulator, false);
        let thr = run(&s, Engine::Threads, false);
        hbsp_obs::check_causal_spans(&sim.causal).unwrap();
        assert_eq!(sim.causal, thr.causal, "causal tree is engine-agnostic");
        let count = |k| sim.causal.iter().filter(|c| c.kind == k).count();
        assert_eq!(count(CausalKind::Batch), sim.batches.len());
        assert_eq!(count(CausalKind::Job), sim.jobs.len());
        assert!(count(CausalKind::Superstep) > 0);
        // Batch roots tile the makespan; everything else nests.
        assert!(sim
            .causal
            .iter()
            .all(|c| (c.kind == CausalKind::Batch) == c.parent.is_none()));
        hbsp_obs::validate_chrome_trace(&sim.chrome_trace()).unwrap();
    }

    #[test]
    fn engine_failure_attaches_a_postmortem_bundle() {
        let mut s = Scheduler::new(campus_like()).with_faults(FaultPlan::new().crash(ProcId(0), 0));
        let a = s.submit(Job::collective("a", CollectiveKind::Gather, 16));
        s.submit(Job::collective("b", CollectiveKind::Scan, 16).after(&[a]));
        let err = s.run(&RunOptions::default()).unwrap_err();
        let bundle = match &err {
            SchedError::Exec(_, Some(b)) => b,
            other => panic!("expected Exec with bundle, got {other:?}"),
        };
        assert_eq!(err.bundle().unwrap(), &**bundle);
        bundle.validate().unwrap();
        assert_eq!(bundle.engine, "sim");
        assert!(bundle.fault_plan.contains("crash"), "{}", bundle.fault_plan);
        // The dying batch is spanned even though it never completed.
        assert!(bundle
            .spans
            .iter()
            .any(|c| c.kind == hbsp_obs::CausalKind::Batch));
        let reparsed = hbsp_obs::PostmortemBundle::parse(&bundle.to_jsonl()).unwrap();
        assert_eq!(&reparsed, &**bundle);
    }

    #[test]
    fn report_carries_spans_metrics_and_drift() {
        let mut s = Scheduler::new(campus_like());
        let a = s.submit(Job::collective("a", CollectiveKind::Gather, 16));
        s.submit(Job::collective("b", CollectiveKind::Scan, 16).after(&[a]));
        let rep = run(&s, Engine::Simulator, false);
        assert!(rep.clean());
        assert_eq!(rep.spans.len(), 2);
        assert!(rep.spans.iter().all(|sp| sp.duration() > 0.0));
        let completed = rep
            .metrics
            .iter()
            .find(|m| m.name == "hbsp_jobs_completed_total")
            .expect("jobs metric present");
        assert!(matches!(completed.value, hbsp_obs::MetricValue::Counter(2)));
        assert!(rep.batches.iter().all(|b| b.predicted > 0.0));
        let trace = hbsp_obs::jobs_chrome_trace(&rep.spans);
        hbsp_obs::validate_chrome_trace(&trace).expect("job trace validates");
        assert!(!rep.render_text().is_empty());
    }
}
