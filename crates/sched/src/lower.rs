//! Lowering a placed job onto its carved machine: pick the cheapest
//! plan, generate the job's deterministic input data, and build the
//! initial holdings the collective's schedule expects.
//!
//! Data is produced by a splitmix-style generator seeded from the job's
//! seed and id, so a job graph replays bit-identically on either engine
//! and across serial/batched admission.

use crate::job::{Job, JobId, JobWork};
use crate::report::SchedError;
use hbsp_collectives::predict;
use hbsp_collectives::reduce::ReduceOp;
use hbsp_collectives::schedule::{share_inits, ProcInit};
use hbsp_collectives::tune::best_plan;
use hbsp_collectives::{CollectiveKind, CommSchedule, UnitId};
use hbsp_core::{Carved, NodeIdx, ProcId};

/// One job lowered for the sub-tree it claimed this batch. Everything
/// here is in carved-local ranks; `carved.leaves` maps back to the
/// shared tree.
pub(crate) struct LoweredJob {
    /// Index of the job in the scheduler's submission order.
    pub job: usize,
    /// The claimed node of the shared tree.
    pub node: NodeIdx,
    /// The carved, renormalized machine of that node.
    pub carved: Carved,
    /// The job's schedule in carved-local ranks.
    pub schedule: CommSchedule,
    /// Initial holdings per carved-local rank.
    pub init: Vec<ProcInit>,
    /// Reduction operator, if the schedule sends partials.
    pub op: Option<ReduceOp>,
    /// Predicted cost of the schedule on the carved machine alone.
    pub predicted: f64,
    /// Carved-local root/result rank, for rooted collectives.
    pub root: Option<ProcId>,
}

/// Mix the job id into the user seed so default-seeded jobs still get
/// distinct data (splitmix64 finalizer).
pub(crate) fn job_seed(seed: u64, id: usize) -> u64 {
    let mut z = seed ^ (id as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// `len` deterministic words from `seed`.
pub(crate) fn words(seed: u64, len: usize) -> Vec<u32> {
    let mut state = seed | 1;
    (0..len)
        .map(|_| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 32) as u32
        })
        .collect()
}

/// Lower `job` (with submission index `id`) onto the machine carved at
/// `node`. The caller has already checked the sub-tree is adequate.
pub(crate) fn lower_on(
    carved: Carved,
    job: &Job,
    id: usize,
    node: NodeIdx,
) -> Result<LoweredJob, SchedError> {
    let seed = job_seed(job.seed, id);
    match &job.work {
        JobWork::Collective { kind, n } => {
            let plan =
                best_plan(&carved.tree, *kind, *n).map_err(|e| SchedError::Tune(JobId(id), e))?;
            let p = carved.tree.num_procs();
            let n_items = *n as usize;
            let mut init = vec![ProcInit::default(); p];
            let mut op = None;
            match kind {
                CollectiveKind::Gather | CollectiveKind::Allgather => {
                    init = share_inits(&carved.tree, &words(seed, n_items), plan.workload);
                }
                CollectiveKind::Broadcast | CollectiveKind::Scatter => {
                    let root = plan.root.expect("rooted collective resolves a root");
                    init[root.rank()]
                        .units
                        .push((UnitId::new(0, *n as u32), words(seed, n_items)));
                }
                CollectiveKind::Alltoall => {
                    for (src, pi) in init.iter_mut().enumerate() {
                        for dst in 0..p {
                            if src == dst {
                                continue;
                            }
                            pi.units.push((
                                UnitId::new((src * p + dst) as u32, *n as u32),
                                words(seed ^ ((src * p + dst) as u64), n_items),
                            ));
                        }
                    }
                }
                CollectiveKind::Reduce | CollectiveKind::Scan => {
                    for (rank, pi) in init.iter_mut().enumerate() {
                        pi.acc = Some(words(seed ^ rank as u64, n_items));
                    }
                    op = Some(ReduceOp::Sum);
                }
            }
            Ok(LoweredJob {
                job: id,
                node,
                carved,
                predicted: plan.cost,
                root: plan.root,
                schedule: plan.schedule,
                init,
                op,
            })
        }
        JobWork::Custom { schedule, init, op } => {
            let predicted = predict(&carved.tree, schedule).total();
            Ok(LoweredJob {
                job: id,
                node,
                carved,
                schedule: (**schedule).clone(),
                init: (**init).clone(),
                op: *op,
                predicted,
                root: None,
            })
        }
    }
}
