//! Typed results of draining a job graph, and the scheduler's errors.

use crate::job::JobId;
use hbsp_check::Violation;
use hbsp_collectives::schedule::ScheduleState;
use hbsp_collectives::{DecodeError, TuneError};
use hbsp_core::{MachineId, NodeIdx, ProcId};
use hbsp_obs::metrics::MetricSample;
use hbsp_obs::{chrome_trace_with_causal, CausalSpan, DriftReport, JobSpan, PostmortemBundle};
use hbsp_sim::SimError;
use std::fmt;

/// One job's outcome: where it ran, what it cost, and its final
/// per-processor states (carved-rank order) for result extraction and
/// cross-engine comparison.
#[derive(Debug, Clone)]
pub struct JobReport {
    /// The job.
    pub id: JobId,
    /// Its submitted name.
    pub name: String,
    /// Admission batch it ran in (0-based).
    pub batch: usize,
    /// Claimed node of the shared tree.
    pub node: NodeIdx,
    /// The claim's `M_{i,j}` coordinates.
    pub machine: MachineId,
    /// Global ranks of the claimed leaves, in carved-rank order.
    pub leaves: Vec<ProcId>,
    /// Global rank of the result root, for rooted collectives.
    pub root: Option<ProcId>,
    /// Predicted cost of the job alone on its carved machine.
    pub predicted: f64,
    /// Virtual time the job's batch started.
    pub start: f64,
    /// Virtual time the job's batch finished.
    pub end: f64,
    /// Final interpreter states of the claimed leaves, carved order.
    pub states: Vec<ScheduleState>,
}

impl JobReport {
    /// Observed virtual time: the batch window the job occupied.
    pub fn observed(&self) -> f64 {
        self.end - self.start
    }

    /// First malformed payload seen by any of the job's processors.
    pub fn error(&self) -> Option<DecodeError> {
        self.states.iter().find_map(ScheduleState::error)
    }
}

/// One admission round: the jobs that shared its barriers and the
/// predicted-vs-observed cost of the merged program.
#[derive(Debug, Clone)]
pub struct BatchReport {
    /// Batch index (0-based).
    pub index: usize,
    /// Members, in admission order.
    pub jobs: Vec<JobId>,
    /// Virtual start time.
    pub start: f64,
    /// Virtual end time.
    pub end: f64,
    /// Predicted cost of the merged program on the shared tree.
    pub predicted: f64,
    /// Per-step drift of the merged program (when the engine's probe
    /// steps pair up with the prediction).
    pub drift: Option<DriftReport>,
    /// True when this batch's drift tripped the adaptive threshold and
    /// the scheduler folded its telemetry into the belief tree (later
    /// batches were re-priced and re-placed on the updated belief).
    pub replanned: bool,
}

impl BatchReport {
    /// Observed virtual time of the round.
    pub fn observed(&self) -> f64 {
        self.end - self.start
    }
}

/// The drained graph: every job's outcome, every batch, and the run's
/// job-axis telemetry.
#[derive(Debug, Clone)]
pub struct SchedReport {
    /// Per-job outcomes in job-id order.
    pub jobs: Vec<JobReport>,
    /// Admission rounds in execution order.
    pub batches: Vec<BatchReport>,
    /// Virtual makespan: the sum of round durations.
    pub total_time: f64,
    /// Per-job occupancy spans (feed [`hbsp_obs::jobs_chrome_trace`]).
    pub spans: Vec<JobSpan>,
    /// Snapshot of the `hbsp_jobs_*` metrics.
    pub metrics: Vec<MetricSample>,
    /// Closed-loop re-plans performed ([`crate::RunOptions::adapt`]);
    /// always 0 for open-loop runs.
    pub replans: usize,
    /// Causal span tree of the run: one [`hbsp_obs::CausalKind::Batch`]
    /// root per admission round containing one
    /// [`hbsp_obs::CausalKind::Job`] span per member and one
    /// [`hbsp_obs::CausalKind::Superstep`] span per merged-program
    /// step, all on the scheduler's cumulative virtual clock.
    pub causal: Vec<CausalSpan>,
}

impl SchedReport {
    /// True when every job completed without a decode error.
    pub fn clean(&self) -> bool {
        self.jobs.iter().all(|j| j.error().is_none())
    }

    /// Chrome-trace rendering of the causal span tree (batch → job →
    /// superstep); loads in Perfetto next to
    /// [`hbsp_obs::jobs_chrome_trace`]'s occupancy view.
    pub fn chrome_trace(&self) -> String {
        chrome_trace_with_causal(&[], &self.causal)
    }

    /// Human-readable run summary.
    pub fn render_text(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{} jobs in {} batches, makespan {:.0}{}",
            self.jobs.len(),
            self.batches.len(),
            self.total_time,
            if self.replans > 0 {
                format!(", {} re-plans", self.replans)
            } else {
                String::new()
            }
        );
        for b in &self.batches {
            let members: Vec<String> = b.jobs.iter().map(|j| j.0.to_string()).collect();
            let _ = writeln!(
                out,
                "  batch {}: jobs [{}]  T = {:.0} (predicted {:.0}){}",
                b.index,
                members.join(","),
                b.observed(),
                b.predicted,
                if b.replanned { "  [replanned]" } else { "" }
            );
        }
        for j in &self.jobs {
            let _ = writeln!(
                out,
                "  {}: {} on {} ({} leaves), batch {}, predicted {:.0}, window {:.0}",
                j.id,
                j.name,
                j.machine,
                j.leaves.len(),
                j.batch,
                j.predicted,
                j.observed()
            );
        }
        out
    }
}

/// Why a run could not proceed.
#[derive(Debug)]
pub enum SchedError {
    /// The `blocked_by` graph is broken (cycle, self-edge, dangling
    /// dependency) — nothing ran.
    InvalidGraph(Vec<Violation>),
    /// Internal invariant breach: a batch's claims were not
    /// leaf-disjoint. Always a scheduler bug, surfaced typed instead of
    /// corrupting tenant data.
    ClaimOverlap(Vec<Violation>),
    /// A ready job fits no sub-tree of the machine even when idle.
    Unplaceable {
        /// The job.
        job: JobId,
        /// Its name.
        name: String,
        /// Leaves it needs.
        needed: usize,
        /// Leaves the whole machine has.
        available: usize,
    },
    /// A custom job's schedule is structurally invalid (empty, or a
    /// drain step before the end).
    MalformedCustom {
        /// The job.
        job: JobId,
    },
    /// Plan selection failed for a job on its carved machine.
    Tune(JobId, TuneError),
    /// An engine rejected or failed the merged program. The attached
    /// [`PostmortemBundle`] (when the dying batch had telemetry)
    /// carries the batch's step records, events, metrics, the batch
    /// log up to the failure, and the causal span tree.
    Exec(SimError, Option<Box<PostmortemBundle>>),
}

impl SchedError {
    /// The forensics bundle captured at the failing batch, if any.
    pub fn bundle(&self) -> Option<&PostmortemBundle> {
        match self {
            SchedError::Exec(_, Some(b)) => Some(b),
            _ => None,
        }
    }
}

impl fmt::Display for SchedError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SchedError::InvalidGraph(v) => {
                write!(f, "invalid job graph ({} violations):", v.len())?;
                for x in v {
                    write!(f, "\n  {x}")?;
                }
                Ok(())
            }
            SchedError::ClaimOverlap(v) => {
                write!(f, "batch claims overlap ({} violations):", v.len())?;
                for x in v {
                    write!(f, "\n  {x}")?;
                }
                Ok(())
            }
            SchedError::Unplaceable {
                job,
                name,
                needed,
                available,
            } => write!(
                f,
                "{job} ({name}) needs {needed} processors but the machine has {available}; \
                 no sub-tree can ever host it"
            ),
            SchedError::MalformedCustom { job } => write!(
                f,
                "{job} submitted a custom schedule that is empty or has a non-final drain step"
            ),
            SchedError::Tune(job, e) => write!(f, "{job}: plan selection failed: {e}"),
            SchedError::Exec(e, _) => write!(f, "engine error: {e}"),
        }
    }
}

impl std::error::Error for SchedError {}

impl From<SimError> for SchedError {
    fn from(e: SimError) -> Self {
        SchedError::Exec(e, None)
    }
}
