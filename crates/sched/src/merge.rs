//! Merging a batch of lowered jobs into one shared-tree program.
//!
//! Each lowered job's schedule is expressed in its carved machine's
//! local ranks; merging remaps every work charge and transfer through
//! `Carved::leaves` onto the shared tree and zips the jobs' supersteps
//! together, so the whole batch runs under **one barrier per step**
//! instead of one barrier sequence per tenant.
//!
//! Correctness of the shared barrier: merged step `s` closes at
//! `Level(max level of any active job's claimed node)`. A claim at
//! level `ℓ` is itself a level-`ℓ` cluster, every transfer of that job
//! stays inside it, and any node of the sub-tree sits at level `≤ ℓ` —
//! so each transfer's crossing level is contained by the merged scope,
//! and the engines' scope check accepts the merged program wherever it
//! accepted the tenants individually. Unit-id spaces may collide across
//! jobs, but stores are per-processor and concurrent claims are
//! leaf-disjoint, so no processor ever sees two tenants' units.

use crate::lower::LoweredJob;
use hbsp_collectives::reduce::ReduceOp;
use hbsp_collectives::schedule::ProcInit;
use hbsp_collectives::{CommSchedule, ScheduleStep, Transfer};
use hbsp_core::{MachineTree, SyncScope};

/// A batch's single shared-tree program, ready for `ScheduleProgram`.
pub(crate) struct MergedBatch {
    /// The zipped schedule over the shared tree.
    pub schedule: CommSchedule,
    /// Holdings per shared-tree rank (idle processors hold nothing).
    pub init: Vec<ProcInit>,
    /// The batch's single reduction operator (admission guarantees all
    /// member operators agree).
    pub op: Option<ReduceOp>,
}

/// Zip the batch members into one program on `tree`.
pub(crate) fn merge(tree: &MachineTree, lowered: &[LoweredJob]) -> MergedBatch {
    let p = tree.num_procs();
    let mut init = vec![ProcInit::default(); p];
    for l in lowered {
        for (rank, pi) in l.init.iter().enumerate() {
            init[l.carved.leaves[rank].rank()] = pi.clone();
        }
    }
    let op = lowered.iter().find_map(|l| l.op);

    // Every schedule ends with its drain; the merged body is as long as
    // the longest member body, followed by one shared drain.
    let body_of = |l: &LoweredJob| l.schedule.num_steps().saturating_sub(1);
    let body = lowered.iter().map(body_of).max().unwrap_or(0);
    let mut schedule = CommSchedule::new();
    for s in 0..body {
        let scope = lowered
            .iter()
            .filter(|l| s < body_of(l))
            .map(|l| tree.node(l.node).level())
            .max()
            .expect("some member is active at every body step");
        let mut step = ScheduleStep::at(SyncScope::Level(scope));
        for l in lowered {
            if s >= body_of(l) {
                continue;
            }
            let src = &l.schedule.steps[s];
            for &(pid, units) in &src.work {
                step.work.push((l.carved.leaves[pid.rank()], units));
            }
            for t in &src.transfers {
                step.transfers.push(Transfer {
                    src: l.carved.leaves[t.src.rank()],
                    dst: l.carved.leaves[t.dst.rank()],
                    words: t.words,
                    role: t.role.clone(),
                });
            }
        }
        schedule.push(step);
    }
    let mut drain = ScheduleStep::drain();
    for l in lowered {
        if let Some(last) = l.schedule.steps.last() {
            for &(pid, units) in &last.work {
                drain.work.push((l.carved.leaves[pid.rank()], units));
            }
        }
    }
    schedule.push(drain);
    MergedBatch { schedule, init, op }
}
