//! The job model: what tenants submit to the scheduler.
//!
//! A [`Job`] is either a *collective plan* — a [`CollectiveKind`] plus a
//! size hint, auto-tuned per placement by `hbsp_collectives::best_plan`
//! — or a *custom pre-lowered program*: a [`CommSchedule`] with initial
//! holdings, expressed in the local ranks of whatever sub-tree the
//! scheduler carves for it. `blocked_by` edges form the DAG the
//! scheduler drains; fork-join is the core topology (a fan-out of
//! independent jobs after a common prerequisite, joined by a job
//! blocked on all of them), and arbitrary workflow patterns compose
//! from the same edges.

use hbsp_collectives::reduce::ReduceOp;
use hbsp_collectives::schedule::ProcInit;
use hbsp_collectives::{CollectiveKind, CommSchedule};
use std::fmt;
use std::sync::Arc;

/// Dense identity of a submitted job, assigned by
/// [`crate::Scheduler::submit`] in submission order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct JobId(pub usize);

impl JobId {
    /// The id as an index.
    #[inline]
    pub fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for JobId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "job {}", self.0)
    }
}

/// What a job executes once placed on its carved sub-tree.
#[derive(Debug, Clone)]
pub enum JobWork {
    /// A collective plan: the scheduler lowers the cheapest strategy
    /// for the carved machine via `best_plan` at placement time. `n` is
    /// the collective's size hint (total items for gather / broadcast /
    /// scatter / allgather, vector length for reduce / scan, per-pair
    /// block words for alltoall).
    Collective {
        /// The operation.
        kind: CollectiveKind,
        /// Size hint, in the same units as `rank_plans`.
        n: u64,
    },
    /// A pre-lowered schedule in carved-local ranks `0..init.len()`.
    /// The scheduler places it on a sub-tree with exactly `init.len()`
    /// leaves whose carved height covers the schedule's scopes.
    Custom {
        /// The schedule, last step a drain.
        schedule: Arc<CommSchedule>,
        /// Initial holdings, one per carved-local rank.
        init: Arc<Vec<ProcInit>>,
        /// Reduction operator, required iff the schedule sends partials.
        op: Option<ReduceOp>,
    },
}

/// One unit of schedulable work plus its DAG edges.
#[derive(Debug, Clone)]
pub struct Job {
    /// Human-readable name (reports, traces, job-graph files).
    pub name: String,
    /// What to execute.
    pub work: JobWork,
    /// Smallest acceptable sub-tree, in leaves. Custom jobs need an
    /// exact match of `init.len()` instead.
    pub min_procs: usize,
    /// Jobs that must complete before this one may start.
    pub blocked_by: Vec<JobId>,
    /// Seed for the job's deterministic input data (collective jobs).
    /// The scheduler mixes the job id in, so the default 0 still gives
    /// every job distinct data.
    pub seed: u64,
}

impl Job {
    /// A collective job with the default minimum of two processors.
    pub fn collective(name: impl Into<String>, kind: CollectiveKind, n: u64) -> Job {
        Job {
            name: name.into(),
            work: JobWork::Collective { kind, n },
            min_procs: 2,
            blocked_by: Vec::new(),
            seed: 0,
        }
    }

    /// A custom pre-lowered job for exactly `init.len()` processors.
    pub fn custom(
        name: impl Into<String>,
        schedule: CommSchedule,
        init: Vec<ProcInit>,
        op: Option<ReduceOp>,
    ) -> Job {
        let procs = init.len();
        Job {
            name: name.into(),
            work: JobWork::Custom {
                schedule: Arc::new(schedule),
                init: Arc::new(init),
                op,
            },
            min_procs: procs,
            blocked_by: Vec::new(),
            seed: 0,
        }
    }

    /// Builder-style: add prerequisite jobs.
    pub fn after(mut self, deps: &[JobId]) -> Self {
        self.blocked_by.extend_from_slice(deps);
        self
    }

    /// Builder-style: require at least `p` processors (collective jobs;
    /// custom jobs always need exactly their init width).
    pub fn with_min_procs(mut self, p: usize) -> Self {
        self.min_procs = p.max(1);
        self
    }

    /// Builder-style: set the data seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// The exact leaf count a custom job requires; `None` for
    /// collective jobs (any sub-tree of at least `min_procs` fits).
    pub(crate) fn exact_procs(&self) -> Option<usize> {
        match &self.work {
            JobWork::Collective { .. } => None,
            JobWork::Custom { init, .. } => Some(init.len()),
        }
    }

    /// The reduction operator this job would impose on a shared batch
    /// program (one `ReduceOp` per merged program; batches only admit
    /// jobs whose operators agree).
    pub(crate) fn op(&self) -> Option<ReduceOp> {
        match &self.work {
            JobWork::Collective { kind, .. } => match kind {
                CollectiveKind::Reduce | CollectiveKind::Scan => Some(ReduceOp::Sum),
                _ => None,
            },
            JobWork::Custom { op, .. } => *op,
        }
    }
}
