//! Per-job telemetry for the multi-tenant scheduler.
//!
//! The scheduler in `hbsp-sched` runs many jobs against one shared
//! machine; engine-level telemetry ([`crate::StepTrace`]) attributes
//! time to *processors and supersteps*, not tenants. This module adds
//! the job axis:
//!
//! * [`JobSpan`] — one job's occupancy of its carved sub-tree over a
//!   virtual-time interval, tagged with the admission batch and the
//!   claimed leaf ranks;
//! * [`JobMetrics`] — the `hbsp_jobs_*` metric family (stable names,
//!   same contract as the engine metrics in `docs/observability.md`);
//! * [`jobs_chrome_trace`] — a Chrome trace-event document with one
//!   track per job, so a scheduler run renders as a Gantt chart of
//!   tenants next to the engines' per-processor timelines.

use crate::json::{escape, num};
use crate::metrics::{CounterId, HistogramId, MetricSample, Registry};

/// Synthetic Chrome-trace pid for the job timeline (the engine
/// exporters use pids 1 and 2; see [`crate::export`]).
pub const PID_JOBS: u64 = 3;

/// One job's occupancy of the shared machine in virtual time.
#[derive(Debug, Clone, PartialEq)]
pub struct JobSpan {
    /// Job id (dense, assigned at submission).
    pub job: usize,
    /// Human-readable job name for track labels.
    pub name: String,
    /// Admission batch this job ran in (0-based).
    pub batch: usize,
    /// Virtual time the job's batch started.
    pub start: f64,
    /// Virtual time the job's batch finished.
    pub end: f64,
    /// Global leaf ranks of the claimed sub-tree.
    pub leaves: Vec<u32>,
}

impl JobSpan {
    /// Span length in virtual time units.
    pub fn duration(&self) -> f64 {
        self.end - self.start
    }
}

/// The `hbsp_jobs_*` metric family. Names are a stable contract:
///
/// * `hbsp_jobs_submitted_total` — jobs accepted into the graph;
/// * `hbsp_jobs_completed_total` — jobs that ran to completion;
/// * `hbsp_jobs_failed_total` — jobs whose execution errored;
/// * `hbsp_jobs_batches_total` — admission rounds executed;
/// * `hbsp_jobs_virtual_time` — histogram of per-job batch durations.
#[derive(Debug)]
pub struct JobMetrics {
    registry: Registry,
    submitted: CounterId,
    completed: CounterId,
    failed: CounterId,
    batches: CounterId,
    virtual_time: HistogramId,
}

impl Default for JobMetrics {
    fn default() -> Self {
        JobMetrics::new()
    }
}

impl JobMetrics {
    /// Fresh metrics with all `hbsp_jobs_*` series registered.
    pub fn new() -> JobMetrics {
        let mut registry = Registry::new();
        let submitted = registry.counter("hbsp_jobs_submitted_total");
        let completed = registry.counter("hbsp_jobs_completed_total");
        let failed = registry.counter("hbsp_jobs_failed_total");
        let batches = registry.counter("hbsp_jobs_batches_total");
        let virtual_time = registry.histogram("hbsp_jobs_virtual_time");
        JobMetrics {
            registry,
            submitted,
            completed,
            failed,
            batches,
            virtual_time,
        }
    }

    /// Record `n` submissions.
    pub fn submitted(&self, n: u64) {
        self.registry.c(self.submitted).add(n);
    }

    /// Record one completed job and its batch-window duration.
    pub fn completed(&self, virtual_time: f64) {
        self.registry.c(self.completed).inc();
        self.registry.h(self.virtual_time).record(virtual_time);
    }

    /// Record one failed job.
    pub fn failed(&self) {
        self.registry.c(self.failed).inc();
    }

    /// Record one admission batch.
    pub fn batch(&self) {
        self.registry.c(self.batches).inc();
    }

    /// Snapshot every series in registration order.
    pub fn snapshot(&self) -> Vec<MetricSample> {
        self.registry.snapshot()
    }

    /// Render as `name value` text lines (see [`Registry::render_text`]).
    pub fn render_text(&self) -> String {
        self.registry.render_text()
    }
}

/// Render job spans as a Chrome trace-event JSON document: one process
/// (pid [`PID_JOBS`]), one thread per job, complete (`X`) events whose
/// args carry the batch index and claimed leaves. Validates under
/// [`crate::validate_chrome_trace`] and can be concatenated into a
/// combined Perfetto view with the engine trace (disjoint pids).
pub fn jobs_chrome_trace(spans: &[JobSpan]) -> String {
    let mut ordered: Vec<&JobSpan> = spans.iter().collect();
    ordered.sort_by(|a, b| a.start.total_cmp(&b.start).then(a.job.cmp(&b.job)));

    let mut out = String::new();
    out.push_str("{\"traceEvents\":[");
    let mut first = true;
    let mut push = |out: &mut String, json: String| {
        if !first {
            out.push(',');
        }
        first = false;
        out.push('\n');
        out.push_str(&json);
    };
    push(
        &mut out,
        format!(
            "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{PID_JOBS},\"tid\":0,\
             \"args\":{{\"name\":\"jobs (virtual time as \\u00b5s)\"}}}}"
        ),
    );
    for s in spans {
        push(
            &mut out,
            format!(
                "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":{PID_JOBS},\"tid\":{},\
                 \"args\":{{\"name\":\"job {} {}\"}}}}",
                s.job,
                s.job,
                escape(&s.name)
            ),
        );
    }
    for s in &ordered {
        let leaves: Vec<String> = s.leaves.iter().map(|l| l.to_string()).collect();
        push(
            &mut out,
            format!(
                "{{\"name\":\"{}\",\"cat\":\"job\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\
                 \"pid\":{PID_JOBS},\"tid\":{},\"args\":{{\"batch\":{},\"leaves\":[{}]}}}}",
                escape(&s.name),
                num(s.start),
                num(s.duration().max(0.0)),
                s.job,
                s.batch,
                leaves.join(",")
            ),
        );
    }
    out.push_str("\n],\"displayTimeUnit\":\"ms\"}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::export::validate_chrome_trace;
    use crate::metrics::MetricValue;

    fn span(job: usize, batch: usize, start: f64, end: f64) -> JobSpan {
        JobSpan {
            job,
            name: format!("j{job}"),
            batch,
            start,
            end,
            leaves: vec![job as u32 * 2, job as u32 * 2 + 1],
        }
    }

    #[test]
    fn metric_names_are_the_contract() {
        let m = JobMetrics::new();
        m.submitted(3);
        m.completed(10.0);
        m.completed(20.0);
        m.failed();
        m.batch();
        let text = m.render_text();
        assert!(text.contains("hbsp_jobs_submitted_total 3\n"));
        assert!(text.contains("hbsp_jobs_completed_total 2\n"));
        assert!(text.contains("hbsp_jobs_failed_total 1\n"));
        assert!(text.contains("hbsp_jobs_batches_total 1\n"));
        assert!(text.contains("hbsp_jobs_virtual_time_count 2\n"));
        assert!(text.contains("hbsp_jobs_virtual_time_sum 30\n"));
    }

    #[test]
    fn snapshot_orders_series_stably() {
        let m = JobMetrics::new();
        let names: Vec<String> = m.snapshot().into_iter().map(|s| s.name).collect();
        assert_eq!(
            names,
            vec![
                "hbsp_jobs_submitted_total",
                "hbsp_jobs_completed_total",
                "hbsp_jobs_failed_total",
                "hbsp_jobs_batches_total",
                "hbsp_jobs_virtual_time",
            ]
        );
        assert!(matches!(
            m.snapshot()[4].value,
            MetricValue::Histogram { .. }
        ));
    }

    #[test]
    fn jobs_trace_validates_and_names_tracks() {
        let spans = vec![
            span(0, 0, 0.0, 5.0),
            span(1, 0, 0.0, 3.0),
            span(2, 1, 5.0, 9.0),
        ];
        let text = jobs_chrome_trace(&spans);
        let check = validate_chrome_trace(&text).expect("job trace validates");
        assert_eq!(check.complete, 3);
        assert!(text.contains("\"name\":\"job 2 j2\""));
        assert!(text.contains("\"batch\":1"));
        assert!(text.contains("\"leaves\":[4,5]"));
    }

    #[test]
    fn empty_span_set_is_a_valid_trace() {
        let text = jobs_chrome_trace(&[]);
        validate_chrome_trace(&text).expect("empty job trace validates");
    }
}
