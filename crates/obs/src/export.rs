//! Trace exporters: Chrome trace-event JSON (loads in Perfetto /
//! `chrome://tracing`) and line-delimited JSON.
//!
//! Chrome trace layout: two synthetic processes — pid 1 carries the
//! **virtual-time** timeline (model units mapped 1:1 to microseconds),
//! pid 2 the **wall-clock** timeline (present only for threaded runs;
//! nanoseconds mapped to microseconds). Each processor is a thread
//! (`tid` = rank). All spans are complete (`"ph": "X"`) events sorted
//! by `ts`, preceded by `"M"` metadata naming the tracks.

use crate::json::{escape, num};
use crate::record::{EventTrace, StepTrace};
use crate::span::{causal_depth, CausalSpan, Span};
use std::fmt::Write as _;

/// Synthetic pid for the virtual-time timeline.
pub const PID_VIRTUAL: u64 = 1;
/// Synthetic pid for the wall-clock timeline.
pub const PID_WALL: u64 = 2;
/// Synthetic pid for the causal span tree (pid 3 is the scheduler's
/// job track, see [`crate::jobs`]).
pub const PID_CAUSAL: u64 = 4;

struct XEvent {
    name: String,
    cat: &'static str,
    ts: f64,
    dur: f64,
    pid: u64,
    tid: usize,
    /// Pre-rendered `args` object fragment (without braces).
    args: String,
}

fn push_span_events(
    out: &mut Vec<XEvent>,
    spans: &[Span],
    pid: u64,
    tid: usize,
    step: usize,
    scale: f64,
) {
    for span in spans {
        out.push(XEvent {
            name: span.kind.name().to_string(),
            cat: "superstep",
            ts: span.start * scale,
            dur: span.duration() * scale,
            pid,
            tid,
            args: format!("\"step\":{step}"),
        });
    }
}

/// Render recorded steps as a Chrome trace-event JSON document.
pub fn chrome_trace(steps: &[StepTrace]) -> String {
    chrome_trace_with_causal(steps, &[])
}

/// Like [`chrome_trace`], with an extra track (pid [`PID_CAUSAL`])
/// carrying a causal span tree: one complete event per span, `tid` =
/// depth in the tree, `args` carrying the span's `id` and `parent`
/// link so consumers can rebuild the hierarchy.
pub fn chrome_trace_with_causal(steps: &[StepTrace], causal: &[CausalSpan]) -> String {
    let procs = steps.iter().map(StepTrace::procs).max().unwrap_or(0);
    let has_wall = steps.iter().any(|s| s.wall().is_some());

    let mut events = Vec::new();
    for st in steps {
        for pid in 0..st.procs() {
            push_span_events(&mut events, &st.spans(pid), PID_VIRTUAL, pid, st.step, 1.0);
            // Wall marks are nanoseconds; trace ts is microseconds.
            push_span_events(
                &mut events,
                &st.wall_spans(pid),
                PID_WALL,
                pid,
                st.step,
                1e-3,
            );
        }
    }
    for cs in causal {
        let parent = match cs.parent {
            Some(p) => p.to_string(),
            None => "null".to_string(),
        };
        events.push(XEvent {
            name: format!("{}:{}", cs.kind.name(), cs.label),
            cat: "causal",
            ts: cs.start,
            dur: cs.end - cs.start,
            pid: PID_CAUSAL,
            tid: causal_depth(causal, cs.id),
            args: format!("\"id\":{},\"parent\":{}", cs.id, parent),
        });
    }
    events.sort_by(|a, b| {
        a.ts.total_cmp(&b.ts)
            .then(a.pid.cmp(&b.pid))
            .then(a.tid.cmp(&b.tid))
    });

    let mut out = String::new();
    out.push_str("{\"traceEvents\":[");
    let mut first = true;
    let meta = |out: &mut String, first: &mut bool, json: String| {
        if !*first {
            out.push(',');
        }
        *first = false;
        out.push('\n');
        out.push_str(&json);
    };
    meta(
        &mut out,
        &mut first,
        format!(
            "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{PID_VIRTUAL},\"tid\":0,\
             \"args\":{{\"name\":\"virtual time (model units as \\u00b5s)\"}}}}"
        ),
    );
    if has_wall {
        meta(
            &mut out,
            &mut first,
            format!(
                "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{PID_WALL},\"tid\":0,\
                 \"args\":{{\"name\":\"wall clock\"}}}}"
            ),
        );
    }
    if !causal.is_empty() {
        meta(
            &mut out,
            &mut first,
            format!(
                "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{PID_CAUSAL},\"tid\":0,\
                 \"args\":{{\"name\":\"causal spans (batch > job > segment > superstep)\"}}}}"
            ),
        );
    }
    for pid in 0..procs {
        meta(
            &mut out,
            &mut first,
            format!(
                "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":{PID_VIRTUAL},\"tid\":{pid},\
                 \"args\":{{\"name\":\"P{pid}\"}}}}"
            ),
        );
        if has_wall {
            meta(
                &mut out,
                &mut first,
                format!(
                    "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":{PID_WALL},\"tid\":{pid},\
                     \"args\":{{\"name\":\"P{pid}\"}}}}"
                ),
            );
        }
    }
    for e in &events {
        meta(
            &mut out,
            &mut first,
            format!(
                "{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\
                 \"pid\":{},\"tid\":{},\"args\":{{{}}}}}",
                escape(&e.name),
                e.cat,
                num(e.ts),
                num(e.dur.max(0.0)),
                e.pid,
                e.tid,
                e.args
            ),
        );
    }
    out.push_str("\n],\"displayTimeUnit\":\"ms\"}\n");
    out
}

fn jsonl_u64s(vals: &[u64]) -> String {
    let items: Vec<String> = vals.iter().map(|v| v.to_string()).collect();
    format!("[{}]", items.join(","))
}

fn jsonl_f64s(vals: &[f64]) -> String {
    let items: Vec<String> = vals.iter().map(|v| num(*v)).collect();
    format!("[{}]", items.join(","))
}

/// Append one `"kind":"step"` JSONL line for `st`. Wall-clock fields
/// are included only when `include_wall` is set — post-mortem bundles
/// omit them so bundles compare bit-identically across engines.
pub(crate) fn jsonl_step_line(out: &mut String, st: &StepTrace, include_wall: bool) {
    let barrier = match st.barrier {
        Some(l) => l.to_string(),
        None => "null".to_string(),
    };
    let _ = write!(
        out,
        "{{\"kind\":\"step\",\"step\":{},\"barrier\":{},\"hrelation\":{},\
         \"duration\":{},\"words\":{},\"messages\":{},\
         \"starts\":{},\"compute_done\":{},\"send_done\":{},\"finish\":{},\"releases\":{},\
         \"words_by_level\":{},\"messages_by_level\":{},\"work\":{},\"sent_words\":{}",
        st.step,
        barrier,
        num(st.hrelation),
        num(st.duration()),
        st.total_words(),
        st.total_messages(),
        jsonl_f64s(st.starts()),
        jsonl_f64s(st.compute_done()),
        jsonl_f64s(st.send_done()),
        jsonl_f64s(st.finish()),
        jsonl_f64s(st.releases()),
        jsonl_u64s(st.words_by_level()),
        jsonl_u64s(st.messages_by_level()),
        jsonl_f64s(st.work()),
        jsonl_u64s(st.sent_words()),
    );
    if include_wall {
        if let Some(w) = st.wall() {
            let _ = write!(
                out,
                ",\"wall\":{{\"body_start_ns\":{},\"body_end_ns\":{},\"leader_done_ns\":{}}}",
                jsonl_u64s(w.body_start_ns),
                jsonl_u64s(w.body_end_ns),
                w.leader_done_ns
            );
        }
    }
    out.push_str("}\n");
}

/// Append one `"kind":"event"` JSONL line for `ev`.
pub(crate) fn jsonl_event_line(out: &mut String, ev: &EventTrace) {
    match ev {
        EventTrace::WatchdogFired { step, missing } => {
            let pids: Vec<String> = missing.iter().map(|p| p.rank().to_string()).collect();
            let _ = writeln!(
                out,
                "{{\"kind\":\"event\",\"event\":\"watchdog_fired\",\"step\":{},\
                 \"missing\":[{}]}}",
                step,
                pids.join(",")
            );
        }
        EventTrace::Degraded {
            step,
            dead,
            remaining,
        } => {
            let pids: Vec<String> = dead.iter().map(|p| p.rank().to_string()).collect();
            let _ = writeln!(
                out,
                "{{\"kind\":\"event\",\"event\":\"degraded\",\"step\":{},\"dead\":[{}],\
                 \"remaining\":{}}}",
                step,
                pids.join(","),
                remaining
            );
        }
        EventTrace::RecoveryAttempt { attempt } => {
            let _ = writeln!(
                out,
                "{{\"kind\":\"event\",\"event\":\"recovery_attempt\",\"attempt\":{attempt}}}"
            );
        }
        EventTrace::Replan {
            segment,
            step,
            drift,
            strategy,
            predicted,
        } => {
            let _ = writeln!(
                out,
                "{{\"kind\":\"event\",\"event\":\"replan\",\"segment\":{},\"step\":{},\
                 \"drift\":{},\"strategy\":\"{}\",\"predicted\":{}}}",
                segment,
                step,
                num(if drift.is_finite() { *drift } else { -1.0 }),
                escape(strategy),
                num(*predicted)
            );
        }
        EventTrace::Anomaly {
            step,
            pid,
            metric,
            zscore,
            value,
            mean,
        } => {
            let _ = writeln!(
                out,
                "{{\"kind\":\"event\",\"event\":\"anomaly\",\"step\":{},\"pid\":{},\
                 \"metric\":\"{}\",\"zscore\":{},\"value\":{},\"mean\":{}}}",
                step,
                pid.rank(),
                escape(metric),
                num(*zscore),
                num(*value),
                num(*mean)
            );
        }
    }
}

/// Append one `"kind":"metric"` JSONL line for `m`.
pub(crate) fn jsonl_metric_line(out: &mut String, m: &crate::metrics::MetricSample) {
    use crate::metrics::MetricValue;
    match &m.value {
        MetricValue::Counter(v) => {
            let _ = writeln!(
                out,
                "{{\"kind\":\"metric\",\"name\":\"{}\",\"type\":\"counter\",\"value\":{}}}",
                escape(&m.name),
                v
            );
        }
        MetricValue::Gauge(v) => {
            let _ = writeln!(
                out,
                "{{\"kind\":\"metric\",\"name\":\"{}\",\"type\":\"gauge\",\"value\":{}}}",
                escape(&m.name),
                num(*v)
            );
        }
        MetricValue::Histogram { count, sum } => {
            let _ = writeln!(
                out,
                "{{\"kind\":\"metric\",\"name\":\"{}\",\"type\":\"histogram\",\
                 \"count\":{},\"sum\":{}}}",
                escape(&m.name),
                count,
                num(*sum)
            );
        }
    }
}

/// Render recorded steps, events, and metrics as JSONL: one
/// self-describing record per line (`"kind"` ∈ `step`, `event`,
/// `metric`).
pub fn jsonl(
    steps: &[StepTrace],
    events: &[EventTrace],
    metrics: &[crate::metrics::MetricSample],
) -> String {
    let mut out = String::new();
    for st in steps {
        jsonl_step_line(&mut out, st, true);
    }
    for ev in events {
        jsonl_event_line(&mut out, ev);
    }
    for m in metrics {
        jsonl_metric_line(&mut out, m);
    }
    out
}

/// Summary returned by a successful [`validate_chrome_trace`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceCheck {
    /// Total events (metadata included).
    pub events: usize,
    /// Complete (`X`) events.
    pub complete: usize,
    /// Matched `B`/`E` pairs.
    pub pairs: usize,
}

/// Validate a Chrome trace-event JSON document:
///
/// * well-formed JSON, top-level array or `{"traceEvents": [...]}`;
/// * every event is an object with string `ph`, numeric `pid`/`tid`;
/// * `X` events carry numeric `ts` and `dur ≥ 0`;
/// * `B`/`E` events carry numeric `ts` and balance per `(pid, tid)`;
/// * non-metadata events appear in non-decreasing `ts` order.
pub fn validate_chrome_trace(text: &str) -> Result<TraceCheck, String> {
    use crate::json::{parse, Value};
    let doc = parse(text).map_err(|e| format!("malformed JSON: {e}"))?;
    let events = match &doc {
        Value::Arr(a) => a.as_slice(),
        Value::Obj(_) => doc
            .get("traceEvents")
            .and_then(Value::as_arr)
            .ok_or("object form lacks a \"traceEvents\" array")?,
        _ => return Err("top level is neither an array nor an object".to_string()),
    };
    let mut last_ts: Option<f64> = None;
    let mut open: std::collections::BTreeMap<(u64, u64), usize> = std::collections::BTreeMap::new();
    let mut complete = 0usize;
    let mut pairs = 0usize;
    for (i, ev) in events.iter().enumerate() {
        let obj = match ev {
            Value::Obj(_) => ev,
            _ => return Err(format!("event {i} is not an object")),
        };
        let ph = obj
            .get("ph")
            .and_then(Value::as_str)
            .ok_or(format!("event {i} lacks a string \"ph\""))?;
        let pid = obj
            .get("pid")
            .and_then(Value::as_f64)
            .ok_or(format!("event {i} lacks a numeric \"pid\""))? as u64;
        let tid = obj
            .get("tid")
            .and_then(Value::as_f64)
            .ok_or(format!("event {i} lacks a numeric \"tid\""))? as u64;
        if ph == "M" {
            continue; // metadata is unordered and has no ts contract
        }
        let ts = obj
            .get("ts")
            .and_then(Value::as_f64)
            .ok_or(format!("event {i} ({ph}) lacks a numeric \"ts\""))?;
        if let Some(prev) = last_ts {
            if ts < prev {
                return Err(format!(
                    "event {i}: ts {ts} decreases (previous was {prev})"
                ));
            }
        }
        last_ts = Some(ts);
        match ph {
            "X" => {
                let dur = obj
                    .get("dur")
                    .and_then(Value::as_f64)
                    .ok_or(format!("X event {i} lacks a numeric \"dur\""))?;
                if dur < 0.0 {
                    return Err(format!("X event {i} has negative dur {dur}"));
                }
                complete += 1;
            }
            "B" => {
                *open.entry((pid, tid)).or_insert(0) += 1;
            }
            "E" => {
                let depth = open.entry((pid, tid)).or_insert(0);
                if *depth == 0 {
                    return Err(format!(
                        "event {i}: E without matching B on pid {pid} tid {tid}"
                    ));
                }
                *depth -= 1;
                pairs += 1;
            }
            other => {
                return Err(format!("event {i}: unsupported ph {other:?}"));
            }
        }
    }
    if let Some(((pid, tid), depth)) = open.iter().find(|(_, d)| **d > 0) {
        return Err(format!(
            "{depth} unclosed B event(s) on pid {pid} tid {tid}"
        ));
    }
    Ok(TraceCheck {
        events: events.len(),
        complete,
        pairs,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::{MetricSample, MetricValue};
    use crate::probe::{StepRecord, StepWall};

    fn step(i: usize, t0: f64, wall: bool) -> StepTrace {
        StepTrace::from_record(&StepRecord {
            step: i,
            barrier: Some(0),
            starts: &[t0, t0],
            compute_done: &[t0 + 1.0, t0 + 2.0],
            send_done: &[t0 + 1.5, t0 + 2.0],
            finish: &[t0 + 2.0, t0 + 2.5],
            releases: &[t0 + 3.0, t0 + 3.0],
            words_by_level: &[0, 4],
            messages_by_level: &[0, 1],
            hrelation: 4.0,
            work: &[1.0, 2.0],
            sent_words: &[4, 0],
            wall: wall.then_some(StepWall {
                body_start_ns: &[10, 20],
                body_end_ns: &[400, 600],
                leader_done_ns: 900,
            }),
        })
    }

    #[test]
    fn chrome_trace_validates_and_counts() {
        let steps = vec![step(0, 0.0, true), step(1, 3.0, true)];
        let text = chrome_trace(&steps);
        let check = validate_chrome_trace(&text).expect("trace validates");
        assert!(check.complete > 0);
        assert_eq!(check.pairs, 0);
        assert!(text.contains("\"pid\":1"), "virtual track present");
        assert!(text.contains("\"pid\":2"), "wall track present");
        assert!(text.contains("barrier_wait"));
    }

    #[test]
    fn sim_only_trace_has_no_wall_track() {
        let text = chrome_trace(&[step(0, 0.0, false)]);
        validate_chrome_trace(&text).expect("trace validates");
        assert!(!text.contains("\"pid\":2"));
    }

    #[test]
    fn validator_rejects_defects() {
        assert!(validate_chrome_trace("not json").is_err());
        assert!(validate_chrome_trace("{\"foo\": 1}").is_err());
        let unsorted = r#"[
            {"ph":"X","ts":5,"dur":1,"pid":1,"tid":0,"name":"a"},
            {"ph":"X","ts":4,"dur":1,"pid":1,"tid":0,"name":"b"}
        ]"#;
        assert!(validate_chrome_trace(unsorted)
            .unwrap_err()
            .contains("decreases"));
        let negative = r#"[{"ph":"X","ts":0,"dur":-1,"pid":1,"tid":0}]"#;
        assert!(validate_chrome_trace(negative)
            .unwrap_err()
            .contains("negative"));
        let unbalanced = r#"[{"ph":"B","ts":0,"pid":1,"tid":0}]"#;
        assert!(validate_chrome_trace(unbalanced)
            .unwrap_err()
            .contains("unclosed"));
        let stray_end = r#"[{"ph":"E","ts":0,"pid":1,"tid":0}]"#;
        assert!(validate_chrome_trace(stray_end)
            .unwrap_err()
            .contains("without matching"));
    }

    #[test]
    fn validator_accepts_balanced_be_pairs() {
        let ok = r#"{"traceEvents":[
            {"ph":"B","ts":0,"pid":1,"tid":0,"name":"a"},
            {"ph":"E","ts":2,"pid":1,"tid":0}
        ]}"#;
        let check = validate_chrome_trace(ok).unwrap();
        assert_eq!(check.pairs, 1);
        assert_eq!(check.complete, 0);
    }

    #[test]
    fn jsonl_lines_are_each_valid_json() {
        let steps = vec![step(0, 0.0, true)];
        let events = vec![EventTrace::RecoveryAttempt { attempt: 1 }];
        let metrics = vec![
            MetricSample {
                name: "hbsp_steps_total".into(),
                value: MetricValue::Counter(1),
            },
            MetricSample {
                name: "hbsp_hrelation_observed".into(),
                value: MetricValue::Histogram { count: 1, sum: 4.0 },
            },
        ];
        let text = jsonl(&steps, &events, &metrics);
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 4);
        for line in &lines {
            let v = crate::json::parse(line).expect("line parses");
            assert!(v.get("kind").is_some(), "{line}");
        }
        assert!(lines[0].contains("\"wall\""));
    }
}
