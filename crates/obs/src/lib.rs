//! # hbsp-obs — unified telemetry for both HBSP^k engines
//!
//! Section 5 of the paper validates the HBSP^k cost model by
//! *measuring*: improvement factors over real runs, `r_j` rankings from
//! BYTEmark. This crate is the measuring apparatus for our two engines:
//!
//! * **[`Probe`]** — one observation trait consumed by the virtual-time
//!   `Simulator` and the wall-clock `ThreadedRuntime`. Both populate
//!   the same [`StepRecord`] schema; the threaded engine adds
//!   wall-clock marks. The default [`NoopProbe`] keeps the disabled
//!   path off the hot path: engines assemble nothing unless
//!   [`Probe::enabled`] returns true.
//! * **[`Recorder`]** — the shipped probe: owned [`StepTrace`]s, a
//!   lock-free [`metrics`] registry with stable names, and exporters to
//!   Chrome trace-event JSON ([`chrome_trace`], loads in Perfetto) and
//!   JSONL ([`jsonl`]).
//! * **[`DriftReport`]** — observed supersteps folded against the cost
//!   model's predictions for the same schedule: per-step and aggregate
//!   model error.
//! * **[`calibrate()`]** — least-squares back-calibration of `g`, the
//!   per-level `L`, per-processor speeds and `r` from an observed run
//!   (the closed loop on §5's benchmark-then-predict methodology).
//!
//! * **[`jobs`]** — the scheduler's tenant axis: per-job occupancy
//!   spans ([`JobSpan`]), the `hbsp_jobs_*` metric family
//!   ([`JobMetrics`]), and a job-track Chrome-trace exporter
//!   ([`jobs_chrome_trace`]).
//! * **[`FlightRecorder`]** — the always-on probe: a lock-free,
//!   allocation-free ring of the last N step records plus a streaming
//!   [`anomaly`] detector, cheap enough to leave armed in production.
//!   On a fault it snapshots into a [`PostmortemBundle`] — machine
//!   tree, fault plan, last-N steps, events, decision log, metrics,
//!   and the causal span tree — serialized as JSONL and bit-identical
//!   across engines for the same seeded failure.
//!
//! [`Span`]/[`SpanKind`] live here and are re-exported by `hbsp-sim`,
//! so both engines and the exporters agree on one span schema.

#![forbid(unsafe_code)]

pub mod anomaly;
pub mod calibrate;
pub mod drift;
pub mod export;
pub mod flight;
pub mod jobs;
pub mod json;
pub mod metrics;
pub mod postmortem;
pub mod probe;
pub mod record;
pub mod span;

pub use anomaly::{
    welford_update, zscore, Anomaly, AnomalyConfig, AnomalyDetector, METRIC_BARRIER_SKEW,
    METRIC_DURATION_DRIFT,
};
pub use calibrate::{
    calibrate, calibrate_robust, proc_estimates, Calibration, ProcEstimates, RobustCalibration,
};
pub use drift::{DriftReport, DriftRow};
pub use export::{
    chrome_trace, chrome_trace_with_causal, jsonl, validate_chrome_trace, TraceCheck,
};
pub use flight::FlightRecorder;
pub use jobs::{jobs_chrome_trace, JobMetrics, JobSpan};
pub use metrics::{Counter, Gauge, Histogram, MetricSample, MetricValue, Registry};
pub use postmortem::{PostmortemBundle, BUNDLE_VERSION};
pub use probe::{noop, NoopProbe, ObsEvent, Probe, StepRecord, StepWall};
pub use record::{check_span_invariants, EventTrace, Recorder, StepTrace};
pub use span::{
    causal_depth, check_causal_spans, CausalKind, CausalSpan, CausalTree, Span, SpanKind,
};
