//! Cost-model drift: fold observed supersteps against the predictions
//! for the same schedule and report per-step and aggregate error.
//!
//! The paper validates its model by comparing measured and predicted
//! times (§5); this module is that comparison as a first-class report.
//! Pair each executed step's [`StepTrace`] with the
//! [`SuperstepCost`] the cost model assigned to the *same* schedule
//! step, and the difference is model drift — non-zero whenever the
//! machine file's `g`/`L`/`r` disagree with what the engine (or real
//! hardware) actually exhibits.

use crate::record::StepTrace;
use hbsp_core::SuperstepCost;
use std::fmt::Write as _;

/// One executed superstep against its prediction.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DriftRow {
    /// Superstep index.
    pub step: usize,
    /// Predicted cost decomposition for this step.
    pub predicted: SuperstepCost,
    /// Observed step duration (`max release − min start`).
    pub observed_t: f64,
    /// Observed h-relation.
    pub observed_h: f64,
    /// Observed `w` (largest per-processor compute interval).
    pub observed_w: f64,
}

impl DriftRow {
    /// Signed absolute error `observed − predicted`.
    pub fn error(&self) -> f64 {
        self.observed_t - self.predicted.total()
    }

    /// Signed relative error; `NaN` when the prediction is zero.
    pub fn rel_error(&self) -> f64 {
        self.error() / self.predicted.total()
    }
}

/// A full drift report over one run.
#[derive(Debug, Clone, PartialEq)]
pub struct DriftReport {
    /// Per-step rows in execution order.
    pub rows: Vec<DriftRow>,
}

impl DriftReport {
    /// Pair observed steps with their predictions. The slices must
    /// describe the same schedule, step for step.
    pub fn new(observed: &[StepTrace], predicted: &[SuperstepCost]) -> Result<DriftReport, String> {
        if observed.len() != predicted.len() {
            return Err(format!(
                "observed {} steps but the schedule predicts {} — not the same program",
                observed.len(),
                predicted.len()
            ));
        }
        let rows = observed
            .iter()
            .zip(predicted)
            .map(|(st, cost)| DriftRow {
                step: st.step,
                predicted: *cost,
                observed_t: st.duration(),
                observed_h: st.hrelation,
                observed_w: st.observed_work_time(),
            })
            .collect();
        Ok(DriftReport { rows })
    }

    /// Total predicted time.
    pub fn predicted_total(&self) -> f64 {
        self.rows.iter().map(|r| r.predicted.total()).sum()
    }

    /// Total observed time.
    pub fn observed_total(&self) -> f64 {
        self.rows.iter().map(|r| r.observed_t).sum()
    }

    /// Signed relative error of the aggregate totals; 0 for an empty
    /// report.
    pub fn aggregate_rel_error(&self) -> f64 {
        let p = self.predicted_total();
        if p == 0.0 {
            0.0
        } else {
            (self.observed_total() - p) / p
        }
    }

    /// Mean absolute per-step relative error over steps with a non-zero
    /// prediction.
    pub fn mean_abs_rel_error(&self) -> f64 {
        let errs: Vec<f64> = self
            .rows
            .iter()
            .filter(|r| r.predicted.total() > 0.0)
            .map(|r| r.rel_error().abs())
            .collect();
        if errs.is_empty() {
            0.0
        } else {
            errs.iter().sum::<f64>() / errs.len() as f64
        }
    }

    /// Largest absolute per-step relative error (0 when undefined).
    pub fn max_abs_rel_error(&self) -> f64 {
        self.rows
            .iter()
            .filter(|r| r.predicted.total() > 0.0)
            .map(|r| r.rel_error().abs())
            .fold(0.0f64, f64::max)
    }

    /// Render the per-step table plus the aggregate line.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:>4} {:>6} {:>12} {:>12} {:>10} {:>10} {:>8}",
            "step", "level", "predicted T", "observed T", "pred h", "obs h", "error"
        );
        for r in &self.rows {
            let err = if r.predicted.total() > 0.0 {
                format!("{:+.1}%", 100.0 * r.rel_error())
            } else {
                "-".to_string()
            };
            let _ = writeln!(
                out,
                "{:>4} {:>6} {:>12.1} {:>12.1} {:>10.1} {:>10.1} {:>8}",
                r.step,
                r.predicted.level,
                r.predicted.total(),
                r.observed_t,
                r.predicted.h,
                r.observed_h,
                err
            );
        }
        let _ = writeln!(
            out,
            "aggregate: predicted {:.1}, observed {:.1} ({:+.1}%); per-step mean |err| {:.1}%, max |err| {:.1}%",
            self.predicted_total(),
            self.observed_total(),
            100.0 * self.aggregate_rel_error(),
            100.0 * self.mean_abs_rel_error(),
            100.0 * self.max_abs_rel_error(),
        );
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hbsp_core::Level;

    fn trace(step: usize, dur: f64, h: f64) -> StepTrace {
        StepTrace::from_record(&crate::probe::StepRecord {
            step,
            barrier: Some(1),
            starts: &[0.0],
            compute_done: &[0.0],
            send_done: &[0.0],
            finish: &[dur],
            releases: &[dur],
            words_by_level: &[],
            messages_by_level: &[],
            hrelation: h,
            work: &[0.0],
            sent_words: &[0],
            wall: None,
        })
    }

    fn cost(level: Level, w: f64, h: f64, comm: f64, sync: f64) -> SuperstepCost {
        SuperstepCost {
            level,
            w,
            h,
            comm,
            sync,
        }
    }

    #[test]
    fn exact_prediction_has_zero_drift() {
        let observed = vec![trace(0, 110.0, 100.0), trace(1, 55.0, 50.0)];
        let predicted = vec![
            cost(1, 0.0, 100.0, 100.0, 10.0),
            cost(1, 0.0, 50.0, 50.0, 5.0),
        ];
        let rep = DriftReport::new(&observed, &predicted).unwrap();
        assert_eq!(rep.predicted_total(), 165.0);
        assert_eq!(rep.observed_total(), 165.0);
        assert_eq!(rep.aggregate_rel_error(), 0.0);
        assert_eq!(rep.mean_abs_rel_error(), 0.0);
    }

    #[test]
    fn drift_is_reported_per_step_and_aggregate() {
        let observed = vec![trace(0, 120.0, 100.0)];
        let predicted = vec![cost(2, 0.0, 100.0, 100.0, 0.0)];
        let rep = DriftReport::new(&observed, &predicted).unwrap();
        assert!((rep.rows[0].rel_error() - 0.2).abs() < 1e-12);
        assert!((rep.aggregate_rel_error() - 0.2).abs() < 1e-12);
        assert!((rep.max_abs_rel_error() - 0.2).abs() < 1e-12);
        let table = rep.render();
        assert!(table.contains("predicted T"), "{table}");
        assert!(table.contains("+20.0%"), "{table}");
        assert!(table.contains("aggregate:"), "{table}");
    }

    #[test]
    fn length_mismatch_is_an_error() {
        let err = DriftReport::new(&[trace(0, 1.0, 0.0)], &[]).unwrap_err();
        assert!(err.contains("not the same program"), "{err}");
    }

    #[test]
    fn zero_prediction_rows_are_excluded_from_relative_stats() {
        let observed = vec![trace(0, 0.0, 0.0)];
        let predicted = vec![cost(1, 0.0, 0.0, 0.0, 0.0)];
        let rep = DriftReport::new(&observed, &predicted).unwrap();
        assert_eq!(rep.mean_abs_rel_error(), 0.0);
        assert!(rep.render().contains(" -"), "dash for undefined error");
    }
}
